//! The automated §V-C loop: run each GEMM version and the π study through
//! the trace-based bottleneck classifier and check it reads the traces the
//! way the paper's authors did.

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::ir::Value;
use hls_paraver::kernels::gemm::{build, GemmParams, GemmVersion};
use hls_paraver::kernels::pi::{self, PiParams};
use hls_paraver::kernels::reference;
use hls_paraver::profiling::diagnose::{diagnose, Bottleneck, DiagnoseConfig};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, SimConfig};

fn diagnose_gemm(v: GemmVersion, sim: &SimConfig) -> Bottleneck {
    let p = GemmParams {
        dim: 32,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let kernel = build(v, &p);
    let acc = compile(&kernel, &HlsConfig::default());
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
    let mut unit = ProfilingUnit::new(
        &kernel.name,
        p.threads,
        ProfilingConfig {
            sampling_period: 200,
            ..Default::default()
        },
    );
    let r = Executor::run(
        &kernel,
        &acc,
        sim,
        &[
            LaunchArg::Buffer(vals(&a)),
            LaunchArg::Buffer(vals(&a)),
            LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
        ],
        &mut unit,
    )
    .expect("simulation failed");
    let trace = unit.finish();
    diagnose(&trace, &r.stats, sim, &DiagnoseConfig::default()).bottleneck
}

#[test]
fn naive_gemm_reads_as_synchronization_bound() {
    let sim = SimConfig::default().with_fast_launch();
    assert_eq!(
        diagnose_gemm(GemmVersion::Naive, &sim),
        Bottleneck::Synchronization
    );
}

#[test]
fn nocritical_gemm_reads_as_memory_latency_bound() {
    let sim = SimConfig::default().with_fast_launch();
    assert_eq!(
        diagnose_gemm(GemmVersion::NoCritical, &sim),
        Bottleneck::MemoryLatency
    );
}

#[test]
fn blocked_gemm_reads_as_phased() {
    let sim = SimConfig::default().with_fast_launch();
    assert_eq!(
        diagnose_gemm(GemmVersion::Blocked, &sim),
        Bottleneck::PhasedTransfers
    );
}

#[test]
fn double_buffered_gemm_is_not_phased() {
    let sim = SimConfig::default().with_fast_launch();
    let b = diagnose_gemm(GemmVersion::DoubleBuffered, &sim);
    assert_ne!(b, Bottleneck::PhasedTransfers);
    assert_ne!(b, Bottleneck::Synchronization);
}

#[test]
fn small_pi_reads_as_host_overhead_bound() {
    // Full launch interval, tiny workload: the π study's Fig. 11 regime.
    let sim = SimConfig::default();
    let p = PiParams {
        steps: 512_000,
        threads: 8,
        bs: 8,
    };
    let kernel = pi::build(&p);
    let acc = compile(&kernel, &HlsConfig::default());
    let (step, spt) = pi::launch_scalars(&p);
    let mut unit = ProfilingUnit::new("pi", 8, ProfilingConfig::default());
    let r = Executor::run(
        &kernel,
        &acc,
        &sim,
        &[
            LaunchArg::Scalar(Value::F32(step)),
            LaunchArg::Scalar(Value::I64(spt)),
            LaunchArg::Buffer(vec![Value::F32(0.0)]),
        ],
        &mut unit,
    )
    .expect("simulation failed");
    let trace = unit.finish();
    let d = diagnose(&trace, &r.stats, &sim, &DiagnoseConfig::default());
    assert_eq!(d.bottleneck, Bottleneck::HostOverhead, "{d:?}");
    assert!(d.advice.contains("host"), "{}", d.advice);
}
