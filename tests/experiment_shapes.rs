//! Regression tests for the *shape* of every reproduced experiment: who
//! wins, by roughly what factor, and which qualitative effects appear.
//! These are the claims EXPERIMENTS.md records; if a refactor breaks one of
//! them, the reproduction is no longer faithful.

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::hls::cost::geo_mean;
use hls_paraver::ir::Value;
use hls_paraver::kernels::gemm::{build, GemmParams, GemmVersion};
use hls_paraver::kernels::pi::{self, PiParams};
use hls_paraver::kernels::reference;
use hls_paraver::profiling::overhead::{instrumented_fit, OverheadParams};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, NullSnoop, SimConfig};

fn gemm_cycles(v: GemmVersion, p: &GemmParams, sim: &SimConfig) -> (u64, u64) {
    let kernel = build(v, p);
    let acc = compile(&kernel, &HlsConfig::default());
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
    let r = Executor::run(
        &kernel,
        &acc,
        sim,
        &[
            LaunchArg::Buffer(vals(&a)),
            LaunchArg::Buffer(vals(&a)),
            LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
        ],
        &mut NullSnoop,
    )
    .expect("simulation failed");
    (
        r.total_cycles,
        r.stats.total(|t| t.bytes_read + t.bytes_written),
    )
}

/// T-GEMM: the optimization steps keep their paper ordering and rough
/// factors (§V-C: 1.14×, 1.93×, then large gains; double-buffering best).
#[test]
fn gemm_speedup_progression_holds() {
    let p = GemmParams {
        dim: 64,
        threads: 8,
        vec: 4,
        block: 8,
    };
    let sim = SimConfig::default().with_fast_launch();
    let c: Vec<(u64, u64)> = GemmVersion::ALL
        .iter()
        .map(|v| gemm_cycles(*v, &p, &sim))
        .collect();
    let (naive, nocrit, vec, blocked, dbuf) = (c[0].0, c[1].0, c[2].0, c[3].0, c[4].0);
    // Strict ordering, as in the paper.
    assert!(
        naive > nocrit,
        "removing criticals helps: {naive} vs {nocrit}"
    );
    assert!(nocrit > vec, "vectorization helps: {nocrit} vs {vec}");
    assert!(vec > blocked, "blocking helps: {vec} vs {blocked}");
    assert!(
        blocked > dbuf,
        "double-buffering helps: {blocked} vs {dbuf}"
    );
    // Rough factors: v2 gains 5–100% (paper: 14% at 512²; the critical-
    // section share grows as the problem shrinks, so the scaled-down test
    // sees a larger gain — at the default 128² it is ~19%); v3 gains
    // 1.5–3× over v2 (paper 1.93×); overall v5 gains ≥8× (paper 19×).
    let r21 = naive as f64 / nocrit as f64;
    assert!((1.05..2.0).contains(&r21), "v1/v2 = {r21}");
    let r32 = nocrit as f64 / vec as f64;
    assert!((1.5..3.0).contains(&r32), "v2/v3 = {r32}");
    let r51 = naive as f64 / dbuf as f64;
    assert!(r51 >= 8.0, "v1/v5 = {r51}");
}

/// Fig. 7's bandwidth story: vectorization raises achieved bandwidth;
/// blocking lowers *external* traffic (trading it for local bandwidth);
/// double-buffering beats blocked.
#[test]
fn gemm_bandwidth_story_holds() {
    let p = GemmParams {
        dim: 64,
        threads: 8,
        vec: 4,
        block: 8,
    };
    let sim = SimConfig::default().with_fast_launch();
    let bw = |v: GemmVersion| {
        let (cy, bytes) = gemm_cycles(v, &p, &sim);
        bytes as f64 / cy as f64
    };
    let naive = bw(GemmVersion::Naive);
    let vecb = bw(GemmVersion::Vectorized);
    let blocked = bw(GemmVersion::Blocked);
    let dbuf = bw(GemmVersion::DoubleBuffered);
    assert!(vecb > naive, "vectorized bandwidth {vecb} > naive {naive}");
    assert!(
        blocked < vecb,
        "blocked trades external for local bandwidth: {blocked} vs {vecb}"
    );
    assert!(
        dbuf > blocked,
        "overlap raises throughput: {dbuf} vs {blocked}"
    );
}

/// Figs. 11–13: with the host's sequential starts, small π runs are
/// ramp-dominated (first thread finishes before the last starts) and the
/// GFLOP/s scales nearly linearly with iterations; larger runs approach
/// the compute-bound rate.
#[test]
fn pi_ramp_and_scaling_hold() {
    let sim = SimConfig {
        launch_interval: 100_000,
        ..Default::default()
    };
    let run = |steps: u64| {
        let p = PiParams {
            steps,
            threads: 8,
            bs: 8,
        };
        let kernel = pi::build(&p);
        let acc = compile(&kernel, &HlsConfig::default());
        let (step, spt) = pi::launch_scalars(&p);
        let mut unit = ProfilingUnit::new("pi", 8, ProfilingConfig::default());

        Executor::run(
            &kernel,
            &acc,
            &sim,
            &[
                LaunchArg::Scalar(Value::F32(step)),
                LaunchArg::Scalar(Value::I64(spt)),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
            &mut unit,
        )
        .expect("simulation failed")
    };
    let small = run(64_000);
    let big = run(1_024_000);
    // Ramp effect at the small size.
    assert!(
        small.stats.per_thread[0].end_cycle < small.stats.per_thread[7].start_cycle,
        "first thread must finish before the last starts"
    );
    // 16× the work in much-less-than-16× the time (ramp amortizes).
    let ratio = big.total_cycles as f64 / small.total_cycles as f64;
    assert!(
        ratio < 4.0,
        "total time is launch-dominated, not work-dominated: {ratio}"
    );
    // Effective rate grows with size.
    let r_small = 64_000f64 / small.total_cycles as f64;
    let r_big = 1_024_000f64 / big.total_cycles as f64;
    assert!(r_big > 4.0 * r_small, "{r_big} vs {r_small}");
}

/// E1/E2 bands: profiling overhead lands in the paper's ranges — a few
/// percent on the GEMM designs (max ≤ 8%, geo-mean ≤ 5%), less on the
/// larger π design, and single-digit-MHz fmax impact.
#[test]
fn overhead_bands_hold() {
    let hls = HlsConfig::default();
    let prof = ProfilingConfig::default();
    let op = OverheadParams::default();
    let gp = GemmParams::paper_scale();
    let mut reg_pcts = Vec::new();
    let mut alm_pcts = Vec::new();
    let mut fmax_deltas = Vec::new();
    for v in GemmVersion::ALL {
        let k = build(v, &gp);
        let acc = compile(&k, &hls);
        let with = instrumented_fit(&acc.fit, gp.threads, &prof, &op, &hls.cost);
        let o = with.overhead_vs(&acc.fit);
        reg_pcts.push(o.registers_pct);
        alm_pcts.push(o.alms_pct);
        fmax_deltas.push(o.fmax_delta_mhz);
        assert!(
            (130.0..175.0).contains(&acc.fit.fmax_mhz),
            "{v:?} base fmax {}",
            acc.fit.fmax_mhz
        );
    }
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    assert!(max(&reg_pcts) <= 8.0, "max reg overhead {}", max(&reg_pcts));
    assert!(max(&alm_pcts) <= 8.0, "max ALM overhead {}", max(&alm_pcts));
    assert!(geo_mean(&reg_pcts) <= 5.0);
    assert!(geo_mean(&alm_pcts) <= 5.0);
    assert!(max(&fmax_deltas) <= 9.0, "fmax delta {}", max(&fmax_deltas));
    // The larger π design pays less than the smallest GEMM design.
    let k = pi::build(&PiParams::default());
    let acc = compile(&k, &hls);
    let with = instrumented_fit(&acc.fit, 8, &prof, &op, &hls.cost);
    let o = with.overhead_vs(&acc.fit);
    assert!(o.registers_pct < max(&reg_pcts));
    assert!(o.fmax_delta_mhz <= 2.0, "π fmax delta {}", o.fmax_delta_mhz);
}

/// Fig. 8 vs Fig. 9: the blocked version stalls on its loads (distinct load
/// phases); the double-buffered version overlaps them away.
#[test]
fn double_buffering_removes_load_stalls() {
    let p = GemmParams {
        dim: 32,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let sim = SimConfig::default().with_fast_launch();
    let stalls = |v: GemmVersion| {
        let kernel = build(v, &p);
        let acc = compile(&kernel, &HlsConfig::default());
        let d = p.dim as usize;
        let a = reference::gen_matrix(d, 1);
        let vals = |m: &[f32]| m.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
        Executor::run(
            &kernel,
            &acc,
            &sim,
            &[
                LaunchArg::Buffer(vals(&a)),
                LaunchArg::Buffer(vals(&a)),
                LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
            ],
            &mut NullSnoop,
        )
        .expect("simulation failed")
        .stats
        .total_stalls()
    };
    let blocked = stalls(GemmVersion::Blocked);
    let dbuf = stalls(GemmVersion::DoubleBuffered);
    assert!(
        dbuf * 10 < blocked,
        "prefetch must hide load stalls: blocked {blocked}, dbuf {dbuf}"
    );
}
