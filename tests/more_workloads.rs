//! Timed-simulator coverage for the auxiliary workloads: gather-heavy SpMV
//! and the barrier-phased tree reduction, end to end with profiling.

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::ir::Value;
use hls_paraver::kernels::{reduction, spmv};
use hls_paraver::profiling::diagnose::{diagnose, Bottleneck, DiagnoseConfig};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, SimConfig};

#[test]
fn spmv_is_correct_and_latency_bound_in_sim() {
    let m = spmv::Csr::random(64, 64, 6, 5);
    let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();
    let gold = m.spmv_ref(&x);
    let kernel = spmv::build(m.rows as i64, 4);
    let acc = compile(&kernel, &HlsConfig::default());
    let sim = SimConfig::default().with_fast_launch();
    let i64v = |v: &[i64]| v.iter().map(|&x| Value::I64(x)).collect::<Vec<_>>();
    let f32v = |v: &[f32]| v.iter().map(|&x| Value::F32(x)).collect::<Vec<_>>();
    let mut unit = ProfilingUnit::new("spmv", 4, ProfilingConfig::default());
    let r = Executor::run(
        &kernel,
        &acc,
        &sim,
        &[
            LaunchArg::Buffer(i64v(&m.row_ptr)),
            LaunchArg::Buffer(i64v(&m.col_idx)),
            LaunchArg::Buffer(f32v(&m.values)),
            LaunchArg::Buffer(f32v(&x)),
            LaunchArg::Buffer(vec![Value::F32(0.0); m.rows]),
        ],
        &mut unit,
    )
    .expect("simulation failed");
    for (i, e) in gold.iter().enumerate() {
        let g = match &r.buffers[4][i] {
            Value::F32(v) => *v,
            other => other.as_f64() as f32,
        };
        assert!((g - e).abs() < 1e-4, "row {i}: {g} vs {e}");
    }
    // Gathers defeat the line buffers and vector widening: memory latency.
    let trace = unit.finish();
    let d = diagnose(&trace, &r.stats, &sim, &DiagnoseConfig::default());
    assert_eq!(d.bottleneck, Bottleneck::MemoryLatency, "{d:?}");
}

#[test]
fn tree_reduction_synchronizes_every_phase() {
    let n = 256usize;
    let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
    let kernel = reduction::build(n as i64, 4);
    let acc = compile(&kernel, &HlsConfig::default());
    let sim = SimConfig::default().with_fast_launch();
    let r = Executor::run(
        &kernel,
        &acc,
        &sim,
        &[LaunchArg::Buffer(
            data.iter().map(|&x| Value::F32(x)).collect(),
        )],
        &mut hls_paraver::sim::NullSnoop,
    )
    .expect("simulation failed");
    let got = match &r.buffers[0][0] {
        Value::F32(v) => *v,
        other => other.as_f64() as f32,
    };
    assert_eq!(got, reduction::reference(&data), "bitwise-identical order");
    // All threads finish within one barrier's reach of each other: the final
    // phases serialize everyone.
    let ends: Vec<u64> = r.stats.per_thread.iter().map(|t| t.end_cycle).collect();
    let spread = ends.iter().max().unwrap() - ends.iter().min().unwrap();
    assert!(spread < 5_000, "barrier keeps threads together: {ends:?}");
}
