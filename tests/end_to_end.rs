//! Cross-crate integration tests: the full pipeline (builder → HLS compile →
//! cycle-level simulation with the profiling unit → trace decode → Paraver
//! round-trip → analysis) and its conservation invariants.

use hls_paraver::hls::accel::{compile, HlsConfig};
use hls_paraver::ir::interp::{Interpreter, LaunchArg as GoldArg};
use hls_paraver::ir::Value;
use hls_paraver::kernels::gemm::{build, GemmParams, GemmVersion};
use hls_paraver::kernels::pi::{self, PiParams};
use hls_paraver::kernels::reference;
use hls_paraver::paraver::analysis::{event_total, find_critical_overlap, StateProfile};
use hls_paraver::paraver::{events, states};
use hls_paraver::profiling::{ProfilingConfig, ProfilingUnit, TraceData};
use hls_paraver::sim::memimg::LaunchArg;
use hls_paraver::sim::{Executor, RunResult, SimConfig};

fn small() -> GemmParams {
    GemmParams {
        dim: 16,
        threads: 2,
        vec: 4,
        block: 8,
    }
}

fn vals(m: &[f32]) -> Vec<Value> {
    m.iter().map(|&x| Value::F32(x)).collect()
}

fn run_gemm_profiled(v: GemmVersion, p: &GemmParams, period: u64) -> (RunResult, TraceData) {
    let kernel = build(v, p);
    let acc = compile(&kernel, &HlsConfig::default());
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    let mut unit = ProfilingUnit::new(
        &kernel.name,
        p.threads,
        ProfilingConfig {
            sampling_period: period,
            ..Default::default()
        },
    );
    let r = Executor::run(
        &kernel,
        &acc,
        &SimConfig::default().with_fast_launch(),
        &[
            LaunchArg::Buffer(vals(&a)),
            LaunchArg::Buffer(vals(&b)),
            LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
        ],
        &mut unit,
    )
    .expect("simulation failed");
    (r, unit.finish())
}

/// The simulator's functional results must match the gold interpreter and
/// the CPU reference for every GEMM version.
#[test]
fn simulator_matches_gold_and_reference() {
    let p = small();
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    let gold_c = reference::gemm(&a, &b, d);
    for v in GemmVersion::ALL {
        let (r, _) = run_gemm_profiled(v, &p, 1_000);
        for (i, e) in gold_c.iter().enumerate() {
            let g = match &r.buffers[2][i] {
                Value::F32(x) => *x,
                other => other.as_f64() as f32,
            };
            assert!(
                (g - e).abs() < 1e-3 * e.abs().max(1.0),
                "{v:?} at {i}: {g} vs {e}"
            );
        }
    }
}

/// Conservation: the flops recorded in the decoded Paraver trace must equal
/// the simulator's ground-truth counters and the gold interpreter's count.
#[test]
fn trace_flops_are_conserved() {
    let p = small();
    let (r, trace) = run_gemm_profiled(GemmVersion::NoCritical, &p, 500);
    let trace_flops = event_total(&trace.records, events::FLOPS);
    assert_eq!(trace_flops, r.stats.total_flops(), "trace vs sim counters");
    // Gold model agrees.
    let kernel = build(GemmVersion::NoCritical, &p);
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    let gold = Interpreter::run(
        &kernel,
        &[
            GoldArg::Buffer(vals(&a)),
            GoldArg::Buffer(vals(&b)),
            GoldArg::Buffer(vec![Value::F32(0.0); d * d]),
        ],
    );
    assert_eq!(trace_flops, gold.ops.flops, "trace vs gold model");
}

/// Conservation: traced request bytes equal the simulator's byte counters.
#[test]
fn trace_bytes_are_conserved() {
    let p = small();
    for v in [GemmVersion::Vectorized, GemmVersion::DoubleBuffered] {
        let (r, trace) = run_gemm_profiled(v, &p, 500);
        assert_eq!(
            event_total(&trace.records, events::BYTES_READ),
            r.stats.total(|t| t.bytes_read),
            "{v:?} read bytes"
        );
        assert_eq!(
            event_total(&trace.records, events::BYTES_WRITTEN),
            r.stats.total(|t| t.bytes_written),
            "{v:?} written bytes"
        );
    }
}

/// Every thread's state intervals must tile [0, duration) exactly — no gaps,
/// no overlaps (the decoder closes what the recorder opened).
#[test]
fn states_partition_the_run() {
    let p = small();
    let (_, trace) = run_gemm_profiled(GemmVersion::Naive, &p, 1_000);
    for t in 0..p.threads {
        let mut intervals: Vec<(u64, u64)> = trace
            .records
            .iter()
            .filter_map(|rec| match rec {
                hls_paraver::paraver::Record::State {
                    thread, begin, end, ..
                } if *thread == t => Some((*begin, *end)),
                _ => None,
            })
            .collect();
        intervals.sort_unstable();
        assert_eq!(intervals.first().map(|i| i.0), Some(0), "thread {t} start");
        assert_eq!(
            intervals.last().map(|i| i.1),
            Some(trace.meta.duration),
            "thread {t} end"
        );
        for w in intervals.windows(2) {
            assert_eq!(w[0].1, w[1].0, "thread {t}: gap or overlap at {w:?}");
        }
    }
}

/// Mutual exclusion is visible in the trace: no two Critical intervals
/// overlap, ever (the invariant behind Fig. 6's zoom).
#[test]
fn critical_sections_never_overlap_in_trace() {
    let p = GemmParams {
        dim: 16,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let (_, trace) = run_gemm_profiled(GemmVersion::Naive, &p, 500);
    assert_eq!(
        find_critical_overlap(&trace.records, states::CRITICAL),
        None
    );
    // And the naive version does spend time in Critical and Spinning.
    let prof = StateProfile::compute(&trace.records, p.threads);
    assert!(prof.fraction(states::CRITICAL) > 0.0);
    assert!(prof.fraction(states::SPINNING) > 0.0);
}

/// Write the full `.prv`/`.pcf`/`.row` bundle and parse it back: records and
/// metadata survive the round trip.
#[test]
fn prv_bundle_round_trips() {
    let p = small();
    let (_, trace) = run_gemm_profiled(GemmVersion::Blocked, &p, 1_000);
    let dir = std::env::temp_dir().join("hls_paraver_test_bundle");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("roundtrip");
    trace.write_bundle(&stem).unwrap();
    let text = std::fs::read_to_string(stem.with_extension("prv")).unwrap();
    let (meta, parsed) = hls_paraver::paraver::parse::parse_prv(&text).unwrap();
    assert_eq!(meta.duration, trace.meta.duration);
    assert_eq!(meta.num_threads, trace.meta.num_threads);
    let mut expect = trace.records.clone();
    expect.sort_by_key(|r| r.sort_time());
    assert_eq!(parsed.len(), expect.len());
    assert_eq!(parsed, expect);
    // The .pcf declares our states; the .row matches the thread count.
    let pcf = std::fs::read_to_string(stem.with_extension("pcf")).unwrap();
    assert!(pcf.contains("Spinning"));
    let row = std::fs::read_to_string(stem.with_extension("row")).unwrap();
    assert_eq!(
        hls_paraver::paraver::row::parse_thread_count(&row),
        Some(p.threads)
    );
}

/// Request bandwidth can never exceed the DRAM interface's theoretical peak.
#[test]
fn bandwidth_below_peak() {
    let p = small();
    let sim = SimConfig::default().with_fast_launch();
    for v in GemmVersion::ALL {
        let (r, _) = run_gemm_profiled(v, &p, 1_000);
        let peak = sim.dram_bytes_per_cycle as f64 * sim.clock_hz() / 1e9;
        assert!(
            r.throughput_gbps(&sim) < peak,
            "{v:?}: {} exceeds peak {peak}",
            r.throughput_gbps(&sim)
        );
    }
}

/// The π kernel end to end: value, flop accounting, and the launch ramp.
#[test]
fn pi_end_to_end() {
    let p = PiParams {
        steps: 64_000,
        threads: 4,
        bs: 8,
    };
    let kernel = pi::build(&p);
    let acc = compile(&kernel, &HlsConfig::default());
    let (step, spt) = pi::launch_scalars(&p);
    let sim = SimConfig {
        launch_interval: 30_000,
        ..Default::default()
    };
    let mut unit = ProfilingUnit::new(&kernel.name, p.threads, ProfilingConfig::default());
    let r = Executor::run(
        &kernel,
        &acc,
        &sim,
        &[
            LaunchArg::Scalar(Value::F32(step)),
            LaunchArg::Scalar(Value::I64(spt)),
            LaunchArg::Buffer(vec![Value::F32(0.0)]),
        ],
        &mut unit,
    )
    .expect("simulation failed");
    let trace = unit.finish();
    let est = match &r.buffers[2][0] {
        Value::F32(x) => x * step,
        _ => unreachable!(),
    };
    assert!((est - std::f32::consts::PI).abs() < 1e-2, "pi = {est}");
    // Ramp: thread i starts at i × launch_interval, visible as Idle time.
    let prof = StateProfile::compute(&trace.records, p.threads);
    let idle3 = prof.per_thread[3].get(&states::IDLE).copied().unwrap_or(0);
    assert!(
        idle3 >= 3 * sim.launch_interval,
        "last thread idles through the ramp: {idle3}"
    );
    // Flops counted in the trace match the analytic count (6/iter) up to
    // the final reduction slack.
    let traced = event_total(&trace.records, events::FLOPS);
    let expected = p.steps * reference::PI_FLOPS_PER_ITER;
    assert!(traced >= expected && traced < expected + 1_000, "{traced}");
}

/// Disabling profiling changes nothing about execution (same cycles, same
/// results) — the unit only observes.
#[test]
fn profiling_is_observation_only() {
    let p = small();
    let kernel = build(GemmVersion::Vectorized, &p);
    let acc = compile(&kernel, &HlsConfig::default());
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    let mk = || {
        vec![
            LaunchArg::Buffer(vals(&a)),
            LaunchArg::Buffer(vals(&b)),
            LaunchArg::Buffer(vec![Value::F32(0.0); d * d]),
        ]
    };
    let sim = SimConfig::default().with_fast_launch();
    let mut unit = ProfilingUnit::new(&kernel.name, p.threads, ProfilingConfig::default());
    let with = Executor::run(&kernel, &acc, &sim, &mk(), &mut unit).expect("simulation failed");
    let without = Executor::run(&kernel, &acc, &sim, &mk(), &mut hls_paraver::sim::NullSnoop)
        .expect("simulation failed");
    assert_eq!(with.total_cycles, without.total_cycles);
    assert_eq!(with.buffers[2], without.buffers[2]);
}
