//! External DRAM channel model with per-port line buffers.
//!
//! All hardware-thread Avalon masters (and the preloader) share one DRAM
//! channel. A request occupies the channel for `bytes / bytes_per_cycle`
//! cycles (its bandwidth cost) and its target bank for a little longer
//! (precharge); the response returns after the channel slot plus the access
//! latency. This produces the two first-order phenomena the paper's traces
//! show: *latency-bound* pointer-chasing style access (naive GEMM column
//! reads) and *bandwidth-bound* contention when eight threads stream.
//!
//! Each (thread, buffer) pair owns a one-line read buffer, modelling the
//! small per-operator caches Nymble puts in front of its memory ports
//! ("(cached) memory accesses", §III-B): sequential scalar reads hit the
//! buffered line, strided reads miss every time — which is why the paper's
//! *Partial Vectorization* and *Blocked* steps change the memory picture so
//! dramatically.

use crate::config::SimConfig;

/// Aggregate DRAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Line fetches served (misses in the port line buffers).
    pub line_fetches: u64,
    /// Bytes moved over the channel (lines + writes + bursts).
    pub channel_bytes: u64,
    /// Requests that found the channel busy (queueing happened).
    pub contended: u64,
    /// Total read requests seen (hits + misses).
    pub read_requests: u64,
    /// Read requests served from a port line buffer.
    pub line_hits: u64,
}

/// Shared DRAM channel.
pub struct Dram {
    latency: u64,
    bytes_per_cycle: u32,
    line_bytes: u32,
    banks: Vec<u64>,
    bank_busy: u64,
    channel_free: u64,
    bank_hash: bool,
    /// Preloader DMA channel frontiers, one per hardware-thread master
    /// (the preloader serves each thread's Avalon master independently;
    /// bursts of one thread serialize, different threads' bursts only
    /// contend for bandwidth).
    dma_free: Vec<u64>,
    dma_setup: u64,
    pub stats: DramStats,
}

impl Dram {
    /// Build from the simulator configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Dram {
            latency: cfg.dram_latency,
            bytes_per_cycle: cfg.dram_bytes_per_cycle,
            line_bytes: cfg.dram_line_bytes,
            banks: vec![0; cfg.dram_banks.max(1) as usize],
            bank_busy: cfg.dram_bank_busy,
            channel_free: 0,
            bank_hash: cfg.dram_bank_hash,
            dma_free: Vec::new(),
            dma_setup: cfg.dma_setup,
            stats: DramStats::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Transfer `bytes` starting at absolute address `addr`, issued at cycle
    /// `t`. Returns the completion time (when the last beat of data is
    /// available at the requester). Writes are posted — callers may ignore
    /// the completion time — but still occupy channel bandwidth.
    pub fn transfer(&mut self, t: u64, addr: u64, bytes: u32, _is_write: bool) -> u64 {
        let occupancy = (bytes.max(1)).div_ceil(self.bytes_per_cycle) as u64;
        // XOR-folded bank hashing, as DDR controllers do to spread
        // power-of-2 strides (a row-major matrix column walk would
        // otherwise hammer a single bank). Disable via config to see why.
        let line = addr / self.line_bytes as u64;
        let hashed = if self.bank_hash {
            line ^ (line >> 4) ^ (line >> 9)
        } else {
            line
        };
        let bank = (hashed % self.banks.len() as u64) as usize;
        let earliest = self.channel_free.max(self.banks[bank]);
        if earliest > t {
            self.stats.contended += 1;
        }
        let start = t.max(earliest);
        self.channel_free = start + occupancy;
        self.banks[bank] = start + occupancy + self.bank_busy;
        self.stats.channel_bytes += bytes as u64;
        start + occupancy + self.latency
    }

    /// Execute a preloader burst on `master`'s DMA channel. The engine runs
    /// bursts back to back (descriptor queue), independent of when the
    /// requesting thread issued the descriptor; each burst pays a setup cost
    /// (row activation for the strided tile row) plus channel occupancy.
    /// Returns completion time.
    pub fn dma_transfer(&mut self, master: usize, t: u64, _addr: u64, bytes: u32) -> u64 {
        if master >= self.dma_free.len() {
            self.dma_free.resize(master + 1, 0);
        }
        let occupancy = (bytes.max(1)).div_ceil(self.bytes_per_cycle) as u64;
        let start = t.max(self.dma_free[master]);
        self.dma_free[master] = start + self.dma_setup + occupancy;
        self.stats.channel_bytes += bytes as u64;
        self.dma_free[master] + self.latency
    }

    /// Fetch the line containing `addr` (a read miss). Returns completion.
    pub fn fetch_line(&mut self, t: u64, addr: u64) -> u64 {
        self.stats.line_fetches += 1;
        let line_addr = addr / self.line_bytes as u64 * self.line_bytes as u64;
        self.transfer(t, line_addr, self.line_bytes, false)
    }
}

/// One-line read buffer in front of a (thread, buffer) port pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineBuffer {
    line_addr: u64,
    valid: bool,
    /// When the line currently being fetched becomes usable.
    ready_at: u64,
}

impl LineBuffer {
    /// Service a read of `bytes` at absolute `addr` issued at `t`. Returns
    /// `(data_ready_time, hit)`. Reads spanning multiple lines fetch each.
    pub fn read(&mut self, dram: &mut Dram, t: u64, addr: u64, bytes: u32) -> (u64, bool) {
        dram.stats.read_requests += 1;
        let lb = dram.line_bytes() as u64;
        let first = addr / lb;
        let last = (addr + bytes.max(1) as u64 - 1) / lb;
        if self.valid && first == last && first == self.line_addr {
            dram.stats.line_hits += 1;
            return (t.max(self.ready_at), true);
        }
        let mut done = t;
        for line in first..=last {
            done = done.max(dram.fetch_line(t, line * lb));
        }
        self.line_addr = last;
        self.valid = true;
        self.ready_at = done;
        (done, false)
    }

    /// Invalidate (e.g. after the buffer's backing store was rewritten).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            dram_latency: 50,
            dram_bytes_per_cycle: 64,
            dram_line_bytes: 64,
            dram_banks: 4,
            dram_bank_busy: 8,
            ..Default::default()
        }
    }

    #[test]
    fn transfer_latency_and_occupancy() {
        let mut d = Dram::new(&cfg());
        // 64 B transfer: 1 cycle occupancy + 50 latency.
        assert_eq!(d.transfer(100, 0, 64, false), 151);
        // Channel now busy until 101; immediate second request (different
        // bank) queues behind the channel.
        let t2 = d.transfer(100, 64, 64, false);
        assert_eq!(t2, 152);
        assert_eq!(d.stats.contended, 1);
    }

    #[test]
    fn burst_occupies_proportionally() {
        let mut d = Dram::new(&cfg());
        // 1 KiB burst = 16 channel cycles.
        assert_eq!(d.transfer(0, 0, 1024, false), 16 + 50);
        assert_eq!(d.stats.channel_bytes, 1024);
    }

    #[test]
    fn bank_conflict_delays_same_bank() {
        let mut d = Dram::new(&cfg());
        let _ = d.transfer(0, 0, 64, false); // bank 0 busy until 1+8
        let t = d.transfer(1, 4 * 64, 64, false); // same bank (4 banks)
        assert!(t > 1 + 1 + 50, "bank precharge must delay: {t}");
        // A different bank issued at the same point only queues on the
        // channel, which frees earlier than the busy bank.
        let mut d2 = Dram::new(&cfg());
        let _ = d2.transfer(0, 0, 64, false);
        let t2 = d2.transfer(1, 64, 64, false); // bank 1
        assert!(t2 < t, "different bank {t2} must beat same bank {t}");
    }

    #[test]
    fn line_buffer_hits_sequential_misses_strided() {
        let mut d = Dram::new(&cfg());
        let mut lbuf = LineBuffer::default();
        let (t1, hit1) = lbuf.read(&mut d, 0, 0, 4);
        assert!(!hit1);
        let (t2, hit2) = lbuf.read(&mut d, t1, 4, 4);
        assert!(hit2, "same line");
        assert_eq!(t2, t1);
        let (_, hit3) = lbuf.read(&mut d, t2, 4096, 4);
        assert!(!hit3, "new line");
        assert_eq!(d.stats.line_fetches, 2);
        assert_eq!(d.stats.line_hits, 1);
        assert_eq!(d.stats.read_requests, 3);
    }

    #[test]
    fn wide_read_spanning_lines_fetches_both() {
        let mut d = Dram::new(&cfg());
        let mut lbuf = LineBuffer::default();
        let (_, hit) = lbuf.read(&mut d, 0, 60, 16); // crosses 64 B boundary
        assert!(!hit);
        assert_eq!(d.stats.line_fetches, 2);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut d = Dram::new(&cfg());
        let mut lbuf = LineBuffer::default();
        let _ = lbuf.read(&mut d, 0, 0, 4);
        lbuf.invalidate();
        let (_, hit) = lbuf.read(&mut d, 100, 0, 4);
        assert!(!hit);
    }
}
