//! Typed simulation errors.
//!
//! The executor used to `panic!` on a deadlock, which aborted an entire
//! multi-run sweep when one configuration was broken. Deadlocks and invalid
//! configurations are now ordinary values a batch scheduler can report per
//! run and keep going.
//!
//! Deadlock reports are deterministic — blocked threads are sorted by thread
//! id — and actionable: each entry names the resource the thread is parked
//! on (who holds the semaphore and how many waiters are ahead, or how many
//! threads the barrier has collected out of the live set).

use std::fmt;

/// Why a blocked thread cannot make progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockedReason {
    /// Queued on the hardware semaphore (inside a `critical` acquire).
    SemaphoreWait {
        /// Thread currently holding the semaphore, if any. `None` only in
        /// pathological states (a report taken mid-release).
        holder: Option<u32>,
        /// Number of waiters queued ahead of this thread.
        queued_ahead: u32,
    },
    /// Arrived at the barrier, waiting for the remaining threads.
    AtBarrier {
        /// Threads that have reached the barrier so far (including this one).
        arrived: u32,
        /// Live (non-finished) threads the barrier is waiting for in total.
        expected: u32,
    },
}

impl fmt::Display for BlockedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedReason::SemaphoreWait {
                holder,
                queued_ahead,
            } => {
                match holder {
                    Some(h) => write!(f, "waiting on semaphore held by thread {h}")?,
                    None => write!(f, "waiting on semaphore (unheld)")?,
                }
                if *queued_ahead > 0 {
                    write!(f, ", {queued_ahead} ahead in queue")?;
                }
                Ok(())
            }
            BlockedReason::AtBarrier { arrived, expected } => {
                write!(f, "waiting at barrier ({arrived}/{expected} arrived)")
            }
        }
    }
}

/// One thread of a deadlocked run: who is stuck, where, and since when.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedThread {
    /// Hardware thread id.
    pub thread: u32,
    /// The thread's local clock when it blocked.
    pub at_cycle: u64,
    /// What the thread is blocked on.
    pub reason: BlockedReason,
}

impl fmt::Display for BlockedThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread {} {} since cycle {}",
            self.thread, self.reason, self.at_cycle
        )
    }
}

/// Terminal failure of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No runnable thread remains but the run is not complete: every live
    /// thread is queued on the semaphore or parked at the barrier.
    Deadlock {
        /// The blocked thread set with their barrier/lock states, sorted by
        /// thread id.
        waiting: Vec<BlockedThread>,
    },
    /// The [`crate::SimConfig`] failed [`crate::SimConfig::validate`].
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { waiting } => {
                write!(f, "simulator deadlock: no runnable thread (")?;
                for (i, b) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulator configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_names_every_blocked_thread() {
        let e = SimError::Deadlock {
            waiting: vec![
                BlockedThread {
                    thread: 1,
                    at_cycle: 10,
                    reason: BlockedReason::SemaphoreWait {
                        holder: Some(0),
                        queued_ahead: 2,
                    },
                },
                BlockedThread {
                    thread: 3,
                    at_cycle: 40,
                    reason: BlockedReason::AtBarrier {
                        arrived: 1,
                        expected: 4,
                    },
                },
            ],
        };
        let s = e.to_string();
        assert!(
            s.contains(
                "thread 1 waiting on semaphore held by thread 0, 2 ahead in queue since cycle 10"
            ),
            "{s}"
        );
        assert!(
            s.contains("thread 3 waiting at barrier (1/4 arrived) since cycle 40"),
            "{s}"
        );
    }

    #[test]
    fn semaphore_wait_with_empty_queue_reads_cleanly() {
        let r = BlockedReason::SemaphoreWait {
            holder: Some(2),
            queued_ahead: 0,
        };
        assert_eq!(r.to_string(), "waiting on semaphore held by thread 2");
    }

    #[test]
    fn invalid_config_display() {
        let e = SimError::InvalidConfig("seq_issue_width must be nonzero".into());
        assert!(e.to_string().contains("seq_issue_width"));
    }
}
