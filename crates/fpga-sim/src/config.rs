//! Simulator configuration.

use crate::error::SimError;

/// Timing parameters of the simulated platform (defaults approximate the
/// paper's Intel D5005 PAC: Stratix 10, four DDR4 banks behind a 512-bit
/// Avalon interconnect, accelerator clock in the 140–150 MHz band).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Accelerator clock in MHz (the paper's designs close timing at
    /// 140–148 MHz; used only to convert cycles to seconds/GB/s/GFLOP/s).
    pub clock_mhz: f64,
    /// DRAM access latency in cycles (request to first data).
    pub dram_latency: u64,
    /// DRAM channel payload per cycle in bytes (512-bit interface = 64 B).
    pub dram_bytes_per_cycle: u32,
    /// DRAM burst/line granularity in bytes; every miss fetches a full line.
    pub dram_line_bytes: u32,
    /// Number of interleaved banks (a second request to a busy bank waits).
    pub dram_banks: u32,
    /// Extra busy time a bank holds after serving a line (precharge).
    pub dram_bank_busy: u64,
    /// Cycles between successive hardware-thread starts performed by host
    /// software (§V-D: "the overhead of starting the individual threads by
    /// the software causes the earliest threads to be finished before last
    /// ones are even started").
    pub launch_interval: u64,
    /// Semaphore acquire round trip over the Avalon bus, in cycles.
    pub sem_acquire_latency: u64,
    /// Semaphore release cost in cycles.
    pub sem_release_latency: u64,
    /// Re-poll interval while spinning on a held semaphore.
    pub spin_retry_interval: u64,
    /// Barrier release latency once the last thread arrives.
    pub barrier_latency: u64,
    /// Issue width for sequential (non-pipelined) statement execution.
    pub seq_issue_width: u32,
    /// Fixed cost per sequential statement (control overhead).
    pub stmt_base_cost: u64,
    /// Preloader DMA descriptor issue cost, in cycles.
    pub burst_issue_cost: u64,
    /// Scheduler-assumed minimum external-load latency (must match the
    /// `ExtLoad` operator latency used at schedule time).
    pub assumed_load_latency: u64,
    /// Per-burst setup cost of the preloader DMA engine (descriptor fetch
    /// plus DRAM row activation for the strided row), in cycles.
    pub dma_setup: u64,
    /// XOR-fold the DRAM bank index (real controllers do; disabling it
    /// shows why: power-of-2 strides collapse onto one bank). Ablation knob.
    pub dram_bank_hash: bool,
    /// Per-(thread, buffer) one-line read buffers in front of the ports
    /// (Nymble's "(cached) memory accesses"). Ablation knob.
    pub line_buffers: bool,
    /// Outstanding line fetches one thread's read port sustains (Avalon
    /// pipelined-read depth / MSHRs). Bounds intra-thread memory-level
    /// parallelism: the reason the paper's *Partial Vectorization* gains
    /// ~2× rather than the full 4× of its width.
    pub port_mshrs: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clock_mhz: 148.0,
            dram_latency: 48,
            dram_bytes_per_cycle: 64,
            dram_line_bytes: 64,
            dram_banks: 16,
            dram_bank_busy: 16,
            launch_interval: 880_000,
            sem_acquire_latency: 12,
            sem_release_latency: 4,
            spin_retry_interval: 16,
            barrier_latency: 8,
            seq_issue_width: 4,
            stmt_base_cost: 1,
            burst_issue_cost: 4,
            dma_setup: 12,
            assumed_load_latency: 8,
            dram_bank_hash: true,
            line_buffers: true,
            port_mshrs: 2,
        }
    }
}

impl SimConfig {
    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Convert a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz()
    }

    /// A configuration with negligible host launch overhead, for experiments
    /// where the problem has been scaled down relative to the paper's (the
    /// fixed software cost would otherwise dominate artificially).
    pub fn with_fast_launch(mut self) -> Self {
        self.launch_interval = 200;
        self
    }

    /// Check the configuration before a run starts.
    ///
    /// The executor used to paper over a zero `seq_issue_width` with a
    /// silent `.max(1)` clamp; a zero there (or in any of the capacities
    /// below) is a misconfiguration, not a request for the minimum, so it is
    /// rejected up front. `launch_interval == 0` stays legal — it means all
    /// threads start together.
    pub fn validate(&self) -> Result<(), SimError> {
        fn nonzero(value: u64, name: &str) -> Result<(), SimError> {
            if value == 0 {
                return Err(SimError::InvalidConfig(format!(
                    "{name} must be nonzero (use 1 for the minimum, not 0)"
                )));
            }
            Ok(())
        }
        if !(self.clock_mhz.is_finite() && self.clock_mhz > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "clock_mhz must be a positive finite frequency, got {}",
                self.clock_mhz
            )));
        }
        nonzero(self.seq_issue_width as u64, "seq_issue_width")?;
        nonzero(self.port_mshrs as u64, "port_mshrs")?;
        nonzero(self.dram_bytes_per_cycle as u64, "dram_bytes_per_cycle")?;
        nonzero(self.dram_line_bytes as u64, "dram_line_bytes")?;
        nonzero(self.dram_banks as u64, "dram_banks")?;
        // A zero re-poll interval would re-grant the semaphore to the same
        // releasing thread's timestamp forever (a livelock in the model).
        nonzero(self.spin_retry_interval, "spin_retry_interval")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = SimConfig::default();
        assert!(c.clock_mhz > 0.0);
        assert_eq!(c.dram_bytes_per_cycle, 64, "512-bit interface");
        assert!(c.assumed_load_latency < c.dram_latency);
    }

    #[test]
    fn validate_accepts_defaults_and_zero_launch_interval() {
        assert!(SimConfig::default().validate().is_ok());
        let together = SimConfig {
            launch_interval: 0,
            ..Default::default()
        };
        assert!(together.validate().is_ok(), "0 = all threads start at once");
    }

    #[test]
    fn validate_rejects_zero_capacities() {
        for (name, cfg) in [
            (
                "seq_issue_width",
                SimConfig {
                    seq_issue_width: 0,
                    ..Default::default()
                },
            ),
            (
                "port_mshrs",
                SimConfig {
                    port_mshrs: 0,
                    ..Default::default()
                },
            ),
            (
                "dram_bytes_per_cycle",
                SimConfig {
                    dram_bytes_per_cycle: 0,
                    ..Default::default()
                },
            ),
            (
                "dram_line_bytes",
                SimConfig {
                    dram_line_bytes: 0,
                    ..Default::default()
                },
            ),
            (
                "dram_banks",
                SimConfig {
                    dram_banks: 0,
                    ..Default::default()
                },
            ),
            (
                "spin_retry_interval",
                SimConfig {
                    spin_retry_interval: 0,
                    ..Default::default()
                },
            ),
        ] {
            let err = cfg.validate().expect_err(name);
            assert!(err.to_string().contains(name), "{name}: {err}");
        }
        let bad_clock = SimConfig {
            clock_mhz: 0.0,
            ..Default::default()
        };
        assert!(bad_clock.validate().is_err());
        let nan_clock = SimConfig {
            clock_mhz: f64::NAN,
            ..Default::default()
        };
        assert!(nan_clock.validate().is_err());
    }

    #[test]
    fn unit_conversion() {
        let c = SimConfig {
            clock_mhz: 100.0,
            ..Default::default()
        };
        assert!((c.cycles_to_seconds(100_000_000) - 1.0).abs() < 1e-12);
    }
}
