//! Hardware semaphore model (the block on the Avalon bus in Fig. 1 that
//! implements OpenMP `critical` / `barrier`).
//!
//! Grants are FIFO: a spinning thread's next poll after the release wins, in
//! arrival order. The model exposes explicit timestamps so the executor can
//! emit exact Spinning→Critical transitions for the Paraver state machine
//! (Fig. 2).

use std::collections::VecDeque;

/// Outcome of an acquire attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquire {
    /// Lock granted; the thread holds it from the returned cycle.
    Granted(u64),
    /// Lock held by another thread; the caller is queued and will be granted
    /// later via [`Semaphore::release`]'s return value.
    Queued,
}

/// FIFO hardware semaphore.
#[derive(Clone, Debug, Default)]
pub struct Semaphore {
    owner: Option<u32>,
    waiters: VecDeque<(u32, u64)>,
    /// Total cycles threads spent queued (spin-time statistic).
    pub total_spin_cycles: u64,
    /// Number of acquisitions granted.
    pub acquisitions: u64,
    /// Number of acquisitions that had to spin first.
    pub contended: u64,
}

impl Semaphore {
    /// Thread `tid` tries to acquire at cycle `t` (after its bus round
    /// trip). Either granted immediately or queued.
    pub fn acquire(&mut self, tid: u32, t: u64) -> Acquire {
        if self.owner.is_none() {
            self.owner = Some(tid);
            self.acquisitions += 1;
            Acquire::Granted(t)
        } else {
            debug_assert!(
                self.owner != Some(tid),
                "thread {tid} re-acquiring a non-reentrant semaphore"
            );
            self.waiters.push_back((tid, t));
            self.contended += 1;
            Acquire::Queued
        }
    }

    /// Thread `tid` releases at cycle `t`. Returns the next grant, if any:
    /// `(thread, grant_time)` — the executor moves that thread from its
    /// Spinning state into Critical at `grant_time`.
    ///
    /// `grant_gap` is the spin-poll granularity: the winner observes the free
    /// semaphore on its next poll.
    pub fn release(&mut self, tid: u32, t: u64, grant_gap: u64) -> Option<(u32, u64)> {
        assert_eq!(self.owner, Some(tid), "release by non-owner thread {tid}");
        self.owner = None;
        if let Some((next, since)) = self.waiters.pop_front() {
            let grant = t + grant_gap;
            self.total_spin_cycles += grant.saturating_sub(since);
            self.owner = Some(next);
            self.acquisitions += 1;
            Some((next, grant))
        } else {
            None
        }
    }

    /// Current owner, if held.
    pub fn owner(&self) -> Option<u32> {
        self.owner
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// FIFO position of a queued thread (0 = granted next), or `None` if
    /// `tid` is not waiting.
    pub fn queue_position(&self, tid: u32) -> Option<usize> {
        self.waiters.iter().position(|&(w, _)| w == tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_order_is_fifo() {
        let mut s = Semaphore::default();
        assert_eq!(s.acquire(0, 10), Acquire::Granted(10));
        assert_eq!(s.acquire(1, 12), Acquire::Queued);
        assert_eq!(s.acquire(2, 13), Acquire::Queued);
        let (n1, g1) = s.release(0, 20, 2).unwrap();
        assert_eq!((n1, g1), (1, 22));
        assert_eq!(s.owner(), Some(1));
        let (n2, g2) = s.release(1, 30, 2).unwrap();
        assert_eq!((n2, g2), (2, 32));
        assert!(s.release(2, 40, 2).is_none());
        assert_eq!(s.owner(), None);
        assert_eq!(s.acquisitions, 3);
        assert_eq!(s.contended, 2);
        // Spin cycles: thread 1 waited 12→22, thread 2 waited 13→32.
        assert_eq!(s.total_spin_cycles, 10 + 19);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn release_by_non_owner_panics() {
        let mut s = Semaphore::default();
        let _ = s.acquire(0, 0);
        let _ = s.release(1, 5, 1);
    }
}
