//! External-memory image: functional buffer contents plus a base-address
//! layout so accesses have absolute DRAM addresses for the bank model.

use nymble_ir::walker::DataMemory;
use nymble_ir::{ArgId, ArgKind, Kernel, Type, Value};

/// Launch value for one kernel argument (same shape as the gold
/// interpreter's, re-declared here to keep crate dependencies one-way).
#[derive(Clone, Debug)]
pub enum LaunchArg {
    Scalar(Value),
    Buffer(Vec<Value>),
}

/// Functional memory image with a flat address layout: buffers are placed
/// back to back, each aligned to 4 KiB (how the OpenMP runtime's device
/// allocator would place them in the FPGA board DRAM).
pub struct MemImage {
    bufs: Vec<Vec<Value>>,
    base: Vec<u64>,
    elem_size: Vec<u32>,
}

impl MemImage {
    /// Lay out the buffers of `launch` according to `kernel`'s signature and
    /// return the image plus the scalar-argument vector for walkers.
    pub fn new(kernel: &Kernel, launch: &[LaunchArg]) -> (Self, Vec<Value>) {
        assert_eq!(
            launch.len(),
            kernel.args.len(),
            "one launch argument per kernel argument"
        );
        let mut bufs = Vec::with_capacity(launch.len());
        let mut base = Vec::with_capacity(launch.len());
        let mut elem_size = Vec::with_capacity(launch.len());
        let mut scalars = Vec::with_capacity(launch.len());
        let mut cursor = 0u64;
        const ALIGN: u64 = 4096;
        for (arg, la) in kernel.args.iter().zip(launch) {
            match (&arg.kind, la) {
                (ArgKind::Scalar(_), LaunchArg::Scalar(v)) => {
                    scalars.push(v.clone());
                    bufs.push(Vec::new());
                    base.push(cursor);
                    elem_size.push(0);
                }
                (ArgKind::Buffer { elem, .. }, LaunchArg::Buffer(b)) => {
                    scalars.push(Value::I32(0));
                    base.push(cursor);
                    elem_size.push(elem.size_bytes());
                    cursor +=
                        (b.len() as u64 * elem.size_bytes() as u64).div_ceil(ALIGN) * ALIGN + ALIGN;
                    bufs.push(b.clone());
                }
                _ => panic!("launch argument kind mismatch for `{}`", arg.name),
            }
        }
        (
            MemImage {
                bufs,
                base,
                elem_size,
            },
            scalars,
        )
    }

    /// Absolute DRAM byte address of `buf`'s byte offset.
    pub fn abs_addr(&self, buf: ArgId, byte_off: u64) -> u64 {
        self.base[buf.0 as usize] + byte_off
    }

    /// Final buffer contents (for result read-back).
    pub fn into_buffers(self) -> Vec<Vec<Value>> {
        self.bufs
    }

    /// Borrow a buffer's contents.
    pub fn buffer(&self, buf: ArgId) -> &[Value] {
        &self.bufs[buf.0 as usize]
    }

    /// Element size in bytes of a buffer argument.
    pub fn elem_size(&self, buf: ArgId) -> u32 {
        self.elem_size[buf.0 as usize]
    }
}

impl DataMemory for MemImage {
    fn load_ext(&mut self, buf: ArgId, elem_idx: u64, ty: Type) -> Value {
        let b = &self.bufs[buf.0 as usize];
        let i = elem_idx as usize;
        assert!(
            i + (ty.lanes.max(1) as usize - 1) < b.len(),
            "device load out of bounds: buffer {:?} len {} index {} lanes {}",
            buf,
            b.len(),
            i,
            ty.lanes
        );
        if ty.lanes <= 1 {
            b[i].clone()
        } else {
            let lanes: Vec<Value> = (0..ty.lanes as usize).map(|l| b[i + l].clone()).collect();
            Value::Vec(lanes.into_boxed_slice())
        }
    }

    fn store_ext(&mut self, buf: ArgId, elem_idx: u64, v: Value) {
        let b = &mut self.bufs[buf.0 as usize];
        let i = elem_idx as usize;
        match v {
            Value::Vec(lanes) => {
                assert!(
                    i + lanes.len() <= b.len(),
                    "device vector store out of bounds"
                );
                for (l, lv) in lanes.iter().enumerate() {
                    b[i + l] = lv.clone();
                }
            }
            s => {
                assert!(i < b.len(), "device store out of bounds");
                b[i] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType};

    #[test]
    fn layout_is_aligned_and_disjoint() {
        let mut kb = KernelBuilder::new("t", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let b = kb.buffer("B", ScalarType::F32, MapDir::To);
        let n = kb.scalar_arg("N", ScalarType::I64);
        let _ = n;
        let k = kb.finish();
        let (img, scalars) = MemImage::new(
            &k,
            &[
                LaunchArg::Buffer(vec![Value::F32(0.0); 100]),
                LaunchArg::Buffer(vec![Value::F32(0.0); 100]),
                LaunchArg::Scalar(Value::I64(100)),
            ],
        );
        assert_eq!(scalars[2], Value::I64(100));
        let a0 = img.abs_addr(a, 0);
        let b0 = img.abs_addr(b, 0);
        assert_eq!(a0 % 4096, 0);
        assert_eq!(b0 % 4096, 0);
        assert!(b0 >= a0 + 400, "buffers must not overlap");
        assert_eq!(img.elem_size(a), 4);
    }

    #[test]
    fn functional_roundtrip() {
        let mut kb = KernelBuilder::new("t", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::ToFrom);
        let k = kb.finish();
        let (mut img, _) = MemImage::new(&k, &[LaunchArg::Buffer(vec![Value::F32(0.0); 8])]);
        img.store_ext(a, 3, Value::F32(7.5));
        assert_eq!(img.load_ext(a, 3, Type::F32), Value::F32(7.5));
        let v = img.load_ext(a, 2, Type::vector(ScalarType::F32, 2));
        assert_eq!(v.lane(1), &Value::F32(7.5));
    }
}
