//! Host↔device data-transfer model.
//!
//! §III-A: the OpenMP frontend replaced Nymble's old pessimistic
//! copy-everything behaviour — `map` clauses "allow users to clearly specify
//! which and how data has to be transferred, avoiding unnecessary costly
//! data transfers between CPU and FPGA memories". This module prices those
//! transfers (PCIe-class DMA into the board DRAM of Fig. 1) so the end-to-end
//! cost of a launch — not just the kernel cycles — can be compared across
//! `map` strategies.

use crate::config::SimConfig;
use nymble_ir::{ArgKind, Kernel, MapDir};

/// Host-interface timing parameters.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Host→device DMA bandwidth in bytes per accelerator cycle
    /// (PCIe Gen3 x16 ≈ 12 GB/s ≈ 81 B/cycle at 148 MHz).
    pub h2d_bytes_per_cycle: f64,
    /// Device→host DMA bandwidth in bytes per accelerator cycle.
    pub d2h_bytes_per_cycle: f64,
    /// Fixed setup cost per DMA transfer, in cycles (driver + doorbell).
    pub dma_setup_cycles: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            h2d_bytes_per_cycle: 80.0,
            d2h_bytes_per_cycle: 80.0,
            dma_setup_cycles: 20_000,
        }
    }
}

/// Cycle cost of the data movement a launch implies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferCost {
    /// Host→device cycles before the kernel can start.
    pub h2d_cycles: u64,
    /// Device→host cycles after the kernel finishes.
    pub d2h_cycles: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
}

impl TransferCost {
    /// Total transfer cycles around the kernel.
    pub fn total_cycles(&self) -> u64 {
        self.h2d_cycles + self.d2h_cycles
    }
}

/// Price the transfers implied by a kernel's `map` clauses for the given
/// buffer sizes (`buffer_lens[i]` = element count of argument `i`; scalar
/// argument slots are ignored — they ride in the launch descriptor).
pub fn transfer_cost(kernel: &Kernel, buffer_lens: &[usize], cfg: &HostConfig) -> TransferCost {
    assert_eq!(buffer_lens.len(), kernel.args.len());
    let mut cost = TransferCost::default();
    let (mut h2d_transfers, mut d2h_transfers) = (0u64, 0u64);
    for (arg, &len) in kernel.args.iter().zip(buffer_lens) {
        let ArgKind::Buffer { elem, map } = arg.kind else {
            continue;
        };
        let bytes = len as u64 * elem.size_bytes() as u64;
        match map {
            MapDir::To => {
                cost.h2d_bytes += bytes;
                h2d_transfers += 1;
            }
            MapDir::From => {
                cost.d2h_bytes += bytes;
                d2h_transfers += 1;
            }
            MapDir::ToFrom => {
                cost.h2d_bytes += bytes;
                cost.d2h_bytes += bytes;
                h2d_transfers += 1;
                d2h_transfers += 1;
            }
            MapDir::Alloc => {}
        }
    }
    cost.h2d_cycles = h2d_transfers * cfg.dma_setup_cycles
        + (cost.h2d_bytes as f64 / cfg.h2d_bytes_per_cycle).ceil() as u64;
    cost.d2h_cycles = d2h_transfers * cfg.dma_setup_cycles
        + (cost.d2h_bytes as f64 / cfg.d2h_bytes_per_cycle).ceil() as u64;
    cost
}

/// End-to-end launch cost: transfers + thread-start ramp + kernel cycles.
pub fn end_to_end_cycles(kernel_cycles: u64, transfers: &TransferCost, _sim: &SimConfig) -> u64 {
    transfers.h2d_cycles + kernel_cycles + transfers.d2h_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, ScalarType};

    fn kernel_with_maps() -> Kernel {
        let mut kb = KernelBuilder::new("maps", 1);
        let _to = kb.buffer("A", ScalarType::F32, MapDir::To);
        let _from = kb.buffer("C", ScalarType::F32, MapDir::From);
        let _both = kb.buffer("S", ScalarType::F32, MapDir::ToFrom);
        let _scratch = kb.buffer("T", ScalarType::F32, MapDir::Alloc);
        let _n = kb.scalar_arg("N", ScalarType::I64);
        kb.finish()
    }

    #[test]
    fn map_directions_price_correctly() {
        let k = kernel_with_maps();
        let cfg = HostConfig {
            h2d_bytes_per_cycle: 4.0,
            d2h_bytes_per_cycle: 2.0,
            dma_setup_cycles: 100,
        };
        // 1000 f32 each = 4000 bytes.
        let c = transfer_cost(&k, &[1000, 1000, 1000, 1000, 0], &cfg);
        assert_eq!(c.h2d_bytes, 8000, "to + tofrom");
        assert_eq!(c.d2h_bytes, 8000, "from + tofrom");
        assert_eq!(c.h2d_cycles, 2 * 100 + 2000);
        assert_eq!(c.d2h_cycles, 2 * 100 + 4000);
        assert_eq!(c.total_cycles(), c.h2d_cycles + c.d2h_cycles);
    }

    #[test]
    fn alloc_buffers_are_free() {
        let mut kb = KernelBuilder::new("scratch", 1);
        let _s = kb.buffer("S", ScalarType::F64, MapDir::Alloc);
        let k = kb.finish();
        let c = transfer_cost(&k, &[1_000_000], &HostConfig::default());
        assert_eq!(c.total_cycles(), 0);
        assert_eq!(c.h2d_bytes + c.d2h_bytes, 0);
    }

    #[test]
    fn pessimistic_tofrom_costs_double() {
        // The §III-A motivation: the old compiler "pessimistically assum[ed]
        // that all data had to be transferred to the FPGA and back".
        let lens = [4096usize, 4096, 4096];
        let precise = {
            let mut kb = KernelBuilder::new("precise", 1);
            let _a = kb.buffer("A", ScalarType::F32, MapDir::To);
            let _b = kb.buffer("B", ScalarType::F32, MapDir::To);
            let _c = kb.buffer("C", ScalarType::F32, MapDir::From);
            kb.finish()
        };
        let pessimistic = {
            let mut kb = KernelBuilder::new("pessimistic", 1);
            let _a = kb.buffer("A", ScalarType::F32, MapDir::ToFrom);
            let _b = kb.buffer("B", ScalarType::F32, MapDir::ToFrom);
            let _c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
            kb.finish()
        };
        let cfg = HostConfig::default();
        let p = transfer_cost(&precise, &lens, &cfg);
        let q = transfer_cost(&pessimistic, &lens, &cfg);
        assert!(q.total_cycles() > p.total_cycles());
        assert_eq!(q.h2d_bytes, 3 * 4096 * 4);
        assert_eq!(p.h2d_bytes, 2 * 4096 * 4);
        assert_eq!(q.d2h_bytes, 3 * 4096 * 4);
        assert_eq!(p.d2h_bytes, 4096 * 4);
    }

    #[test]
    fn end_to_end_sums() {
        let t = TransferCost {
            h2d_cycles: 100,
            d2h_cycles: 50,
            h2d_bytes: 0,
            d2h_bytes: 0,
        };
        assert_eq!(end_to_end_cycles(1000, &t, &SimConfig::default()), 1150);
    }
}
