//! Indexed ready queue for the discrete-event core.
//!
//! [`ReadyQueue`] is a binary min-heap over `(wakeup_time, thread_id)` with a
//! per-thread position index. The executor keeps exactly the `Ready` threads
//! in the queue; dispatch pops the lexicographic minimum, which reproduces
//! the historical scan `min_by_key(|(i, t)| (t.time, i))` *bit-for-bit*: ties
//! on time resolve to the lowest thread id in both.
//!
//! The position index makes membership O(1) and removal O(log n), which the
//! `cfg(test)` legacy reference stepper uses to stay coherent while it picks
//! threads by scanning instead of popping.
//!
//! Invariant relied upon by the executor: a queued thread's wakeup time is
//! never mutated while it is in the queue (only the dispatched thread and
//! woken *blocked* threads change time), so no decrease-key is needed.

/// The contract between the executor and its dispatch queue.
///
/// Both the binary-heap [`ReadyQueue`] and the timing-wheel
/// [`WheelQueue`](crate::wheel::WheelQueue) implement it, and the executor's
/// [`SimRun`](crate::SimRun) is generic over it, so the two cores share one
/// dispatch loop and can be differential-tested against each other.
///
/// Semantics every implementation must preserve *bit-for-bit*:
///
/// * `pop`/`peek` yield the lexicographically smallest `(time, tid)` — ties
///   on time resolve to the lowest thread id (the historical scan order);
/// * a queued thread's time is never mutated in place (no decrease-key);
/// * `push` times never precede the last popped time — the executor only
///   schedules wakeups at or after the event that computes them. Heap
///   implementations don't care; calendar implementations rely on it.
pub trait DispatchQueue {
    /// Empty queue sized for `num_threads` threads.
    fn new(num_threads: usize) -> Self
    where
        Self: Sized;
    /// Number of queued threads.
    fn len(&self) -> usize;
    /// True when no thread is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether `tid` is currently queued.
    fn contains(&self, tid: u32) -> bool;
    /// Queue `tid` with wakeup time `time` (at most once per thread).
    fn push(&mut self, time: u64, tid: u32);
    /// Smallest `(time, tid)` without removing it.
    fn peek(&self) -> Option<(u64, u32)>;
    /// Remove and return the smallest `(time, tid)`.
    fn pop(&mut self) -> Option<(u64, u32)>;
    /// Remove `tid` wherever it sits; returns its queued time if present.
    fn remove(&mut self, tid: u32) -> Option<u64>;
}

/// Binary min-heap of `(time, thread)` keys with a thread-position index.
#[derive(Clone, Debug)]
pub struct ReadyQueue {
    heap: Vec<(u64, u32)>,
    /// `pos[tid]` = slot in `heap` + 1; 0 = not queued.
    pos: Vec<u32>,
}

impl ReadyQueue {
    /// Empty queue sized for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        ReadyQueue {
            heap: Vec::with_capacity(num_threads),
            pos: vec![0; num_threads],
        }
    }

    /// Number of queued threads.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no thread is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `tid` is currently queued.
    pub fn contains(&self, tid: u32) -> bool {
        self.pos[tid as usize] != 0
    }

    /// Queue `tid` with wakeup time `time`.
    ///
    /// # Panics
    /// Panics (debug) if `tid` is already queued — the executor guarantees
    /// each thread is queued at most once.
    pub fn push(&mut self, time: u64, tid: u32) {
        debug_assert!(!self.contains(tid), "thread {tid} queued twice");
        let slot = self.heap.len();
        self.heap.push((time, tid));
        self.pos[tid as usize] = slot as u32 + 1;
        self.sift_up(slot);
    }

    /// Smallest `(time, tid)` without removing it.
    pub fn peek(&self) -> Option<(u64, u32)> {
        self.heap.first().copied()
    }

    /// Remove and return the smallest `(time, tid)`.
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        let min = *self.heap.first()?;
        self.remove_slot(0);
        Some(min)
    }

    /// Remove `tid` wherever it sits; returns its queued time, or `None` if
    /// it was not queued.
    pub fn remove(&mut self, tid: u32) -> Option<u64> {
        let slot = self.pos[tid as usize];
        if slot == 0 {
            return None;
        }
        let slot = slot as usize - 1;
        let time = self.heap[slot].0;
        self.remove_slot(slot);
        Some(time)
    }

    fn remove_slot(&mut self, slot: usize) {
        let (_, tid) = self.heap[slot];
        self.pos[tid as usize] = 0;
        let last = self.heap.len() - 1;
        if slot == last {
            self.heap.pop();
            return;
        }
        self.heap.swap(slot, last);
        self.heap.pop();
        let moved = self.heap[slot].1;
        self.pos[moved as usize] = slot as u32 + 1;
        // The moved element may need to travel either direction. If sift_up
        // moves it, the heap property already holds below its new slot, so
        // the subsequent sift_down is a no-op.
        self.sift_up(slot);
        self.sift_down(self.pos[moved as usize] as usize - 1);
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.heap[parent] <= self.heap[slot] {
                break;
            }
            self.swap_slots(parent, slot);
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let l = 2 * slot + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let smallest = if r < self.heap.len() && self.heap[r] < self.heap[l] {
                r
            } else {
                l
            };
            if self.heap[slot] <= self.heap[smallest] {
                break;
            }
            self.swap_slots(slot, smallest);
            slot = smallest;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32 + 1;
        self.pos[self.heap[b].1 as usize] = b as u32 + 1;
    }
}

impl DispatchQueue for ReadyQueue {
    fn new(num_threads: usize) -> Self {
        ReadyQueue::new(num_threads)
    }
    fn len(&self) -> usize {
        ReadyQueue::len(self)
    }
    fn contains(&self, tid: u32) -> bool {
        ReadyQueue::contains(self, tid)
    }
    fn push(&mut self, time: u64, tid: u32) {
        ReadyQueue::push(self, time, tid)
    }
    fn peek(&self) -> Option<(u64, u32)> {
        ReadyQueue::peek(self)
    }
    fn pop(&mut self) -> Option<(u64, u32)> {
        ReadyQueue::pop(self)
    }
    fn remove(&mut self, tid: u32) -> Option<u64> {
        ReadyQueue::remove(self, tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = ReadyQueue::new(4);
        q.push(30, 0);
        q.push(10, 1);
        q.push(20, 2);
        q.push(15, 3);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_resolve_to_lowest_thread_id() {
        // Must match the historical scan's `min_by_key((time, index))`.
        let mut q = ReadyQueue::new(4);
        q.push(5, 3);
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 0);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn contains_and_remove_track_membership() {
        let mut q = ReadyQueue::new(8);
        for t in 0..8 {
            q.push(100 - t as u64, t);
        }
        assert!(q.contains(5));
        assert_eq!(q.remove(5), Some(95));
        assert!(!q.contains(5));
        assert_eq!(q.remove(5), None);
        assert_eq!(q.len(), 7);
        // Remaining order is still correct after the mid-heap removal.
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t).collect();
        assert_eq!(order, vec![7, 6, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn remove_then_repush_is_allowed() {
        let mut q = ReadyQueue::new(2);
        q.push(10, 0);
        q.push(20, 1);
        assert_eq!(q.remove(0), Some(10));
        q.push(30, 0);
        assert_eq!(q.pop(), Some((20, 1)));
        assert_eq!(q.pop(), Some((30, 0)));
    }

    #[test]
    fn middle_removal_sifts_up_and_repush_keeps_the_index_coherent() {
        // Removing a mid-heap leaf swaps the *last* element into its slot;
        // when that element is smaller than the slot's parent it must sift
        // *up*, and every position-index entry touched on the way must be
        // rewritten — a stale entry would corrupt any later remove/push of
        // the moved thread.
        let mut q = ReadyQueue::new(7);
        for (t, tid) in [
            (10, 0),
            (40, 1),
            (20, 2),
            (50, 3),
            (60, 4),
            (30, 5),
            (25, 6),
        ] {
            q.push(t, tid);
        }
        // tid 3 sits mid-heap; the last element (25, 6) lands in its slot
        // and must travel up past its parent (40, 1).
        assert_eq!(q.remove(3), Some(50));
        assert!(!q.contains(3));
        assert_eq!(q.len(), 6);
        // Re-pushing the removed thread with a new, smaller time must
        // slot it by the new key, not any remembered position.
        q.push(15, 3);
        assert!(q.contains(3));
        assert_eq!(q.len(), 7);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((15, 3)));
        // The thread displaced by the sift_up is still removable by id.
        assert_eq!(q.remove(1), Some(40));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(20, 2), (25, 6), (30, 5), (60, 4)]);
    }

    #[test]
    fn matches_scan_under_random_churn() {
        // Deterministic LCG; compare the heap against a naive sorted scan.
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        let n = 16u32;
        let mut q = ReadyQueue::new(n as usize);
        let mut model: Vec<Option<u64>> = vec![None; n as usize];
        for _ in 0..2_000 {
            let tid = (next() % n as u64) as u32;
            match model[tid as usize] {
                None => {
                    let t = next() % 1_000;
                    q.push(t, tid);
                    model[tid as usize] = Some(t);
                }
                Some(t) => {
                    if next() % 2 == 0 {
                        assert_eq!(q.remove(tid), Some(t));
                        model[tid as usize] = None;
                    } else {
                        let want = model
                            .iter()
                            .enumerate()
                            .filter_map(|(i, t)| t.map(|t| (t, i as u32)))
                            .min();
                        assert_eq!(q.peek(), want);
                        let (pt, ptid) = q.pop().unwrap();
                        assert_eq!(Some((pt, ptid)), want);
                        model[ptid as usize] = None;
                    }
                }
            }
        }
    }
}
