//! The pipeline snoop interface.
//!
//! The paper's profiling unit "is integrated into the generated datapath and
//! directly hooks-into and snoops all compute pipelines" (§IV-B). In this
//! reproduction the executor plays the datapath and the [`Snoop`] trait is
//! the set of wires the profiling unit taps:
//!
//! * per-thread state transitions (Idle/Running/Spinning/Critical, Fig. 2),
//! * stall cycles (control-signal snooping, §IV-B.2a),
//! * retired integer/floating-point operations per stage activation
//!   (§IV-B.2b),
//! * read/write request bytes at the central Avalon interface (§IV-B.2c).

use serde::{Deserialize, Serialize};

/// Hardware-thread execution state, mirroring the Paraver state ids of
/// `paraver::states`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadState {
    /// No context loaded / context finished.
    Idle,
    /// Executing.
    Running,
    /// Spinning on the hardware semaphore.
    Spinning,
    /// Inside a critical section.
    Critical,
}

impl ThreadState {
    /// 2-bit hardware encoding (§IV-B.1: "00 for idle, 01 for running, 10
    /// for critical, and 11 for spinning").
    pub const fn encode(self) -> u8 {
        match self {
            ThreadState::Idle => 0b00,
            ThreadState::Running => 0b01,
            ThreadState::Critical => 0b10,
            ThreadState::Spinning => 0b11,
        }
    }

    /// Decode the 2-bit hardware encoding.
    pub const fn decode(bits: u8) -> ThreadState {
        match bits & 0b11 {
            0b00 => ThreadState::Idle,
            0b01 => ThreadState::Running,
            0b10 => ThreadState::Critical,
            _ => ThreadState::Spinning,
        }
    }

    /// Paraver state id (matches `paraver::states`).
    pub const fn paraver_state(self) -> u32 {
        match self {
            ThreadState::Idle => 0,
            ThreadState::Running => 1,
            ThreadState::Critical => 2,
            ThreadState::Spinning => 3,
        }
    }
}

/// Observer interface the profiling unit implements.
pub trait Snoop {
    /// Thread `tid` transitions to `state` at cycle `t`.
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState);
    /// Thread `tid` stalled for `cycles` ending at cycle `t`.
    fn stall(&mut self, t: u64, tid: u32, cycles: u64);
    /// Thread `tid` retired operations at cycle `t`.
    fn ops(&mut self, t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64);
    /// Thread `tid` issued a read request of `bytes` at cycle `t`
    /// (request bytes at the Avalon interface, not DRAM line traffic).
    fn mem_read(&mut self, t: u64, tid: u32, bytes: u64);
    /// Thread `tid` issued a write request of `bytes` at cycle `t`.
    fn mem_write(&mut self, t: u64, tid: u32, bytes: u64);
    /// The run completed at cycle `t` (flush point for trace buffers).
    fn run_end(&mut self, t: u64);
}

/// A snoop that observes nothing — simulating an accelerator built without
/// the profiling infrastructure (the baseline of the §V-B overhead study).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSnoop;

impl Snoop for NullSnoop {
    fn state_change(&mut self, _t: u64, _tid: u32, _state: ThreadState) {}
    fn stall(&mut self, _t: u64, _tid: u32, _cycles: u64) {}
    fn ops(&mut self, _t: u64, _tid: u32, _int: u64, _fl: u64, _lo: u64) {}
    fn mem_read(&mut self, _t: u64, _tid: u32, _bytes: u64) {}
    fn mem_write(&mut self, _t: u64, _tid: u32, _bytes: u64) {}
    fn run_end(&mut self, _t: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_paper() {
        assert_eq!(ThreadState::Idle.encode(), 0b00);
        assert_eq!(ThreadState::Running.encode(), 0b01);
        assert_eq!(ThreadState::Critical.encode(), 0b10);
        assert_eq!(ThreadState::Spinning.encode(), 0b11);
        for s in [
            ThreadState::Idle,
            ThreadState::Running,
            ThreadState::Critical,
            ThreadState::Spinning,
        ] {
            assert_eq!(ThreadState::decode(s.encode()), s);
        }
    }

    #[test]
    fn paraver_ids_align() {
        assert_eq!(ThreadState::Idle.paraver_state(), 0);
        assert_eq!(ThreadState::Running.paraver_state(), 1);
        assert_eq!(ThreadState::Critical.paraver_state(), 2);
        assert_eq!(ThreadState::Spinning.paraver_state(), 3);
    }
}
