//! The pipeline snoop interface.
//!
//! The paper's profiling unit "is integrated into the generated datapath and
//! directly hooks-into and snoops all compute pipelines" (§IV-B). In this
//! reproduction the executor plays the datapath and the [`Snoop`] trait is
//! the set of wires the profiling unit taps:
//!
//! * per-thread state transitions (Idle/Running/Spinning/Critical, Fig. 2),
//! * stall cycles (control-signal snooping, §IV-B.2a),
//! * retired integer/floating-point operations per stage activation
//!   (§IV-B.2b),
//! * read/write request bytes at the central Avalon interface (§IV-B.2c).

use crate::stats::ThreadStats;

/// Hardware-thread execution state, mirroring the Paraver state ids of
/// `paraver::states`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// No context loaded / context finished.
    Idle,
    /// Executing.
    Running,
    /// Spinning on the hardware semaphore.
    Spinning,
    /// Inside a critical section.
    Critical,
}

impl ThreadState {
    /// 2-bit hardware encoding (§IV-B.1: "00 for idle, 01 for running, 10
    /// for critical, and 11 for spinning").
    pub const fn encode(self) -> u8 {
        match self {
            ThreadState::Idle => 0b00,
            ThreadState::Running => 0b01,
            ThreadState::Critical => 0b10,
            ThreadState::Spinning => 0b11,
        }
    }

    /// Decode the 2-bit hardware encoding.
    pub const fn decode(bits: u8) -> ThreadState {
        match bits & 0b11 {
            0b00 => ThreadState::Idle,
            0b01 => ThreadState::Running,
            0b10 => ThreadState::Critical,
            _ => ThreadState::Spinning,
        }
    }

    /// Paraver state id (matches `paraver::states`).
    pub const fn paraver_state(self) -> u32 {
        match self {
            ThreadState::Idle => 0,
            ThreadState::Running => 1,
            ThreadState::Critical => 2,
            ThreadState::Spinning => 3,
        }
    }
}

/// Observer interface the profiling unit implements.
///
/// Every method defaults to a no-op, so observers only implement the wires
/// they actually tap. Multiple observers attach to one datapath through
/// [`SnoopMux`]; the executor's own ground-truth statistics are themselves
/// just an observer ([`StatsSnoop`]).
pub trait Snoop {
    /// Thread `tid` transitions to `state` at cycle `t`.
    fn state_change(&mut self, _t: u64, _tid: u32, _state: ThreadState) {}
    /// Thread `tid` stalled for `cycles` ending at cycle `t`.
    fn stall(&mut self, _t: u64, _tid: u32, _cycles: u64) {}
    /// Thread `tid` retired operations at cycle `t`.
    fn ops(&mut self, _t: u64, _tid: u32, _int_ops: u64, _flops: u64, _local_ops: u64) {}
    /// Thread `tid` issued a read request of `bytes` at cycle `t`
    /// (request bytes at the Avalon interface, not DRAM line traffic).
    fn mem_read(&mut self, _t: u64, _tid: u32, _bytes: u64) {}
    /// Thread `tid` issued a write request of `bytes` at cycle `t`.
    fn mem_write(&mut self, _t: u64, _tid: u32, _bytes: u64) {}
    /// Thread `tid` completed one loop iteration at cycle `t` (the loop
    /// controller's continue signal).
    fn iteration(&mut self, _t: u64, _tid: u32) {}
    /// The run completed at cycle `t` (flush point for trace buffers).
    fn run_end(&mut self, _t: u64) {}
}

/// A snoop that observes nothing — simulating an accelerator built without
/// the profiling infrastructure (the baseline of the §V-B overhead study).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSnoop;

impl Snoop for NullSnoop {}

/// One buffered signal record (everything except `run_end`, which is a
/// flush point and always delivered immediately).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Buffered {
    State(u64, u32, ThreadState),
    Stall(u64, u32, u64),
    Ops(u64, u32, u64, u64, u64),
    Read(u64, u32, u64),
    Write(u64, u32, u64),
    Iter(u64, u32),
}

impl Buffered {
    /// Deliver this record to `tap`.
    fn replay(self, tap: &mut dyn Snoop) {
        match self {
            Buffered::State(t, tid, s) => tap.state_change(t, tid, s),
            Buffered::Stall(t, tid, c) => tap.stall(t, tid, c),
            Buffered::Ops(t, tid, i, f, l) => tap.ops(t, tid, i, f, l),
            Buffered::Read(t, tid, b) => tap.mem_read(t, tid, b),
            Buffered::Write(t, tid, b) => tap.mem_write(t, tid, b),
            Buffered::Iter(t, tid) => tap.iteration(t, tid),
        }
    }
}

/// Default ring capacity: large enough to amortize a flush over thousands
/// of signals, small enough (~40 KiB) to stay cache- and latency-friendly
/// for streaming trace consumers.
const RING_CAPACITY: usize = 4096;

/// Fan-out multiplexer: one datapath, many observers.
///
/// Broadcasts every snooped signal to each tap in order. This is how the
/// executor attaches its internal [`StatsSnoop`] alongside the caller's
/// profiling unit without either knowing about the other.
///
/// [`SnoopMux::buffered`] batches emission through a flushable ring buffer:
/// signals are recorded (one enum store, no virtual dispatch) and replayed
/// *tap-major* when the ring fills — each tap consumes the whole batch in
/// one pass, so the per-signal virtual-call and cache-miss cost of fanning
/// out to N observers is paid once per batch per tap instead of N times per
/// signal. Per-tap signal order is exactly the unbuffered order, so
/// downstream consumers (trace encoders, statistics) see identical streams.
pub struct SnoopMux<'a> {
    taps: Vec<&'a mut dyn Snoop>,
    ring: Vec<Buffered>,
    /// 0 = unbuffered (fan out immediately).
    capacity: usize,
}

impl<'a> SnoopMux<'a> {
    /// Build an unbuffered mux over `taps` (signals fan out in the given
    /// order, immediately).
    pub fn new(taps: Vec<&'a mut dyn Snoop>) -> Self {
        SnoopMux {
            taps,
            ring: Vec::new(),
            capacity: 0,
        }
    }

    /// Build a buffered mux: signals queue in a ring of `capacity` records
    /// and fan out tap-major on [`SnoopMux::flush`], when the ring fills,
    /// at `run_end`, and on drop.
    pub fn buffered(taps: Vec<&'a mut dyn Snoop>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SnoopMux {
            taps,
            ring: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Drain the ring: replay every buffered signal to each tap in order.
    pub fn flush(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        for tap in &mut self.taps {
            for sig in &self.ring {
                sig.replay(*tap);
            }
        }
        self.ring.clear();
    }

    fn emit(&mut self, sig: Buffered) {
        if self.capacity == 0 {
            for tap in &mut self.taps {
                sig.replay(*tap);
            }
        } else {
            self.ring.push(sig);
            if self.ring.len() >= self.capacity {
                self.flush();
            }
        }
    }
}

impl Drop for SnoopMux<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Snoop for SnoopMux<'_> {
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState) {
        self.emit(Buffered::State(t, tid, state));
    }
    fn stall(&mut self, t: u64, tid: u32, cycles: u64) {
        self.emit(Buffered::Stall(t, tid, cycles));
    }
    fn ops(&mut self, t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        self.emit(Buffered::Ops(t, tid, int_ops, flops, local_ops));
    }
    fn mem_read(&mut self, t: u64, tid: u32, bytes: u64) {
        self.emit(Buffered::Read(t, tid, bytes));
    }
    fn mem_write(&mut self, t: u64, tid: u32, bytes: u64) {
        self.emit(Buffered::Write(t, tid, bytes));
    }
    fn iteration(&mut self, t: u64, tid: u32) {
        self.emit(Buffered::Iter(t, tid));
    }
    fn run_end(&mut self, t: u64) {
        self.flush();
        for s in &mut self.taps {
            s.run_end(t);
        }
    }
}

/// Single-tap ring buffer: batches the executor's signals in front of one
/// virtually-dispatched observer.
///
/// The executor's hot path pairs its statically-dispatched [`StatsSnoop`]
/// with the caller's `&mut dyn Snoop`; this adapter moves the virtual call
/// off the per-signal path — each signal is one enum store into the ring,
/// and the dyn tap consumes batches of `RING_CAPACITY` (4096) on flush. Signal
/// order is preserved exactly, so the tap's output is byte-identical to
/// unbuffered delivery. Flushes when full, at `run_end`, on
/// [`SnoopRing::flush`], and on drop (so an aborted run still delivers
/// everything observed before the error).
pub struct SnoopRing<'a> {
    tap: &'a mut dyn Snoop,
    ring: Vec<Buffered>,
    capacity: usize,
}

impl<'a> SnoopRing<'a> {
    /// Ring of the default capacity in front of `tap`.
    pub fn new(tap: &'a mut dyn Snoop) -> Self {
        Self::with_capacity(tap, RING_CAPACITY)
    }

    /// Ring of `capacity` records (min 1) in front of `tap`.
    pub fn with_capacity(tap: &'a mut dyn Snoop, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SnoopRing {
            tap,
            ring: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Drain the ring into the tap.
    pub fn flush(&mut self) {
        for sig in self.ring.drain(..) {
            sig.replay(self.tap);
        }
    }

    #[inline]
    fn emit(&mut self, sig: Buffered) {
        self.ring.push(sig);
        if self.ring.len() >= self.capacity {
            self.flush();
        }
    }
}

impl Drop for SnoopRing<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Snoop for SnoopRing<'_> {
    #[inline]
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState) {
        self.emit(Buffered::State(t, tid, state));
    }
    #[inline]
    fn stall(&mut self, t: u64, tid: u32, cycles: u64) {
        self.emit(Buffered::Stall(t, tid, cycles));
    }
    #[inline]
    fn ops(&mut self, t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        self.emit(Buffered::Ops(t, tid, int_ops, flops, local_ops));
    }
    #[inline]
    fn mem_read(&mut self, t: u64, tid: u32, bytes: u64) {
        self.emit(Buffered::Read(t, tid, bytes));
    }
    #[inline]
    fn mem_write(&mut self, t: u64, tid: u32, bytes: u64) {
        self.emit(Buffered::Write(t, tid, bytes));
    }
    #[inline]
    fn iteration(&mut self, t: u64, tid: u32) {
        self.emit(Buffered::Iter(t, tid));
    }
    fn run_end(&mut self, t: u64) {
        self.flush();
        self.tap.run_end(t);
    }
}

/// Statically-dispatched two-way fan-out.
///
/// [`SnoopMux`] costs one virtual call per tap per signal; on the executor's
/// hot path (one `ops`/`iteration`/`mem_*` call per simulated event) that
/// indirection is measurable. `SnoopPair` monomorphizes the first tap — the
/// executor pairs its own [`StatsSnoop`] with the caller's observer, so the
/// statistics derivation inlines into the dispatch loop.
pub struct SnoopPair<'a, A: Snoop, B: Snoop + ?Sized> {
    first: &'a mut A,
    second: &'a mut B,
}

impl<'a, A: Snoop, B: Snoop + ?Sized> SnoopPair<'a, A, B> {
    /// Fan out to `first` then `second` (same order as [`SnoopMux`]).
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        SnoopPair { first, second }
    }
}

impl<A: Snoop, B: Snoop + ?Sized> Snoop for SnoopPair<'_, A, B> {
    #[inline]
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState) {
        self.first.state_change(t, tid, state);
        self.second.state_change(t, tid, state);
    }
    #[inline]
    fn stall(&mut self, t: u64, tid: u32, cycles: u64) {
        self.first.stall(t, tid, cycles);
        self.second.stall(t, tid, cycles);
    }
    #[inline]
    fn ops(&mut self, t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        self.first.ops(t, tid, int_ops, flops, local_ops);
        self.second.ops(t, tid, int_ops, flops, local_ops);
    }
    #[inline]
    fn mem_read(&mut self, t: u64, tid: u32, bytes: u64) {
        self.first.mem_read(t, tid, bytes);
        self.second.mem_read(t, tid, bytes);
    }
    #[inline]
    fn mem_write(&mut self, t: u64, tid: u32, bytes: u64) {
        self.first.mem_write(t, tid, bytes);
        self.second.mem_write(t, tid, bytes);
    }
    #[inline]
    fn iteration(&mut self, t: u64, tid: u32) {
        self.first.iteration(t, tid);
        self.second.iteration(t, tid);
    }
    #[inline]
    fn run_end(&mut self, t: u64) {
        self.first.run_end(t);
        self.second.run_end(t);
    }
}

/// Derives the executor's ground-truth [`ThreadStats`] purely from the
/// snooped signal stream — the same signals the profiling unit sees.
///
/// Timing fields come from the state timeline: a thread starts at its first
/// `Running` transition, ends at its `Idle` transition, spends
/// `Spinning → Critical` deltas spinning and `Critical → Running` deltas in
/// critical sections, and enters a critical region each time it begins
/// spinning (the semaphore request is issued from the spin state even when
/// granted immediately).
#[derive(Clone, Debug)]
pub struct StatsSnoop {
    per_thread: Vec<ThreadStats>,
    /// Current (state, entered-at) per thread.
    cur: Vec<(ThreadState, u64)>,
    started: Vec<bool>,
}

impl StatsSnoop {
    /// Observer for `num_threads` hardware threads (all initially Idle at 0).
    pub fn new(num_threads: u32) -> Self {
        let n = num_threads as usize;
        StatsSnoop {
            per_thread: vec![ThreadStats::default(); n],
            cur: vec![(ThreadState::Idle, 0); n],
            started: vec![false; n],
        }
    }

    /// Largest observed end cycle — the run's total duration.
    pub fn max_end_cycle(&self) -> u64 {
        self.per_thread
            .iter()
            .map(|t| t.end_cycle)
            .max()
            .unwrap_or(0)
    }

    /// The derived per-thread statistics, indexed by thread id.
    pub fn per_thread(&self) -> &[ThreadStats] {
        &self.per_thread
    }

    /// Consume the observer, yielding the per-thread statistics.
    pub fn into_stats(self) -> Vec<ThreadStats> {
        self.per_thread
    }
}

impl Snoop for StatsSnoop {
    fn state_change(&mut self, t: u64, tid: u32, state: ThreadState) {
        let i = tid as usize;
        let (prev, since) = self.cur[i];
        if prev == state {
            return; // redundant transition (e.g. the initial Idle)
        }
        // Charge the state being left.
        match prev {
            ThreadState::Spinning => {
                self.per_thread[i].spin_cycles += t.saturating_sub(since);
            }
            ThreadState::Critical => {
                self.per_thread[i].critical_cycles += t.saturating_sub(since);
            }
            _ => {}
        }
        // Account the state being entered.
        match state {
            ThreadState::Running if !self.started[i] => {
                self.started[i] = true;
                self.per_thread[i].start_cycle = t;
            }
            ThreadState::Spinning => {
                self.per_thread[i].critical_entries += 1;
            }
            ThreadState::Idle if self.started[i] => {
                self.per_thread[i].end_cycle = t;
            }
            _ => {}
        }
        self.cur[i] = (state, t);
    }

    fn stall(&mut self, _t: u64, tid: u32, cycles: u64) {
        self.per_thread[tid as usize].stall_cycles += cycles;
    }

    fn ops(&mut self, _t: u64, tid: u32, int_ops: u64, flops: u64, local_ops: u64) {
        let s = &mut self.per_thread[tid as usize];
        s.int_ops += int_ops;
        s.flops += flops;
        s.local_ops += local_ops;
    }

    fn mem_read(&mut self, _t: u64, tid: u32, bytes: u64) {
        self.per_thread[tid as usize].bytes_read += bytes;
    }

    fn mem_write(&mut self, _t: u64, tid: u32, bytes: u64) {
        self.per_thread[tid as usize].bytes_written += bytes;
    }

    fn iteration(&mut self, _t: u64, tid: u32) {
        self.per_thread[tid as usize].iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_paper() {
        assert_eq!(ThreadState::Idle.encode(), 0b00);
        assert_eq!(ThreadState::Running.encode(), 0b01);
        assert_eq!(ThreadState::Critical.encode(), 0b10);
        assert_eq!(ThreadState::Spinning.encode(), 0b11);
        for s in [
            ThreadState::Idle,
            ThreadState::Running,
            ThreadState::Critical,
            ThreadState::Spinning,
        ] {
            assert_eq!(ThreadState::decode(s.encode()), s);
        }
    }

    #[test]
    fn paraver_ids_align() {
        assert_eq!(ThreadState::Idle.paraver_state(), 0);
        assert_eq!(ThreadState::Running.paraver_state(), 1);
        assert_eq!(ThreadState::Critical.paraver_state(), 2);
        assert_eq!(ThreadState::Spinning.paraver_state(), 3);
    }

    #[derive(Default)]
    struct CountingSnoop {
        calls: usize,
    }

    impl Snoop for CountingSnoop {
        fn state_change(&mut self, _t: u64, _tid: u32, _s: ThreadState) {
            self.calls += 1;
        }
        fn ops(&mut self, _t: u64, _tid: u32, _i: u64, _f: u64, _l: u64) {
            self.calls += 1;
        }
        fn run_end(&mut self, _t: u64) {
            self.calls += 1;
        }
    }

    #[test]
    fn mux_fans_out_to_every_tap() {
        let mut a = CountingSnoop::default();
        let mut b = CountingSnoop::default();
        {
            let mut mux = SnoopMux::new(vec![&mut a, &mut b]);
            mux.state_change(0, 0, ThreadState::Running);
            mux.ops(1, 0, 1, 2, 3);
            mux.iteration(2, 0); // default no-op on taps
            mux.run_end(10);
        }
        assert_eq!(a.calls, 3);
        assert_eq!(b.calls, 3);
    }

    #[test]
    fn stats_snoop_derives_timeline_fields() {
        let mut s = StatsSnoop::new(2);
        // Thread 0: idle(0) → running(5) → spin(20) → critical(26) →
        // running(40) → idle(100).
        s.state_change(0, 0, ThreadState::Idle); // redundant: ignored
        s.state_change(5, 0, ThreadState::Running);
        s.state_change(20, 0, ThreadState::Spinning);
        s.state_change(26, 0, ThreadState::Critical);
        s.state_change(40, 0, ThreadState::Running);
        s.stall(50, 0, 7);
        s.ops(60, 0, 1, 2, 3);
        s.mem_read(61, 0, 64);
        s.mem_write(62, 0, 32);
        s.iteration(63, 0);
        s.iteration(64, 0);
        s.state_change(100, 0, ThreadState::Idle);
        // Thread 1 never starts.
        let st = &s.per_thread()[0];
        assert_eq!(st.start_cycle, 5);
        assert_eq!(st.end_cycle, 100);
        assert_eq!(st.spin_cycles, 6);
        assert_eq!(st.critical_cycles, 14);
        assert_eq!(st.critical_entries, 1);
        assert_eq!(st.stall_cycles, 7);
        assert_eq!((st.int_ops, st.flops, st.local_ops), (1, 2, 3));
        assert_eq!((st.bytes_read, st.bytes_written), (64, 32));
        assert_eq!(st.iterations, 2);
        assert_eq!(s.per_thread()[1], ThreadStats::default());
        assert_eq!(s.max_end_cycle(), 100);
    }
}
