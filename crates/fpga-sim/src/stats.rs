//! Run statistics collected by the executor (independent of the profiling
//! unit — these are the simulator's ground truth, which the decoded Paraver
//! traces are validated against in the integration tests).

/// Per-thread counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Cycle the host started this thread.
    pub start_cycle: u64,
    /// Cycle the thread finished.
    pub end_cycle: u64,
    /// Stall cycles (VLO latency beyond the scheduled minimum).
    pub stall_cycles: u64,
    /// Cycles spent spinning on the semaphore.
    pub spin_cycles: u64,
    /// Cycles spent inside critical sections.
    pub critical_cycles: u64,
    /// Retired integer operations.
    pub int_ops: u64,
    /// Retired floating-point operations.
    pub flops: u64,
    /// Local (BRAM) operations.
    pub local_ops: u64,
    /// Read request bytes at the Avalon interface.
    pub bytes_read: u64,
    /// Write request bytes.
    pub bytes_written: u64,
    /// Critical-section entries.
    pub critical_entries: u64,
    /// Loop iterations executed (all loops).
    pub iterations: u64,
}

/// Whole-run statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    pub per_thread: Vec<ThreadStats>,
    /// DRAM model statistics.
    pub line_fetches: u64,
    pub channel_bytes: u64,
    pub dram_contended: u64,
    pub line_hits: u64,
    pub read_requests: u64,
}

impl RunStats {
    /// Sum a per-thread field over all threads.
    pub fn total(&self, f: impl Fn(&ThreadStats) -> u64) -> u64 {
        self.per_thread.iter().map(f).sum()
    }

    /// Total retired floating-point operations.
    pub fn total_flops(&self) -> u64 {
        self.total(|t| t.flops)
    }

    /// Total stall cycles.
    pub fn total_stalls(&self) -> u64 {
        self.total(|t| t.stall_cycles)
    }

    /// Total request bytes (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.total(|t| t.bytes_read + t.bytes_written)
    }

    /// Line-buffer hit rate of read requests, 0..=1.
    pub fn read_hit_rate(&self) -> f64 {
        if self.read_requests == 0 {
            return 0.0;
        }
        self.line_hits as f64 / self.read_requests as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut s = RunStats::default();
        s.per_thread.push(ThreadStats {
            flops: 10,
            stall_cycles: 3,
            bytes_read: 100,
            bytes_written: 50,
            ..Default::default()
        });
        s.per_thread.push(ThreadStats {
            flops: 32,
            stall_cycles: 4,
            ..Default::default()
        });
        assert_eq!(s.total_flops(), 42);
        assert_eq!(s.total_stalls(), 7);
        assert_eq!(s.total_bytes(), 150);
    }

    #[test]
    fn hit_rate() {
        let s = RunStats {
            read_requests: 10,
            line_hits: 9,
            ..Default::default()
        };
        assert!((s.read_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(RunStats::default().read_hit_rate(), 0.0);
    }
}
