//! Event-driven device completions: the DRAM channel, the port line-fetch
//! machinery and the preloader DMA engines as first-class event sources.
//!
//! Before this layer, a thread blocked on memory was advanced *inline*: the
//! access handler computed the completion time, bumped the thread's clock
//! and reported the stall immediately — a busy-until scalar, not an event.
//! Now the completion is a scheduled [`DeviceEvent`]: the blocking access
//! records a pending wake in [`DeviceQueue`], the thread re-enters the ready
//! queue at the completion time (mirroring the semaphore-grant and
//! barrier-release wakeup edges), and the stall signal is emitted on the
//! wakeup edge — when simulated time actually reaches the completion.
//!
//! Two observable consequences, both deliberate:
//!
//! * the snooped signal stream is chronological: a stall ending at cycle
//!   `t` appears after every other thread's signals before `t`, where the
//!   inline model emitted it early, out of global time order;
//! * completions are attributed to a device ([`DeviceStats`]), so a run can
//!   report *why* threads slept — line fetches, channel arbitration, DMA.
//!
//! A hardware thread blocks on at most one access at a time (pipelined loads
//! overlap but never block mid-iteration; their excess latency is absorbed
//! at iteration boundaries), so the queue is a per-thread pending slot; the
//! ready-queue entry at the completion time *is* the scheduled event.

/// The device completion a blocked thread is waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceEvent {
    /// A port line fetch: the full DRAM read round trip of a missed line
    /// (or the in-flight line of a hit-under-fill).
    LineFetch,
    /// A DRAM channel/bank grant: the request found the channel or its
    /// target bank busy and queued behind other masters before its fetch.
    ChannelGrant,
    /// A preloader DMA burst completing into a local memory the thread
    /// tried to read.
    DmaComplete,
}

/// Aggregate wakeup statistics per device class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Threads woken by a line-fetch completion.
    pub line_fetch_wakes: u64,
    /// Threads woken by a contended channel grant.
    pub channel_grant_wakes: u64,
    /// Threads woken by a DMA completion.
    pub dma_wakes: u64,
    /// Total cycles threads slept waiting on device completions.
    pub blocked_cycles: u64,
}

impl DeviceStats {
    /// Total wake events across all device classes.
    pub fn total_wakes(&self) -> u64 {
        self.line_fetch_wakes + self.channel_grant_wakes + self.dma_wakes
    }
}

#[derive(Clone, Copy, Debug)]
struct Wake {
    at: u64,
    kind: DeviceEvent,
    stall: u64,
}

/// Pending device-completion wakeups, one slot per hardware thread.
#[derive(Clone, Debug)]
pub struct DeviceQueue {
    pending: Vec<Option<Wake>>,
    /// Wake counts and slept cycles, by device class.
    pub stats: DeviceStats,
}

impl DeviceQueue {
    /// Empty queue for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        DeviceQueue {
            pending: vec![None; num_threads],
            stats: DeviceStats::default(),
        }
    }

    /// Schedule `kind` to wake thread `tid` at cycle `at`, ending a stall of
    /// `stall` cycles. The caller re-queues the thread at `at`; the wake
    /// fires via [`Self::take_due`] when the thread is next dispatched.
    ///
    /// # Panics
    /// Panics (debug) if the thread already has a pending wake — a thread
    /// blocks on one access at a time.
    pub fn schedule(&mut self, tid: u32, at: u64, kind: DeviceEvent, stall: u64) {
        debug_assert!(
            self.pending[tid as usize].is_none(),
            "thread {tid} blocked twice without waking"
        );
        debug_assert!(stall > 0, "zero-length stalls are not events");
        self.pending[tid as usize] = Some(Wake { at, kind, stall });
    }

    /// Fire thread `tid`'s pending wake, if any: returns the device class
    /// and the stall length to report, and accounts the statistics.
    pub fn take_due(&mut self, tid: u32, now: u64) -> Option<(DeviceEvent, u64)> {
        let w = self.pending[tid as usize].take()?;
        debug_assert!(
            now >= w.at,
            "thread {tid} dispatched at {now}, before its wake at {}",
            w.at
        );
        match w.kind {
            DeviceEvent::LineFetch => self.stats.line_fetch_wakes += 1,
            DeviceEvent::ChannelGrant => self.stats.channel_grant_wakes += 1,
            DeviceEvent::DmaComplete => self.stats.dma_wakes += 1,
        }
        self.stats.blocked_cycles += w.stall;
        Some((w.kind, w.stall))
    }

    /// Whether thread `tid` has a wake scheduled.
    pub fn has_pending(&self, tid: u32) -> bool {
        self.pending[tid as usize].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_then_take_accounts_stats() {
        let mut q = DeviceQueue::new(2);
        assert!(!q.has_pending(0));
        q.schedule(0, 100, DeviceEvent::LineFetch, 40);
        q.schedule(1, 120, DeviceEvent::DmaComplete, 60);
        assert!(q.has_pending(0));
        assert_eq!(q.take_due(0, 100), Some((DeviceEvent::LineFetch, 40)));
        assert_eq!(q.take_due(0, 101), None, "wake fires once");
        assert_eq!(q.take_due(1, 130), Some((DeviceEvent::DmaComplete, 60)));
        assert_eq!(q.stats.line_fetch_wakes, 1);
        assert_eq!(q.stats.dma_wakes, 1);
        assert_eq!(q.stats.channel_grant_wakes, 0);
        assert_eq!(q.stats.blocked_cycles, 100);
        assert_eq!(q.stats.total_wakes(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "blocked twice")]
    fn double_schedule_panics() {
        let mut q = DeviceQueue::new(1);
        q.schedule(0, 10, DeviceEvent::LineFetch, 1);
        q.schedule(0, 20, DeviceEvent::ChannelGrant, 1);
    }
}
