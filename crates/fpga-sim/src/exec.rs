//! The timed executor: drives one walker per hardware thread and attributes
//! cycle costs per the compiled schedules (see the crate docs for the model).
//!
//! The simulation core is [`SimRun`]: a pure, re-entrant value holding the
//! complete run state (threads, memory image, DRAM, semaphore), advanced one
//! walker event at a time by [`SimRun::step`]. It is `Send`, so a batch
//! scheduler can carry runs across worker threads, and it returns typed
//! [`SimError`]s instead of panicking, so one broken configuration cannot
//! abort a whole sweep. [`Executor::run`] remains the one-call driver built
//! on top of it.

use crate::config::SimConfig;
use crate::device::{DeviceEvent, DeviceQueue, DeviceStats};
use crate::dram::{Dram, LineBuffer};
use crate::error::{BlockedReason, BlockedThread, SimError};
use crate::memimg::{LaunchArg, MemImage};
use crate::queue::{DispatchQueue, ReadyQueue};
use crate::semaphore::{Acquire, Semaphore};
use crate::snoop::{Snoop, SnoopPair, SnoopRing, StatsSnoop, ThreadState};
use crate::stats::RunStats;
use crate::wheel::WheelQueue;
use nymble_hls::accel::Accelerator;
use nymble_hls::op::OpClass;
use nymble_ir::loops::{LoopId, LoopMap};
use nymble_ir::walker::{StepEvent, Walker};
use nymble_ir::{Kernel, Value};
use std::collections::VecDeque;

/// How the executor prices one loop's iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LoopMode {
    /// Pure-datapath innermost loop: iterations overlap at the initiation
    /// interval; total = `depth + (n-1)·II` plus stalls.
    Pipelined { ii: u64, depth: u64 },
    /// Contains inner regions (loops / critical sections / bursts): the
    /// outer graph pauses for them, so statements charge individually.
    Sequential,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable at `Thread::time`.
    Ready,
    /// Queued on the semaphore; woken by a grant.
    SpinWait,
    /// Arrived at the barrier.
    AtBarrier,
    /// Body complete.
    Done,
}

struct LoopCtx {
    mode: LoopMode,
    entered_first: bool,
}

struct Thread<'k> {
    walker: Walker<'k>,
    time: u64,
    status: Status,
    loops: Vec<LoopCtx>,
    read_port_free: u64,
    write_port_free: u64,
    line_bufs: Vec<LineBuffer>,
    /// Scratch line buffer for the `line_buffers = false` ablation: reused
    /// (and invalidated) per access instead of constructed per access.
    scratch_buf: LineBuffer,
    mem_ready: Vec<u64>,
    /// Outstanding line-fetch completion times on the read port (MSHRs).
    inflight: VecDeque<u64>,
    /// Worst VLO delay beyond the scheduled minimum accrued in the current
    /// pipelined-loop iteration; applied at the next iteration boundary.
    /// Loads within one iteration overlap (the stage waits for all of them),
    /// so the stall is the max, not the sum.
    iter_stall: u64,
}

impl Thread<'_> {
    fn innermost_pipelined(&self) -> Option<(u64, u64)> {
        match self.loops.last() {
            Some(LoopCtx {
                mode: LoopMode::Pipelined { ii, depth },
                ..
            }) => Some((*ii, *depth)),
            _ => None,
        }
    }
}

/// Result of a timed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final external-buffer contents (indexed like kernel arguments).
    pub buffers: Vec<Vec<Value>>,
    /// Total cycles from host start to last thread completion.
    pub total_cycles: u64,
    /// Ground-truth statistics.
    pub stats: RunStats,
}

impl RunResult {
    /// Achieved GFLOP/s at the given configuration's clock.
    pub fn gflops(&self, cfg: &SimConfig) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.stats.total_flops() as f64 / cfg.cycles_to_seconds(self.total_cycles) / 1e9
    }

    /// Mean external-memory request throughput in GB/s.
    pub fn throughput_gbps(&self, cfg: &SimConfig) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.stats.total_bytes() as f64 / cfg.cycles_to_seconds(self.total_cycles) / 1e9
    }
}

/// Outcome of one [`SimRun::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// Threads remain; call [`SimRun::step`] again.
    Running,
    /// Every thread finished; `run_end` has been reported to the snoop.
    Done,
}

/// The complete state of one in-flight simulation: a pure, re-entrant value
/// advanced by [`SimRun::step`] until [`StepStatus::Done`].
///
/// `SimRun` borrows the kernel and accelerator immutably (so one compiled
/// [`Accelerator`] can back any number of concurrent runs) and owns
/// everything mutable — the per-thread walkers, the memory image, the DRAM
/// and semaphore models. It is `Send`: a scheduler may construct it on one
/// thread and drive it on another.
///
/// The core is generic over its [`DispatchQueue`]: the default is the
/// [`WheelQueue`] calendar queue (O(1)-amortized dispatch at high thread
/// counts); `SimRun::<ReadyQueue>` is the binary-heap core, retained for
/// A/B benchmarking and differential testing. Both produce bit-identical
/// snoop streams — the queue only decides *how* the next `(time, tid)`
/// minimum is found, never *which* thread it is.
pub struct SimRun<'k, Q: DispatchQueue = WheelQueue> {
    cfg: SimConfig,
    modes: Vec<LoopMode>,
    mem: MemImage,
    dram: Dram,
    sem: Semaphore,
    devices: DeviceQueue,
    threads: Vec<Thread<'k>>,
    /// The discrete-event ready queue: holds exactly the `Ready` threads,
    /// keyed by `(wakeup_time, thread_id)`.
    ready: Q,
    /// Run-ahead slot: the thread just dispatched, held out of the queue
    /// while it remains the global `(time, tid)` minimum (see
    /// [`SimRun::step`]). Never set by `step_baseline`/`step_legacy`.
    current: Option<u32>,
    barrier_arrivals: Vec<usize>,
    done: usize,
    total_cycles: u64,
    started: bool,
}

// The core must stay schedulable across worker threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SimRun<'_>>();
    assert_send::<SimRun<'_, ReadyQueue>>();
};

impl<'k> SimRun<'k> {
    /// Set up a run of `kernel` (compiled as `accel`) with `launch`
    /// arguments under `cfg` on the default wheel-queue core. Validates the
    /// configuration up front.
    pub fn new(
        kernel: &'k Kernel,
        accel: &Accelerator,
        cfg: &SimConfig,
        launch: &[LaunchArg],
    ) -> Result<Self, SimError> {
        Self::with_queue(kernel, accel, cfg, launch)
    }
}

impl<'k, Q: DispatchQueue> SimRun<'k, Q> {
    /// [`SimRun::new`] for an explicitly chosen dispatch queue, e.g.
    /// `SimRun::<ReadyQueue>::with_queue(..)` for the binary-heap core.
    pub fn with_queue(
        kernel: &'k Kernel,
        accel: &Accelerator,
        cfg: &SimConfig,
        launch: &[LaunchArg],
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let loop_map = std::sync::Arc::new(LoopMap::build(kernel));
        let modes: Vec<LoopMode> = (0..loop_map.len())
            .map(|i| loop_mode(accel, LoopId(i as u32)))
            .collect();

        let (mem, scalars) = MemImage::new(kernel, launch);
        let dram = Dram::new(cfg);
        let n = kernel.num_threads as usize;
        let n_bufs = kernel.args.len();
        let n_mems = kernel.local_mems.len();

        let threads: Vec<Thread<'k>> = (0..n)
            .map(|t| Thread {
                walker: Walker::new(kernel, loop_map.clone(), t as u32, scalars.clone()),
                time: t as u64 * cfg.launch_interval,
                status: Status::Ready,
                loops: Vec::new(),
                read_port_free: 0,
                write_port_free: 0,
                line_bufs: vec![LineBuffer::default(); n_bufs],
                scratch_buf: LineBuffer::default(),
                mem_ready: vec![0; n_mems],
                inflight: VecDeque::new(),
                iter_stall: 0,
            })
            .collect();

        let mut ready = Q::new(n);
        for (t, th) in threads.iter().enumerate() {
            ready.push(th.time, t as u32);
        }

        Ok(SimRun {
            cfg: cfg.clone(),
            modes,
            mem,
            dram,
            sem: Semaphore::default(),
            devices: DeviceQueue::new(n),
            threads,
            ready,
            current: None,
            barrier_arrivals: Vec::new(),
            done: 0,
            total_cycles: 0,
            started: false,
        })
    }

    /// Whether every thread has finished.
    pub fn is_done(&self) -> bool {
        self.done == self.threads.len()
    }

    /// Total cycles from host start to the latest completed thread so far
    /// (final once [`Self::is_done`]).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Device-completion wakeup statistics accumulated so far: how many
    /// times threads were woken by line fetches, channel grants and DMA
    /// completions, and how many cycles they slept waiting.
    pub fn device_stats(&self) -> DeviceStats {
        self.devices.stats
    }

    /// Threads that are blocked right now, with their barrier/lock states.
    ///
    /// Sorted by thread id, and each entry names the resource: who holds the
    /// semaphore and how many waiters are queued ahead, or how many threads
    /// the barrier has collected out of the live set.
    fn blocked_threads(&self) -> Vec<BlockedThread> {
        let live = self
            .threads
            .iter()
            .filter(|t| t.status != Status::Done)
            .count() as u32;
        let arrived = self.barrier_arrivals.len() as u32;
        let mut waiting: Vec<BlockedThread> = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let reason = match t.status {
                    Status::SpinWait => BlockedReason::SemaphoreWait {
                        holder: self.sem.owner(),
                        queued_ahead: self.sem.queue_position(i as u32).unwrap_or(0) as u32,
                    },
                    Status::AtBarrier => BlockedReason::AtBarrier {
                        arrived,
                        expected: live,
                    },
                    Status::Ready | Status::Done => return None,
                };
                Some(BlockedThread {
                    thread: i as u32,
                    at_cycle: t.time,
                    reason,
                })
            })
            .collect();
        waiting.sort_by_key(|b| b.thread);
        waiting
    }

    /// First-call bookkeeping: emit the initial idle→running launch timeline.
    fn begin<S: Snoop + ?Sized>(&mut self, snoop: &mut S) {
        if !self.started {
            self.started = true;
            // Initial state timeline: every thread idle from cycle 0 until
            // the host software starts it.
            for (t, th) in self.threads.iter().enumerate() {
                snoop.state_change(0, t as u32, ThreadState::Idle);
                snoop.state_change(th.time, t as u32, ThreadState::Running);
            }
        }
    }

    /// Advance the runnable thread with the smallest clock by one walker
    /// event, reporting pipeline activity to `snoop`.
    ///
    /// Dispatch is O(1) amortized on the wheel core: the dispatched thread
    /// is *held out* of the queue while it remains the global `(time, tid)`
    /// minimum (checked against [`DispatchQueue::peek`]), so the common
    /// pattern — a pipelined loop re-queueing its own thread a few cycles
    /// ahead — costs one comparison, no queue traffic at all. The held
    /// thread is dispatched exactly when a pop would have dispatched it
    /// (thread ids are unique, so the strict tuple compare is exact), which
    /// keeps the snoop stream bit-identical to the pop-per-event cores.
    /// Blocked threads re-enter the queue only on their explicit wakeup edge
    /// (semaphore grant, barrier release, device completion).
    ///
    /// The first call also emits the initial idle→running launch timeline;
    /// the call that completes the last thread reports `run_end`. Stepping a
    /// finished run is a no-op returning [`StepStatus::Done`].
    pub fn step<S: Snoop + ?Sized>(&mut self, snoop: &mut S) -> Result<StepStatus, SimError> {
        self.begin(snoop);
        if self.is_done() {
            return Ok(StepStatus::Done);
        }

        let tid = match self.current.take() {
            Some(c)
                if match self.ready.peek() {
                    Some(qmin) => (self.threads[c as usize].time, c) < qmin,
                    None => true,
                } =>
            {
                c
            }
            held => {
                if let Some(c) = held {
                    self.ready.push(self.threads[c as usize].time, c);
                }
                let Some((_, tid)) = self.ready.pop() else {
                    return Err(SimError::Deadlock {
                        waiting: self.blocked_threads(),
                    });
                };
                tid
            }
        };
        let ti = tid as usize;
        self.dispatch(ti, snoop);
        // Hold the dispatched thread for run-ahead unless it blocked or
        // finished — or was already re-queued by a barrier it both completed
        // and woke from.
        if self.threads[ti].status == Status::Ready && !self.ready.contains(tid) {
            self.current = Some(tid);
        }

        if self.is_done() {
            snoop.run_end(self.total_cycles);
            return Ok(StepStatus::Done);
        }
        Ok(StepStatus::Running)
    }

    /// The pop-per-event dispatch loop (the pre-wheel core's `step`): pop
    /// the minimum, dispatch, re-push. Retained as the A/B baseline for the
    /// high-thread-count scaling benchmarks and for differential testing —
    /// it must produce a snoop stream bit-identical to [`Self::step`] on any
    /// kernel. Do not mix the two steppers within one run: `step` may hold a
    /// thread out of the queue between calls.
    pub fn step_baseline<S: Snoop + ?Sized>(
        &mut self,
        snoop: &mut S,
    ) -> Result<StepStatus, SimError> {
        debug_assert!(self.current.is_none(), "step_baseline after run-ahead step");
        self.begin(snoop);
        if self.is_done() {
            return Ok(StepStatus::Done);
        }

        let Some((_, tid)) = self.ready.pop() else {
            return Err(SimError::Deadlock {
                waiting: self.blocked_threads(),
            });
        };
        let ti = tid as usize;
        self.dispatch(ti, snoop);
        // Re-queue the dispatched thread unless it blocked/finished — or was
        // already re-queued by a barrier it both completed and woke from.
        if self.threads[ti].status == Status::Ready && !self.ready.contains(tid) {
            self.ready.push(self.threads[ti].time, tid);
        }

        if self.is_done() {
            snoop.run_end(self.total_cycles);
            return Ok(StepStatus::Done);
        }
        Ok(StepStatus::Running)
    }

    /// The pre-event-queue reference stepper: picks the next thread by a
    /// linear scan over thread states instead of the ready queue, then keeps
    /// the queue coherent by explicit removal. Retained for differential
    /// property testing against [`Self::step`] — both must produce identical
    /// snoop streams on any kernel.
    #[cfg(test)]
    pub(crate) fn step_legacy<S: Snoop + ?Sized>(
        &mut self,
        snoop: &mut S,
    ) -> Result<StepStatus, SimError> {
        debug_assert!(self.current.is_none(), "step_legacy after run-ahead step");
        self.begin(snoop);
        if self.is_done() {
            return Ok(StepStatus::Done);
        }

        let Some(ti) = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Ready)
            .min_by_key(|(i, t)| (t.time, *i))
            .map(|(i, _)| i)
        else {
            return Err(SimError::Deadlock {
                waiting: self.blocked_threads(),
            });
        };
        let removed = self.ready.remove(ti as u32);
        debug_assert_eq!(
            removed,
            Some(self.threads[ti].time),
            "ready queue out of sync with thread states"
        );
        self.dispatch(ti, snoop);
        if self.threads[ti].status == Status::Ready && !self.ready.contains(ti as u32) {
            self.ready.push(self.threads[ti].time, ti as u32);
        }

        if self.is_done() {
            snoop.run_end(self.total_cycles);
            return Ok(StepStatus::Done);
        }
        Ok(StepStatus::Running)
    }

    /// Handle one walker event of thread `ti`.
    ///
    /// The caller has already removed `ti` from the ready queue; this method
    /// pushes the explicit wakeup edges — a semaphore grant re-queues the
    /// FIFO winner, a barrier release re-queues every arrival, and a memory
    /// access that must block schedules a device-completion event that
    /// re-queues this thread — so blocked threads re-enter the queue exactly
    /// when the event that unblocks them is simulated.
    fn dispatch<S: Snoop + ?Sized>(&mut self, ti: usize, snoop: &mut S) {
        let cfg = &self.cfg;
        let modes = &self.modes;
        let threads = &mut self.threads;
        let mem = &mut self.mem;
        let dram = &mut self.dram;
        let sem = &mut self.sem;
        let devices = &mut self.devices;
        let ready = &mut self.ready;
        let barrier_arrivals = &mut self.barrier_arrivals;
        let tid = ti as u32;
        // Fire the device-completion wake this dispatch realizes, if any:
        // the thread was re-queued at its completion time, so simulated time
        // has just reached it. The stall is reported here, on the wakeup
        // edge, with the same end time and length the inline model used —
        // but now in global chronological stream position.
        if let Some((_kind, stall)) = devices.take_due(tid, threads[ti].time) {
            snoop.stall(threads[ti].time, tid, stall);
        }
        let ev = threads[ti].walker.step(mem);
        match ev {
            StepEvent::Ops(c) => {
                let th = &mut threads[ti];
                snoop.ops(th.time, tid, c.int_ops, c.flops, c.local_loads);
                if th.innermost_pipelined().is_none() {
                    let work = c.int_ops + c.flops + c.local_loads;
                    th.time += cfg.stmt_base_cost + work.div_ceil(cfg.seq_issue_width as u64);
                }
            }
            StepEvent::LocalRead { mem: lm } => {
                let th = &mut threads[ti];
                let ready_at = th.mem_ready[lm.0 as usize];
                if ready_at > th.time {
                    // Blocked on the preloader: sleep until the DMA
                    // completion event; the wake reports the stall.
                    let stall = ready_at - th.time;
                    th.time = ready_at;
                    devices.schedule(tid, ready_at, DeviceEvent::DmaComplete, stall);
                }
            }
            StepEvent::Access(a) => {
                let th = &mut threads[ti];
                let addr = mem.abs_addr(a.buf, a.byte_off);
                if a.is_write {
                    let issue = th.time.max(th.write_port_free);
                    th.write_port_free = issue + 1;
                    let _ = dram.transfer(issue, addr, a.bytes, true);
                    th.line_bufs[a.buf.0 as usize].invalidate();
                    snoop.mem_write(th.time, tid, a.bytes as u64);
                } else {
                    let issue0 = th.time.max(th.read_port_free);
                    th.read_port_free = issue0 + 1;
                    // MSHR bound: retire completed fetches, then wait
                    // for the oldest if the port is saturated.
                    while th.inflight.front().is_some_and(|&r| r <= issue0) {
                        th.inflight.pop_front();
                    }
                    let issue = if th.inflight.len() >= cfg.port_mshrs as usize {
                        th.inflight.pop_front().unwrap().max(issue0)
                    } else {
                        issue0
                    };
                    let contended_before = dram.stats.contended;
                    let (ready_at, hit) = if cfg.line_buffers {
                        th.line_bufs[a.buf.0 as usize].read(dram, issue, addr, a.bytes)
                    } else {
                        th.scratch_buf.invalidate();
                        th.scratch_buf.read(dram, issue, addr, a.bytes)
                    };
                    if !hit {
                        th.inflight.push_back(ready_at);
                    }
                    snoop.mem_read(th.time, tid, a.bytes as u64);
                    if th.innermost_pipelined().is_some() {
                        // The scheduler budgeted the assumed minimum;
                        // only the excess stalls, and the VLO stage
                        // waits for the worst response of the iteration.
                        th.iter_stall = th
                            .iter_stall
                            .max(ready_at.saturating_sub(issue0 + cfg.assumed_load_latency));
                    } else {
                        // Sequential code waits the full round trip: sleep
                        // until the completion event. Classify the wake by
                        // what the request actually waited on — a queued
                        // channel/bank grant, or just the fetch round trip.
                        let stall = ready_at.saturating_sub(th.time);
                        if stall > 0 {
                            let kind = if dram.stats.contended > contended_before {
                                DeviceEvent::ChannelGrant
                            } else {
                                DeviceEvent::LineFetch
                            };
                            th.time = ready_at;
                            devices.schedule(tid, ready_at, kind, stall);
                        }
                    }
                }
            }
            StepEvent::Burst { access, mem: lm } => {
                let th = &mut threads[ti];
                // The preloader queues descriptors: the thread pays only
                // the issue cost and runs on (how Fig. 9's prefetch
                // overlaps compute); the engine executes bursts serially.
                let addr = mem.abs_addr(access.buf, access.byte_off);
                let dma_done = dram.dma_transfer(ti, th.time, addr, access.bytes);
                if access.is_write {
                    snoop.mem_write(th.time, tid, access.bytes as u64);
                } else {
                    let r = &mut th.mem_ready[lm.0 as usize];
                    *r = (*r).max(dma_done);
                    snoop.mem_read(th.time, tid, access.bytes as u64);
                }
                th.time += cfg.burst_issue_cost;
            }
            StepEvent::LoopEnter { loop_id, trip: _ } => {
                let th = &mut threads[ti];
                th.loops.push(LoopCtx {
                    mode: modes[loop_id.0 as usize],
                    entered_first: false,
                });
            }
            StepEvent::LoopIter { .. } => {
                let th = &mut threads[ti];
                snoop.iteration(th.time, tid);
                let ctx = th.loops.last_mut().expect("iter outside loop");
                match ctx.mode {
                    LoopMode::Pipelined { ii, .. } => {
                        let stall = std::mem::take(&mut th.iter_stall);
                        if ctx.entered_first {
                            th.time += ii + stall;
                        } else {
                            ctx.entered_first = true;
                            th.time += stall;
                        }
                        if stall > 0 {
                            snoop.stall(th.time, tid, stall);
                        }
                    }
                    LoopMode::Sequential => {
                        // Loop control handshake of the paused region.
                        th.time += 1;
                    }
                }
            }
            StepEvent::LoopExit { .. } => {
                let th = &mut threads[ti];
                let ctx = th.loops.pop().expect("exit outside loop");
                match ctx.mode {
                    LoopMode::Pipelined { depth, .. } => {
                        // Drain the pipeline after the last issue,
                        // including the final iteration's worst stall.
                        let stall = std::mem::take(&mut th.iter_stall);
                        th.time += depth + stall;
                        if stall > 0 {
                            snoop.stall(th.time, tid, stall);
                        }
                    }
                    LoopMode::Sequential => th.time += 1,
                }
            }
            StepEvent::CriticalEnter => {
                let th = &mut threads[ti];
                snoop.state_change(th.time, tid, ThreadState::Spinning);
                let t_req = th.time + cfg.sem_acquire_latency;
                match sem.acquire(tid, t_req) {
                    Acquire::Granted(g) => {
                        th.time = g;
                        snoop.state_change(g, tid, ThreadState::Critical);
                    }
                    Acquire::Queued => {
                        th.status = Status::SpinWait;
                    }
                }
            }
            StepEvent::CriticalExit => {
                let release_t = {
                    let th = &mut threads[ti];
                    th.time += cfg.sem_release_latency;
                    snoop.state_change(th.time, tid, ThreadState::Running);
                    th.time
                };
                if let Some((next, grant)) = sem.release(tid, release_t, cfg.spin_retry_interval) {
                    // Wakeup edge: the FIFO winner is re-scheduled directly
                    // at its grant time — the same time the spin-poll model
                    // would have observed the free semaphore.
                    let nt = &mut threads[next as usize];
                    debug_assert_eq!(nt.status, Status::SpinWait);
                    nt.time = grant.max(nt.time);
                    nt.status = Status::Ready;
                    ready.push(nt.time, next);
                    snoop.state_change(nt.time, next, ThreadState::Critical);
                }
            }
            StepEvent::Barrier => {
                threads[ti].status = Status::AtBarrier;
                barrier_arrivals.push(ti);
                try_release_barrier(threads, barrier_arrivals, ready, cfg.barrier_latency);
            }
            StepEvent::Finished => {
                let th = &mut threads[ti];
                th.status = Status::Done;
                self.total_cycles = self.total_cycles.max(th.time);
                snoop.state_change(th.time, tid, ThreadState::Idle);
                self.done += 1;
                // A finished thread never reaches the barrier: re-check
                // whether the remaining arrivals complete it.
                try_release_barrier(threads, barrier_arrivals, ready, cfg.barrier_latency);
            }
        }
    }

    /// Consume a completed run, folding the observer-derived per-thread
    /// statistics together with the DRAM model's ground truth.
    ///
    /// Panics if the run is not [`Self::is_done`] — the caller drives
    /// [`Self::step`] to completion first.
    pub fn into_result(self, stats_snoop: StatsSnoop) -> RunResult {
        assert!(
            self.is_done(),
            "into_result() before the run completed: drive step() to Done first"
        );
        let mut stats = RunStats {
            per_thread: stats_snoop.into_stats(),
            line_fetches: self.dram.stats.line_fetches,
            channel_bytes: self.dram.stats.channel_bytes,
            dram_contended: self.dram.stats.contended,
            line_hits: self.dram.stats.line_hits,
            read_requests: self.dram.stats.read_requests,
        };
        stats.per_thread.sort_by_key(|t| t.start_cycle);

        RunResult {
            buffers: self.mem.into_buffers(),
            total_cycles: self.total_cycles,
            stats,
        }
    }
}

/// The cycle-level executor: the one-call driver over [`SimRun`].
pub struct Executor;

impl Executor {
    /// Run `kernel` (compiled as `accel`) with `launch` arguments under
    /// `cfg`, reporting pipeline activity to `snoop`, on the default
    /// wheel-queue core with run-ahead dispatch.
    ///
    /// Returns [`SimError::InvalidConfig`] if `cfg` fails validation and
    /// [`SimError::Deadlock`] if every live thread blocks on the semaphore
    /// or barrier.
    pub fn run(
        kernel: &Kernel,
        accel: &Accelerator,
        cfg: &SimConfig,
        launch: &[LaunchArg],
        snoop: &mut dyn Snoop,
    ) -> Result<RunResult, SimError> {
        let mut sim = SimRun::new(kernel, accel, cfg, launch)?;
        // The executor's ground-truth statistics are just another observer
        // of the snooped signals, fanned out alongside the caller's snoop.
        // The pair is statically dispatched so the stats derivation inlines
        // into the event loop; the caller's virtually-dispatched observer
        // sits behind a ring buffer so its per-signal indirection is paid in
        // batches, off the dispatch fast path.
        let mut stats_snoop = StatsSnoop::new(kernel.num_threads);
        {
            let mut ring = SnoopRing::new(snoop);
            let mut pair = SnoopPair::new(&mut stats_snoop, &mut ring);
            while sim.step(&mut pair)? == StepStatus::Running {}
        }
        Ok(sim.into_result(stats_snoop))
    }

    /// [`Executor::run`], additionally reporting the [`DeviceStats`] the
    /// run accumulated — how many thread wakeups each device event class
    /// (line fetch, channel grant, DMA completion) delivered and how long
    /// threads slept on them. Used by the scaling benchmarks, where the
    /// wake mix is part of the recorded snapshot.
    pub fn run_with_device_stats(
        kernel: &Kernel,
        accel: &Accelerator,
        cfg: &SimConfig,
        launch: &[LaunchArg],
        snoop: &mut dyn Snoop,
    ) -> Result<(RunResult, DeviceStats), SimError> {
        let mut sim = SimRun::new(kernel, accel, cfg, launch)?;
        let mut stats_snoop = StatsSnoop::new(kernel.num_threads);
        {
            let mut ring = SnoopRing::new(snoop);
            let mut pair = SnoopPair::new(&mut stats_snoop, &mut ring);
            while sim.step(&mut pair)? == StepStatus::Running {}
        }
        let devices = sim.device_stats();
        Ok((sim.into_result(stats_snoop), devices))
    }

    /// [`Executor::run`] on the binary-heap core with pop-per-event
    /// dispatch and unbuffered snoop fan-out — the pre-wheel executor,
    /// retained as the A/B baseline for the scaling benchmarks. Produces
    /// bit-identical results and snoop streams to [`Executor::run`].
    pub fn run_heap_baseline(
        kernel: &Kernel,
        accel: &Accelerator,
        cfg: &SimConfig,
        launch: &[LaunchArg],
        snoop: &mut dyn Snoop,
    ) -> Result<RunResult, SimError> {
        let mut sim = SimRun::<ReadyQueue>::with_queue(kernel, accel, cfg, launch)?;
        let mut stats_snoop = StatsSnoop::new(kernel.num_threads);
        {
            let mut pair = SnoopPair::new(&mut stats_snoop, snoop);
            while sim.step_baseline(&mut pair)? == StepStatus::Running {}
        }
        Ok(sim.into_result(stats_snoop))
    }
}

/// Release the barrier when every live thread has arrived: all arrivals are
/// re-scheduled (wakeup edge) at `max(arrival times) + barrier_latency`.
fn try_release_barrier<Q: DispatchQueue>(
    threads: &mut [Thread<'_>],
    barrier_arrivals: &mut Vec<usize>,
    ready: &mut Q,
    barrier_latency: u64,
) {
    if barrier_arrivals.is_empty() {
        return;
    }
    let live = threads.iter().filter(|t| t.status != Status::Done).count();
    if barrier_arrivals.len() != live {
        return;
    }
    let release = barrier_arrivals
        .iter()
        .map(|&bi| threads[bi].time)
        .max()
        .unwrap_or(0)
        + barrier_latency;
    for &bi in barrier_arrivals.iter() {
        threads[bi].status = Status::Ready;
        threads[bi].time = release;
        ready.push(release, bi as u32);
    }
    barrier_arrivals.clear();
}

/// Decide the pricing mode of a loop from its compiled schedule.
fn loop_mode(accel: &Accelerator, id: LoopId) -> LoopMode {
    let Some(sched) = &accel.loop_schedules[id.0 as usize] else {
        // Fully unrolled — the walker never reports iterations for it.
        return LoopMode::Sequential;
    };
    let Some(dfg) = &accel.loop_dfgs[id.0 as usize] else {
        return LoopMode::Sequential;
    };
    let has_region = dfg.count(OpClass::InnerLoop) > 0
        || dfg.count(OpClass::CriticalRegion) > 0
        || dfg.count(OpClass::Burst) > 0;
    if has_region {
        LoopMode::Sequential
    } else {
        LoopMode::Pipelined {
            ii: sched.ii as u64,
            depth: sched.depth as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snoop::NullSnoop;
    use nymble_hls::accel::{compile, HlsConfig};
    use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg as GoldArg};
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    fn fast_cfg() -> SimConfig {
        SimConfig::default().with_fast_launch()
    }

    fn dot_kernel(n: i64, threads: u32) -> Kernel {
        let mut kb = KernelBuilder::new("dot", threads);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let b = kb.buffer("B", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::ToFrom);
        let sum = kb.var("sum", Type::F32);
        let z = kb.c_f32(0.0);
        kb.set(sum, z);
        let tid = kb.thread_id();
        let tid64 = kb.cast(ScalarType::I64, tid);
        let nt = kb.num_threads_expr();
        let nt64 = kb.cast(ScalarType::I64, nt);
        let n_e = kb.c_i64(n);
        kb.for_each("k", tid64, n_e, nt64, |kb, k| {
            let av = kb.load(a, k, Type::F32);
            let bv = kb.load(b, k, Type::F32);
            let p = kb.mul(av, bv);
            let cur = kb.get(sum);
            let s = kb.add(cur, p);
            kb.set(sum, s);
        });
        kb.critical(|kb| {
            let zero = kb.c_i64(0);
            let cur = kb.load(out, zero, Type::F32);
            let sv = kb.get(sum);
            let upd = kb.add(cur, sv);
            let zero2 = kb.c_i64(0);
            kb.store(out, zero2, upd);
        });
        kb.finish()
    }

    fn run_dot(n: i64, threads: u32) -> (RunResult, f32) {
        let k = dot_kernel(n, threads);
        let acc = compile(&k, &HlsConfig::default());
        let a: Vec<Value> = (0..n).map(|i| Value::F32(i as f32 * 0.5)).collect();
        let b: Vec<Value> = (0..n).map(|i| Value::F32((i % 7) as f32)).collect();
        let launch = vec![
            LaunchArg::Buffer(a.clone()),
            LaunchArg::Buffer(b.clone()),
            LaunchArg::Buffer(vec![Value::F32(0.0)]),
        ];
        let r = Executor::run(&k, &acc, &fast_cfg(), &launch, &mut NullSnoop).unwrap();
        // Gold model for the expected value.
        let gold = Interpreter::run(
            &k,
            &[
                GoldArg::Buffer(a),
                GoldArg::Buffer(b),
                GoldArg::Buffer(vec![Value::F32(0.0)]),
            ],
        );
        let expect = buffer_as_f32(&gold.buffers[2])[0];
        (r, expect)
    }

    #[test]
    fn dot_product_matches_gold_model() {
        let (r, expect) = run_dot(256, 4);
        let got = match &r.buffers[2][0] {
            Value::F32(v) => *v,
            other => panic!("{other:?}"),
        };
        assert!(
            (got - expect).abs() <= f32::EPSILON * expect.abs().max(1.0) * 8.0,
            "sim {got} vs gold {expect}"
        );
        assert!(r.total_cycles > 0);
        assert_eq!(r.stats.total(|t| t.critical_entries), 4);
    }

    #[test]
    fn more_threads_run_faster() {
        let (r1, _) = run_dot(4096, 1);
        let (r8, _) = run_dot(4096, 8);
        assert!(
            r8.total_cycles < r1.total_cycles,
            "8 threads ({}) should beat 1 ({})",
            r8.total_cycles,
            r1.total_cycles
        );
    }

    #[test]
    fn critical_sections_serialize() {
        // A kernel that is *only* critical sections: total critical time
        // across threads must not overlap (serialized by the semaphore).
        let mut kb = KernelBuilder::new("crit", 4);
        let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
        let n = kb.c_i64(5);
        kb.for_range("i", n, |kb, _| {
            kb.critical(|kb| {
                let z = kb.c_i64(0);
                let cur = kb.load(out, z, Type::I32);
                let one = kb.c_i32(1);
                let inc = kb.add(cur, one);
                let z2 = kb.c_i64(0);
                kb.store(out, z2, inc);
            });
        });
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let r = Executor::run(
            &k,
            &acc,
            &fast_cfg(),
            &[LaunchArg::Buffer(vec![Value::I32(0)])],
            &mut NullSnoop,
        )
        .unwrap();
        assert_eq!(r.buffers[0][0], Value::I32(20), "4 threads × 5 increments");
        let total_crit = r.stats.total(|t| t.critical_cycles);
        assert!(total_crit <= r.total_cycles, "critical time cannot overlap");
        let total_spin = r.stats.total(|t| t.spin_cycles);
        assert!(total_spin > 0, "threads must contend");
    }

    #[test]
    fn launch_interval_staggers_threads() {
        let k = dot_kernel(64, 4);
        let acc = compile(&k, &HlsConfig::default());
        let mk = || {
            vec![
                LaunchArg::Buffer(vec![Value::F32(1.0); 64]),
                LaunchArg::Buffer(vec![Value::F32(1.0); 64]),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ]
        };
        let slow = SimConfig {
            launch_interval: 100_000,
            ..Default::default()
        };
        let r = Executor::run(&k, &acc, &slow, &mk(), &mut NullSnoop).unwrap();
        assert!(r.stats.per_thread[3].start_cycle == 300_000);
        assert!(
            r.total_cycles >= 300_000,
            "ramp must dominate tiny workloads"
        );
        // Early thread finished before the last started (the Fig. 11 effect).
        assert!(r.stats.per_thread[0].end_cycle < r.stats.per_thread[3].start_cycle);
    }

    #[test]
    fn barrier_synchronizes_times() {
        let mut kb = KernelBuilder::new("bar", 3);
        let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
        // Thread-dependent work before the barrier: thread t loops t*64 times.
        let tid = kb.thread_id();
        let tid64 = kb.cast(ScalarType::I64, tid);
        let c64 = kb.c_i64(64);
        let n = kb.mul(tid64, c64);
        let acc_v = kb.var("acc", Type::I32);
        kb.for_range("i", n, |kb, _| {
            let cur = kb.get(acc_v);
            let one = kb.c_i32(1);
            let s = kb.add(cur, one);
            kb.set(acc_v, s);
        });
        kb.barrier();
        let tid2 = kb.thread_id();
        let idx = kb.cast(ScalarType::I64, tid2);
        let av = kb.get(acc_v);
        kb.store(out, idx, av);
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let r = Executor::run(
            &k,
            &acc,
            &fast_cfg(),
            &[LaunchArg::Buffer(vec![Value::I32(0); 3])],
            &mut NullSnoop,
        )
        .unwrap();
        assert_eq!(r.buffers[0][2], Value::I32(128));
        // All threads end within a small window after the barrier.
        let ends: Vec<u64> = r.stats.per_thread.iter().map(|t| t.end_cycle).collect();
        let spread = ends.iter().max().unwrap() - ends.iter().min().unwrap();
        assert!(spread < 2_000, "post-barrier work is uniform: {ends:?}");
    }

    #[test]
    fn preload_makes_local_reads_wait() {
        let mut kb = KernelBuilder::new("pre", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let o = kb.buffer("O", ScalarType::F32, MapDir::From);
        let lm = kb.local_mem("buf", Type::F32, 64);
        let z = kb.c_i64(0);
        let z2 = kb.c_i64(0);
        let len = kb.c_i64(64);
        kb.preload(lm, a, z, z2, len);
        // Immediately read: must stall until DMA completes.
        let one = kb.c_i64(1);
        let v = kb.load_local(lm, one, Type::F32);
        let z3 = kb.c_i64(0);
        kb.store(o, z3, v);
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let r = Executor::run(
            &k,
            &acc,
            &fast_cfg(),
            &[
                LaunchArg::Buffer(vec![Value::F32(3.25); 64]),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
            &mut NullSnoop,
        )
        .unwrap();
        assert_eq!(r.buffers[1][0], Value::F32(3.25));
        assert!(
            r.stats.total_stalls() > 0,
            "read-after-DMA must stall: {:?}",
            r.stats
        );
        assert_eq!(r.stats.total(|t| t.bytes_read), 256, "one 256 B burst");
    }

    #[test]
    fn sequential_vs_strided_bandwidth() {
        // Sequential streaming hits the line buffer; a large-stride walk
        // misses every access → more DRAM lines fetched for the same
        // request count.
        fn walk(stride: i64) -> RunStats {
            let len = 4096i64;
            let mut kb = KernelBuilder::new("walk", 1);
            let a = kb.buffer("A", ScalarType::F32, MapDir::To);
            let acc_v = kb.var("acc", Type::F32);
            let n = kb.c_i64(256);
            kb.for_range("i", n, |kb, i| {
                let s = kb.c_i64(stride);
                let idx = kb.mul(i, s);
                let len_e = kb.c_i64(len);
                let idxm = kb.bin(nymble_ir::BinOp::Rem, idx, len_e);
                let v = kb.load(a, idxm, Type::F32);
                let cur = kb.get(acc_v);
                let sum = kb.add(cur, v);
                kb.set(acc_v, sum);
            });
            let k = kb.finish();
            let acc = compile(&k, &HlsConfig::default());
            Executor::run(
                &k,
                &acc,
                &fast_cfg(),
                &[LaunchArg::Buffer(vec![Value::F32(1.0); len as usize])],
                &mut NullSnoop,
            )
            .unwrap()
            .stats
        }
        let seq = walk(1);
        let strided = walk(64);
        assert!(
            strided.line_fetches > seq.line_fetches * 4,
            "strided {} vs sequential {}",
            strided.line_fetches,
            seq.line_fetches
        );
    }
}
