//! # fpga-sim — cycle-level simulator of the Nymble accelerator template
//!
//! Simulates the architecture of Fig. 1 of the reproduced paper: a compute
//! unit with the Nymble-MT staged-pipeline execution model, per-thread Avalon
//! masters arbitrated onto external DRAM, local BRAM memories fed by a
//! preloader DMA engine, a hardware semaphore for OpenMP `critical`, and a
//! host slave interface that starts hardware threads with a software launch
//! cost (the effect driving the π case study of §V-D).
//!
//! The simulator drives one [`nymble_ir::walker::Walker`] per hardware thread
//! and attributes cycle costs to the event stream using the compiled
//! schedules from `nymble-hls`:
//!
//! * pipelined innermost loops advance by their initiation interval per
//!   iteration plus pipeline depth to drain — `depth + (n-1)·II` — with
//!   stalls inserted when a variable-latency memory response arrives later
//!   than the scheduler's assumed minimum (§III-B),
//! * loops containing inner regions execute statement-by-statement with a
//!   configurable issue width, while their inner loops / critical sections /
//!   preloader bursts are timed by their own events,
//! * external accesses go through a per-(thread, buffer) line buffer and a
//!   shared DRAM channel model with latency and bandwidth occupancy,
//! * critical sections spin on the semaphore model (FIFO grant),
//! * the profiling unit (crate `hls-profiling`) attaches through the
//!   [`snoop::Snoop`] trait and observes state changes, stalls, retired
//!   operations and memory traffic — exactly the signals the paper's
//!   hardware profiling unit snoops from the pipeline.

pub mod analytic;
pub mod config;
pub mod device;
#[cfg(test)]
mod difftest;
pub mod dram;
pub mod error;
pub mod exec;
pub mod host;
pub mod memimg;
pub mod queue;
pub mod semaphore;
pub mod snoop;
pub mod stats;
pub mod wheel;

pub use analytic::{AnalyticReport, Bound};
pub use config::SimConfig;
pub use device::{DeviceEvent, DeviceStats};
pub use error::{BlockedReason, BlockedThread, SimError};
pub use exec::{Executor, RunResult, SimRun, StepStatus};
pub use queue::{DispatchQueue, ReadyQueue};
pub use snoop::{NullSnoop, Snoop, SnoopMux, SnoopPair, SnoopRing, StatsSnoop, ThreadState};
pub use wheel::WheelQueue;
