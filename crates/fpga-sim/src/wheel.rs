//! Hierarchical timing-wheel dispatch queue.
//!
//! [`WheelQueue`] replaces the binary heap on the executor's hot path with a
//! calendar queue: a wheel of [`SPAN`] single-cycle slots covering the near
//! future plus a heap ([`ReadyQueue`]) holding far-future overflow. Discrete-
//! event cores spend almost all their pops within a few cycles of the
//! current time (a pipelined loop re-queues its thread II cycles ahead), so
//! the common case is O(1) amortized: set a bit, link a node, scan a word.
//! Far-future events — launch-ramp starts `launch_interval` apart, 50 k-cycle
//! semaphore back-offs — land in the overflow heap and are promoted into the
//! wheel when the cursor reaches their horizon.
//!
//! The queue preserves the executor's dispatch contract *bit-for-bit*:
//! `pop` yields the lexicographically smallest `(time, thread_id)`, ties on
//! time resolving to the lowest thread id, exactly as [`ReadyQueue`] and the
//! historical scan `min_by_key(|(i, t)| (t.time, *i))` do. The wheel keeps
//! each slot's intrusive list sorted by thread id; since every in-window slot
//! holds entries of exactly one absolute time, list order *is* `(time, tid)`
//! order.
//!
//! Invariants:
//! * every wheel entry's time lies in `[cursor, cursor + SPAN)`;
//! * `push` requires `time >= cursor` (the executor never schedules into the
//!   past: wakeup times are at or after the event that computes them);
//! * overflow entries may undercut `cursor + SPAN` after the cursor advances;
//!   `pop` promotes all such entries into the wheel *before* scanning, and
//!   `peek` compares the wheel scan against the overflow minimum, so neither
//!   ever reports a stale minimum.

use crate::queue::{DispatchQueue, ReadyQueue};

/// Wheel width in single-cycle slots (power of two).
pub const SPAN: u64 = 1024;
const MASK: u64 = SPAN - 1;
const WORDS: usize = (SPAN / 64) as usize;
/// Intrusive-list terminator.
const NONE: u32 = u32::MAX;

/// Where a queued thread currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    Out,
    Wheel,
    Overflow,
}

/// Timing wheel over `(time, thread)` keys with heap overflow; a drop-in
/// [`DispatchQueue`] for the executor.
#[derive(Clone, Debug)]
pub struct WheelQueue {
    /// Head thread id of each slot's tid-sorted intrusive list.
    slots: Vec<u32>,
    /// `next[tid]` — intrusive list link.
    next: Vec<u32>,
    /// Queued wakeup time per thread (valid while `loc[tid] != Out`).
    time_of: Vec<u64>,
    loc: Vec<Loc>,
    /// One bit per slot: occupied.
    bitmap: [u64; WORDS],
    /// Lower bound of the wheel window; advanced to each popped time.
    cursor: u64,
    overflow: ReadyQueue,
    len: usize,
}

impl WheelQueue {
    /// Empty queue sized for `num_threads` threads.
    pub fn new(num_threads: usize) -> Self {
        WheelQueue {
            slots: vec![NONE; SPAN as usize],
            next: vec![NONE; num_threads],
            time_of: vec![0; num_threads],
            loc: vec![Loc::Out; num_threads],
            bitmap: [0; WORDS],
            cursor: 0,
            overflow: ReadyQueue::new(num_threads),
            len: 0,
        }
    }

    /// Number of queued threads.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no thread is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `tid` is currently queued.
    pub fn contains(&self, tid: u32) -> bool {
        self.loc[tid as usize] != Loc::Out
    }

    /// Queue `tid` with wakeup time `time`.
    ///
    /// # Panics
    /// Panics (debug) if `tid` is already queued or `time` precedes the last
    /// popped time — the executor guarantees both.
    pub fn push(&mut self, time: u64, tid: u32) {
        debug_assert!(!self.contains(tid), "thread {tid} queued twice");
        debug_assert!(
            time >= self.cursor,
            "push({time}, {tid}) into the past (cursor {})",
            self.cursor
        );
        self.time_of[tid as usize] = time;
        if time < self.cursor + SPAN {
            self.insert_wheel(time, tid);
        } else {
            self.overflow.push(time, tid);
            self.loc[tid as usize] = Loc::Overflow;
        }
        self.len += 1;
    }

    /// Smallest `(time, tid)` without removing it.
    ///
    /// The minimum may live in either tier — after the cursor advances, an
    /// un-promoted overflow entry can undercut every wheel entry — so this
    /// takes the lexicographic min of the wheel scan and the overflow peek.
    pub fn peek(&self) -> Option<(u64, u32)> {
        match (self.scan_wheel(), self.overflow.peek()) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Remove and return the smallest `(time, tid)`.
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        // Promote every overflow entry the window now covers: one of them
        // may precede (or tie with a smaller tid than) every wheel entry.
        self.promote();
        let (time, tid) = match self.scan_wheel() {
            Some(found) => found,
            None => {
                // Wheel empty ⇒ everything queued is far-future. Jump the
                // cursor to the overflow minimum and promote again.
                let (t, _) = self.overflow.peek().expect("len > 0 but both tiers empty");
                self.cursor = t;
                self.promote();
                self.scan_wheel().expect("promotion filled the wheel")
            }
        };
        self.unlink_head(time, tid);
        self.cursor = time;
        self.len -= 1;
        Some((time, tid))
    }

    /// Remove `tid` wherever it sits; returns its queued time, or `None` if
    /// it was not queued.
    pub fn remove(&mut self, tid: u32) -> Option<u64> {
        match self.loc[tid as usize] {
            Loc::Out => None,
            Loc::Overflow => {
                let t = self.overflow.remove(tid);
                debug_assert!(t.is_some());
                self.loc[tid as usize] = Loc::Out;
                self.len -= 1;
                t
            }
            Loc::Wheel => {
                let time = self.time_of[tid as usize];
                let slot = (time & MASK) as usize;
                // Unlink from the (tiny) slot list.
                let mut cur = self.slots[slot];
                if cur == tid {
                    self.slots[slot] = self.next[tid as usize];
                } else {
                    while self.next[cur as usize] != tid {
                        cur = self.next[cur as usize];
                        debug_assert_ne!(cur, NONE, "thread {tid} missing from its slot");
                    }
                    self.next[cur as usize] = self.next[tid as usize];
                }
                self.next[tid as usize] = NONE;
                if self.slots[slot] == NONE {
                    self.bitmap[slot / 64] &= !(1u64 << (slot % 64));
                }
                self.loc[tid as usize] = Loc::Out;
                self.len -= 1;
                Some(time)
            }
        }
    }

    /// Insert into the wheel tier (caller checked `time` is in-window).
    fn insert_wheel(&mut self, time: u64, tid: u32) {
        let slot = (time & MASK) as usize;
        debug_assert!(
            self.slots[slot] == NONE || self.time_of[self.slots[slot] as usize] == time,
            "slot aliasing: window invariant broken"
        );
        // Sorted-by-tid insert keeps list order equal to (time, tid) order.
        let head = self.slots[slot];
        if head == NONE || head > tid {
            self.next[tid as usize] = head;
            self.slots[slot] = tid;
        } else {
            let mut cur = head;
            while self.next[cur as usize] != NONE && self.next[cur as usize] < tid {
                cur = self.next[cur as usize];
            }
            self.next[tid as usize] = self.next[cur as usize];
            self.next[cur as usize] = tid;
        }
        self.bitmap[slot / 64] |= 1u64 << (slot % 64);
        self.loc[tid as usize] = Loc::Wheel;
    }

    /// Move every overflow entry now inside the window onto the wheel.
    fn promote(&mut self) {
        while let Some((t, _)) = self.overflow.peek() {
            if t >= self.cursor + SPAN {
                break;
            }
            let (t, tid) = self.overflow.pop().expect("peeked");
            self.insert_wheel(t, tid);
        }
    }

    /// First occupied slot at or after the cursor, as `(time, head_tid)`.
    ///
    /// Slot order walking forward from the cursor (wrapping once) is time
    /// order for the in-window times the wheel holds.
    fn scan_wheel(&self) -> Option<(u64, u32)> {
        let start = (self.cursor & MASK) as usize;
        let mut word = start / 64;
        // First word: ignore slots before the cursor's.
        let mut bits = self.bitmap[word] & (!0u64 << (start % 64));
        for _ in 0..=WORDS {
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                let head = self.slots[slot];
                let time = self.time_of[head as usize];
                // A wrapped scan can revisit the start word and see slots
                // belonging to the *next* lap only if the window invariant
                // broke; the debug assert in insert_wheel guards that.
                return Some((time, head));
            }
            word = (word + 1) % WORDS;
            bits = self.bitmap[word];
            if word == start / 64 {
                // Back at the start word: take the slots skipped initially.
                bits &= !(!0u64 << (start % 64));
            }
        }
        None
    }

    /// Detach `tid`, the head of its slot list, after a successful scan.
    fn unlink_head(&mut self, time: u64, tid: u32) {
        let slot = (time & MASK) as usize;
        debug_assert_eq!(self.slots[slot], tid);
        self.slots[slot] = self.next[tid as usize];
        self.next[tid as usize] = NONE;
        if self.slots[slot] == NONE {
            self.bitmap[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.loc[tid as usize] = Loc::Out;
    }
}

impl DispatchQueue for WheelQueue {
    fn new(num_threads: usize) -> Self {
        WheelQueue::new(num_threads)
    }
    fn len(&self) -> usize {
        WheelQueue::len(self)
    }
    fn contains(&self, tid: u32) -> bool {
        WheelQueue::contains(self, tid)
    }
    fn push(&mut self, time: u64, tid: u32) {
        WheelQueue::push(self, time, tid)
    }
    fn peek(&self) -> Option<(u64, u32)> {
        WheelQueue::peek(self)
    }
    fn pop(&mut self) -> Option<(u64, u32)> {
        WheelQueue::pop(self)
    }
    fn remove(&mut self, tid: u32) -> Option<u64> {
        WheelQueue::remove(self, tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_near_future() {
        let mut q = WheelQueue::new(4);
        q.push(30, 0);
        q.push(10, 1);
        q.push(20, 2);
        q.push(15, 3);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_resolve_to_lowest_thread_id() {
        let mut q = WheelQueue::new(4);
        q.push(5, 3);
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 0);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, t)| t).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn far_future_overflows_and_promotes() {
        let mut q = WheelQueue::new(4);
        // Launch-ramp style: starts far beyond the window.
        q.push(0, 0);
        q.push(880_000, 1);
        q.push(1_760_000, 2);
        q.push(2 * SPAN, 3);
        assert_eq!(q.pop(), Some((0, 0)));
        assert_eq!(q.pop(), Some((2 * SPAN, 3)));
        assert_eq!(q.pop(), Some((880_000, 1)));
        assert_eq!(q.pop(), Some((1_760_000, 2)));
    }

    #[test]
    fn overflow_entry_can_undercut_later_wheel_pushes() {
        // Push t=2000 while the cursor is 0 (overflow), advance the cursor
        // past 1000 by popping, then push an in-window entry at 2100: the
        // un-promoted overflow entry must still win, for both peek and pop.
        let mut q = WheelQueue::new(4);
        q.push(2000, 3);
        q.push(999, 0);
        assert_eq!(q.pop(), Some((999, 0)));
        q.push(2100, 1);
        assert_eq!(q.peek(), Some((2000, 3)));
        assert_eq!(q.pop(), Some((2000, 3)));
        assert_eq!(q.pop(), Some((2100, 1)));
    }

    #[test]
    fn overflow_and_wheel_tie_resolves_by_tid() {
        let mut q = WheelQueue::new(4);
        q.push(2000, 1); // overflow at cursor 0
        q.push(1999, 0);
        assert_eq!(q.pop(), Some((1999, 0))); // cursor now 1999
        q.push(2000, 2); // same time, larger tid, lands in wheel
        assert_eq!(q.peek(), Some((2000, 1)), "overflow tid must win the tie");
        assert_eq!(q.pop(), Some((2000, 1)));
        assert_eq!(q.pop(), Some((2000, 2)));
    }

    #[test]
    fn remove_from_both_tiers() {
        let mut q = WheelQueue::new(8);
        q.push(10, 0);
        q.push(10, 1);
        q.push(10, 2);
        q.push(5_000_000, 3);
        assert_eq!(q.remove(1), Some(10), "middle of a slot list");
        assert_eq!(q.remove(3), Some(5_000_000), "overflow tier");
        assert_eq!(q.remove(3), None);
        assert!(!q.contains(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((10, 2)));
        // Remove-then-repush must be clean.
        q.push(20, 1);
        assert_eq!(q.pop(), Some((20, 1)));
    }

    #[test]
    fn slot_wraparound_keeps_order() {
        // Times straddling a wheel lap boundary: slot indices wrap but the
        // scan starts at the cursor, so order is preserved.
        let mut q = WheelQueue::new(4);
        q.push(SPAN - 2, 0);
        assert_eq!(q.pop(), Some((SPAN - 2, 0)));
        q.push(SPAN - 1, 1);
        q.push(SPAN + 3, 2); // wraps to slot 3 < slot SPAN-1
        q.push(2 * SPAN - 3, 3);
        assert_eq!(q.pop(), Some((SPAN - 1, 1)));
        assert_eq!(q.pop(), Some((SPAN + 3, 2)));
        assert_eq!(q.pop(), Some((2 * SPAN - 3, 3)));
    }

    #[test]
    fn matches_scan_under_random_churn() {
        // Deterministic LCG; compare against a naive sorted scan, with times
        // generated relative to the advancing "now" so far-future pushes
        // exercise the overflow tier. Mirrors queue.rs's churn test.
        let mut seed: u64 = 0x243F6A8885A308D3;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        let n = 16u32;
        let mut q = WheelQueue::new(n as usize);
        let mut model: Vec<Option<u64>> = vec![None; n as usize];
        let mut now = 0u64;
        for _ in 0..4_000 {
            let tid = (next() % n as u64) as u32;
            match model[tid as usize] {
                None => {
                    // Mix near-future (in-window) and far-future times.
                    let t = now
                        + if next() % 4 == 0 {
                            SPAN + next() % 100_000
                        } else {
                            next() % SPAN
                        };
                    q.push(t, tid);
                    model[tid as usize] = Some(t);
                }
                Some(t) => {
                    if next() % 2 == 0 {
                        assert_eq!(q.remove(tid), Some(t));
                        model[tid as usize] = None;
                    } else {
                        let want = model
                            .iter()
                            .enumerate()
                            .filter_map(|(i, t)| t.map(|t| (t, i as u32)))
                            .min();
                        assert_eq!(q.peek(), want);
                        let got = q.pop();
                        assert_eq!(got, want);
                        let (pt, ptid) = got.unwrap();
                        model[ptid as usize] = None;
                        now = pt;
                    }
                }
            }
        }
    }
}
