//! Differential property suite: three dispatch cores, one oracle.
//!
//! Generates structured-random valid kernels (loops, critical sections,
//! barriers, external and local memory traffic, preloader DMA, sequential
//! device-blocking loads, thread-dependent bounds) and drives each through
//! all three steppers:
//!
//! * [`crate::SimRun::step`] — timing-wheel queue with run-ahead dispatch,
//! * [`crate::SimRun::step_baseline`] — binary-heap queue, pop-per-event
//!   (the previous production core, kept for A/B benchmarking),
//! * [`crate::SimRun::step_legacy`] — the pre-refactor linear scan,
//!
//! asserting all three produce *identical* snoop streams, total cycles,
//! derived statistics and device wake attributions. The snooped signal
//! stream is the contract the whole profiling and trace pipeline is built
//! on, so the cores must agree bit-for-bit.

use crate::config::SimConfig;
use crate::device::DeviceStats;
use crate::exec::{SimRun, StepStatus};
use crate::memimg::LaunchArg;
use crate::queue::{DispatchQueue, ReadyQueue};
use crate::snoop::{Snoop, SnoopPair, StatsSnoop, ThreadState};
use nymble_hls::accel::{compile, HlsConfig};
use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type, Value};

/// Deterministic split-mix style generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Every snoop signal, recorded verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Sig {
    State(u64, u32, ThreadState),
    Stall(u64, u32, u64),
    Ops(u64, u32, u64, u64, u64),
    Read(u64, u32, u64),
    Write(u64, u32, u64),
    Iter(u64, u32),
    End(u64),
}

#[derive(Default)]
struct Recorder {
    log: Vec<Sig>,
}

impl Snoop for Recorder {
    fn state_change(&mut self, t: u64, tid: u32, s: ThreadState) {
        self.log.push(Sig::State(t, tid, s));
    }
    fn stall(&mut self, t: u64, tid: u32, c: u64) {
        self.log.push(Sig::Stall(t, tid, c));
    }
    fn ops(&mut self, t: u64, tid: u32, i: u64, f: u64, l: u64) {
        self.log.push(Sig::Ops(t, tid, i, f, l));
    }
    fn mem_read(&mut self, t: u64, tid: u32, b: u64) {
        self.log.push(Sig::Read(t, tid, b));
    }
    fn mem_write(&mut self, t: u64, tid: u32, b: u64) {
        self.log.push(Sig::Write(t, tid, b));
    }
    fn iteration(&mut self, t: u64, tid: u32) {
        self.log.push(Sig::Iter(t, tid));
    }
    fn run_end(&mut self, t: u64) {
        self.log.push(Sig::End(t));
    }
}

/// One structured-random kernel plus matching launch arguments.
fn gen_kernel(rng: &mut Rng) -> (Kernel, Vec<LaunchArg>) {
    let threads = 1 + rng.below(4) as u32;
    let buf_len = 64usize;
    let mut kb = KernelBuilder::new("diff", threads);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::ToFrom);
    let acc_v = kb.var("acc", Type::F32);

    let segments = 1 + rng.below(3);
    for seg in 0..segments {
        match rng.below(7) {
            // Pipelined load-accumulate loop, unit or strided walk.
            0 | 1 => {
                let trip = 4 + rng.below(24) as i64;
                let stride = if rng.below(3) == 0 { 16 } else { 1 };
                let n = kb.c_i64(trip);
                kb.for_range("i", n, |kb, i| {
                    let s = kb.c_i64(stride);
                    let scaled = kb.mul(i, s);
                    let len = kb.c_i64(buf_len as i64);
                    let idx = kb.bin(nymble_ir::BinOp::Rem, scaled, len);
                    let v = kb.load(a, idx, Type::F32);
                    let cur = kb.get(acc_v);
                    let sum = kb.add(cur, v);
                    kb.set(acc_v, sum);
                });
            }
            // Loop of contended critical sections.
            2 => {
                let trip = 1 + rng.below(4) as i64;
                let n = kb.c_i64(trip);
                kb.for_range("c", n, |kb, _| {
                    kb.critical(|kb| {
                        let z = kb.c_i64(0);
                        let cur = kb.load(out, z, Type::F32);
                        let one = kb.c_f32(1.0);
                        let inc = kb.add(cur, one);
                        let z2 = kb.c_i64(0);
                        kb.store(out, z2, inc);
                    });
                });
            }
            // Barrier.
            3 => kb.barrier(),
            // Preloader DMA burst, then local reads that race the DMA
            // completion — exercises the DmaComplete device-wake path.
            4 => {
                let lm = kb.local_mem(&format!("pl{seg}"), Type::F32, 32);
                let src_off = kb.c_i64(rng.below(16) as i64);
                let dst_off = kb.c_i64(0);
                let burst = kb.c_i64(32);
                kb.preload(lm, a, src_off, dst_off, burst);
                let n = kb.c_i64(4 + rng.below(8) as i64);
                kb.for_range("p", n, |kb, j| {
                    let len = kb.c_i64(32);
                    let idx = kb.bin(nymble_ir::BinOp::Rem, j, len);
                    let v = kb.load_local(lm, idx, Type::F32);
                    let cur = kb.get(acc_v);
                    let sum = kb.add(cur, v);
                    kb.set(acc_v, sum);
                });
            }
            // Strided external loads in a region-bearing (non-pipelined)
            // loop: each load blocks the thread until its line fetch or
            // channel grant completes — the LineFetch / ChannelGrant
            // device-wake paths.
            5 => {
                let trip = 2 + rng.below(6) as i64;
                let n = kb.c_i64(trip);
                kb.for_range("s", n, |kb, i| {
                    let s16 = kb.c_i64(16);
                    let scaled = kb.mul(i, s16);
                    let len = kb.c_i64(buf_len as i64);
                    let idx = kb.bin(nymble_ir::BinOp::Rem, scaled, len);
                    let v = kb.load(a, idx, Type::F32);
                    let cur = kb.get(acc_v);
                    let sum = kb.add(cur, v);
                    kb.set(acc_v, sum);
                    // Inner loop keeps the outer loop statement-timed.
                    let m = kb.c_i64(4);
                    kb.for_range("t", m, |kb, _| {
                        let cur = kb.get(acc_v);
                        let one = kb.c_f32(1.0);
                        let s = kb.add(cur, one);
                        kb.set(acc_v, s);
                    });
                });
            }
            // Thread-dependent work then store.
            _ => {
                let tid = kb.thread_id();
                let tid64 = kb.cast(ScalarType::I64, tid);
                let c8 = kb.c_i64(8);
                let end = kb.mul(tid64, c8);
                kb.for_range("w", end, |kb, j| {
                    let len = kb.c_i64(buf_len as i64);
                    let idx = kb.bin(nymble_ir::BinOp::Rem, j, len);
                    let v = kb.load(a, idx, Type::F32);
                    let cur = kb.get(acc_v);
                    let sum = kb.add(cur, v);
                    kb.set(acc_v, sum);
                });
                let tid2 = kb.thread_id();
                let oidx = kb.cast(ScalarType::I64, tid2);
                let one = kb.c_i64(1);
                let oidx1 = kb.add(oidx, one);
                let av = kb.get(acc_v);
                kb.store(out, oidx1, av);
            }
        }
    }
    let k = kb.finish();
    let launch = vec![
        LaunchArg::Buffer((0..buf_len).map(|i| Value::F32(i as f32 * 0.25)).collect()),
        LaunchArg::Buffer(vec![Value::F32(0.0); threads as usize + 1]),
    ];
    (k, launch)
}

/// Random-ish but deterministic simulator configurations.
fn gen_config(rng: &mut Rng) -> SimConfig {
    SimConfig {
        launch_interval: [0, 200, 1000, 50_000][rng.below(4) as usize],
        port_mshrs: 1 + rng.below(2) as u32,
        line_buffers: rng.below(4) != 0,
        dram_latency: [40, 160][rng.below(2) as usize],
        ..Default::default()
    }
}

/// Which dispatch core to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Core {
    /// Timing-wheel queue with run-ahead dispatch (`step`), the production
    /// core.
    Wheel,
    /// Binary-heap queue, pop-per-event (`step_baseline`) — the previous
    /// production core, kept for A/B benchmarking.
    Heap,
    /// Pre-refactor linear-scan reference (`step_legacy`).
    Legacy,
}

const CORES: [Core; 3] = [Core::Wheel, Core::Heap, Core::Legacy];

/// Everything one run produces that the cores must agree on.
struct Observed {
    log: Vec<Sig>,
    cycles: u64,
    threads: Vec<crate::stats::ThreadStats>,
    devices: DeviceStats,
}

fn run_steps<Q: DispatchQueue, S: Snoop>(sim: &mut SimRun<'_, Q>, snoop: &mut S, core: Core) {
    let mut guard = 0u64;
    loop {
        let st = match core {
            Core::Wheel => sim.step(snoop),
            Core::Heap => sim.step_baseline(snoop),
            Core::Legacy => sim.step_legacy(snoop),
        };
        if st.expect("no deadlock") == StepStatus::Done {
            break;
        }
        guard += 1;
        assert!(guard < 10_000_000, "runaway differential run");
    }
}

/// Drive a fresh run on the given core; return everything observable.
fn drive(kernel: &Kernel, cfg: &SimConfig, launch: &[LaunchArg], core: Core) -> Observed {
    let accel = compile(kernel, &HlsConfig::default());
    let mut stats = StatsSnoop::new(kernel.num_threads);
    let mut rec = Recorder::default();
    let (cycles, devices) = {
        let mut pair = SnoopPair::new(&mut stats, &mut rec);
        match core {
            Core::Wheel => {
                let mut sim = SimRun::new(kernel, &accel, cfg, launch).expect("valid config");
                run_steps(&mut sim, &mut pair, core);
                (sim.total_cycles(), sim.device_stats())
            }
            Core::Heap | Core::Legacy => {
                let mut sim = SimRun::<ReadyQueue>::with_queue(kernel, &accel, cfg, launch)
                    .expect("valid config");
                run_steps(&mut sim, &mut pair, core);
                (sim.total_cycles(), sim.device_stats())
            }
        }
    };
    Observed {
        log: rec.log,
        cycles,
        threads: stats.into_stats(),
        devices,
    }
}

#[test]
fn wheel_heap_and_legacy_cores_agree_on_random_kernels() {
    let mut rng = Rng(0xC0FFEE);
    for case in 0..24 {
        let (kernel, launch) = gen_kernel(&mut rng);
        let cfg = gen_config(&mut rng);
        let wheel = drive(&kernel, &cfg, &launch, Core::Wheel);
        for core in [Core::Heap, Core::Legacy] {
            let other = drive(&kernel, &cfg, &launch, core);
            assert_eq!(
                wheel.cycles, other.cycles,
                "case {case}: total cycles diverged (wheel {} vs {core:?} {})",
                wheel.cycles, other.cycles
            );
            assert_eq!(
                wheel.threads, other.threads,
                "case {case}: derived statistics diverged vs {core:?}"
            );
            assert_eq!(
                wheel.devices, other.devices,
                "case {case}: device wake attribution diverged vs {core:?}"
            );
            if wheel.log != other.log {
                let first = wheel
                    .log
                    .iter()
                    .zip(other.log.iter())
                    .position(|(x, y)| x != y)
                    .unwrap_or(wheel.log.len().min(other.log.len()));
                panic!(
                    "case {case}: snoop streams diverged at signal {first}: \
                     wheel {:?} vs {core:?} {:?} (lens {} vs {})",
                    wheel.log.get(first),
                    other.log.get(first),
                    wheel.log.len(),
                    other.log.len()
                );
            }
        }
    }
}

#[test]
fn device_wakes_fire_and_are_attributed_identically_across_cores() {
    // Deterministic kernel touching all three device classes: a preloader
    // burst raced by local reads (DmaComplete), then strided external loads
    // from two threads in a region-bearing loop (LineFetch, and ChannelGrant
    // under cross-thread contention).
    let mut kb = KernelBuilder::new("devwake", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let lm = kb.local_mem("lm", Type::F32, 64);
    let acc_v = kb.var("acc", Type::F32);
    let z = kb.c_i64(0);
    let z2 = kb.c_i64(0);
    let burst = kb.c_i64(64);
    kb.preload(lm, a, z, z2, burst);
    // Immediate local read races the DMA.
    let one = kb.c_i64(1);
    let v0 = kb.load_local(lm, one, Type::F32);
    kb.set(acc_v, v0);
    // Strided, region-bearing loop of blocking external loads.
    let n = kb.c_i64(8);
    kb.for_range("s", n, |kb, i| {
        let s16 = kb.c_i64(16);
        let scaled = kb.mul(i, s16);
        let len = kb.c_i64(512);
        let idx = kb.bin(nymble_ir::BinOp::Rem, scaled, len);
        let v = kb.load(a, idx, Type::F32);
        let cur = kb.get(acc_v);
        let sum = kb.add(cur, v);
        kb.set(acc_v, sum);
        let m = kb.c_i64(2);
        kb.for_range("t", m, |kb, _| {
            let cur = kb.get(acc_v);
            let c = kb.c_f32(1.0);
            let s = kb.add(cur, c);
            kb.set(acc_v, s);
        });
    });
    let tid = kb.thread_id();
    let oidx = kb.cast(ScalarType::I64, tid);
    let av = kb.get(acc_v);
    kb.store(out, oidx, av);
    let k = kb.finish();
    let launch = [
        LaunchArg::Buffer((0..512).map(|i| Value::F32(i as f32)).collect()),
        LaunchArg::Buffer(vec![Value::F32(0.0); 2]),
    ];
    let cfg = SimConfig::default().with_fast_launch();
    let wheel = drive(&k, &cfg, &launch, Core::Wheel);
    assert!(
        wheel.devices.dma_wakes > 0,
        "local read must block on the DMA: {:?}",
        wheel.devices
    );
    assert!(
        wheel.devices.line_fetch_wakes > 0,
        "strided loads must block on line fetches: {:?}",
        wheel.devices
    );
    assert!(wheel.devices.blocked_cycles > 0);
    for core in [Core::Heap, Core::Legacy] {
        let other = drive(&k, &cfg, &launch, core);
        assert_eq!(wheel.devices, other.devices, "vs {core:?}");
        assert_eq!(wheel.cycles, other.cycles, "vs {core:?}");
        assert_eq!(wheel.log, other.log, "vs {core:?}");
    }
}

#[test]
fn event_core_matches_legacy_on_barrier_with_early_finishers() {
    // Thread-dependent pre-barrier work plus an early-exit pattern: thread 0
    // does nothing before the barrier, others loop. Exercises the
    // finished-thread barrier re-check on both cores.
    let mut kb = KernelBuilder::new("bar_early", 3);
    let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
    let tid = kb.thread_id();
    let tid64 = kb.cast(ScalarType::I64, tid);
    let c32 = kb.c_i64(32);
    let n = kb.mul(tid64, c32);
    let acc_v = kb.var("acc", Type::I32);
    kb.for_range("i", n, |kb, _| {
        let cur = kb.get(acc_v);
        let one = kb.c_i32(1);
        let s = kb.add(cur, one);
        kb.set(acc_v, s);
    });
    kb.barrier();
    let tid2 = kb.thread_id();
    let idx = kb.cast(ScalarType::I64, tid2);
    let av = kb.get(acc_v);
    kb.store(out, idx, av);
    let k = kb.finish();
    let launch = [LaunchArg::Buffer(vec![Value::I32(0); 3])];
    let cfg = SimConfig::default().with_fast_launch();
    let wheel = drive(&k, &cfg, &launch, Core::Wheel);
    for core in [Core::Heap, Core::Legacy] {
        let other = drive(&k, &cfg, &launch, core);
        assert_eq!(wheel.cycles, other.cycles, "vs {core:?}");
        assert_eq!(wheel.log, other.log, "vs {core:?}");
    }
}

#[test]
fn deadlock_reports_are_identical_and_sorted() {
    // A barrier inside a critical section deadlocks every thread. The
    // builder's validation (rightly) refuses to construct this, so forge it
    // by moving a top-level barrier into the critical body after `finish` —
    // exactly the class of broken kernel the deadlock report is for.
    let mut kb = KernelBuilder::new("dl", 2);
    let x = kb.var("x", Type::I32);
    kb.critical(|kb| {
        let one = kb.c_i32(1);
        kb.set(x, one);
    });
    kb.barrier();
    let mut k = kb.finish();
    let barrier = k.body.pop().expect("barrier stmt");
    assert!(matches!(barrier, nymble_ir::stmt::Stmt::Barrier));
    match k.body.last_mut().expect("critical stmt") {
        nymble_ir::stmt::Stmt::Critical { body } => body.push(barrier),
        other => panic!("expected critical, got {other:?}"),
    }
    let accel = compile(&k, &HlsConfig::default());
    let cfg = SimConfig::default().with_fast_launch();
    fn run_to_deadlock<Q: DispatchQueue>(mut sim: SimRun<'_, Q>, core: Core) -> crate::SimError {
        let mut snoop = crate::NullSnoop;
        loop {
            let r = match core {
                Core::Wheel => sim.step(&mut snoop),
                Core::Heap => sim.step_baseline(&mut snoop),
                Core::Legacy => sim.step_legacy(&mut snoop),
            };
            match r {
                Ok(StepStatus::Done) => panic!("expected deadlock"),
                Ok(StepStatus::Running) => continue,
                Err(e) => break e,
            }
        }
    }
    let errs: Vec<crate::SimError> = CORES
        .into_iter()
        .map(|core| match core {
            Core::Wheel => {
                run_to_deadlock(SimRun::new(&k, &accel, &cfg, &[]).expect("valid"), core)
            }
            Core::Heap | Core::Legacy => run_to_deadlock(
                SimRun::<ReadyQueue>::with_queue(&k, &accel, &cfg, &[]).expect("valid"),
                core,
            ),
        })
        .collect();
    assert_eq!(errs[0], errs[1], "deadlock reports must not depend on core");
    assert_eq!(errs[0], errs[2], "deadlock reports must not depend on core");
    let crate::SimError::Deadlock { waiting } = &errs[0] else {
        panic!("expected deadlock, got {:?}", errs[0]);
    };
    // Sorted by thread id and carrying actionable resource details.
    let ids: Vec<u32> = waiting.iter().map(|b| b.thread).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    let text = errs[0].to_string();
    assert!(
        text.contains("waiting at barrier (1/2 arrived)"),
        "barrier detail missing: {text}"
    );
    assert!(
        text.contains("waiting on semaphore held by thread"),
        "semaphore detail missing: {text}"
    );
}
