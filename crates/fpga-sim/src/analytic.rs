//! Analytical fast mode: a memory-bound roofline-style performance model.
//!
//! Estimates a kernel's total cycles without simulating it, in the spirit of
//! the analytical model for memory-bound HLS kernels of Dávila-Guzmán et al.
//! (see PAPERS.md): per-thread loop costs from the compiled schedules
//! (`depth + (n-1)·II`), a bandwidth roofline that widens the effective
//! initiation interval when the aggregate request stream exceeds the DRAM
//! channel, critical-section serialization across threads, and the host's
//! thread-launch ramp.
//!
//! The model is cross-validated against the cycle-level simulator on the
//! GEMM/π reproduction suite (see `crates/bench/tests/analytic_validation.rs`)
//! and is intended for sweep pre-screening: configurations worth a real
//! simulation are found in microseconds instead of minutes.

use crate::config::SimConfig;
use crate::memimg::MemImage;
use nymble_hls::accel::Accelerator;
use nymble_hls::op::OpClass;
use nymble_ir::expr::Expr;
use nymble_ir::kernel::{ArgKind, Kernel};
use nymble_ir::loops::{LoopId, LoopMap};
use nymble_ir::stmt::{Stmt, Unroll};
use nymble_ir::{ExprId, MapDir, Value};

/// What the model predicts limits the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// The datapath issue rate (pipeline II / sequential issue width).
    Compute,
    /// The shared DRAM channel bandwidth.
    Memory,
    /// Critical-section serialization on the hardware semaphore.
    Serialization,
    /// The host's software thread-launch interval.
    LaunchRamp,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Compute => write!(f, "compute"),
            Bound::Memory => write!(f, "memory"),
            Bound::Serialization => write!(f, "serialization"),
            Bound::LaunchRamp => write!(f, "launch-ramp"),
        }
    }
}

/// The analytical model's prediction for one run.
#[derive(Clone, Debug)]
pub struct AnalyticReport {
    /// Predicted total cycles from host start to last thread completion.
    pub total_cycles: u64,
    /// Predicted busy cycles per thread (excluding launch offset).
    pub per_thread: Vec<u64>,
    /// The dominant limiter.
    pub bound: Bound,
    /// Predicted DRAM bytes moved (line traffic, both directions).
    pub dram_bytes: u64,
    /// Total critical-section cycles across threads (serialized resource).
    pub critical_cycles: u64,
}

/// Scalar launch values, indexed like kernel arguments (buffer slots hold a
/// placeholder). The same shape [`nymble_ir::walker::Walker::new`] takes.
pub type ScalarArgs = [Value];

struct Ctx<'k> {
    kernel: &'k Kernel,
    accel: &'k Accelerator,
    cfg: &'k SimConfig,
    loops: LoopMap,
    scalars: &'k ScalarArgs,
    /// Pristine launch-time memory image for resolving loads from
    /// device-read-only (`map(to)`) buffers — lets memory-dependent loop
    /// bounds (CSR row pointers) price statically. `None` = loads are
    /// opaque.
    mem: Option<&'k MemImage>,
    tid: i64,
    /// Bindings of loop induction variables during the static walk
    /// (`VarId.0` → value), for bound/stride evaluation.
    bindings: Vec<Option<i64>>,
    /// Which bindings are first-iteration approximations (the loop's cost
    /// is body-at-iter-0 × trip) rather than exact per-iteration values.
    approx: Vec<bool>,
}

/// Per-block static cost summary for one thread.
#[derive(Clone, Copy, Debug, Default)]
struct BlockCost {
    /// Thread-local busy cycles.
    cycles: u64,
    /// DRAM line traffic in bytes attributed to this block.
    dram_bytes: u64,
    /// Cycles spent inside critical sections (included in `cycles` too).
    critical: u64,
    /// Busy cycles of this thread's preloader DMA channel (bursts run on
    /// the engine, overlapped with compute, but serialize per master).
    dma_busy: u64,
    /// Cross-thread memory-contention cycles (included in `cycles` too).
    /// Tracked separately because contention is system time — when every
    /// thread queues on the same banks, the host launch ramp hides under
    /// it instead of stacking on top (see the span model in
    /// [`estimate_impl`]).
    contention: u64,
}

impl BlockCost {
    fn add(&mut self, o: BlockCost) {
        self.cycles += o.cycles;
        self.dram_bytes += o.dram_bytes;
        self.critical += o.critical;
        self.dma_busy += o.dma_busy;
        self.contention += o.contention;
    }
    fn scale(&self, n: u64) -> BlockCost {
        BlockCost {
            cycles: self.cycles * n,
            dram_bytes: self.dram_bytes * n,
            critical: self.critical * n,
            dma_busy: self.dma_busy * n,
            contention: self.contention * n,
        }
    }
}

/// Estimate the run analytically. Returns `None` when the kernel's loop
/// bounds cannot be resolved statically (bounds must be constants, scalar
/// launch arguments, or affine in thread id / num_threads / enclosing
/// induction variables).
pub fn estimate(
    kernel: &Kernel,
    accel: &Accelerator,
    cfg: &SimConfig,
    scalars: &ScalarArgs,
) -> Option<AnalyticReport> {
    estimate_impl(kernel, accel, cfg, scalars, None)
}

/// [`estimate`] with a launch-time memory image: loads from device-read-only
/// (`map(to)`) buffers resolve against the pristine image, so kernels whose
/// loop bounds come from memory — CSR SpMV's `row_ptr[r]..row_ptr[r+1]`
/// inner loop — price statically too. Loops with memory-dependent inner
/// bounds are walked iteration by iteration (each row priced with its true
/// non-zero count) instead of body-at-iteration-0 × trip.
pub fn estimate_with_image(
    kernel: &Kernel,
    accel: &Accelerator,
    cfg: &SimConfig,
    scalars: &ScalarArgs,
    mem: &MemImage,
) -> Option<AnalyticReport> {
    estimate_impl(kernel, accel, cfg, scalars, Some(mem))
}

fn estimate_impl(
    kernel: &Kernel,
    accel: &Accelerator,
    cfg: &SimConfig,
    scalars: &ScalarArgs,
    mem: Option<&MemImage>,
) -> Option<AnalyticReport> {
    let loops = LoopMap::build(kernel);
    let n = kernel.num_threads as usize;
    let mut per_thread = Vec::with_capacity(n);
    let mut contention = Vec::with_capacity(n);
    let mut dram_bytes = 0u64;
    let mut critical_cycles = 0u64;
    for t in 0..n {
        let mut ctx = Ctx {
            kernel,
            accel,
            cfg,
            loops: LoopMap::build(kernel),
            scalars,
            mem,
            tid: t as i64,
            bindings: vec![None; kernel.vars.len()],
            approx: vec![false; kernel.vars.len()],
        };
        let c = block_cost(&mut ctx, &kernel.body)?;
        // A thread is done no earlier than its compute chain *and* no
        // earlier than its DMA engine has streamed every burst it issued.
        per_thread.push(c.cycles.max(c.dma_busy));
        contention.push(c.contention);
        dram_bytes += c.dram_bytes;
        critical_cycles += c.critical;
    }
    let _ = loops;

    // Span model: thread t starts at t·launch_interval and runs its busy
    // cycles; the run ends when the last thread finishes. Cross-thread
    // memory contention is *system* time — the shared banks are busy
    // serving everyone from the first thread onward — so the launch ramp
    // hides under it rather than stacking on top: the span is the later
    // of (ramp + contention-free busy) and the fully contended busy
    // measured from host start.
    let ramp_span = per_thread
        .iter()
        .zip(&contention)
        .enumerate()
        .map(|(t, (&c, &ctn))| (t as u64 * cfg.launch_interval + c.saturating_sub(ctn)).max(c))
        .max()
        .unwrap_or(0);

    // Serialization floor: critical sections cannot overlap, so the run is
    // at least first-start + total critical time.
    let serial_floor = critical_cycles;

    // Memory floor: all line traffic must cross the shared channel.
    let memory_floor = dram_bytes / cfg.dram_bytes_per_cycle.max(1) as u64;

    let total = ramp_span.max(serial_floor).max(memory_floor);
    let max_busy = per_thread.iter().copied().max().unwrap_or(0);
    let bound = if total == ramp_span {
        if (kernel.num_threads as u64 - 1) * cfg.launch_interval > max_busy {
            Bound::LaunchRamp
        } else if memory_floor * 10 >= total * 7 {
            Bound::Memory
        } else {
            Bound::Compute
        }
    } else if total == serial_floor {
        Bound::Serialization
    } else {
        Bound::Memory
    };

    Some(AnalyticReport {
        total_cycles: total,
        per_thread,
        bound,
        dram_bytes,
        critical_cycles,
    })
}

/// Cost of one straight-line block for the context thread.
fn block_cost(ctx: &mut Ctx<'_>, block: &[Stmt]) -> Option<BlockCost> {
    let mut total = BlockCost::default();
    for s in block {
        total.add(stmt_cost(ctx, s)?);
    }
    Some(total)
}

fn stmt_cost(ctx: &mut Ctx<'_>, s: &Stmt) -> Option<BlockCost> {
    let cfg = ctx.cfg;
    match s {
        Stmt::Assign { .. } | Stmt::StoreLocal { .. } => Some(BlockCost {
            cycles: seq_stmt_cycles(ctx, s),
            ..Default::default()
        }),
        Stmt::StoreExt { value, .. } => {
            let bytes = expr_bytes(ctx, *value) as u64;
            Some(BlockCost {
                cycles: seq_stmt_cycles(ctx, s),
                dram_bytes: bytes.max(cfg.dram_line_bytes as u64 / 2),
                ..Default::default()
            })
        }
        Stmt::Preload { len, .. } | Stmt::WriteBack { len, .. } => {
            let n = eval_i64(ctx, *len)? as u64;
            let elem = match s {
                Stmt::Preload { mem, .. } | Stmt::WriteBack { mem, .. } => {
                    ctx.kernel.local_mem(*mem).elem.size_bytes() as u64
                }
                _ => unreachable!(),
            };
            let bytes = n * elem;
            // Thread pays issue cost; the DMA engine streams the burst
            // (setup + channel occupancy per burst, serialized per master).
            let occupancy = (bytes.max(1)).div_ceil(cfg.dram_bytes_per_cycle as u64);
            Some(BlockCost {
                cycles: cfg.burst_issue_cost + cfg.stmt_base_cost,
                dram_bytes: bytes,
                dma_busy: cfg.dma_setup + occupancy,
                ..Default::default()
            })
        }
        Stmt::Critical { body } => {
            let inner = block_cost(ctx, body)?;
            let c = cfg.sem_acquire_latency + inner.cycles + cfg.sem_release_latency;
            Some(BlockCost {
                cycles: c,
                dram_bytes: inner.dram_bytes,
                critical: c,
                dma_busy: inner.dma_busy,
                contention: inner.contention,
            })
        }
        Stmt::Barrier => Some(BlockCost {
            cycles: cfg.barrier_latency,
            ..Default::default()
        }),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            // Resolve the branch when possible; otherwise price the more
            // expensive side (the datapath computes both). A condition that
            // depends on an enclosing loop's induction variable would
            // resolve to its *first-iteration* value only (the static walk
            // binds induction variables to iteration 0), so it is treated
            // as unresolvable — e.g. double buffering's `if (kb < nblocks)`
            // compute guard holds on every iteration but the first.
            let base = BlockCost {
                cycles: seq_stmt_cycles(ctx, s),
                ..Default::default()
            };
            let mut out = base;
            let resolved = if uses_bound_var(ctx, *cond) {
                None
            } else {
                eval_i64(ctx, *cond)
            };
            match resolved {
                Some(c) => out.add(block_cost(ctx, if c != 0 { then_b } else { else_b })?),
                None => {
                    let a = block_cost(ctx, then_b)?;
                    let b = block_cost(ctx, else_b)?;
                    out.add(if a.cycles >= b.cycles { a } else { b });
                }
            }
            Some(out)
        }
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
            unroll,
        } => {
            let s0 = eval_i64(ctx, *start)?;
            let e0 = eval_i64(ctx, *end)?;
            let st = eval_i64(ctx, *step)?;
            if st == 0 {
                return None;
            }
            let trip = if st > 0 {
                ((e0 - s0).max(0) as u64).div_ceil(st as u64)
            } else {
                ((s0 - e0).max(0) as u64).div_ceil((-st) as u64)
            };
            // Bind the induction variable to the first iteration's value so
            // inner bounds/strides that depend on it resolve.
            let slot = var.0 as usize;
            let saved = ctx.bindings[slot];
            let saved_approx = ctx.approx[slot];
            ctx.bindings[slot] = Some(s0);
            ctx.approx[slot] = true;

            let out = if *unroll == Unroll::Full {
                // Inlined into the parent graph: body cost × trip, no loop
                // control events.
                let body_c = block_cost(ctx, body)?;
                Some(body_c.scale(trip))
            } else {
                let id = ctx.loops.id_of(s);
                loop_cost(ctx, s, id, trip, (s0, st), body)
            };
            ctx.bindings[slot] = saved;
            ctx.approx[slot] = saved_approx;
            out.map(|mut c| {
                c.cycles += bound_load_cycles(ctx, s);
                c
            })
        }
    }
}

/// Sequential loops at most this long are walked iteration by iteration
/// (exact induction values, exact branch resolution) instead of priced as
/// body-at-iteration-0 × trip. Keeps double buffering's parity/boundary
/// guards honest while long loops stay O(1) in their trip count.
const EXACT_SEQ_TRIP: u64 = 16;

/// Ceiling on the image-driven exact walk (per thread): keeps the model
/// O(rows) on irregular kernels while refusing pathological trip counts.
const MAX_EXACT_WALK: u64 = 1 << 16;

/// Does the expression read external memory anywhere? Such values are
/// data-dependent: the image can evaluate them at one iteration, but the
/// result carries no structure (a gather index's "stride" between the
/// first two iterations says nothing about the rest).
fn expr_has_load(kernel: &Kernel, id: ExprId) -> bool {
    let e = kernel.expr(id);
    matches!(e, Expr::LoadExt { .. }) || e.children().into_iter().any(|c| expr_has_load(kernel, c))
}

/// Does any loop (at any nesting depth) in `block` draw its bounds from
/// external memory? Those trips vary per enclosing iteration.
fn has_mem_dependent_loop(kernel: &Kernel, block: &[Stmt]) -> bool {
    block.iter().any(|s| match s {
        Stmt::For {
            start,
            end,
            step,
            body,
            ..
        } => {
            expr_has_load(kernel, *start)
                || expr_has_load(kernel, *end)
                || expr_has_load(kernel, *step)
                || has_mem_dependent_loop(kernel, body)
        }
        Stmt::If { then_b, else_b, .. } => {
            has_mem_dependent_loop(kernel, then_b) || has_mem_dependent_loop(kernel, else_b)
        }
        Stmt::Critical { body } => has_mem_dependent_loop(kernel, body),
        _ => false,
    })
}

/// Cost of one non-unrolled loop with a statically known trip count.
/// `(s0, st)` are the induction variable's start value and step.
fn loop_cost(
    ctx: &mut Ctx<'_>,
    stmt: &Stmt,
    id: LoopId,
    trip: u64,
    (s0, st): (i64, i64),
    body: &[Stmt],
) -> Option<BlockCost> {
    let cfg = ctx.cfg;
    if trip == 0 {
        return Some(BlockCost::default());
    }
    let pipelined = pipelined_schedule(ctx.accel, id);
    match pipelined {
        Some((ii, depth)) => {
            // Traffic and roofline: bytes the loop moves per iteration.
            let tr = iter_traffic(ctx, stmt, body);
            // Effective II: the channel serves all threads; a thread cannot
            // issue iterations faster than its share of the bandwidth
            // sustains its per-iteration line traffic.
            let bw = cfg.dram_bytes_per_cycle.max(1) as u64;
            let mem_ii = tr.line_bytes * ctx.kernel.num_threads as u64 / bw;
            // Latency term: the VLO stage waits for the worst response of
            // each iteration, so a read miss stalls the pipeline by the
            // round trip beyond the scheduler's assumed load latency
            // (`iter_stall` in the executor). `lat_iter` is that stall
            // amortized over iterations by each stream's miss frequency.
            let eff_ii = (ii + tr.lat_iter).max(mem_ii);
            // Restart contention: every time this loop is re-entered (each
            // outer sequential iteration — e.g. each CSR row), the T
            // threads re-synchronize on the sequential region and then
            // blast coincident pipeline-fill bursts of their *independent*
            // miss streams (gathers, per-thread strided walks) at the
            // DRAM. Once filled, the steady-state misses are spread over
            // `eff_ii` and rarely collide, so the cost is per loop entry,
            // not per iteration. Measured against the cycle simulator on
            // CSR SpMV the penalty has two regimes, both taking the
            // quadratic κ·(T·m)²·hold as an upper bound (κ = 4.5; this
            // also vanishes for GEMM/π, whose independent miss frequency
            // is ≈ 0 — their streams are shared or line-buffered):
            //
            // * **Burst regime** (T ≲ banks/m): collision probability and
            //   queue depth both scale with burst intensity, so the
            //   quadratic itself is the cost, clamped by 2× full
            //   serialization (each fetch exposing its round trip plus
            //   the queue ahead of it).
            // * **Saturated regime** (T ≳ banks/m): the banks never
            //   drain between rows and the per-fetch delay grows linearly
            //   with T; the whole sweep's total flattens out. Calibrated:
            //   `m·trip·(κ_sat·T·hold − miss_stall)` with κ_sat = 9.4,
            //   within ±15% of the simulator from T = 16 to 256.
            //
            // Shared lockstep streams are excluded here; they are priced
            // by the `shared_miss_streams` term in `iter_traffic`.
            let nt = ctx.kernel.num_threads as u64;
            let restart = if nt > 1 && tr.indep_miss_freq > 0.0 {
                let line = cfg.dram_line_bytes as u64;
                let hold_per_bank =
                    (line.div_ceil(bw) + cfg.dram_bank_busy) as f64 / cfg.dram_banks.max(1) as f64;
                let m = tr.indep_miss_freq;
                let burst = nt as f64 * m;
                let quad = 4.5 * burst * burst * hold_per_bank;
                let miss_stall = (line.div_ceil(bw) + cfg.dram_latency)
                    .saturating_sub(cfg.assumed_load_latency)
                    as f64;
                let serial = trip as f64 * m * (miss_stall + burst * hold_per_bank);
                let sat = trip as f64 * m * (9.4 * nt as f64 * hold_per_bank - miss_stall);
                quad.min((2.0 * serial).max(sat)).max(0.0).round() as u64
            } else {
                0
            };
            let cycles = depth + restart + (trip - 1) * eff_ii;
            Some(BlockCost {
                cycles,
                dram_bytes: tr.line_bytes * trip,
                critical: 0,
                dma_busy: 0,
                contention: restart,
            })
        }
        None => {
            // Sequential region: per-iteration body cost + loop control.
            // Memory-dependent inner bounds (CSR row lengths) vary per
            // iteration, so body-at-iteration-0 × trip would price every
            // row like the first — walk those exactly whenever the image
            // can resolve them.
            let exact = trip <= EXACT_SEQ_TRIP
                || (ctx.mem.is_some()
                    && trip <= MAX_EXACT_WALK
                    && has_mem_dependent_loop(ctx.kernel, body));
            if exact {
                // Short loop: walk every iteration with its true induction
                // value, so iteration-dependent branches and strides price
                // exactly (double buffering's `kb < nblocks` guard).
                let slot = match stmt {
                    Stmt::For { var, .. } => var.0 as usize,
                    _ => unreachable!("loop_cost on non-For"),
                };
                let saved_approx = ctx.approx[slot];
                ctx.approx[slot] = false;
                let mut total = BlockCost::default();
                for it in 0..trip {
                    ctx.bindings[slot] = Some(s0 + it as i64 * st);
                    let Some(c) = block_cost(ctx, body) else {
                        ctx.approx[slot] = saved_approx;
                        return None;
                    };
                    total.add(c);
                    total.cycles += 1; // LoopIter handshake
                }
                ctx.approx[slot] = saved_approx;
                total.cycles += 1; // LoopExit
                return Some(total);
            }
            let body_c = block_cost(ctx, body)?;
            let per_iter = body_c.cycles + 1; // LoopIter handshake
            Some(BlockCost {
                cycles: trip * per_iter + 1, // + LoopExit
                dram_bytes: body_c.dram_bytes * trip,
                critical: body_c.critical * trip,
                dma_busy: body_c.dma_busy * trip,
                contention: body_c.contention * trip,
            })
        }
    }
}

/// Per-iteration DRAM behaviour of a pipelined loop body.
#[derive(Clone, Copy, Debug, Default)]
struct IterTraffic {
    /// DRAM line traffic in bytes per iteration (amortized).
    line_bytes: u64,
    /// Requested payload bytes per iteration.
    req_bytes: u64,
    /// Amortized pipeline stall cycles per iteration from read-miss
    /// latency (beyond the scheduler's assumed load latency).
    lat_iter: u64,
    /// Expected line fetches per iteration from *thread-independent*
    /// streams (gathers, per-thread strided walks): a line-per-access
    /// stream contributes 1, a sequential stream its per-line miss
    /// frequency. Shared (lockstep) streams are excluded — they are priced
    /// by the coincident-burst term instead.
    indep_miss_freq: f64,
}

/// Per-iteration DRAM traffic of a pipelined loop body. Line traffic
/// honours the per-(thread, buffer) line buffer: an access stream whose
/// stride stays inside a line fetches each line once; a stride of a line
/// or more fetches a full line per access. Read misses also contribute an
/// amortized latency stall (`lat_iter`): writes are posted, but a missing
/// load makes the iteration wait the full round trip minus the assumed
/// load latency already budgeted in the schedule.
fn iter_traffic(ctx: &mut Ctx<'_>, stmt: &Stmt, body: &[Stmt]) -> IterTraffic {
    let line = ctx.cfg.dram_line_bytes as u64;
    let bw = ctx.cfg.dram_bytes_per_cycle.max(1) as u64;
    // Round trip of one line fetch, minus the latency the pipelined
    // schedule already tolerates (mirrors `iter_stall` in the executor).
    let miss_stall =
        (line.div_ceil(bw) + ctx.cfg.dram_latency).saturating_sub(ctx.cfg.assumed_load_latency);
    let mut out = IterTraffic::default();
    let (var, start, step) = match stmt {
        Stmt::For {
            var, start, step, ..
        } => (*var, *start, *step),
        _ => return out,
    };
    let (Some(s0), Some(st)) = (eval_i64(ctx, start), eval_i64(ctx, step)) else {
        return out;
    };
    let mut accesses: Vec<ExtAccess> = Vec::new();
    collect_ext_accesses(ctx.kernel, body, &mut accesses);
    let mut shared_miss_streams = 0u64;
    for a in accesses {
        out.req_bytes += a.bytes as u64;
        // Stride analysis: evaluate the index at iteration 0 and 1.
        let slot = var.0 as usize;
        let saved = ctx.bindings[slot];
        ctx.bindings[slot] = Some(s0);
        let i0 = eval_i64(ctx, a.index);
        ctx.bindings[slot] = Some(s0 + st);
        let i1 = eval_i64(ctx, a.index);
        ctx.bindings[slot] = saved;
        // A data-dependent index (gather through a loaded value) is priced
        // line-per-access even when the memory image could evaluate it: the
        // first two iterations' difference is not a stride.
        let stride_bytes = if expr_has_load(ctx.kernel, a.index) {
            line
        } else {
            match (i0, i1) {
                (Some(x), Some(y)) => (y - x).unsigned_abs() * a.bytes as u64,
                // Unresolvable index: assume line-per-access.
                _ => line,
            }
        };
        let lat = if ctx.cfg.line_buffers && stride_bytes < line {
            // Sequential-ish: each line is fetched once and reused; a miss
            // (and its stall) happens once per line's worth of iterations.
            out.line_bytes += stride_bytes.max(a.bytes as u64).min(line);
            out.indep_miss_freq += stride_bytes as f64 / line as f64;
            miss_stall * stride_bytes / line
        } else {
            out.line_bytes += line;
            // A gather index is never "shared": the sharing probe re-reads
            // the same stale outer-loop bindings for both thread ids, so a
            // load-dependent index trivially collides with itself even
            // though each thread gathers through its own rows.
            if !a.is_write
                && !expr_has_load(ctx.kernel, a.index)
                && shared_across_threads(ctx, var, start, a.index, i0)
            {
                shared_miss_streams += 1;
            } else {
                out.indep_miss_freq += 1.0;
            }
            miss_stall
        };
        // Within one iteration concurrent misses overlap (the VLO stage
        // waits for the worst response), so streams combine by max.
        if !a.is_write {
            out.lat_iter = out.lat_iter.max(lat);
        }
    }
    // Thread-invariant miss streams (every thread walks the same lines,
    // e.g. a shared B column) put the threads in near-lockstep: each
    // iteration T coincident bursts of `shared_miss_streams` line fetches
    // queue on the one-line-per-occupancy channel, so a burst waits behind
    // the other threads' bursts.
    let nt = ctx.kernel.num_threads as u64;
    if nt > 1 && shared_miss_streams > 0 {
        out.lat_iter += (nt - 1) * shared_miss_streams * line.div_ceil(bw);
    }
    out
}

/// Would another thread's iteration-0 address be the same? Detects miss
/// streams shared across threads (every thread reading the same B column).
/// Heuristic: re-evaluates the loop start and index under a different
/// thread id; enclosing induction bindings are not re-derived, so
/// tid-dependence routed through *outer* loop variables is missed — those
/// streams start on different rows and rarely collide anyway.
fn shared_across_threads(
    ctx: &mut Ctx<'_>,
    var: nymble_ir::VarId,
    start: ExprId,
    index: ExprId,
    i0: Option<i64>,
) -> bool {
    let Some(i0) = i0 else { return false };
    let tid_saved = ctx.tid;
    let slot = var.0 as usize;
    let saved = ctx.bindings[slot];
    ctx.tid = (tid_saved + 1) % ctx.kernel.num_threads as i64;
    let alt = eval_i64(ctx, start).and_then(|s| {
        ctx.bindings[slot] = Some(s);
        eval_i64(ctx, index)
    });
    ctx.bindings[slot] = saved;
    ctx.tid = tid_saved;
    alt == Some(i0)
}

/// One external access found by [`collect_ext_accesses`].
#[derive(Clone, Copy, Debug)]
struct ExtAccess {
    /// Index expression of the access (for stride analysis).
    index: ExprId,
    /// Payload bytes per access.
    bytes: u32,
    /// Posted store (no response latency) vs. load.
    is_write: bool,
}

/// All external accesses (loads and stores) directly inside `block`,
/// excluding nested non-unrolled loops (they cost themselves).
fn collect_ext_accesses(kernel: &Kernel, block: &[Stmt], out: &mut Vec<ExtAccess>) {
    fn walk_expr(kernel: &Kernel, id: ExprId, out: &mut Vec<ExtAccess>) {
        match kernel.expr(id) {
            Expr::LoadExt { index, ty, .. } => {
                out.push(ExtAccess {
                    index: *index,
                    bytes: ty.size_bytes(),
                    is_write: false,
                });
                walk_expr(kernel, *index, out);
            }
            e => {
                for c in e.children() {
                    walk_expr(kernel, c, out);
                }
            }
        }
    }
    for s in block {
        match s {
            Stmt::Assign { expr, .. } => walk_expr(kernel, *expr, out),
            Stmt::StoreExt { buf, index, value } => {
                let bytes = kernel.buffer_elem_size(*buf);
                out.push(ExtAccess {
                    index: *index,
                    bytes,
                    is_write: true,
                });
                walk_expr(kernel, *index, out);
                walk_expr(kernel, *value, out);
            }
            Stmt::StoreLocal { index, value, .. } => {
                walk_expr(kernel, *index, out);
                walk_expr(kernel, *value, out);
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_ext_accesses(kernel, then_b, out);
                collect_ext_accesses(kernel, else_b, out);
            }
            Stmt::For { body, unroll, .. } if *unroll == Unroll::Full => {
                collect_ext_accesses(kernel, body, out);
            }
            _ => {}
        }
    }
}

/// Pipelined `(ii, depth)` of a loop, mirroring the executor's
/// `loop_mode` decision.
fn pipelined_schedule(accel: &Accelerator, id: LoopId) -> Option<(u64, u64)> {
    let sched = accel.loop_schedules[id.0 as usize].as_ref()?;
    let dfg = accel.loop_dfgs[id.0 as usize].as_ref()?;
    let has_region = dfg.count(OpClass::InnerLoop) > 0
        || dfg.count(OpClass::CriticalRegion) > 0
        || dfg.count(OpClass::Burst) > 0;
    if has_region {
        None
    } else {
        Some((sched.ii as u64, sched.depth as u64))
    }
}

/// Sequential-region cycles of one statement (mirrors the executor's
/// `StepEvent::Ops` pricing: base cost + work / issue width). External
/// loads in sequential code wait the full DRAM round trip; the model
/// assumes they miss, which holds for the dominant pattern (read-modify-
/// write in critical sections invalidates the port line buffer).
fn seq_stmt_cycles(ctx: &Ctx<'_>, s: &Stmt) -> u64 {
    let work = stmt_op_count(ctx.kernel, s);
    let line = ctx.cfg.dram_line_bytes as u64;
    let bw = ctx.cfg.dram_bytes_per_cycle.max(1) as u64;
    let miss = line.div_ceil(bw) + ctx.cfg.dram_latency;
    let loads = stmt_ext_loads(ctx.kernel, s);
    ctx.cfg.stmt_base_cost + work.div_ceil(ctx.cfg.seq_issue_width as u64) + loads * miss
}

/// Cycles to evaluate a loop's bound expressions when they load from
/// external memory (the CSR `row_ptr[r]..row_ptr[r+1]` pattern). Zero for
/// the common affine-bound loops. With line buffers on, adjacent pointers
/// into the same buffer share a fetched line, so each distinct buffer pays
/// one round trip per evaluation; without them every load pays its own.
fn bound_load_cycles(ctx: &Ctx<'_>, s: &Stmt) -> u64 {
    let loads = stmt_ext_loads(ctx.kernel, s);
    if loads == 0 {
        return 0;
    }
    let line = ctx.cfg.dram_line_bytes as u64;
    let bw = ctx.cfg.dram_bytes_per_cycle.max(1) as u64;
    let miss = line.div_ceil(bw) + ctx.cfg.dram_latency;
    if !ctx.cfg.line_buffers {
        return loads * miss;
    }
    fn collect_bufs(kernel: &Kernel, id: ExprId, out: &mut Vec<u32>) {
        let e = kernel.expr(id);
        if let Expr::LoadExt { buf, .. } = e {
            if !out.contains(&buf.0) {
                out.push(buf.0);
            }
        }
        for c in e.children() {
            collect_bufs(kernel, c, out);
        }
    }
    let mut bufs = Vec::new();
    if let Stmt::For {
        start, end, step, ..
    } = s
    {
        collect_bufs(ctx.kernel, *start, &mut bufs);
        collect_bufs(ctx.kernel, *end, &mut bufs);
        collect_bufs(ctx.kernel, *step, &mut bufs);
    }
    bufs.len() as u64 * miss
}

/// External loads a statement's directly-evaluated expressions perform.
fn stmt_ext_loads(kernel: &Kernel, s: &Stmt) -> u64 {
    fn expr_loads(kernel: &Kernel, id: ExprId) -> u64 {
        let e = kernel.expr(id);
        let own = matches!(e, Expr::LoadExt { .. }) as u64;
        own + e
            .children()
            .into_iter()
            .map(|c| expr_loads(kernel, c))
            .sum::<u64>()
    }
    match s {
        Stmt::Assign { expr, .. } => expr_loads(kernel, *expr),
        Stmt::StoreExt { index, value, .. } | Stmt::StoreLocal { index, value, .. } => {
            expr_loads(kernel, *index) + expr_loads(kernel, *value)
        }
        Stmt::If { cond, .. } => expr_loads(kernel, *cond),
        Stmt::For {
            start, end, step, ..
        } => expr_loads(kernel, *start) + expr_loads(kernel, *end) + expr_loads(kernel, *step),
        _ => 0,
    }
}

/// Static operation count of the expressions a statement evaluates directly.
fn stmt_op_count(kernel: &Kernel, s: &Stmt) -> u64 {
    fn expr_ops(kernel: &Kernel, id: ExprId) -> u64 {
        let e = kernel.expr(id);
        let own = match e {
            Expr::Unary(..) | Expr::Binary(..) | Expr::Cast(..) | Expr::Select { .. } => 1,
            Expr::LoadLocal { .. } => 1,
            _ => 0,
        };
        own + e
            .children()
            .into_iter()
            .map(|c| expr_ops(kernel, c))
            .sum::<u64>()
    }
    match s {
        Stmt::Assign { expr, .. } => expr_ops(kernel, *expr),
        Stmt::StoreExt { index, value, .. } | Stmt::StoreLocal { index, value, .. } => {
            expr_ops(kernel, *index) + expr_ops(kernel, *value)
        }
        Stmt::If { cond, .. } => expr_ops(kernel, *cond),
        Stmt::For {
            start, end, step, ..
        } => expr_ops(kernel, *start) + expr_ops(kernel, *end) + expr_ops(kernel, *step),
        _ => 0,
    }
}

/// Does the expression reference a loop induction variable whose binding
/// is a first-iteration *approximation*? (Exactly-walked short loops bind
/// true per-iteration values, which are safe to resolve against.)
fn uses_bound_var(ctx: &Ctx<'_>, id: ExprId) -> bool {
    match ctx.kernel.expr(id) {
        Expr::Var(v) => ctx.bindings[v.0 as usize].is_some() && ctx.approx[v.0 as usize],
        e => e.children().into_iter().any(|c| uses_bound_var(ctx, c)),
    }
}

/// Best-effort constant evaluation of an integer expression under the
/// context's thread id and loop-variable bindings.
fn eval_i64(ctx: &Ctx<'_>, id: ExprId) -> Option<i64> {
    match ctx.kernel.expr(id) {
        Expr::Const(v) => Some(v.as_i64()),
        Expr::ThreadId => Some(ctx.tid),
        Expr::NumThreads => Some(ctx.kernel.num_threads as i64),
        Expr::Arg(a) => match ctx.kernel.args[a.0 as usize].kind {
            ArgKind::Scalar(_) => Some(ctx.scalars[a.0 as usize].as_i64()),
            _ => None,
        },
        Expr::Var(v) => ctx.bindings[v.0 as usize],
        Expr::Cast(_, a) => eval_i64(ctx, *a),
        Expr::Unary(op, a) => {
            let av = eval_i64(ctx, *a)?;
            Some(nymble_ir::expr::eval_unop(*op, &Value::I64(av)).as_i64())
        }
        Expr::Binary(op, a, b) => {
            let av = eval_i64(ctx, *a)?;
            let bv = eval_i64(ctx, *b)?;
            if matches!(op, nymble_ir::BinOp::Div | nymble_ir::BinOp::Rem) && bv == 0 {
                return None;
            }
            Some(nymble_ir::expr::eval_binop(*op, &Value::I64(av), &Value::I64(bv)).as_i64())
        }
        Expr::Select {
            cond,
            then_v,
            else_v,
        } => {
            let c = eval_i64(ctx, *cond)?;
            if c != 0 {
                eval_i64(ctx, *then_v)
            } else {
                eval_i64(ctx, *else_v)
            }
        }
        Expr::LoadExt { buf, index, .. } => {
            // Only with a memory image, and only from device-read-only
            // buffers: `map(to)` contents never change during the run, so
            // the pristine launch image is the load's value on every
            // iteration. Writable buffers stay opaque — the device may have
            // overwritten them by the time the load executes.
            let img = ctx.mem?;
            let ArgKind::Buffer {
                map: MapDir::To, ..
            } = ctx.kernel.args[buf.0 as usize].kind
            else {
                return None;
            };
            let idx = eval_i64(ctx, *index)?;
            let v = img.buffer(*buf).get(usize::try_from(idx).ok()?)?;
            Some(v.as_i64())
        }
        _ => None,
    }
}

/// Bytes moved by the value expression of an external store.
fn expr_bytes(ctx: &Ctx<'_>, id: ExprId) -> u32 {
    match ctx.kernel.expr(id) {
        Expr::Const(v) => v.ty().size_bytes(),
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_hls::accel::{compile, HlsConfig};
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    #[test]
    fn simple_pipelined_loop_is_depth_plus_ii() {
        let mut kb = KernelBuilder::new("axpy", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let acc_v = kb.var("acc", Type::F32);
        let n = kb.c_i64(100);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc_v);
            let s = kb.add(cur, v);
            kb.set(acc_v, s);
        });
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let cfg = SimConfig::default().with_fast_launch();
        let r = estimate(&k, &acc, &cfg, &[Value::I32(0)]).expect("static bounds");
        assert!(r.total_cycles > 0);
        assert_eq!(r.per_thread.len(), 1);
        // 100 sequential f32 loads: well under one line per iteration.
        assert!(r.dram_bytes >= 400, "dram bytes {}", r.dram_bytes);
    }

    #[test]
    fn unresolvable_bounds_return_none() {
        // Loop bound loaded from memory: not statically resolvable.
        let mut kb = KernelBuilder::new("dyn", 1);
        let a = kb.buffer("A", ScalarType::I64, MapDir::To);
        let z = kb.c_i64(0);
        let bound = kb.load(a, z, Type::I64);
        kb.for_range("i", bound, |_, _| {});
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let cfg = SimConfig::default();
        assert!(estimate(&k, &acc, &cfg, &[Value::I32(0)]).is_none());
    }

    #[test]
    fn launch_ramp_dominates_tiny_kernels() {
        let mut kb = KernelBuilder::new("tiny", 8);
        let x = kb.var("x", Type::I32);
        let c = kb.c_i32(1);
        kb.set(x, c);
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let cfg = SimConfig::default(); // full 880k launch interval
        let r = estimate(&k, &acc, &cfg, &[]).expect("static");
        assert_eq!(r.bound, Bound::LaunchRamp);
        assert!(r.total_cycles >= 7 * cfg.launch_interval);
    }

    #[test]
    fn critical_only_kernel_is_serialization_bound() {
        let mut kb = KernelBuilder::new("crit", 4);
        let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
        let n = kb.c_i64(200);
        kb.for_range("i", n, |kb, _| {
            kb.critical(|kb| {
                let z = kb.c_i64(0);
                let cur = kb.load(out, z, Type::I32);
                let one = kb.c_i32(1);
                let inc = kb.add(cur, one);
                let z2 = kb.c_i64(0);
                kb.store(out, z2, inc);
            });
        });
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let cfg = SimConfig::default().with_fast_launch();
        let r = estimate(&k, &acc, &cfg, &[Value::I32(0)]).expect("static");
        assert_eq!(r.bound, Bound::Serialization);
        assert!(r.critical_cycles > 0);
    }
}
