//! Property suite: the hierarchical timing wheel against the binary-heap
//! reference.
//!
//! [`WheelQueue`] and [`ReadyQueue`] implement the same `DispatchQueue`
//! contract — lexicographic `(time, tid)` min order, tid tie-breaking, O(1)
//! membership, removal from anywhere — but with completely different
//! internals (calendar slots + overflow heap vs. an indexed binary heap).
//! These properties drive both through identical random operation sequences
//! and demand identical observable behaviour at every step, under the one
//! executor-guaranteed precondition: pushes never go into the past
//! (`time >= ` last popped time).
//!
//! Failing seeds replay with `MINIPROP_SEED=<seed> cargo test -p fpga-sim`.

use fpga_sim::wheel::SPAN;
use fpga_sim::{ReadyQueue, WheelQueue};
use miniprop::{forall, Rng};

/// A push offset from `now`: mostly near-future (in the wheel window), with
/// a far-future tail that lands in the overflow heap, quantized half the
/// time so duplicate times across threads are common.
fn gen_offset(g: &mut Rng) -> u64 {
    let off = if g.chance(3, 4) {
        g.range_u64(0, SPAN)
    } else {
        SPAN + g.range_u64(0, 7 * SPAN)
    };
    if g.chance(1, 2) {
        off & !63
    } else {
        off
    }
}

#[test]
fn wheel_matches_heap_reference_under_random_churn() {
    forall(48, |g| {
        let n = g.range_u32(1, 64);
        let mut wheel = WheelQueue::new(n as usize);
        let mut heap = ReadyQueue::new(n as usize);
        let mut now = 0u64;
        let ops = g.range_usize(100, 1200);
        for _ in 0..ops {
            let tid = g.range_u32(0, n);
            assert_eq!(wheel.contains(tid), heap.contains(tid));
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek(), heap.peek());
            match g.range_u32(0, 10) {
                // Push an unqueued thread at or after `now`.
                0..=4 => {
                    if !heap.contains(tid) {
                        let t = now + gen_offset(g);
                        wheel.push(t, tid);
                        heap.push(t, tid);
                    }
                }
                // Pop the minimum; time only moves forward.
                5..=7 => {
                    let w = wheel.pop();
                    assert_eq!(w, heap.pop());
                    if let Some((t, _)) = w {
                        assert!(t >= now, "pop went backwards: {t} < {now}");
                        now = t;
                    }
                }
                // Remove from anywhere — head, middle, overflow tier.
                _ => {
                    assert_eq!(wheel.remove(tid), heap.remove(tid));
                }
            }
        }
        // Drain: the full remaining order must match.
        while let Some(w) = wheel.pop() {
            assert_eq!(Some(w), heap.pop());
        }
        assert!(heap.is_empty());
        assert_eq!(wheel.len(), 0);
    });
}

#[test]
fn duplicate_times_pop_in_thread_id_order() {
    forall(48, |g| {
        let n = g.range_u32(2, 48);
        let mut wheel = WheelQueue::new(n as usize);
        let mut heap = ReadyQueue::new(n as usize);
        // Every thread queued at one of only a few distinct times — heavy
        // duplication, both in-window and in overflow.
        let times: Vec<u64> = (0..g.range_usize(1, 4)).map(|_| gen_offset(g)).collect();
        for tid in 0..n {
            let t = *g.pick(&times);
            wheel.push(t, tid);
            heap.push(t, tid);
        }
        let mut last = None;
        while let Some((t, tid)) = wheel.pop() {
            assert_eq!(Some((t, tid)), heap.pop());
            if let Some((lt, ltid)) = last {
                assert!(
                    (lt, ltid) < (t, tid),
                    "order violated: ({lt},{ltid}) then ({t},{tid})"
                );
            }
            last = Some((t, tid));
        }
        assert!(heap.is_empty());
    });
}

#[test]
fn middle_removals_never_disturb_the_survivors() {
    forall(48, |g| {
        let n = g.range_u32(4, 64);
        let mut wheel = WheelQueue::new(n as usize);
        let mut heap = ReadyQueue::new(n as usize);
        for tid in 0..n {
            let t = gen_offset(g);
            wheel.push(t, tid);
            heap.push(t, tid);
        }
        // Remove an arbitrary subset — specifically not just the head.
        for tid in 0..n {
            if g.chance(1, 2) {
                let rw = wheel.remove(tid);
                assert_eq!(rw, heap.remove(tid));
                assert!(rw.is_some());
                assert!(!wheel.contains(tid));
            }
        }
        // Some removed threads come back at new times (re-queue after wake).
        for tid in 0..n {
            if !heap.contains(tid) && g.chance(1, 3) {
                let t = gen_offset(g);
                wheel.push(t, tid);
                heap.push(t, tid);
            }
        }
        while let Some(w) = wheel.pop() {
            assert_eq!(Some(w), heap.pop());
        }
        assert!(heap.is_empty());
    });
}
