//! Executor edge cases and failure injection: degenerate kernels, extreme
//! configurations, and conditions the decoder/trace path must survive.

use fpga_sim::memimg::LaunchArg;
use fpga_sim::{Executor, NullSnoop, SimConfig, SimError, SimRun, StepStatus};
use nymble_hls::accel::{compile, HlsConfig};
use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type, Value};

fn run(kernel: &Kernel, sim: &SimConfig, launch: &[LaunchArg]) -> fpga_sim::RunResult {
    let acc = compile(kernel, &HlsConfig::default());
    Executor::run(kernel, &acc, sim, launch, &mut NullSnoop).expect("simulation failed")
}

#[test]
fn empty_kernel_terminates_immediately() {
    let kb = KernelBuilder::new("empty", 4);
    let k = kb.finish();
    let r = run(&k, &SimConfig::default().with_fast_launch(), &[]);
    assert!(r.total_cycles < 10_000);
    assert_eq!(r.stats.total_flops(), 0);
}

#[test]
fn zero_trip_loops_cost_almost_nothing() {
    let mut kb = KernelBuilder::new("zero_trip", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let x = kb.var("x", Type::F32);
    let zero = kb.c_i64(0);
    let end = kb.c_i64(0); // empty range
    let one = kb.c_i64(1);
    kb.for_each("i", zero, end, one, |kb, i| {
        let v = kb.load(a, i, Type::F32);
        kb.set(x, v);
    });
    let k = kb.finish();
    let r = run(
        &k,
        &SimConfig::default().with_fast_launch(),
        &[LaunchArg::Buffer(vec![Value::F32(0.0); 4])],
    );
    assert_eq!(r.stats.total(|t| t.bytes_read), 0, "no iteration ran");
    assert_eq!(r.stats.total(|t| t.iterations), 0);
}

#[test]
fn negative_step_loops_execute() {
    let mut kb = KernelBuilder::new("down", 1);
    let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
    let acc = kb.var("acc", Type::I64);
    let start = kb.c_i64(10);
    let end = kb.c_i64(0);
    let step = kb.c_i64(-2);
    kb.for_each("i", start, end, step, |kb, i| {
        let cur = kb.get(acc);
        let s = kb.add(cur, i);
        kb.set(acc, s);
    });
    let a = kb.get(acc);
    let z = kb.c_i64(0);
    kb.store(out, z, a);
    let k = kb.finish();
    let r = run(
        &k,
        &SimConfig::default().with_fast_launch(),
        &[LaunchArg::Buffer(vec![Value::I64(0)])],
    );
    assert_eq!(r.buffers[0][0].as_i64(), 10 + 8 + 6 + 4 + 2);
}

#[test]
fn single_thread_critical_never_spins() {
    let mut kb = KernelBuilder::new("solo", 1);
    let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
    let n = kb.c_i64(10);
    kb.for_range("i", n, |kb, _| {
        kb.critical(|kb| {
            let z = kb.c_i64(0);
            let cur = kb.load(out, z, Type::I32);
            let one = kb.c_i32(1);
            let inc = kb.add(cur, one);
            let z2 = kb.c_i64(0);
            kb.store(out, z2, inc);
        });
    });
    let k = kb.finish();
    let r = run(
        &k,
        &SimConfig::default().with_fast_launch(),
        &[LaunchArg::Buffer(vec![Value::I32(0)])],
    );
    assert_eq!(r.buffers[0][0], Value::I32(10));
    // Without contention the only "spin" is the semaphore's bus round trip
    // on each acquire — never a queued wait.
    let sim = SimConfig::default();
    assert!(
        r.stats.per_thread[0].spin_cycles <= 10 * sim.sem_acquire_latency,
        "uncontended spins are bounded by the acquire round trip: {}",
        r.stats.per_thread[0].spin_cycles
    );
    assert!(r.stats.per_thread[0].critical_cycles > 0);
}

#[test]
fn zero_launch_interval_starts_all_threads_together() {
    let mut kb = KernelBuilder::new("sync_start", 4);
    let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
    let tid = kb.thread_id();
    let idx = kb.cast(ScalarType::I64, tid);
    let tid2 = kb.thread_id();
    let v = kb.cast(ScalarType::I64, tid2);
    kb.store(out, idx, v);
    let k = kb.finish();
    let sim = SimConfig {
        launch_interval: 0,
        ..Default::default()
    };
    let r = run(&k, &sim, &[LaunchArg::Buffer(vec![Value::I64(-1); 4])]);
    for t in &r.stats.per_thread {
        assert_eq!(t.start_cycle, 0);
    }
    for i in 0..4 {
        assert_eq!(r.buffers[0][i].as_i64(), i as i64);
    }
}

#[test]
fn extreme_mshr_and_tiny_dram_still_correct() {
    // Pathological config: 1 MSHR, 1 byte/cycle DRAM, no line buffers —
    // slow but functionally identical.
    let mut kb = KernelBuilder::new("stress", 2);
    let a = kb.buffer("A", ScalarType::F32, MapDir::To);
    let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let sum = kb.var("sum", Type::F32);
    let tid = kb.thread_id();
    let my = kb.cast(ScalarType::I64, tid);
    let nt = kb.num_threads_expr();
    let nt64 = kb.cast(ScalarType::I64, nt);
    let end = kb.c_i64(32);
    kb.for_each("i", my, end, nt64, |kb, i| {
        let v = kb.load(a, i, Type::F32);
        let cur = kb.get(sum);
        let s = kb.add(cur, v);
        kb.set(sum, s);
    });
    let tid2 = kb.thread_id();
    let oidx = kb.cast(ScalarType::I64, tid2);
    let sv = kb.get(sum);
    kb.store(out, oidx, sv);
    let k = kb.finish();
    let slow = SimConfig {
        port_mshrs: 1,
        dram_bytes_per_cycle: 1,
        line_buffers: false,
        dram_latency: 200,
        ..SimConfig::default().with_fast_launch()
    };
    let fast = SimConfig::default().with_fast_launch();
    let data: Vec<Value> = (0..32).map(|i| Value::F32(i as f32)).collect();
    let mk = || {
        vec![
            LaunchArg::Buffer(data.clone()),
            LaunchArg::Buffer(vec![Value::F32(0.0); 2]),
        ]
    };
    let rs = run(&k, &slow, &mk());
    let rf = run(&k, &fast, &mk());
    assert_eq!(
        rs.buffers[1], rf.buffers[1],
        "timing must not change values"
    );
    assert!(
        rs.total_cycles > rf.total_cycles * 2,
        "pathological config must actually be slower: {} vs {}",
        rs.total_cycles,
        rf.total_cycles
    );
}

#[test]
fn invalid_config_is_reported_not_panicked() {
    let kb = KernelBuilder::new("cfg_check", 1);
    let k = kb.finish();
    let acc = compile(&k, &HlsConfig::default());
    let bad = SimConfig {
        seq_issue_width: 0,
        ..Default::default()
    };
    match Executor::run(&k, &acc, &bad, &[], &mut NullSnoop) {
        Err(SimError::InvalidConfig(msg)) => {
            assert!(
                msg.contains("seq_issue_width"),
                "message names the field: {msg}"
            );
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn sim_run_can_be_stepped_and_moved_across_threads() {
    // The re-entrant core is Send: build it here, drive it to completion on
    // another thread, and read the result back.
    let mut kb = KernelBuilder::new("stepped", 2);
    let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
    let tid = kb.thread_id();
    let idx = kb.cast(ScalarType::I64, tid);
    let v = kb.c_i64(7);
    kb.store(out, idx, v);
    let k = kb.finish();
    let acc = compile(&k, &HlsConfig::default());
    let sim = SimConfig::default().with_fast_launch();
    let launch = [LaunchArg::Buffer(vec![Value::I64(0); 2])];
    let run = SimRun::new(&k, &acc, &sim, &launch).expect("valid config");
    let result = std::thread::scope(|s| {
        s.spawn(move || {
            let mut run = run;
            let mut stats = fpga_sim::StatsSnoop::new(2);
            let mut steps = 0u64;
            while run.step(&mut stats).expect("no deadlock") == StepStatus::Running {
                steps += 1;
                assert!(steps < 1_000_000, "runaway simulation");
            }
            assert!(run.is_done());
            run.into_result(stats)
        })
        .join()
        .expect("worker thread panicked")
    });
    assert_eq!(result.buffers[0][0].as_i64(), 7);
    assert_eq!(result.buffers[0][1], Value::I64(7));
}

#[test]
fn if_branches_take_different_paths_per_thread() {
    let mut kb = KernelBuilder::new("branchy", 2);
    let out = kb.buffer("OUT", ScalarType::I32, MapDir::From);
    let tid = kb.thread_id();
    let zero = kb.c_i32(0);
    let is_zero = kb.bin(nymble_ir::BinOp::Eq, tid, zero);
    let v = kb.var("v", Type::I32);
    kb.if_(
        is_zero,
        |kb| {
            let c = kb.c_i32(100);
            kb.set(v, c);
        },
        |kb| {
            let c = kb.c_i32(200);
            kb.set(v, c);
        },
    );
    let tid2 = kb.thread_id();
    let idx = kb.cast(ScalarType::I64, tid2);
    let vv = kb.get(v);
    kb.store(out, idx, vv);
    let k = kb.finish();
    let r = run(
        &k,
        &SimConfig::default().with_fast_launch(),
        &[LaunchArg::Buffer(vec![Value::I32(0); 2])],
    );
    assert_eq!(r.buffers[0][0], Value::I32(100));
    assert_eq!(r.buffers[0][1], Value::I32(200));
}
