//! # miniprop — a minimal property-testing harness
//!
//! A tiny, dependency-free stand-in for `proptest`: the build environment is
//! fully offline, so the workspace's randomized tests run on this local
//! harness instead. It provides a deterministic splitmix/xorshift generator,
//! a small combinator surface ([`Rng`]) and a case runner ([`forall`]) that
//! reports the failing case seed so any counterexample can be replayed with
//! `MINIPROP_SEED=<seed> cargo test`.
//!
//! There is no shrinking: generators should therefore keep their sizes
//! modest so counterexamples stay readable.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic pseudo-random generator (xorshift64* seeded via splitmix64).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so consecutive seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add((self.u64() % lo.abs_diff(hi)) as i64)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.range_u64(0, den) < num
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A vector of `len in [min_len, max_len)` elements drawn from `gen`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = self.range_usize(min_len, max_len);
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Base seed: `MINIPROP_SEED` env var when set, a fixed default otherwise.
fn base_seed() -> (u64, bool) {
    match std::env::var("MINIPROP_SEED") {
        Ok(s) => (s.trim().parse().expect("MINIPROP_SEED must be a u64"), true),
        Err(_) => (0x5EED_0000_0000_0001, false),
    }
}

/// Run `prop` over `cases` generated inputs. Each case gets an [`Rng`] seeded
/// from the base seed plus the case index; on failure the case seed is
/// printed so `MINIPROP_SEED=<seed> cargo test <name>` replays exactly that
/// input (a replay runs the single failing case).
pub fn forall(cases: u64, prop: impl Fn(&mut Rng)) {
    let (seed, pinned) = base_seed();
    let cases = if pinned { 1 } else { cases };
    for case in 0..cases {
        let case_seed = seed.wrapping_add(case);
        let mut rng = Rng::new(case_seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| prop(&mut rng))) {
            eprintln!(
                "miniprop: case {case}/{cases} failed; \
                 replay with MINIPROP_SEED={case_seed}"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        forall(100, |g| {
            let v = g.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let u = g.range_usize(0, 3);
            assert!(u < 3);
            let i = g.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).u64(), c.u64());
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        forall(50, |g| {
            let v = g.vec(2, 10, |g| g.bool());
            assert!((2..10).contains(&v.len()));
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        forall(10, |_| panic!("boom"));
    }
}
