//! Property tests of the list scheduler over randomly generated DFGs:
//! dependences are respected, capacity limits are never exceeded within a
//! cycle, and the initiation-interval bounds hold.

use nymble_hls::dfg::{Dfg, DfgNode, NodeId};
use nymble_hls::op::{OpClass, Resource};
use nymble_hls::schedule::{schedule, ResourceLimits};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_opclass() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::IntAlu),
        Just(OpClass::IntMul),
        Just(OpClass::FAdd),
        Just(OpClass::FMul),
        Just(OpClass::Cast),
        Just(OpClass::ExtLoad),
        Just(OpClass::ExtStore),
        Just(OpClass::LocalLoad),
        Just(OpClass::LocalStore),
    ]
}

/// A random DAG: node i depends on a random subset of nodes < i.
fn arb_dfg() -> impl Strategy<Value = Dfg> {
    proptest::collection::vec((arb_opclass(), proptest::collection::vec(any::<prop::sample::Index>(), 0..3)), 1..40)
        .prop_map(|nodes| {
            let mut dfg = Dfg::default();
            for (i, (op, dep_sel)) in nodes.into_iter().enumerate() {
                let deps: Vec<NodeId> = if i == 0 {
                    Vec::new()
                } else {
                    let mut d: Vec<NodeId> = dep_sel
                        .iter()
                        .map(|s| NodeId(s.index(i) as u32))
                        .collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                };
                dfg.nodes.push(DfgNode {
                    op,
                    width: 1,
                    deps,
                });
            }
            dfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dependences_are_respected(dfg in arb_dfg()) {
        let limits = ResourceLimits::default();
        let s = schedule(&dfg, &limits);
        for (i, node) in dfg.nodes.iter().enumerate() {
            for d in &node.deps {
                let dep_finish = s.start[d.0 as usize] + dfg.nodes[d.0 as usize].op.latency();
                prop_assert!(
                    s.start[i] >= dep_finish,
                    "node {} starts at {} before dep {:?} finishes at {}",
                    i, s.start[i], d, dep_finish
                );
            }
        }
        prop_assert!(s.ii >= 1);
        prop_assert!(s.depth >= s.start.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn port_capacity_never_exceeded_in_a_cycle(dfg in arb_dfg(), ports in 1u32..3) {
        let limits = ResourceLimits {
            mem_read_ports: ports,
            mem_write_ports: ports,
            local_ports: ports,
        };
        let s = schedule(&dfg, &limits);
        let mut usage: HashMap<(Resource, u32), u32> = HashMap::new();
        for (i, node) in dfg.nodes.iter().enumerate() {
            let r = node.op.resource();
            if matches!(r, Resource::MemRead | Resource::MemWrite | Resource::LocalPort) {
                *usage.entry((r, s.start[i])).or_default() += 1;
            }
        }
        for ((r, cy), n) in usage {
            prop_assert!(n <= ports, "{r:?} oversubscribed at cycle {cy}: {n} > {ports}");
        }
    }

    #[test]
    fn ii_lower_bound_from_port_pressure(dfg in arb_dfg()) {
        let limits = ResourceLimits::default();
        let s = schedule(&dfg, &limits);
        let reads = dfg.count(OpClass::ExtLoad) as u32;
        let writes = dfg.count(OpClass::ExtStore) as u32;
        prop_assert!(s.ii >= reads.max(1).max(writes));
        prop_assert_eq!(s.ext_reads_per_iter, reads);
        prop_assert_eq!(s.ext_writes_per_iter, writes);
    }

    #[test]
    fn stages_cover_all_nodes_exactly_once(dfg in arb_dfg()) {
        let s = schedule(&dfg, &ResourceLimits::default());
        let mut seen = vec![false; dfg.len()];
        for st in &s.stages {
            for &op in &st.ops {
                prop_assert!(!seen[op as usize], "node {} in two stages", op);
                seen[op as usize] = true;
                prop_assert_eq!(s.start[op as usize], st.cycle);
            }
            // Reordering exactly when a VLO is present.
            let has_vlo = st.ops.iter().any(|&o| dfg.nodes[o as usize].op.is_vlo());
            prop_assert_eq!(st.has_vlo, has_vlo);
            prop_assert_eq!(st.reordering, has_vlo);
        }
        prop_assert!(seen.into_iter().all(|s| s), "every node must be staged");
    }

    #[test]
    fn more_ports_never_hurt(dfg in arb_dfg()) {
        let one = schedule(&dfg, &ResourceLimits {
            mem_read_ports: 1,
            mem_write_ports: 1,
            local_ports: 1,
        });
        let four = schedule(&dfg, &ResourceLimits {
            mem_read_ports: 4,
            mem_write_ports: 4,
            local_ports: 4,
        });
        prop_assert!(four.depth <= one.depth);
        prop_assert!(four.ii <= one.ii);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The iterative modulo scheduler always produces a verified schedule at
    /// an II no smaller than its own lower bound, and its reservation table
    /// never overflows (checked independently by `verify_modulo`).
    #[test]
    fn modulo_schedule_is_always_verifiable(dfg in arb_dfg(), ports in 1u32..3) {
        use nymble_hls::modulo::{modulo_schedule, recurrence_mii, resource_mii, verify_modulo};
        let limits = ResourceLimits {
            mem_read_ports: ports,
            mem_write_ports: ports,
            local_ports: ports,
        };
        let m = modulo_schedule(&dfg, &limits);
        prop_assert!(m.ii >= resource_mii(&dfg, &limits).max(recurrence_mii(&dfg)));
        prop_assert!(verify_modulo(&dfg, &limits, &m.start, m.ii));
    }

    /// The list scheduler's II estimate is never below the modulo lower
    /// bound (it may be above: it does not search).
    #[test]
    fn list_ii_respects_modulo_lower_bound(dfg in arb_dfg()) {
        use nymble_hls::modulo::resource_mii;
        let limits = ResourceLimits::default();
        let list = schedule(&dfg, &limits);
        prop_assert!(list.ii >= resource_mii(&dfg, &limits));
    }
}
