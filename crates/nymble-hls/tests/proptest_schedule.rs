//! Property tests of the list scheduler over randomly generated DFGs:
//! dependences are respected, capacity limits are never exceeded within a
//! cycle, and the initiation-interval bounds hold.

use miniprop::{forall, Rng};
use nymble_hls::dfg::{Dfg, DfgNode, NodeId};
use nymble_hls::op::{OpClass, Resource};
use nymble_hls::schedule::{schedule, ResourceLimits};
use std::collections::HashMap;

const OP_CLASSES: [OpClass; 9] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::FAdd,
    OpClass::FMul,
    OpClass::Cast,
    OpClass::ExtLoad,
    OpClass::ExtStore,
    OpClass::LocalLoad,
    OpClass::LocalStore,
];

/// A random DAG: node i depends on a random subset of nodes < i.
fn arb_dfg(g: &mut Rng) -> Dfg {
    let n = g.range_usize(1, 40);
    let mut dfg = Dfg::default();
    for i in 0..n {
        let deps: Vec<NodeId> = if i == 0 {
            Vec::new()
        } else {
            let mut d: Vec<NodeId> = (0..g.range_usize(0, 3))
                .map(|_| NodeId(g.range_usize(0, i) as u32))
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        dfg.nodes.push(DfgNode {
            op: *g.pick(&OP_CLASSES),
            width: 1,
            deps,
        });
    }
    dfg
}

#[test]
fn dependences_are_respected() {
    forall(128, |g| {
        let dfg = arb_dfg(g);
        let limits = ResourceLimits::default();
        let s = schedule(&dfg, &limits);
        for (i, node) in dfg.nodes.iter().enumerate() {
            for d in &node.deps {
                let dep_finish = s.start[d.0 as usize] + dfg.nodes[d.0 as usize].op.latency();
                assert!(
                    s.start[i] >= dep_finish,
                    "node {} starts at {} before dep {:?} finishes at {}",
                    i,
                    s.start[i],
                    d,
                    dep_finish
                );
            }
        }
        assert!(s.ii >= 1);
        assert!(s.depth >= s.start.iter().copied().max().unwrap_or(0));
    });
}

#[test]
fn port_capacity_never_exceeded_in_a_cycle() {
    forall(128, |g| {
        let dfg = arb_dfg(g);
        let ports = g.range_u32(1, 3);
        let limits = ResourceLimits {
            mem_read_ports: ports,
            mem_write_ports: ports,
            local_ports: ports,
        };
        let s = schedule(&dfg, &limits);
        let mut usage: HashMap<(Resource, u32), u32> = HashMap::new();
        for (i, node) in dfg.nodes.iter().enumerate() {
            let r = node.op.resource();
            if matches!(
                r,
                Resource::MemRead | Resource::MemWrite | Resource::LocalPort
            ) {
                *usage.entry((r, s.start[i])).or_default() += 1;
            }
        }
        for ((r, cy), n) in usage {
            assert!(
                n <= ports,
                "{r:?} oversubscribed at cycle {cy}: {n} > {ports}"
            );
        }
    });
}

#[test]
fn ii_lower_bound_from_port_pressure() {
    forall(128, |g| {
        let dfg = arb_dfg(g);
        let limits = ResourceLimits::default();
        let s = schedule(&dfg, &limits);
        let reads = dfg.count(OpClass::ExtLoad) as u32;
        let writes = dfg.count(OpClass::ExtStore) as u32;
        assert!(s.ii >= reads.max(1).max(writes));
        assert_eq!(s.ext_reads_per_iter, reads);
        assert_eq!(s.ext_writes_per_iter, writes);
    });
}

#[test]
fn stages_cover_all_nodes_exactly_once() {
    forall(128, |g| {
        let dfg = arb_dfg(g);
        let s = schedule(&dfg, &ResourceLimits::default());
        let mut seen = vec![false; dfg.len()];
        for st in &s.stages {
            for &op in &st.ops {
                assert!(!seen[op as usize], "node {} in two stages", op);
                seen[op as usize] = true;
                assert_eq!(s.start[op as usize], st.cycle);
            }
            // Reordering exactly when a VLO is present.
            let has_vlo = st.ops.iter().any(|&o| dfg.nodes[o as usize].op.is_vlo());
            assert_eq!(st.has_vlo, has_vlo);
            assert_eq!(st.reordering, has_vlo);
        }
        assert!(seen.into_iter().all(|s| s), "every node must be staged");
    });
}

#[test]
fn more_ports_never_hurt() {
    forall(128, |g| {
        let dfg = arb_dfg(g);
        let one = schedule(
            &dfg,
            &ResourceLimits {
                mem_read_ports: 1,
                mem_write_ports: 1,
                local_ports: 1,
            },
        );
        let four = schedule(
            &dfg,
            &ResourceLimits {
                mem_read_ports: 4,
                mem_write_ports: 4,
                local_ports: 4,
            },
        );
        assert!(four.depth <= one.depth);
        assert!(four.ii <= one.ii);
    });
}

/// The iterative modulo scheduler always produces a verified schedule at
/// an II no smaller than its own lower bound, and its reservation table
/// never overflows (checked independently by `verify_modulo`).
#[test]
fn modulo_schedule_is_always_verifiable() {
    use nymble_hls::modulo::{modulo_schedule, recurrence_mii, resource_mii, verify_modulo};
    forall(96, |g| {
        let dfg = arb_dfg(g);
        let ports = g.range_u32(1, 3);
        let limits = ResourceLimits {
            mem_read_ports: ports,
            mem_write_ports: ports,
            local_ports: ports,
        };
        let m = modulo_schedule(&dfg, &limits);
        assert!(m.ii >= resource_mii(&dfg, &limits).max(recurrence_mii(&dfg)));
        assert!(verify_modulo(&dfg, &limits, &m.start, m.ii));
    });
}

/// The list scheduler's II estimate is never below the modulo lower
/// bound (it may be above: it does not search).
#[test]
fn list_ii_respects_modulo_lower_bound() {
    use nymble_hls::modulo::resource_mii;
    forall(96, |g| {
        let dfg = arb_dfg(g);
        let limits = ResourceLimits::default();
        let list = schedule(&dfg, &limits);
        assert!(list.ii >= resource_mii(&dfg, &limits));
    });
}
