//! Compile-once accelerator cache.
//!
//! A batch sweep (e.g. the GEMM table of §V-B or the π scaling study of
//! §V-D) runs the *same* compiled accelerator many times under different
//! simulator configurations and launch arguments. HLS compilation —
//! DFG lowering, modulo scheduling, cost modelling — is the expensive,
//! run-invariant half of that work, so [`AccelCache`] memoises it: each
//! distinct (kernel, [`HlsConfig`]) pair is compiled exactly once per sweep,
//! even when many worker threads request it concurrently, and the resulting
//! [`Accelerator`] is shared as an [`Arc`].
//!
//! Keys are structural fingerprints (the `Debug` rendering of the kernel
//! body and of the compile options), not kernel names: two GEMM builds with
//! different tile sizes produce different IR and therefore different cache
//! entries, while the π kernel — whose step count arrives as a launch
//! scalar, not as IR — hits the same entry for every problem size.

use crate::accel::{try_compile, Accelerator, CompileError, HlsConfig};
use nymble_ir::Kernel;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

impl HlsConfig {
    /// Structural fingerprint of the compile options, used as half of the
    /// cache key. Two configs with equal fingerprints compile identically.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }
}

/// Structural fingerprint of a kernel: name, thread count, arguments and
/// the full IR body. Kernels that fingerprint equal compile identically.
pub fn kernel_fingerprint(kernel: &Kernel) -> String {
    format!("{kernel:?}")
}

/// Cache occupancy and effectiveness counters (see [`AccelCache::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from an already-compiled entry (including requests
    /// that waited on a concurrent first compile).
    pub hits: u64,
    /// Requests that performed the compile themselves.
    pub misses: u64,
    /// Distinct (kernel, config) pairs seen.
    pub entries: usize,
}

/// One cache slot: compiled at most once, shared by every requester. A
/// refused compile (e.g. the lint gate at `lint: Deny`) is cached like a
/// success: every requester of the same key sees the same error without
/// re-running the analyzer.
type CacheCell = Arc<OnceLock<Result<Arc<Accelerator>, CompileError>>>;

/// Number of independent lock shards the key → cell map is split into.
/// Concurrent `Compile` graph nodes on distinct kernels hash to distinct
/// shards with high probability, so they never contend on one map lock.
const SHARDS: usize = 16;

/// Thread-safe, compile-once accelerator cache.
///
/// Concurrency model: the key → cell map is split into `SHARDS` (16) lock
/// shards selected by the fingerprint hash; a shard's [`Mutex`] guards
/// only its sub-map (held for a hash lookup, never across a compile).
/// Each entry's [`OnceLock`] serialises the first compile so racing
/// workers block on the winner instead of compiling redundantly. The
/// cached [`Accelerator`] is handed out as an [`Arc`] — workers on
/// different threads share one compiled artifact. The hit/miss counters
/// are process-wide atomics, so [`AccelCache::stats`] stays exact however
/// the keys distribute over shards.
pub struct AccelCache {
    shards: [Mutex<HashMap<(String, String), CacheCell>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for AccelCache {
    fn default() -> Self {
        AccelCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Shard selector: the key's hash folded onto `[0, SHARDS)`.
fn shard_index(key: &(String, String)) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

// Shared across the batch engine's worker pool.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AccelCache>();
    assert_send_sync::<Accelerator>();
};

impl AccelCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the compiled accelerator for `(kernel, config)`, compiling it
    /// on first request. Concurrent requests for the same key block until
    /// the single compile finishes and then share its result.
    ///
    /// # Panics
    /// Panics when the compile is refused (see
    /// [`crate::accel::try_compile`]); use [`Self::try_get_or_compile`] for
    /// a `Result`.
    pub fn get_or_compile(&self, kernel: &Kernel, config: &HlsConfig) -> Arc<Accelerator> {
        self.try_get_or_compile(kernel, config)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Self::get_or_compile`], but a refused compile (e.g. the lint
    /// gate at `lint: Deny`) is returned as an error — and cached, so each
    /// key runs the analyzer at most once per sweep.
    pub fn try_get_or_compile(
        &self,
        kernel: &Kernel,
        config: &HlsConfig,
    ) -> Result<Arc<Accelerator>, CompileError> {
        let key = (kernel_fingerprint(kernel), config.fingerprint());
        let cell = {
            let mut map = self.shards[shard_index(&key)]
                .lock()
                .expect("accel cache poisoned");
            map.entry(key).or_default().clone()
        };
        let mut compiled_here = false;
        let accel = cell
            .get_or_init(|| {
                compiled_here = true;
                try_compile(kernel, config).map(Arc::new)
            })
            .clone();
        if compiled_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        accel
    }

    /// Hit/miss/occupancy counters. `misses` equals the number of compiles
    /// actually performed, so a sweep over one kernel must report exactly
    /// one miss however many workers ran it; `entries` sums all shards.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("accel cache poisoned").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    fn toy_kernel(name: &str, n: i64) -> Kernel {
        let mut kb = KernelBuilder::new(name, 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::ToFrom);
        let end = kb.c_i64(n);
        kb.for_range("i", end, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let w = kb.add(v, v);
            kb.store(a, i, w);
        });
        kb.finish()
    }

    #[test]
    fn same_kernel_and_config_compiles_once() {
        let cache = AccelCache::new();
        let k = toy_kernel("toy", 8);
        let cfg = HlsConfig::default();
        let a1 = cache.get_or_compile(&k, &cfg);
        let a2 = cache.get_or_compile(&k, &cfg);
        assert!(Arc::ptr_eq(&a1, &a2), "second request shares the artifact");
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_ir_or_options_get_distinct_entries() {
        let cache = AccelCache::new();
        let k8 = toy_kernel("toy", 8);
        let k9 = toy_kernel("toy", 9); // same name, different IR
        let cfg = HlsConfig::default();
        let wide = HlsConfig {
            seq_issue_width: 8,
            ..HlsConfig::default()
        };
        let a = cache.get_or_compile(&k8, &cfg);
        let b = cache.get_or_compile(&k9, &cfg);
        let c = cache.get_or_compile(&k8, &wide);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().entries, 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn concurrent_requests_share_one_compile() {
        let cache = AccelCache::new();
        let k = toy_kernel("toy", 64);
        let cfg = HlsConfig::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let a = cache.get_or_compile(&k, &cfg);
                    assert_eq!(a.name, "toy");
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "exactly one thread compiled");
        assert_eq!(s.hits, 7, "everyone else shared it");
        assert_eq!(s.entries, 1);
    }

    /// Two threads both write OUT[0..8): a write/write race (NL001).
    fn racy_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("racy", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let n = kb.c_i64(8);
        kb.for_range("i", n, |kb, i| {
            let one = kb.c_f32(1.0);
            kb.store(out, i, one);
        });
        kb.finish()
    }

    /// Each thread writes only OUT[tid]: disjoint, lint-clean.
    fn clean_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("clean", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let tid = kb.thread_id();
        let one = kb.c_f32(1.0);
        kb.store(out, tid, one);
        kb.finish()
    }

    #[test]
    fn stats_stay_exact_across_lock_shards_under_concurrency() {
        // 24 distinct kernels > 16 shards, requested by 4 threads each:
        // every key lands in some shard, counters must come out exact.
        let cache = AccelCache::new();
        let kernels: Vec<Kernel> = (0..24).map(|n| toy_kernel("toy", 8 + n)).collect();
        let cfg = HlsConfig::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in &kernels {
                        let a = cache.get_or_compile(k, &cfg);
                        assert_eq!(a.name, "toy");
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.entries, 24, "one entry per distinct kernel");
        assert_eq!(s.misses, 24, "each kernel compiled exactly once");
        assert_eq!(s.hits, 24 * 3, "all other requests shared an artifact");
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let key = ("kernel".to_string(), "config".to_string());
        let i = shard_index(&key);
        assert!(i < SHARDS);
        assert_eq!(i, shard_index(&key), "same key, same shard");
    }

    #[test]
    fn lint_levels_are_distinct_cache_keys() {
        use nymble_lint::LintLevel;
        let cache = AccelCache::new();
        let k = clean_kernel();
        let off = HlsConfig::default();
        let deny = HlsConfig {
            lint: LintLevel::Deny,
            ..HlsConfig::default()
        };
        let a = cache.get_or_compile(&k, &off);
        let b = cache.get_or_compile(&k, &deny);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "different lint gates must not share an artifact"
        );
        assert_eq!(cache.stats().entries, 2);
        // The perf-lint gate is a distinct key dimension too.
        let perf_warn = HlsConfig {
            perf_lint: LintLevel::Warn,
            ..HlsConfig::default()
        };
        let c = cache.get_or_compile(&k, &perf_warn);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "different perf-lint gates must not share an artifact"
        );
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn probe_modes_are_distinct_cache_keys() {
        use crate::probe::ProbeMode;
        let cache = AccelCache::new();
        let k = clean_kernel();
        let off = HlsConfig::default();
        let auto = HlsConfig {
            probe: ProbeMode::auto(),
            ..HlsConfig::default()
        };
        let tight = HlsConfig {
            probe: ProbeMode::Auto { budget_alms: 128 },
            ..HlsConfig::default()
        };
        let a = cache.get_or_compile(&k, &off);
        let b = cache.get_or_compile(&k, &auto);
        let c = cache.get_or_compile(&k, &tight);
        assert!(!Arc::ptr_eq(&a, &b), "off vs auto must not share");
        assert!(!Arc::ptr_eq(&b, &c), "different budgets must not share");
        assert_eq!(cache.stats().entries, 3);
        assert!(a.probe_plan.is_none());
        assert!(b.probe_plan.is_some());
        assert!(
            b.probe_plan.as_ref().unwrap().cost_alms >= c.probe_plan.as_ref().unwrap().cost_alms
        );
    }

    #[test]
    fn refused_compile_is_cached_as_an_error() {
        use nymble_lint::LintLevel;
        let cache = AccelCache::new();
        let k = racy_kernel();
        let deny = HlsConfig {
            lint: LintLevel::Deny,
            ..HlsConfig::default()
        };
        let e1 = cache
            .try_get_or_compile(&k, &deny)
            .expect_err("deny gate rejects the race");
        let e2 = cache
            .try_get_or_compile(&k, &deny)
            .expect_err("second request sees the same cached error");
        assert_eq!(e1, e2);
        let s = cache.stats();
        assert_eq!((s.misses, s.hits), (1, 1), "the analyzer ran once");
        // The same kernel still compiles under a non-deny gate.
        let acc = cache
            .try_get_or_compile(&k, &HlsConfig::default())
            .expect("lint off compiles");
        assert_eq!(acc.name, "racy");
    }
}
