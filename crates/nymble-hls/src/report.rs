//! Human-readable synthesis reports (the "Quartus fit summary" of this
//! virtual flow) and per-loop schedule dumps.

use crate::accel::Accelerator;
use crate::cost::FitReport;
use nymble_ir::loops::{LoopId, LoopMap};
use nymble_ir::Kernel;
use std::fmt::Write as _;

/// Render a fit summary.
pub fn fit_summary(name: &str, fit: &FitReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fit summary — {name}");
    let _ = writeln!(s, "  ALMs           : {:>10}", fit.alms);
    let _ = writeln!(s, "  Registers      : {:>10}", fit.registers);
    let _ = writeln!(s, "  DSP blocks     : {:>10}", fit.dsps);
    let _ = writeln!(s, "  BRAM (kbits)   : {:>10}", fit.bram_kbits);
    let _ = writeln!(s, "  fmax (MHz)     : {:>10.1}", fit.fmax_mhz);
    s
}

/// Render the schedule report for a compiled accelerator: one line per loop
/// with II, depth, stage counts and port pressure.
pub fn schedule_report(kernel: &Kernel, acc: &Accelerator) -> String {
    let lm = LoopMap::build(kernel);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Schedule report — {} ({} hardware threads)",
        acc.name, acc.num_threads
    );
    let _ = writeln!(
        s,
        "  {:<12} {:>5} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6}",
        "loop", "depth", "II", "II.rec", "II.res", "stages", "reord", "rd/it"
    );
    for (id, info) in lm.iter() {
        if info.unrolled {
            let _ = writeln!(
                s,
                "  {:<12} (fully unrolled — inlined into parent)",
                info.var_name
            );
            continue;
        }
        let Some(sched) = &acc.loop_schedules[id.0 as usize] else {
            continue;
        };
        let _ = writeln!(
            s,
            "  {:<12} {:>5} {:>6} {:>7} {:>7} {:>6} {:>6} {:>6}",
            format!("{}#{}", info.var_name, id.0),
            sched.depth,
            sched.ii,
            sched.ii_recurrence,
            sched.ii_resource,
            sched.stages.len(),
            sched.reordering_stages(),
            sched.ext_reads_per_iter,
        );
    }
    s
}

/// Lookup helper: the schedule for the n-th loop in pre-order.
pub fn nth_loop_schedule(acc: &Accelerator, n: u32) -> Option<&crate::schedule::LoopSchedule> {
    acc.loop_schedules
        .get(LoopId(n).0 as usize)
        .and_then(|o| o.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{compile, HlsConfig};
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    #[test]
    fn reports_render() {
        let mut kb = KernelBuilder::new("rep", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::F32);
        let n = kb.c_i64(8);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(x);
            let s = kb.add(cur, v);
            kb.set(x, s);
        });
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        let fit = fit_summary("rep", &acc.fit);
        assert!(fit.contains("ALMs"));
        assert!(fit.contains("fmax"));
        let sr = schedule_report(&k, &acc);
        assert!(sr.contains("i#0"), "{sr}");
        assert!(nth_loop_schedule(&acc, 0).is_some());
        assert!(nth_loop_schedule(&acc, 5).is_none());
    }
}
