//! Static region analysis over the compiled design (à la RealProbe).
//!
//! Walks the kernel IR in pre-order and extracts a hierarchical **region
//! tree**: kernel → loop nest → pipelined body / sequential section /
//! critical section / DMA transfer region. Each region is annotated with a
//! statically derived *profit* — its expected stall exposure, priced by the
//! [`nymble_lint::perf`] analytic mirror via
//! [`nymble_lint::region_profits`] — which the counter-selection optimizer
//! in [`crate::probe`] trades against the hardware cost of a per-region
//! cycle counter.
//!
//! The tree is decodable: region ids are assigned in pre-order, every
//! region records its parent, and the labels form slash-separated paths
//! (`gemm/i/j`, `gemm/i/critical#0`, `gemm/preload:Ablk`), so a trace
//! consumer can reconstruct the call-tree nesting from the `.pcf`/`.row`
//! emission alone.

use nymble_ir::stmt::{Block, Stmt, Unroll};
use nymble_ir::Kernel;
use nymble_lint::{pipeline_eligible, region_profits, PerfParams, RegionProfit};

/// What kind of IR construct a region corresponds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// The kernel body itself (always region id 0).
    Kernel,
    /// A non-unrolled loop whose body the scheduler pipelines.
    PipelinedLoop,
    /// A non-unrolled loop executed sequentially (contains an inner
    /// sequential region: loop, critical, barrier or DMA burst).
    SequentialLoop,
    /// A `critical` section (hardware-semaphore serialized).
    Critical,
    /// A `preload`/`write_back` DMA burst.
    Dma,
}

impl RegionKind {
    /// Stable lower-case name, as written into reports and `.pcf` labels.
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Kernel => "kernel",
            RegionKind::PipelinedLoop => "pipelined-loop",
            RegionKind::SequentialLoop => "sequential-loop",
            RegionKind::Critical => "critical",
            RegionKind::Dma => "dma",
        }
    }
}

/// One node of the region tree.
#[derive(Clone, Debug)]
pub struct Region {
    /// Pre-order id; 0 is always the kernel root.
    pub id: u16,
    /// Parent region id (`None` only for the root).
    pub parent: Option<u16>,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// IR construct this region wraps.
    pub kind: RegionKind,
    /// Slash-separated source path (`gemm/i/j`, `gemm/i/critical#0`).
    pub label: String,
    /// Statically derived stall exposure (all threads).
    pub profit: RegionProfit,
    /// Scalar selection score (see [`RegionProfit::score`]); when the
    /// analytic model cannot resolve the kernel's bounds this is a
    /// structural fallback that still decreases with nesting depth, so the
    /// optimizer's parent-before-child invariant holds either way.
    pub score: u64,
}

/// The hierarchical region tree of one compiled kernel.
#[derive(Clone, Debug)]
pub struct RegionTree {
    /// Regions in pre-order; `regions[0]` is the kernel root.
    pub regions: Vec<Region>,
    /// Whether profits came from the analytic model (`true`) or the
    /// structural depth fallback (`false`, e.g. scalar-argument bounds).
    pub analytic: bool,
}

/// Structural-fallback score: strictly decreasing with depth so ancestors
/// always outrank descendants, with plenty of headroom above any realistic
/// analytic score.
fn fallback_score(depth: u32) -> u64 {
    u64::MAX >> (2 * depth.min(30) + 1)
}

impl RegionTree {
    /// Extract the region tree of `kernel`, pricing profits under `p`
    /// (callers without a specific simulator configuration use
    /// [`PerfParams::default`], which mirrors `SimConfig::default`).
    pub fn build(kernel: &Kernel, p: &PerfParams) -> RegionTree {
        let profits = region_profits(kernel, p);
        let analytic = profits.is_some();
        let lookup = |s: &Stmt| -> RegionProfit {
            profits
                .as_ref()
                .and_then(|m| m.get(&(s as *const Stmt as usize)).copied())
                .unwrap_or_default()
        };

        let mut regions = Vec::new();
        let root_profit = match nymble_lint::perf::model(kernel, p) {
            Some(m) => RegionProfit {
                cycles: m.per_thread.iter().sum(),
                dram_bytes: m.dram_bytes,
                critical_cycles: m.critical_cycles,
                dma_cycles: 0,
            },
            None => RegionProfit::default(),
        };
        regions.push(Region {
            id: 0,
            parent: None,
            depth: 0,
            kind: RegionKind::Kernel,
            label: kernel.name.clone(),
            profit: root_profit,
            score: if analytic {
                root_profit.score(p.dram_bytes_per_cycle)
            } else {
                fallback_score(0)
            },
        });

        let mut w = Walker {
            kernel,
            bw: p.dram_bytes_per_cycle,
            analytic,
            regions,
            crit_seq: 0,
        };
        w.walk(&kernel.body, 0, 1, &kernel.name.clone(), &lookup);
        RegionTree {
            regions: w.regions,
            analytic,
        }
    }

    /// Number of regions (root included).
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when only the root exists (straight-line kernel body).
    pub fn is_empty(&self) -> bool {
        self.regions.len() <= 1
    }

    /// The region with `id` (ids are dense pre-order indices).
    pub fn region(&self, id: u16) -> &Region {
        &self.regions[id as usize]
    }

    /// Direct children of `id`, in pre-order.
    pub fn children(&self, id: u16) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(move |r| r.parent == Some(id))
    }
}

struct Walker<'k> {
    kernel: &'k Kernel,
    bw: u64,
    analytic: bool,
    regions: Vec<Region>,
    /// Kernel-wide ordinal for critical sections (labels stay unique even
    /// when several criticals share one parent).
    crit_seq: u32,
}

impl Walker<'_> {
    fn push(
        &mut self,
        parent: u16,
        depth: u32,
        kind: RegionKind,
        label: String,
        profit: RegionProfit,
    ) -> u16 {
        let id = u16::try_from(self.regions.len()).expect("more than 65535 regions");
        let score = if self.analytic {
            profit.score(self.bw)
        } else {
            fallback_score(depth)
        };
        self.regions.push(Region {
            id,
            parent: Some(parent),
            depth,
            kind,
            label,
            profit,
            score,
        });
        id
    }

    fn walk(
        &mut self,
        block: &Block,
        parent: u16,
        depth: u32,
        path: &str,
        lookup: &dyn Fn(&Stmt) -> RegionProfit,
    ) {
        for s in block {
            match s {
                Stmt::For {
                    var, body, unroll, ..
                } => {
                    if *unroll == Unroll::Full {
                        // Unrolled loops dissolve into the parent's
                        // dataflow graph: no standalone hardware region.
                        continue;
                    }
                    let kind = if pipeline_eligible(body) {
                        RegionKind::PipelinedLoop
                    } else {
                        RegionKind::SequentialLoop
                    };
                    let label = format!("{path}/{}", self.kernel.var(*var).name);
                    let id = self.push(parent, depth, kind, label.clone(), lookup(s));
                    // A pipelined body is a leaf: its statements execute as
                    // one overlapped schedule, not as nested regions.
                    if kind == RegionKind::SequentialLoop {
                        self.walk(body, id, depth + 1, &label, lookup);
                    }
                }
                Stmt::Critical { body } => {
                    let label = format!("{path}/critical#{}", self.crit_seq);
                    self.crit_seq += 1;
                    let id = self.push(
                        parent,
                        depth,
                        RegionKind::Critical,
                        label.clone(),
                        lookup(s),
                    );
                    self.walk(body, id, depth + 1, &label, lookup);
                }
                Stmt::Preload { mem, .. } => {
                    let name = &self.kernel.local_mem(*mem).name;
                    let label = format!("{path}/preload:{name}");
                    self.push(parent, depth, RegionKind::Dma, label, lookup(s));
                }
                Stmt::WriteBack { mem, .. } => {
                    let name = &self.kernel.local_mem(*mem).name;
                    let label = format!("{path}/writeback:{name}");
                    self.push(parent, depth, RegionKind::Dma, label, lookup(s));
                }
                Stmt::If { then_b, else_b, .. } => {
                    // Branches are control flow, not regions; nested
                    // region-forming statements attach to the parent.
                    self.walk(then_b, parent, depth, path, lookup);
                    self.walk(else_b, parent, depth, path, lookup);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    fn nest_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("nest", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        let acc = kb.var("acc", Type::F32);
        let rows = kb.c_i64(8);
        let cols = kb.c_i64(64);
        kb.for_range("i", rows, |kb, _i| {
            kb.for_range("j", cols, |kb, j| {
                let v = kb.load(a, j, Type::F32);
                let cur = kb.get(acc);
                let s = kb.add(cur, v);
                kb.set(acc, s);
            });
            kb.critical(|kb| {
                let zero = kb.c_i64(0);
                let cur = kb.load(c, zero, Type::F32);
                let mine = kb.get(acc);
                let s = kb.add(cur, mine);
                kb.store(c, zero, s);
            });
        });
        kb.finish()
    }

    #[test]
    fn tree_shape_and_labels() {
        let k = nest_kernel();
        let t = RegionTree::build(&k, &PerfParams::default());
        assert!(t.analytic);
        let labels: Vec<&str> = t.regions.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["nest", "nest/i", "nest/i/j", "nest/i/critical#0"]);
        assert_eq!(t.region(0).kind, RegionKind::Kernel);
        assert_eq!(t.region(1).kind, RegionKind::SequentialLoop);
        assert_eq!(t.region(2).kind, RegionKind::PipelinedLoop);
        assert_eq!(t.region(3).kind, RegionKind::Critical);
        assert_eq!(t.region(2).parent, Some(1));
        assert_eq!(t.region(3).parent, Some(1));
        assert_eq!(t.children(1).count(), 2);
    }

    #[test]
    fn scores_decrease_down_the_tree() {
        let k = nest_kernel();
        let t = RegionTree::build(&k, &PerfParams::default());
        for r in &t.regions {
            if let Some(p) = r.parent {
                assert!(
                    t.region(p).score >= r.score,
                    "parent {} ({}) must outrank child {} ({})",
                    t.region(p).label,
                    t.region(p).score,
                    r.label,
                    r.score
                );
            }
        }
        assert!(t.region(3).profit.critical_cycles > 0);
    }

    #[test]
    fn unresolvable_bounds_fall_back_to_structural_scores() {
        let mut kb = KernelBuilder::new("dyn", 1);
        let n = kb.scalar_arg("N", ScalarType::I64);
        let bound = kb.arg(n);
        kb.for_range("i", bound, |kb, _i| {
            kb.critical(|_| {});
        });
        let k = kb.finish();
        let t = RegionTree::build(&k, &PerfParams::default());
        assert!(!t.analytic);
        assert_eq!(t.len(), 3);
        // Structural fallback still orders ancestors above descendants.
        assert!(t.region(0).score > t.region(1).score);
        assert!(t.region(1).score > t.region(2).score);
    }

    #[test]
    fn unrolled_loops_and_straight_line_bodies_form_no_regions() {
        let mut kb = KernelBuilder::new("flat", 1);
        let x = kb.var("x", Type::I32);
        let zero = kb.c_i64(0);
        let four = kb.c_i64(4);
        let one = kb.c_i64(1);
        kb.for_unrolled("v", zero, four, one, |kb, v| {
            let c = kb.cast(ScalarType::I32, v);
            let cur = kb.get(x);
            let s = kb.add(cur, c);
            kb.set(x, s);
        });
        let k = kb.finish();
        let t = RegionTree::build(&k, &PerfParams::default());
        assert!(t.is_empty(), "only the kernel root: {:?}", t.regions);
    }

    #[test]
    fn dma_bursts_become_leaf_regions() {
        let mut kb = KernelBuilder::new("dma", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let o = kb.buffer("O", ScalarType::F32, MapDir::From);
        let buf = kb.local_mem("Ablk", Type::F32, 16);
        let zero = kb.c_i64(0);
        let len = kb.c_i64(16);
        kb.preload(buf, a, zero, zero, len);
        let n = kb.c_i64(16);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load_local(buf, i, Type::F32);
            kb.store_local(buf, i, v);
        });
        kb.write_back(buf, o, zero, zero, len);
        let k = kb.finish();
        let t = RegionTree::build(&k, &PerfParams::default());
        let labels: Vec<&str> = t.regions.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            ["dma", "dma/preload:Ablk", "dma/i", "dma/writeback:Ablk"]
        );
        assert_eq!(t.region(1).kind, RegionKind::Dma);
        assert_eq!(t.region(3).kind, RegionKind::Dma);
    }
}
