//! Datapath operator classes: latencies and per-instance hardware costs.
//!
//! Latencies approximate Intel Stratix 10 hardened/soft operator pipelines at
//! the ~150 MHz the paper's designs close timing at (§V-B). The absolute
//! values matter less than their ratios: a single-precision adder is several
//! cycles deep (driving the recurrence II of reduction loops), multiplies are
//! DSP-mapped, and external memory has a large, variable latency — only its
//! scheduler-assumed *minimum* appears here.

use nymble_ir::{BinOp, ScalarType, UnOp};

/// Functional class of a datapath operator instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/logic/compare/select (ALM logic).
    IntAlu,
    /// Integer multiply (DSP block).
    IntMul,
    /// Integer divide/modulo (iterative soft divider).
    IntDiv,
    /// Floating-point add/sub (DSP in FP mode).
    FAdd,
    /// Floating-point multiply.
    FMul,
    /// Floating-point divide.
    FDiv,
    /// Floating-point square root.
    FSqrt,
    /// Type conversion.
    Cast,
    /// External (DRAM) load — variable latency; value is the scheduler's
    /// assumed minimum (§III-B).
    ExtLoad,
    /// External (DRAM) store — posted write.
    ExtStore,
    /// Local BRAM load.
    LocalLoad,
    /// Local BRAM store.
    LocalStore,
    /// Inner (nested, non-unrolled) loop embedded as one VLO node.
    InnerLoop,
    /// Critical section: semaphore acquire + body + release, as one VLO.
    CriticalRegion,
    /// Preloader burst (DMA descriptor issue).
    Burst,
}

impl OpClass {
    /// Scheduler latency in cycles (minimum for VLOs).
    pub const fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 16,
            OpClass::FAdd => 4,
            OpClass::FMul => 4,
            OpClass::FDiv => 14,
            OpClass::FSqrt => 14,
            OpClass::Cast => 1,
            OpClass::ExtLoad => 8,
            OpClass::ExtStore => 1,
            OpClass::LocalLoad => 2,
            OpClass::LocalStore => 1,
            OpClass::InnerLoop => 8,
            OpClass::CriticalRegion => 12,
            OpClass::Burst => 4,
        }
    }

    /// Whether the runtime delay can exceed [`Self::latency`] (variable
    /// latency operation → its stage becomes a reordering stage).
    pub const fn is_vlo(self) -> bool {
        matches!(
            self,
            OpClass::ExtLoad
                | OpClass::ExtStore
                | OpClass::InnerLoop
                | OpClass::CriticalRegion
                | OpClass::Burst
        )
    }

    /// Which shared resource pool an instance occupies each initiation.
    pub const fn resource(self) -> Resource {
        match self {
            OpClass::ExtLoad | OpClass::Burst => Resource::MemRead,
            OpClass::ExtStore => Resource::MemWrite,
            OpClass::LocalLoad | OpClass::LocalStore => Resource::LocalPort,
            OpClass::FAdd | OpClass::FMul | OpClass::FDiv | OpClass::FSqrt => Resource::Fpu,
            OpClass::IntMul | OpClass::IntDiv => Resource::IntMulDiv,
            _ => Resource::Logic,
        }
    }

    /// Per-instance area cost `(alms, registers, dsps)` for a 32-bit
    /// operator; the caller scales by width/lanes.
    pub const fn area(self) -> (u32, u32, u32) {
        match self {
            OpClass::IntAlu => (32, 33, 0),
            OpClass::IntMul => (20, 96, 2),
            OpClass::IntDiv => (380, 420, 0),
            OpClass::FAdd => (120, 180, 1),
            OpClass::FMul => (60, 140, 2),
            OpClass::FDiv => (900, 1_350, 4),
            OpClass::FSqrt => (850, 1_250, 2),
            OpClass::Cast => (16, 33, 0),
            OpClass::ExtLoad => (150, 260, 0),
            OpClass::ExtStore => (110, 190, 0),
            OpClass::LocalLoad => (24, 70, 0),
            OpClass::LocalStore => (20, 55, 0),
            OpClass::InnerLoop => (90, 120, 0),
            OpClass::CriticalRegion => (140, 160, 0),
            OpClass::Burst => (170, 240, 0),
        }
    }
}

/// Shared resource pools constraining the initiation interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Avalon read port (one per hardware thread, §IV-B.2c).
    MemRead,
    /// Avalon write port (one per hardware thread).
    MemWrite,
    /// Local BRAM port pair.
    LocalPort,
    /// Floating-point unit pool.
    Fpu,
    /// Integer multiply/divide pool.
    IntMulDiv,
    /// Plain ALM logic — effectively unconstrained.
    Logic,
}

/// Classify a binary operation into an operator class.
pub fn classify_binop(op: BinOp, operand: ScalarType) -> OpClass {
    if op.is_comparison() {
        return OpClass::IntAlu;
    }
    match (operand.is_float(), op) {
        (true, BinOp::Mul) => OpClass::FMul,
        (true, BinOp::Div | BinOp::Rem) => OpClass::FDiv,
        (true, _) => OpClass::FAdd,
        (false, BinOp::Mul) => OpClass::IntMul,
        (false, BinOp::Div | BinOp::Rem) => OpClass::IntDiv,
        (false, _) => OpClass::IntAlu,
    }
}

/// Classify a unary operation.
pub fn classify_unop(op: UnOp, operand: ScalarType) -> OpClass {
    match (operand.is_float(), op) {
        (true, UnOp::Sqrt) => OpClass::FSqrt,
        (true, _) => OpClass::FAdd,
        (false, UnOp::Sqrt) => OpClass::IntDiv,
        (false, _) => OpClass::IntAlu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_recurrence_comes_from_fadd() {
        // The naive GEMM `sum += a*b` recurrence is limited by FAdd latency.
        assert!(OpClass::FAdd.latency() >= 3);
        assert!(!OpClass::FAdd.is_vlo());
    }

    #[test]
    fn vlos_are_memory_and_regions() {
        assert!(OpClass::ExtLoad.is_vlo());
        assert!(OpClass::InnerLoop.is_vlo());
        assert!(OpClass::CriticalRegion.is_vlo());
        assert!(!OpClass::LocalLoad.is_vlo(), "BRAM is fixed latency");
    }

    #[test]
    fn classification() {
        assert_eq!(classify_binop(BinOp::Mul, ScalarType::F32), OpClass::FMul);
        assert_eq!(classify_binop(BinOp::Add, ScalarType::I64), OpClass::IntAlu);
        assert_eq!(
            classify_binop(BinOp::Lt, ScalarType::F32),
            OpClass::IntAlu,
            "comparisons map to integer compare units"
        );
        assert_eq!(classify_unop(UnOp::Sqrt, ScalarType::F32), OpClass::FSqrt);
    }

    #[test]
    fn memory_ops_use_per_thread_ports() {
        assert_eq!(OpClass::ExtLoad.resource(), Resource::MemRead);
        assert_eq!(OpClass::ExtStore.resource(), Resource::MemWrite);
    }

    /// `nymble-lint` cannot depend on this crate (the dependency points the
    /// other way), so its perf diagnostics mirror these latencies as
    /// constants. This test is the agreement contract: any latency or
    /// classification change here must be reflected in
    /// `nymble_lint::deps::latency`.
    #[test]
    fn lint_latency_mirror_agrees() {
        use nymble_lint::deps::latency as l;
        assert_eq!(l::INT_ALU, u64::from(OpClass::IntAlu.latency()));
        assert_eq!(l::INT_MUL, u64::from(OpClass::IntMul.latency()));
        assert_eq!(l::INT_DIV, u64::from(OpClass::IntDiv.latency()));
        assert_eq!(l::F_ADD, u64::from(OpClass::FAdd.latency()));
        assert_eq!(l::F_MUL, u64::from(OpClass::FMul.latency()));
        assert_eq!(l::F_DIV, u64::from(OpClass::FDiv.latency()));
        assert_eq!(l::F_SQRT, u64::from(OpClass::FSqrt.latency()));
        assert_eq!(l::CAST, u64::from(OpClass::Cast.latency()));
        assert_eq!(l::EXT_LOAD, u64::from(OpClass::ExtLoad.latency()));
        assert_eq!(l::EXT_STORE, u64::from(OpClass::ExtStore.latency()));
        assert_eq!(l::LOCAL_LOAD, u64::from(OpClass::LocalLoad.latency()));
        assert_eq!(l::LOCAL_STORE, u64::from(OpClass::LocalStore.latency()));
        // Classification agreement, over every BinOp/UnOp × float/int.
        use nymble_ir::{BinOp, UnOp};
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            for (st, fl) in [(ScalarType::F32, true), (ScalarType::I64, false)] {
                assert_eq!(
                    nymble_lint::deps::binop_latency(op, fl),
                    u64::from(classify_binop(op, st).latency()),
                    "{op:?} {st:?}"
                );
            }
        }
        for op in [UnOp::Neg, UnOp::Not, UnOp::Abs, UnOp::Sqrt] {
            for (st, fl) in [(ScalarType::F32, true), (ScalarType::I64, false)] {
                assert_eq!(
                    nymble_lint::deps::unop_latency(op, fl),
                    u64::from(classify_unop(op, st).latency()),
                    "{op:?} {st:?}"
                );
            }
        }
    }
}
