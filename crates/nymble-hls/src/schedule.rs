//! Resource-constrained list scheduling and stage formation.
//!
//! Produces, per loop body, the two numbers that drive the cycle-level
//! execution model — pipeline **depth** (latency of one iteration) and
//! **initiation interval** (cycles between successive iterations entering the
//! pipeline) — plus the stage structure the profiling unit snoops and the
//! cost model prices.
//!
//! The initiation interval is `max(1, II_resource, II_recurrence)`:
//!
//! * `II_resource` — steady-state port pressure: with one Avalon read port
//!   per thread, a body issuing R external reads per iteration cannot beat
//!   `II = R` (the reason the paper's *Partial Vectorization* step helps:
//!   one 128-bit read replaces four 32-bit reads).
//! * `II_recurrence` — loop-carried dependences: `sum += a[k]*b[k]` cannot
//!   start the next accumulation before the adder finishes, pinning
//!   `II >= latency(FAdd)`.

use crate::dfg::{Dfg, NodeId};
use crate::op::{OpClass, Resource};
use std::collections::HashMap;

/// Resource capacities visible to one hardware thread's pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ResourceLimits {
    /// Avalon read ports per thread (paper: 1).
    pub mem_read_ports: u32,
    /// Avalon write ports per thread (paper: 1).
    pub mem_write_ports: u32,
    /// Local BRAM port pairs per thread.
    pub local_ports: u32,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            mem_read_ports: 1,
            mem_write_ports: 1,
            local_ports: 2,
        }
    }
}

impl ResourceLimits {
    fn capacity(&self, r: Resource) -> Option<u32> {
        match r {
            Resource::MemRead => Some(self.mem_read_ports),
            Resource::MemWrite => Some(self.mem_write_ports),
            Resource::LocalPort => Some(self.local_ports),
            // Operators are spatially instantiated (one unit per node), so
            // compute pools do not constrain the II.
            Resource::Fpu | Resource::IntMulDiv | Resource::Logic => None,
        }
    }
}

/// One pipeline stage: the set of operations starting at the same cycle.
/// Nymble's controller "orchestrates the execution at the granularity of
/// stages" (§III-B); stages containing VLOs become *reordering* stages in
/// Nymble-MT (they must hold per-thread contexts).
#[derive(Clone, Debug)]
pub struct Stage {
    /// Start cycle of this stage within the iteration schedule.
    pub cycle: u32,
    /// Nodes issuing in this stage (indices into the DFG).
    pub ops: Vec<u32>,
    /// Stage contains a variable-latency operation.
    pub has_vlo: bool,
    /// Thread-reordering enabled for this stage (Nymble-MT enables it
    /// exactly for VLO stages, §III-B).
    pub reordering: bool,
    /// Number of live values crossing out of this stage (context width
    /// proxy for the cost model).
    pub live_values: u32,
}

/// Schedule of one loop (or region) body.
#[derive(Clone, Debug)]
pub struct LoopSchedule {
    /// Start cycle per node.
    pub start: Vec<u32>,
    /// Latency of one full iteration (cycles through all stages).
    pub depth: u32,
    /// Initiation interval between successive iterations.
    pub ii: u32,
    /// Iteration latency with inner-region (inner loop / critical / burst)
    /// nodes priced at zero — the outer loop's *own* per-iteration work,
    /// used by the executor for loops whose inner regions are timed
    /// dynamically.
    pub overhead_depth: u32,
    /// Stage structure.
    pub stages: Vec<Stage>,
    /// External reads/writes issued per iteration (requests).
    pub ext_reads_per_iter: u32,
    pub ext_writes_per_iter: u32,
    /// The recurrence-II component (for reports/ablation).
    pub ii_recurrence: u32,
    /// The resource-II component.
    pub ii_resource: u32,
}

impl LoopSchedule {
    /// Number of reordering stages (drives the Nymble-MT context cost).
    pub fn reordering_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.reordering).count()
    }

    /// Pipelined execution time of `trip` iterations, ignoring stalls:
    /// `depth + (trip-1) * ii`.
    pub fn pipelined_cycles(&self, trip: u64) -> u64 {
        if trip == 0 {
            return 0;
        }
        self.depth as u64 + (trip - 1) * self.ii as u64
    }
}

/// Is this node an inner-region placeholder timed dynamically by the
/// executor rather than statically by this schedule?
fn is_region(op: OpClass) -> bool {
    matches!(
        op,
        OpClass::InnerLoop | OpClass::CriticalRegion | OpClass::Burst
    )
}

/// List-schedule a DFG.
pub fn schedule(dfg: &Dfg, limits: &ResourceLimits) -> LoopSchedule {
    let n = dfg.nodes.len();
    let mut start = vec![0u32; n];
    let mut finish = vec![0u32; n];
    // start time with region nodes priced at 0 (for overhead_depth).
    let mut start0 = vec![0u32; n];
    let mut finish0 = vec![0u32; n];
    // Port usage per (resource, cycle).
    let mut usage: HashMap<(Resource, u32), u32> = HashMap::new();
    let mut res_uses: HashMap<Resource, u32> = HashMap::new();
    let (mut reads, mut writes) = (0u32, 0u32);

    for (i, node) in dfg.nodes.iter().enumerate() {
        let ready = node
            .deps
            .iter()
            .map(|d| finish[d.0 as usize])
            .max()
            .unwrap_or(0);
        let ready0 = node
            .deps
            .iter()
            .map(|d| finish0[d.0 as usize])
            .max()
            .unwrap_or(0);
        let res = node.op.resource();
        let mut t = ready;
        if let Some(cap) = limits.capacity(res) {
            // Vector memory ops still occupy one port slot (wide transfer).
            while *usage.get(&(res, t)).unwrap_or(&0) >= cap {
                t += 1;
            }
            *usage.entry((res, t)).or_default() += 1;
            *res_uses.entry(res).or_default() += 1;
        }
        start[i] = t;
        finish[i] = t + node.op.latency();
        start0[i] = ready0;
        finish0[i] = ready0
            + if is_region(node.op) {
                0
            } else {
                node.op.latency()
            };
        match node.op {
            OpClass::ExtLoad => reads += 1,
            OpClass::ExtStore => writes += 1,
            _ => {}
        }
    }

    let depth = finish.iter().copied().max().unwrap_or(0);
    let overhead_depth = finish0.iter().copied().max().unwrap_or(0);

    // Resource II: steady-state pressure on the capped pools.
    let ii_resource = res_uses
        .iter()
        .filter_map(|(r, uses)| limits.capacity(*r).map(|cap| uses.div_ceil(cap)))
        .max()
        .unwrap_or(1)
        .max(1);

    // Recurrence II: distance-1 carried edges def→use.
    let ii_recurrence = dfg
        .carried
        .iter()
        .map(|(def, use_)| {
            let d = def.0 as usize;
            let u = use_.0 as usize;
            finish[d].saturating_sub(start[u])
        })
        .max()
        .unwrap_or(0)
        .max(1);

    let ii = ii_resource.max(ii_recurrence);

    // Stage formation: group by start cycle.
    let mut by_cycle: HashMap<u32, Vec<u32>> = HashMap::new();
    for (i, s) in start.iter().enumerate() {
        by_cycle.entry(*s).or_default().push(i as u32);
    }
    let mut cycles: Vec<u32> = by_cycle.keys().copied().collect();
    cycles.sort_unstable();
    let stages: Vec<Stage> = cycles
        .into_iter()
        .map(|cy| {
            let ops = {
                let mut o = by_cycle.remove(&cy).unwrap();
                o.sort_unstable();
                o
            };
            let has_vlo = ops.iter().any(|&i| dfg.nodes[i as usize].op.is_vlo());
            // Live values: nodes started at or before this stage whose
            // results are consumed strictly after it.
            let live = dfg
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| start[*i] <= cy)
                .filter(|(i, _)| {
                    dfg.nodes
                        .iter()
                        .enumerate()
                        .any(|(j, nj)| start[j] > cy && nj.deps.contains(&NodeId(*i as u32)))
                })
                .count() as u32;
            Stage {
                cycle: cy,
                ops,
                has_vlo,
                reordering: has_vlo,
                live_values: live,
            }
        })
        .collect();

    LoopSchedule {
        start,
        depth,
        ii,
        overhead_depth,
        stages,
        ext_reads_per_iter: reads,
        ext_writes_per_iter: writes,
        ii_recurrence,
        ii_resource,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::lower_block;
    use nymble_ir::stmt::Stmt;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    fn inner_body(k: &nymble_ir::Kernel) -> &Vec<Stmt> {
        match &k.body[0] {
            Stmt::For { body, .. } => body,
            _ => panic!("expected loop"),
        }
    }

    /// `sum += A[k] * B[k]` — recurrence II = FAdd latency, resource II = 2
    /// reads on 1 port. Overall II = max of the two.
    #[test]
    fn dot_product_ii() {
        let mut kb = KernelBuilder::new("dot", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let b = kb.buffer("B", ScalarType::F32, MapDir::To);
        let sum = kb.var("sum", Type::F32);
        let n = kb.c_i64(64);
        kb.for_range("k", n, |kb, i| {
            let av = kb.load(a, i, Type::F32);
            let bv = kb.load(b, i, Type::F32);
            let p = kb.mul(av, bv);
            let cur = kb.get(sum);
            let s = kb.add(cur, p);
            kb.set(sum, s);
        });
        let k = kb.finish();
        let dfg = lower_block(&k, inner_body(&k));
        let sched = schedule(&dfg, &ResourceLimits::default());
        assert_eq!(sched.ext_reads_per_iter, 2);
        assert_eq!(sched.ii_resource, 2, "2 reads / 1 port");
        assert_eq!(
            sched.ii_recurrence,
            OpClass::FAdd.latency(),
            "accumulator recurrence"
        );
        assert_eq!(sched.ii, OpClass::FAdd.latency().max(2));
        assert!(sched.depth >= OpClass::ExtLoad.latency() + OpClass::FMul.latency());
    }

    /// Vectorizing the load (one 128-bit read) drops the resource II.
    #[test]
    fn vector_load_reduces_resource_ii() {
        let mut kb = KernelBuilder::new("vec", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let acc = kb.var("acc", Type::vector(ScalarType::F32, 4));
        let n = kb.c_i64(64);
        let v4 = Type::vector(ScalarType::F32, 4);
        kb.for_range("k", n, |kb, i| {
            let av = kb.load(a, i, v4);
            let cur = kb.get(acc);
            let s = kb.add(cur, av);
            kb.set(acc, s);
        });
        let k = kb.finish();
        let dfg = lower_block(&k, inner_body(&k));
        let sched = schedule(&dfg, &ResourceLimits::default());
        assert_eq!(sched.ext_reads_per_iter, 1, "one wide read");
        assert_eq!(sched.ii_resource, 1);
    }

    #[test]
    fn vlo_stages_are_reordering() {
        let mut kb = KernelBuilder::new("r", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::F32);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let c = kb.c_f32(2.0);
            let m = kb.mul(v, c);
            kb.set(x, m);
        });
        let k = kb.finish();
        let dfg = lower_block(&k, inner_body(&k));
        let sched = schedule(&dfg, &ResourceLimits::default());
        assert_eq!(sched.reordering_stages(), 1, "exactly the load stage");
        let vlo_stage = sched.stages.iter().find(|s| s.has_vlo).unwrap();
        assert!(vlo_stage.reordering);
        // And the multiply stage is static.
        assert!(sched.stages.iter().any(|s| !s.has_vlo && !s.reordering));
    }

    #[test]
    fn pipelined_cycles_formula() {
        let s = LoopSchedule {
            start: vec![],
            depth: 10,
            ii: 2,
            overhead_depth: 10,
            stages: vec![],
            ext_reads_per_iter: 0,
            ext_writes_per_iter: 0,
            ii_recurrence: 1,
            ii_resource: 2,
        };
        assert_eq!(s.pipelined_cycles(0), 0);
        assert_eq!(s.pipelined_cycles(1), 10);
        assert_eq!(s.pipelined_cycles(100), 10 + 99 * 2);
    }

    #[test]
    fn empty_body_schedules() {
        let dfg = Dfg::default();
        let s = schedule(&dfg, &ResourceLimits::default());
        assert_eq!(s.depth, 0);
        assert_eq!(s.ii, 1);
        assert!(s.stages.is_empty());
    }

    /// Serializing port pressure: 3 reads with 1 port ⇒ II_res = 3; with 2
    /// ports ⇒ 2.
    #[test]
    fn port_capacity_scales_ii() {
        let mut kb = KernelBuilder::new("p", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::F32);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, i| {
            let v1 = kb.load(a, i, Type::F32);
            let one = kb.c_i64(1);
            let i1 = kb.add(i, one);
            let v2 = kb.load(a, i1, Type::F32);
            let two = kb.c_i64(2);
            let i2 = kb.add(i, two);
            let v3 = kb.load(a, i2, Type::F32);
            let s1 = kb.add(v1, v2);
            let s2 = kb.add(s1, v3);
            kb.set(x, s2);
        });
        let k = kb.finish();
        let dfg = lower_block(&k, inner_body(&k));
        let one_port = schedule(&dfg, &ResourceLimits::default());
        assert_eq!(one_port.ii_resource, 3);
        let two_ports = schedule(
            &dfg,
            &ResourceLimits {
                mem_read_ports: 2,
                ..Default::default()
            },
        );
        assert_eq!(two_ports.ii_resource, 2);
    }
}
