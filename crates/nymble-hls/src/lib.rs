//! # nymble-hls — Nymble-style HLS compiler middle/back end
//!
//! Compiles a [`nymble_ir::Kernel`] into an [`accel::Accelerator`]
//! description: per-loop pipeline schedules (stages, initiation interval,
//! depth), static/reordering region formation for the Nymble-MT
//! multi-threaded execution model (§III-B of the reproduced paper), and a
//! hardware fit report (ALMs, registers, BRAMs, DSPs, fmax) from an
//! analytical Stratix-10-like cost model.
//!
//! Pipeline overview:
//!
//! 1. [`dfg`] lowers each loop body to a dataflow graph: one node per
//!    datapath operator, with intra-iteration and loop-carried dependence
//!    edges. Inner non-unrolled loops and critical sections become single
//!    variable-latency sequence-point nodes, exactly as Nymble embeds inner
//!    loops "into the dataflow graph of the surrounding loop as a single
//!    operation node with statically unknown delay".
//! 2. [`schedule`] list-schedules the DFG under operator latencies
//!    ([`op::OpClass`] latencies) and per-thread resource constraints (one
//!    Avalon read and one write port per thread, §IV-B.2c), computing the
//!    initiation interval as max(resource II, recurrence II).
//! 3. [`accel`] assembles the per-loop schedules, marks reordering stages
//!    (stages containing VLOs hold per-thread contexts so the hardware
//!    thread scheduler can reorder threads), and runs the [`cost`] model.

pub mod accel;
pub mod cache;
pub mod cost;
pub mod dfg;
pub mod modulo;
pub mod op;
pub mod probe;
pub mod region;
pub mod report;
pub mod schedule;
pub mod verilog;

pub use accel::{compile, try_compile, Accelerator, CompileError, HlsConfig};
pub use cache::{kernel_fingerprint, AccelCache, CacheStats};
pub use cost::FitReport;
pub use probe::{
    CounterClass, PlanRegion, ProbeCostParams, ProbeMode, ProbePlan, ALL_COUNTER_CLASSES,
    DEFAULT_PROBE_BUDGET_ALMS,
};
pub use region::{Region, RegionKind, RegionTree};
pub use schedule::LoopSchedule;
