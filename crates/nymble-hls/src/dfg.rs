//! Dataflow-graph lowering of loop bodies.
//!
//! One DFG node per datapath operator evaluation. Edges:
//!
//! * intra-iteration data dependences (through expression operands and
//!   thread-local variables),
//! * loop-carried dependences: a variable read *before* its definition in the
//!   body (the `sum` of `sum += a*b`) creates a distance-1 edge from the
//!   definition back to the use — the recurrence that bounds the initiation
//!   interval,
//! * sequence points: inner non-unrolled loops, critical sections and
//!   barriers become single VLO nodes ordered after everything before them
//!   and before everything after them, matching Nymble's "execution of the
//!   outer loop's graph is paused during execution of the inner loop".
//!
//! Fully-unrolled inner loops are expanded in place (their trip count must be
//! a compile-time constant, enforced by the builder's intended use; a
//! non-constant bound falls back to a single replica and is flagged).

use crate::op::{classify_binop, classify_unop, OpClass};
use nymble_ir::expr::Expr;
use nymble_ir::opcount::{expr_is_float, expr_lanes};
use nymble_ir::stmt::{Stmt, Unroll};
use nymble_ir::{ExprId, Kernel, ScalarType, VarId};
use std::collections::HashMap;

/// Index of a node in a [`Dfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One datapath operator instance.
#[derive(Clone, Debug)]
pub struct DfgNode {
    pub op: OpClass,
    /// SIMD lanes the operator processes (area scales with this).
    pub width: u8,
    /// Intra-iteration dependences (must finish before this starts).
    pub deps: Vec<NodeId>,
}

/// A lowered loop/region body.
#[derive(Clone, Debug, Default)]
pub struct Dfg {
    pub nodes: Vec<DfgNode>,
    /// Loop-carried (distance-1) dependences as `(def, use)` pairs.
    pub carried: Vec<(NodeId, NodeId)>,
    /// True when an unrolled inner loop had a non-constant trip count and
    /// was lowered as a single replica (schedule is then approximate).
    pub approximate_unroll: bool,
}

impl Dfg {
    /// Number of operator nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the body contains no datapath operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Count nodes of one class.
    pub fn count(&self, op: OpClass) -> usize {
        self.nodes.iter().filter(|n| n.op == op).count()
    }
}

struct Lowerer<'k> {
    k: &'k Kernel,
    dfg: Dfg,
    /// Node that last defined each variable in this iteration.
    var_def: HashMap<VarId, NodeId>,
    /// Reads of variables not (yet) defined this iteration: candidates for
    /// loop-carried edges.
    early_uses: Vec<(VarId, NodeId)>,
    /// Nodes created since the last sequence point (a sequence point
    /// must wait for all of them).
    since_seq: Vec<NodeId>,
    /// Last sequence point: everything after depends on it.
    last_seq: Option<NodeId>,
    /// Last external store (stores stay ordered on the write port).
    last_store: Option<NodeId>,
    /// Per-statement memo of lowered expressions: a shared sub-expression is
    /// one operator node, not one per textual use.
    expr_cache: HashMap<ExprId, Option<NodeId>>,
}

impl<'k> Lowerer<'k> {
    fn new(k: &'k Kernel) -> Self {
        Lowerer {
            k,
            dfg: Dfg::default(),
            var_def: HashMap::new(),
            early_uses: Vec::new(),
            since_seq: Vec::new(),
            last_seq: None,
            last_store: None,
            expr_cache: HashMap::new(),
        }
    }

    fn push(&mut self, op: OpClass, width: u8, mut deps: Vec<NodeId>) -> NodeId {
        if let Some(sp) = self.last_seq {
            deps.push(sp);
        }
        deps.sort_unstable();
        deps.dedup();
        let id = NodeId(self.dfg.nodes.len() as u32);
        self.dfg.nodes.push(DfgNode { op, width, deps });
        self.since_seq.push(id);
        id
    }

    fn seq_point(&mut self, op: OpClass) -> NodeId {
        let deps = std::mem::take(&mut self.since_seq);
        let id = {
            let mut deps = deps;
            if let Some(sp) = self.last_seq {
                deps.push(sp);
            }
            deps.sort_unstable();
            deps.dedup();
            let id = NodeId(self.dfg.nodes.len() as u32);
            self.dfg.nodes.push(DfgNode { op, width: 1, deps });
            id
        };
        self.last_seq = Some(id);
        self.since_seq.push(id);
        id
    }

    /// Create a node whose operands may include early (carried) variable
    /// reads: the early uses are registered against the node itself, so the
    /// recurrence II measures def→use on the right consumer.
    fn push_with_early(
        &mut self,
        op: OpClass,
        width: u8,
        deps: Vec<NodeId>,
        early: Vec<nymble_ir::VarId>,
    ) -> NodeId {
        let n = self.push(op, width, deps);
        for v in early {
            self.early_uses.push((v, n));
        }
        n
    }

    /// Lower an expression; `None` means a zero-latency wire (constants,
    /// argument taps, induction-variable reads). Shared sub-expressions map
    /// to the same node (memoised per statement).
    fn expr(&mut self, id: ExprId) -> Option<NodeId> {
        if let Some(n) = self.expr_cache.get(&id) {
            return *n;
        }
        let n = self.expr_uncached(id);
        self.expr_cache.insert(id, n);
        n
    }

    fn expr_uncached(&mut self, id: ExprId) -> Option<NodeId> {
        match self.k.expr(id) {
            Expr::Const(_) | Expr::Arg(_) | Expr::ThreadId | Expr::NumThreads => None,
            Expr::Var(v) => self.var_def.get(v).copied(),
            Expr::Unary(op, a) => {
                let scalar = if expr_is_float(self.k, *a) {
                    ScalarType::F32
                } else {
                    ScalarType::I64
                };
                let lanes = expr_lanes(self.k, *a);
                let (deps, early) = self.operand_deps(&[*a]);
                Some(self.push_with_early(classify_unop(*op, scalar), lanes, deps, early))
            }
            Expr::Binary(op, a, b) => {
                let scalar = if expr_is_float(self.k, *a) {
                    ScalarType::F32
                } else {
                    ScalarType::I64
                };
                let lanes = expr_lanes(self.k, *a).max(expr_lanes(self.k, *b));
                let (deps, early) = self.operand_deps(&[*a, *b]);
                Some(self.push_with_early(classify_binop(*op, scalar), lanes, deps, early))
            }
            Expr::Select {
                cond,
                then_v,
                else_v,
            } => {
                let lanes = expr_lanes(self.k, *then_v);
                let (deps, early) = self.operand_deps(&[*cond, *then_v, *else_v]);
                Some(self.push_with_early(OpClass::IntAlu, lanes, deps, early))
            }
            Expr::Cast(_, a) => {
                let (deps, early) = self.operand_deps(&[*a]);
                Some(self.push_with_early(OpClass::Cast, 1, deps, early))
            }
            Expr::LoadExt { index, ty, .. } => {
                let (deps, early) = self.operand_deps(&[*index]);
                Some(self.push_with_early(OpClass::ExtLoad, ty.lanes, deps, early))
            }
            Expr::LoadLocal { index, ty, .. } => {
                let (deps, early) = self.operand_deps(&[*index]);
                Some(self.push_with_early(OpClass::LocalLoad, ty.lanes, deps, early))
            }
            Expr::Lane(a, _) | Expr::Splat(a, _) => self.expr(*a),
        }
    }

    /// Lower operand expressions: returns `(dependence nodes, early variable
    /// reads)`. An early read is a `Var` with no definition yet this
    /// iteration — a carried-dependence candidate the *caller's* node
    /// consumes.
    fn operand_deps(&mut self, operands: &[ExprId]) -> (Vec<NodeId>, Vec<nymble_ir::VarId>) {
        let mut deps = Vec::with_capacity(operands.len());
        let mut early = Vec::new();
        for o in operands {
            if let Expr::Var(v) = self.k.expr(*o) {
                if !self.var_def.contains_key(v) {
                    early.push(*v);
                    continue;
                }
            }
            if let Some(n) = self.expr(*o) {
                deps.push(n);
            }
        }
        (deps, early)
    }

    fn stmt(&mut self, s: &Stmt) {
        self.expr_cache.clear();
        match s {
            Stmt::Assign { var, expr } => {
                if let Some(n) = self.expr(*expr) {
                    self.var_def.insert(*var, n);
                } else {
                    // Wire-only assignment (e.g. x = const): no node; the
                    // variable now reads as a wire. Remove any stale def.
                    self.var_def.remove(var);
                }
            }
            Stmt::StoreExt { index, value, .. } => {
                let (mut deps, early) = self.operand_deps(&[*index, *value]);
                if let Some(ls) = self.last_store {
                    deps.push(ls);
                }
                let lanes = expr_lanes(self.k, *value);
                let n = self.push_with_early(OpClass::ExtStore, lanes, deps, early);
                self.last_store = Some(n);
            }
            Stmt::StoreLocal { index, value, .. } => {
                let (deps, early) = self.operand_deps(&[*index, *value]);
                let lanes = expr_lanes(self.k, *value);
                self.push_with_early(OpClass::LocalStore, lanes, deps, early);
            }
            Stmt::For {
                start,
                end,
                step,
                body,
                unroll,
                ..
            } => {
                if *unroll == Unroll::Full {
                    let trip = const_trip(self.k, *start, *end, *step).unwrap_or_else(|| {
                        self.dfg.approximate_unroll = true;
                        1
                    });
                    for _ in 0..trip {
                        for s in body {
                            self.stmt(s);
                        }
                    }
                } else {
                    // Bound computation feeds the inner-loop controller.
                    let _ = self.operand_deps(&[*start, *end, *step]);
                    self.seq_point(OpClass::InnerLoop);
                }
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let (cdeps, _early_cond) = self.operand_deps(&[*cond]);
                // Predicated lowering: both branches execute; variable
                // definitions merge through multiplexers.
                let saved: HashMap<VarId, NodeId> = self.var_def.clone();
                for s in then_b {
                    self.stmt(s);
                }
                let then_defs = std::mem::replace(&mut self.var_def, saved.clone());
                for s in else_b {
                    self.stmt(s);
                }
                let else_defs = std::mem::replace(&mut self.var_def, saved);
                let mut merged: Vec<VarId> =
                    then_defs.keys().chain(else_defs.keys()).copied().collect();
                merged.sort_unstable();
                merged.dedup();
                for v in merged {
                    let t = then_defs.get(&v).copied();
                    let e = else_defs.get(&v).copied();
                    if t == self.var_def.get(&v).copied() && e == self.var_def.get(&v).copied() {
                        continue;
                    }
                    let mut deps: Vec<NodeId> = cdeps.clone();
                    deps.extend(t);
                    deps.extend(e);
                    let mux = self.push(OpClass::IntAlu, 1, deps);
                    self.var_def.insert(v, mux);
                }
            }
            Stmt::Critical { body } => {
                // The critical region is a sequence-point VLO; its body ops
                // still exist (they execute while holding the semaphore) and
                // are ordered inside by the same mechanism.
                self.seq_point(OpClass::CriticalRegion);
                for s in body {
                    self.stmt(s);
                }
                self.seq_point(OpClass::CriticalRegion);
            }
            Stmt::Barrier => {
                self.seq_point(OpClass::InnerLoop);
            }
            Stmt::Preload {
                src_off,
                dst_off,
                len,
                ..
            }
            | Stmt::WriteBack {
                dst_off: src_off,
                src_off: dst_off,
                len,
                ..
            } => {
                let _ = self.operand_deps(&[*src_off, *dst_off, *len]);
                self.seq_point(OpClass::Burst);
            }
        }
    }

    fn finish(mut self) -> Dfg {
        // Resolve carried dependences: early uses of variables that *were*
        // defined later in the body.
        for (v, user) in std::mem::take(&mut self.early_uses) {
            if let Some(def) = self.var_def.get(&v) {
                if user.0 < self.dfg.nodes.len() as u32 {
                    self.dfg.carried.push((*def, user));
                }
            }
        }
        self.dfg
    }

    // Placeholder field init helper (kept for struct literal tidiness).
    #[allow(dead_code)]
    fn _unused(&self) {}
}

/// Evaluate the trip count of a loop whose bounds are all constants.
pub fn const_trip(k: &Kernel, start: ExprId, end: ExprId, step: ExprId) -> Option<u64> {
    let cval = |e: ExprId| match k.expr(e) {
        Expr::Const(v) => Some(v.as_i64()),
        _ => None,
    };
    let (s, e, st) = (cval(start)?, cval(end)?, cval(step)?);
    if st == 0 {
        return None;
    }
    Some(if st > 0 {
        ((e - s).max(0) as u64).div_ceil(st as u64)
    } else {
        ((s - e).max(0) as u64).div_ceil((-st) as u64)
    })
}

/// Lower a statement block (a loop body, the kernel top level, or a critical
/// body) into a DFG.
pub fn lower_block(k: &Kernel, body: &[Stmt]) -> Dfg {
    let mut l = Lowerer::new(k);
    for s in body {
        l.stmt(s);
    }
    l.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, Type};

    #[test]
    fn reduction_creates_carried_edge() {
        let mut kb = KernelBuilder::new("red", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let sum = kb.var("sum", Type::F32);
        let n = kb.c_i64(8);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(sum);
            let s = kb.add(cur, v);
            kb.set(sum, s);
        });
        let k = kb.finish();
        let body = match &k.body[0] {
            Stmt::For { body, .. } => body,
            _ => unreachable!(),
        };
        let dfg = lower_block(&k, body);
        assert_eq!(dfg.count(OpClass::ExtLoad), 1);
        assert_eq!(dfg.count(OpClass::FAdd), 1);
        assert_eq!(dfg.carried.len(), 1, "sum += v is loop-carried");
        let (def, _use) = dfg.carried[0];
        assert_eq!(dfg.nodes[def.0 as usize].op, OpClass::FAdd);
    }

    #[test]
    fn unrolled_loop_expands() {
        let mut kb = KernelBuilder::new("unroll", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::F32);
        let zero = kb.c_i64(0);
        let four = kb.c_i64(4);
        let one = kb.c_i64(1);
        kb.for_unrolled("v", zero, four, one, |kb, v| {
            let l = kb.load(a, v, Type::F32);
            let cur = kb.get(x);
            let s = kb.add(cur, l);
            kb.set(x, s);
        });
        let k = kb.finish();
        let dfg = lower_block(&k, &k.body);
        assert_eq!(dfg.count(OpClass::ExtLoad), 4, "4 replicas");
        assert_eq!(dfg.count(OpClass::FAdd), 4);
        assert!(!dfg.approximate_unroll);
    }

    #[test]
    fn inner_loop_is_sequence_point() {
        let mut kb = KernelBuilder::new("nest", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::F32);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, _| {
            let n2 = kb.c_i64(4);
            kb.for_range("j", n2, |kb, j| {
                let l = kb.load(a, j, Type::F32);
                kb.set(x, l);
            });
            // Op after the inner loop must depend on its node.
            let cur = kb.get(x);
            let c = kb.c_f32(1.0);
            let s = kb.add(cur, c);
            kb.set(x, s);
        });
        let k = kb.finish();
        let outer_body = match &k.body[0] {
            Stmt::For { body, .. } => body,
            _ => unreachable!(),
        };
        let dfg = lower_block(&k, outer_body);
        let inner_idx = dfg
            .nodes
            .iter()
            .position(|n| n.op == OpClass::InnerLoop)
            .expect("inner loop node");
        let fadd = dfg
            .nodes
            .iter()
            .find(|n| n.op == OpClass::FAdd)
            .expect("fadd after loop");
        assert!(
            fadd.deps.contains(&NodeId(inner_idx as u32)),
            "post-loop op must be sequenced after the inner-loop node"
        );
    }

    #[test]
    fn stores_stay_ordered() {
        let mut kb = KernelBuilder::new("st", 1);
        let o = kb.buffer("O", ScalarType::F32, MapDir::From);
        let c0 = kb.c_i64(0);
        let c1 = kb.c_i64(1);
        let v = kb.c_f32(1.0);
        let v2 = kb.c_f32(2.0);
        kb.store(o, c0, v);
        kb.store(o, c1, v2);
        let k = kb.finish();
        let dfg = lower_block(&k, &k.body);
        let stores: Vec<usize> = dfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == OpClass::ExtStore)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(stores.len(), 2);
        assert!(dfg.nodes[stores[1]]
            .deps
            .contains(&NodeId(stores[0] as u32)));
    }

    #[test]
    fn const_trip_eval() {
        let mut kb = KernelBuilder::new("t", 1);
        let s = kb.c_i64(2);
        let e = kb.c_i64(10);
        let st = kb.c_i64(3);
        let k = kb.kernel_in_progress();
        assert_eq!(const_trip(k, s, e, st), Some(3)); // 2,5,8
    }
}
