//! Analytical area and frequency model ("virtual Quartus fit").
//!
//! The paper evaluates its profiling infrastructure by post-P&R deltas on a
//! Stratix 10 SX-280 (§V-B): registers, ALMs and fmax with and without the
//! tracing hardware. Without real P&R, this module prices each datapath
//! component from per-operator costs and simple structural rules:
//!
//! * operator cores: per-class `(ALM, register, DSP)` costs scaled by SIMD
//!   width ([`crate::op::OpClass::area`]),
//! * pipeline registers: each stage latches its live values,
//! * Nymble-MT reordering stages: per-thread context copies of the live
//!   values plus the hardware thread scheduler,
//! * controller: per-stage enable/stall logic,
//! * fixed infrastructure: Avalon slave/master interfaces, preloader,
//!   hardware semaphore (Fig. 1),
//! * fmax: a routing-pressure model — a logarithmic degradation in total
//!   logic, calibrated so designs of the paper's size close timing in the
//!   140–150 MHz range it reports.

use crate::dfg::Dfg;
use crate::schedule::LoopSchedule;
use nymble_ir::Kernel;

/// Tunable parameters of the cost model.
#[derive(Clone, Debug)]
pub struct CostParams {
    /// Registers latched per live value per stage (value width + valid).
    pub regs_per_live_value: u32,
    /// ALMs of control logic per stage.
    pub ctrl_alms_per_stage: u32,
    /// Registers of control logic per stage.
    pub ctrl_regs_per_stage: u32,
    /// Extra ALMs per reordering stage (hardware thread scheduler slice).
    pub hts_alms_per_stage: u32,
    /// Fixed infrastructure ALMs (Avalon interfaces, preloader, semaphore).
    pub infra_alms: u64,
    /// Fixed infrastructure registers.
    pub infra_regs: u64,
    /// Unconstrained-logic fmax ceiling in MHz.
    pub fmax_ceiling_mhz: f64,
    /// Routing-pressure coefficient: MHz lost per doubling of logic beyond
    /// `fmax_knee_alms`.
    pub fmax_mhz_per_doubling: f64,
    /// Logic size at which routing pressure starts to bite.
    pub fmax_knee_alms: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            regs_per_live_value: 33,
            ctrl_alms_per_stage: 40,
            ctrl_regs_per_stage: 48,
            hts_alms_per_stage: 110,
            infra_alms: 13_000,
            infra_regs: 22_000,
            fmax_ceiling_mhz: 190.0,
            fmax_mhz_per_doubling: 17.0,
            fmax_knee_alms: 6_000.0,
        }
    }
}

/// Post-"fit" resource/frequency summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitReport {
    /// Adaptive logic modules.
    pub alms: u64,
    /// Flip-flops.
    pub registers: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block-RAM capacity in kilobits.
    pub bram_kbits: u64,
    /// Achieved clock frequency in MHz.
    pub fmax_mhz: f64,
}

impl FitReport {
    /// Sum of two fits (before the fmax re-model — callers should re-derive
    /// fmax from the combined logic with [`fmax_model`]).
    pub fn combine(&self, other: &FitReport, p: &CostParams) -> FitReport {
        let alms = self.alms + other.alms;
        let registers = self.registers + other.registers;
        FitReport {
            alms,
            registers,
            dsps: self.dsps + other.dsps,
            bram_kbits: self.bram_kbits + other.bram_kbits,
            fmax_mhz: fmax_model(alms, registers, p),
        }
    }

    /// Relative overhead of `self` versus a smaller `base` design, as the
    /// paper's Table-style percentages.
    pub fn overhead_vs(&self, base: &FitReport) -> Overhead {
        let pct = |a: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                (a as f64 - b as f64) / b as f64 * 100.0
            }
        };
        Overhead {
            registers_pct: pct(self.registers, base.registers),
            alms_pct: pct(self.alms, base.alms),
            fmax_delta_mhz: base.fmax_mhz - self.fmax_mhz,
        }
    }
}

/// Relative overhead report (the numbers of §V-B).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Overhead {
    pub registers_pct: f64,
    pub alms_pct: f64,
    /// Positive = the larger design closes timing at a lower frequency.
    pub fmax_delta_mhz: f64,
}

/// Routing-pressure frequency model.
pub fn fmax_model(alms: u64, registers: u64, p: &CostParams) -> f64 {
    // Registers ease routing slightly (pipelining), ALMs dominate pressure.
    let effective = alms as f64 + registers as f64 * 0.15;
    if effective <= p.fmax_knee_alms {
        return p.fmax_ceiling_mhz;
    }
    let doublings = (effective / p.fmax_knee_alms).log2();
    (p.fmax_ceiling_mhz - p.fmax_mhz_per_doubling * doublings).max(40.0)
}

fn dfg_area(dfg: &Dfg) -> (u64, u64, u64) {
    let (mut alms, mut regs, mut dsps) = (0u64, 0u64, 0u64);
    for n in &dfg.nodes {
        let (a, r, d) = n.op.area();
        let w = n.width.max(1) as u64;
        alms += a as u64 * w;
        regs += r as u64 * w;
        dsps += d as u64 * w;
    }
    (alms, regs, dsps)
}

fn schedule_area(s: &LoopSchedule, num_threads: u32, p: &CostParams) -> (u64, u64) {
    let mut alms = 0u64;
    let mut regs = 0u64;
    for st in &s.stages {
        alms += p.ctrl_alms_per_stage as u64;
        regs += p.ctrl_regs_per_stage as u64;
        // Pipeline latch of the live set.
        regs += st.live_values as u64 * p.regs_per_live_value as u64;
        if st.reordering {
            // Per-thread context copies + HTS slice (§III-B: "the stage must
            // be able to hold the context ... of all hardware threads").
            regs += st.live_values as u64
                * p.regs_per_live_value as u64
                * num_threads.saturating_sub(1) as u64;
            alms += p.hts_alms_per_stage as u64 + 6 * num_threads as u64;
        }
    }
    (alms, regs)
}

/// Estimate the fit of a compiled (un-instrumented) accelerator.
pub fn estimate_fit(
    kernel: &Kernel,
    loop_dfgs: &[Option<Dfg>],
    loop_schedules: &[Option<LoopSchedule>],
    top_dfg: &Dfg,
    top: &LoopSchedule,
    p: &CostParams,
) -> FitReport {
    let mut alms = p.infra_alms;
    let mut regs = p.infra_regs;
    let mut dsps = 0u64;

    for dfg in loop_dfgs.iter().flatten().chain([top_dfg]) {
        let (a, r, d) = dfg_area(dfg);
        alms += a;
        regs += r;
        dsps += d;
    }
    for s in loop_schedules.iter().flatten().chain([top]) {
        let (a, r) = schedule_area(s, kernel.num_threads, p);
        alms += a;
        regs += r;
    }

    // Datapath is replicated per thread only in its context storage (handled
    // above); operator cores are shared across threads in Nymble-MT.
    // Local memories: per-thread private copies.
    let mut bram_bits = 0u64;
    for m in &kernel.local_mems {
        let copies = if m.per_thread {
            kernel.num_threads as u64
        } else {
            1
        };
        bram_bits += m.len * m.elem.size_bytes() as u64 * 8 * copies;
    }

    FitReport {
        alms,
        registers: regs,
        dsps,
        bram_kbits: bram_bits / 1024,
        fmax_mhz: fmax_model(alms, regs, p),
    }
}

/// Geometric mean helper for the paper's Table-style summaries.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb_fit(rng: &mut miniprop::Rng) -> FitReport {
        let p = CostParams::default();
        let alms = rng.range_u64(0, 200_000);
        let regs = rng.range_u64(0, 400_000);
        FitReport {
            alms,
            registers: regs,
            dsps: rng.range_u64(0, 256),
            bram_kbits: rng.range_u64(0, 4_096),
            fmax_mhz: fmax_model(alms, regs, &p),
        }
    }

    /// `combine` is a resource sum (fmax is re-derived from the summed
    /// logic, not combined), so its resource components must be
    /// commutative and associative however fits are aggregated — the
    /// instrumented-fit path combines base + probe plan + profiling unit
    /// in whatever order the caller wires up.
    #[test]
    fn combine_resource_sums_are_commutative_and_associative() {
        miniprop::forall(200, |rng| {
            let p = CostParams::default();
            let (a, b, c) = (arb_fit(rng), arb_fit(rng), arb_fit(rng));
            let ab = a.combine(&b, &p);
            let ba = b.combine(&a, &p);
            assert_eq!(
                (ab.alms, ab.registers, ab.dsps, ab.bram_kbits),
                (ba.alms, ba.registers, ba.dsps, ba.bram_kbits)
            );
            assert_eq!(ab.fmax_mhz, ba.fmax_mhz, "fmax depends only on sums");
            let ab_c = ab.combine(&c, &p);
            let a_bc = a.combine(&b.combine(&c, &p), &p);
            assert_eq!(
                (ab_c.alms, ab_c.registers, ab_c.dsps, ab_c.bram_kbits),
                (a_bc.alms, a_bc.registers, a_bc.dsps, a_bc.bram_kbits)
            );
            assert_eq!(ab_c.fmax_mhz, a_bc.fmax_mhz);
        });
    }

    /// Growing either operand never shrinks the combined overhead over a
    /// fixed base: percentages and the fmax delta are monotone in the
    /// added logic.
    #[test]
    fn overhead_vs_is_monotone_in_the_addition() {
        miniprop::forall(200, |rng| {
            let p = CostParams::default();
            let base = arb_fit(rng);
            let small = arb_fit(rng);
            let extra_alms = rng.range_u64(0, 50_000);
            let extra_regs = rng.range_u64(0, 50_000);
            let big = FitReport {
                alms: small.alms + extra_alms,
                registers: small.registers + extra_regs,
                ..small
            };
            let os = base.combine(&small, &p).overhead_vs(&base);
            let ob = base.combine(&big, &p).overhead_vs(&base);
            assert!(ob.alms_pct >= os.alms_pct, "{ob:?} < {os:?}");
            assert!(ob.registers_pct >= os.registers_pct);
            assert!(ob.fmax_delta_mhz >= os.fmax_delta_mhz - 1e-9);
        });
    }

    #[test]
    fn fmax_decreases_with_logic() {
        let p = CostParams::default();
        let small = fmax_model(5_000, 8_000, &p);
        let big = fmax_model(80_000, 120_000, &p);
        assert!(small > big, "{small} <= {big}");
        assert!(big >= 40.0);
        assert!(small <= p.fmax_ceiling_mhz);
    }

    #[test]
    fn paper_scale_designs_land_in_140_150_band() {
        // A mid-size accelerator (tens of kALMs) should close timing near
        // the paper's 140–148 MHz reports.
        let p = CostParams::default();
        let f = fmax_model(35_000, 55_000, &p);
        assert!((130.0..160.0).contains(&f), "fmax {f}");
    }

    #[test]
    fn overhead_math() {
        let base = FitReport {
            alms: 10_000,
            registers: 20_000,
            dsps: 8,
            bram_kbits: 100,
            fmax_mhz: 150.0,
        };
        let instrumented = FitReport {
            alms: 10_400,
            registers: 20_482,
            dsps: 8,
            bram_kbits: 110,
            fmax_mhz: 148.0,
        };
        let o = instrumented.overhead_vs(&base);
        assert!((o.alms_pct - 4.0).abs() < 1e-9);
        assert!((o.registers_pct - 2.41).abs() < 0.01);
        assert!((o.fmax_delta_mhz - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_matches_hand_calc() {
        let g = geo_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn combine_rederives_fmax() {
        let p = CostParams::default();
        let a = FitReport {
            alms: 30_000,
            registers: 40_000,
            dsps: 4,
            bram_kbits: 0,
            fmax_mhz: fmax_model(30_000, 40_000, &p),
        };
        let b = FitReport {
            alms: 1_000,
            registers: 2_000,
            dsps: 0,
            bram_kbits: 64,
            fmax_mhz: 0.0,
        };
        let c = a.combine(&b, &p);
        assert_eq!(c.alms, 31_000);
        assert!(c.fmax_mhz < a.fmax_mhz, "more logic, lower fmax");
    }
}
