//! Iterative modulo scheduling (Rau-style software pipelining).
//!
//! The list scheduler in [`crate::schedule`] derives the initiation interval
//! from steady-state bounds (port pressure, recurrence latency) but does not
//! verify that a conflict-free steady state *exists*: two memory operations
//! landing on the same `cycle mod II` slot would collide every iteration.
//! This module implements the classical fix — schedule against a **modulo
//! reservation table** of `II` columns, retrying at `II+1` until every
//! operation places — and is used both as a verification pass and as an
//! ablation point (DESIGN.md: "is the cheap II estimate ever optimistic?").
//!
//! Only distance-1 carried dependences occur in this IR (accumulators), so
//! the recurrence constraint is `start(use) + II ≥ finish(def)`.

use crate::dfg::Dfg;
use crate::op::Resource;
use crate::schedule::ResourceLimits;
use std::collections::HashMap;

/// A verified modulo schedule.
#[derive(Clone, Debug)]
pub struct ModuloSchedule {
    /// Start cycle per node.
    pub start: Vec<u32>,
    /// The smallest initiation interval at which placement succeeded.
    pub ii: u32,
    /// Schedule length (latency of one iteration).
    pub depth: u32,
    /// Lower bound that seeded the search (max of resource and recurrence
    /// minimum II).
    pub mii: u32,
}

fn capacity(limits: &ResourceLimits, r: Resource) -> Option<u32> {
    match r {
        Resource::MemRead => Some(limits.mem_read_ports),
        Resource::MemWrite => Some(limits.mem_write_ports),
        Resource::LocalPort => Some(limits.local_ports),
        _ => None,
    }
}

/// Minimum II from resource pressure.
pub fn resource_mii(dfg: &Dfg, limits: &ResourceLimits) -> u32 {
    let mut uses: HashMap<Resource, u32> = HashMap::new();
    for n in &dfg.nodes {
        if capacity(limits, n.op.resource()).is_some() {
            *uses.entry(n.op.resource()).or_default() += 1;
        }
    }
    uses.iter()
        .filter_map(|(r, u)| capacity(limits, *r).map(|c| u.div_ceil(c)))
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Minimum II from distance-1 recurrences: along any def→use carried edge,
/// the def→…→def cycle must fit in one II. With our single-edge recurrences
/// the bound is `latency(path from use to def) within one iteration`,
/// conservatively approximated by an ASAP pass.
pub fn recurrence_mii(dfg: &Dfg) -> u32 {
    if dfg.carried.is_empty() {
        return 1;
    }
    // Unconstrained ASAP start times.
    let mut start = vec![0u32; dfg.nodes.len()];
    for (i, n) in dfg.nodes.iter().enumerate() {
        start[i] = n
            .deps
            .iter()
            .map(|d| start[d.0 as usize] + dfg.nodes[d.0 as usize].op.latency())
            .max()
            .unwrap_or(0);
    }
    dfg.carried
        .iter()
        .map(|(def, use_)| {
            (start[def.0 as usize] + dfg.nodes[def.0 as usize].op.latency())
                .saturating_sub(start[use_.0 as usize])
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Attempt a placement at a fixed `ii`; `None` when some node cannot be
/// placed within the search budget.
fn try_place(dfg: &Dfg, limits: &ResourceLimits, ii: u32) -> Option<Vec<u32>> {
    let n = dfg.nodes.len();
    let mut start = vec![0u32; n];
    // table[(resource, slot)] = uses
    let mut table: HashMap<(Resource, u32), u32> = HashMap::new();
    for i in 0..n {
        let node = &dfg.nodes[i];
        let ready = node
            .deps
            .iter()
            .map(|d| start[d.0 as usize] + dfg.nodes[d.0 as usize].op.latency())
            .max()
            .unwrap_or(0);
        let res = node.op.resource();
        let cap = capacity(limits, res);
        let mut placed = false;
        // Try up to II consecutive slots: beyond that, every modulo class
        // has been tried.
        for off in 0..ii.max(1) {
            let t = ready + off;
            let ok = match cap {
                None => true,
                Some(c) => *table.get(&(res, t % ii)).unwrap_or(&0) < c,
            };
            if ok {
                if cap.is_some() {
                    *table.entry((res, t % ii)).or_default() += 1;
                }
                start[i] = t;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    // Verify carried recurrences: use in the next iteration starts at
    // start(use) + ii, which must be >= finish(def).
    for (def, use_) in &dfg.carried {
        let finish = start[def.0 as usize] + dfg.nodes[def.0 as usize].op.latency();
        if start[use_.0 as usize] + ii < finish {
            return None;
        }
    }
    Some(start)
}

/// Find the smallest feasible II by iterative deepening from the lower
/// bound (classical iterative modulo scheduling).
pub fn modulo_schedule(dfg: &Dfg, limits: &ResourceLimits) -> ModuloSchedule {
    let mii = resource_mii(dfg, limits).max(recurrence_mii(dfg));
    let hard_cap = mii + dfg.nodes.len() as u32 + 8;
    let mut ii = mii;
    loop {
        if let Some(start) = try_place(dfg, limits, ii) {
            let depth = start
                .iter()
                .enumerate()
                .map(|(i, s)| s + dfg.nodes[i].op.latency())
                .max()
                .unwrap_or(0);
            return ModuloSchedule {
                start,
                ii,
                depth,
                mii,
            };
        }
        ii += 1;
        assert!(
            ii <= hard_cap,
            "modulo scheduling failed to converge below II={hard_cap}"
        );
    }
}

/// Check a schedule against the modulo reservation table (used by tests and
/// by the verification pass over list-scheduler output).
pub fn verify_modulo(dfg: &Dfg, limits: &ResourceLimits, start: &[u32], ii: u32) -> bool {
    let mut table: HashMap<(Resource, u32), u32> = HashMap::new();
    for (i, n) in dfg.nodes.iter().enumerate() {
        // Dependences.
        for d in &n.deps {
            if start[i] < start[d.0 as usize] + dfg.nodes[d.0 as usize].op.latency() {
                return false;
            }
        }
        let res = n.op.resource();
        if let Some(cap) = capacity(limits, res) {
            let e = table.entry((res, start[i] % ii.max(1))).or_default();
            *e += 1;
            if *e > cap {
                return false;
            }
        }
    }
    for (def, use_) in &dfg.carried {
        let finish = start[def.0 as usize] + dfg.nodes[def.0 as usize].op.latency();
        if start[use_.0 as usize] + ii < finish {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{DfgNode, NodeId};
    use crate::op::OpClass;

    fn node(op: OpClass, deps: Vec<u32>) -> DfgNode {
        DfgNode {
            op,
            width: 1,
            deps: deps.into_iter().map(NodeId).collect(),
        }
    }

    #[test]
    fn two_loads_one_port_needs_ii2_and_distinct_slots() {
        let dfg = Dfg {
            nodes: vec![
                node(OpClass::ExtLoad, vec![]),
                node(OpClass::ExtLoad, vec![]),
                node(OpClass::FAdd, vec![0, 1]),
            ],
            carried: vec![],
            approximate_unroll: false,
        };
        let limits = ResourceLimits::default();
        let m = modulo_schedule(&dfg, &limits);
        assert_eq!(m.ii, 2);
        assert_ne!(
            m.start[0] % m.ii,
            m.start[1] % m.ii,
            "loads must occupy distinct modulo slots"
        );
        assert!(verify_modulo(&dfg, &limits, &m.start, m.ii));
    }

    #[test]
    fn accumulator_recurrence_sets_ii() {
        // load -> fadd with carried edge fadd -> fadd(next iter).
        let dfg = Dfg {
            nodes: vec![node(OpClass::ExtLoad, vec![]), node(OpClass::FAdd, vec![0])],
            carried: vec![(NodeId(1), NodeId(1))],
            approximate_unroll: false,
        };
        let m = modulo_schedule(&dfg, &ResourceLimits::default());
        assert_eq!(m.ii, OpClass::FAdd.latency());
    }

    #[test]
    fn modulo_conflict_forces_ii_bump() {
        // Two loads whose dependence structure pins them to the same parity:
        // load a; alu chain of exactly II cycles; load b. At the resource
        // MII both loads collide mod II; the scheduler must locally move
        // one or raise II, and the verifier must accept the result.
        let dfg = Dfg {
            nodes: vec![
                node(OpClass::ExtLoad, vec![]),  // t=0
                node(OpClass::IntAlu, vec![0]),  // t=8
                node(OpClass::IntAlu, vec![1]),  // t=9
                node(OpClass::ExtLoad, vec![2]), // t=10 → 10 % 2 == 0 % 2
            ],
            carried: vec![],
            approximate_unroll: false,
        };
        let limits = ResourceLimits::default();
        let m = modulo_schedule(&dfg, &limits);
        assert!(verify_modulo(&dfg, &limits, &m.start, m.ii));
        assert_ne!(m.start[0] % m.ii, m.start[3] % m.ii);
    }

    #[test]
    fn mii_bounds_hold_on_real_kernels() {
        use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};
        let mut kb = KernelBuilder::new("dot", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let b = kb.buffer("B", ScalarType::F32, MapDir::To);
        let sum = kb.var("sum", Type::F32);
        let n = kb.c_i64(64);
        kb.for_range("k", n, |kb, i| {
            let av = kb.load(a, i, Type::F32);
            let bv = kb.load(b, i, Type::F32);
            let cur = kb.get(sum);
            let s = kb.mul_add(av, bv, cur);
            kb.set(sum, s);
        });
        let k = kb.finish();
        let body = match &k.body[0] {
            nymble_ir::Stmt::For { body, .. } => body,
            _ => unreachable!(),
        };
        let dfg = crate::dfg::lower_block(&k, body);
        let limits = ResourceLimits::default();
        let m = modulo_schedule(&dfg, &limits);
        let list = crate::schedule::schedule(&dfg, &limits);
        assert!(m.mii <= m.ii);
        assert_eq!(
            m.ii as u32, list.ii,
            "both schedulers agree on the dot kernel"
        );
        assert!(verify_modulo(&dfg, &limits, &m.start, m.ii));
    }

    #[test]
    fn empty_dfg_is_trivial() {
        let dfg = Dfg::default();
        let m = modulo_schedule(&dfg, &ResourceLimits::default());
        assert_eq!(m.ii, 1);
        assert_eq!(m.depth, 0);
    }
}
