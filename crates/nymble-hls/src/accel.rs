//! Top-level compilation: kernel → accelerator description.

use crate::cost::{estimate_fit, CostParams, FitReport};
use crate::dfg::{lower_block, Dfg};
use crate::probe::{self, ProbeCostParams, ProbeMode, ProbePlan};
use crate::region::RegionTree;
use crate::schedule::{schedule, LoopSchedule, ResourceLimits};
use nymble_ir::loops::{LoopId, LoopMap};
use nymble_ir::stmt::{Block, Stmt};
use nymble_ir::Kernel;
use nymble_lint::{LintLevel, PerfParams};
use std::fmt;
use std::sync::Arc;

/// HLS compiler configuration.
#[derive(Clone, Debug)]
pub struct HlsConfig {
    /// Per-thread resource limits for scheduling.
    pub limits: ResourceLimits,
    /// Analytical area/frequency model parameters.
    pub cost: CostParams,
    /// Issue width for straight-line (non-pipelined) region statements:
    /// how many scheduled ops retire per cycle when a thread executes
    /// top-level or critical-section code sequentially.
    pub seq_issue_width: u32,
    /// Static-analysis gate run before scheduling. At
    /// [`LintLevel::Warn`] findings go to stderr; at [`LintLevel::Deny`]
    /// they abort the compile ([`try_compile`] returns
    /// [`CompileError::Lint`]). Part of the config fingerprint, so
    /// `AccelCache` never serves an artifact compiled under a different
    /// lint gate.
    pub lint: LintLevel,
    /// Performance-diagnostics gate (`NP0xx` family), run alongside the
    /// correctness gate. NP findings are warnings — kernels that are slow,
    /// not wrong — so [`LintLevel::Warn`] is the usual setting; `Deny`
    /// refuses to build a design the model predicts to be pathological.
    /// Also part of the config fingerprint.
    pub perf_lint: LintLevel,
    /// Auto-probe mode: at [`ProbeMode::Auto`] the compiler solves a
    /// budgeted instrumentation plan over the region tree and attaches it
    /// to the accelerator for the profiling unit to follow. Part of the
    /// config fingerprint — plans solved under different budgets are
    /// different artifacts.
    pub probe: ProbeMode,
}

impl Default for HlsConfig {
    fn default() -> Self {
        HlsConfig {
            limits: ResourceLimits::default(),
            cost: CostParams::default(),
            seq_issue_width: 4,
            lint: LintLevel::Off,
            perf_lint: LintLevel::Off,
            probe: ProbeMode::Off,
        }
    }
}

/// Why a compile was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The pre-scheduling lint gate failed (`lint: Deny` and the kernel has
    /// diagnostics). Carries the human-rendered lint report.
    Lint(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lint(report) => {
                write!(f, "lint gate rejected the kernel:\n{report}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled accelerator: everything the simulator, the profiling unit and
/// the fit reporter need to know about the generated hardware.
#[derive(Clone, Debug)]
pub struct Accelerator {
    /// Kernel name.
    pub name: String,
    /// Hardware thread count.
    pub num_threads: u32,
    /// Schedule per loop (indexed by [`LoopId`]); `None` for fully-unrolled
    /// loops, which are inlined into their parent's schedule.
    pub loop_schedules: Vec<Option<LoopSchedule>>,
    /// DFG per loop (kept for the cost model and reports).
    pub loop_dfgs: Vec<Option<Dfg>>,
    /// Schedule of the kernel's top-level straight-line body.
    pub top: LoopSchedule,
    /// Top-level DFG.
    pub top_dfg: Dfg,
    /// Compiler configuration used.
    pub config: HlsConfig,
    /// Fit (area/frequency) of the accelerator *without* the profiling unit;
    /// the profiling crate derives the instrumented fit from this.
    pub fit: FitReport,
    /// Hierarchical source-region tree of the kernel (kernel → loop nest →
    /// pipelined body / sequential section / critical section / DMA
    /// region), annotated with statically derived profit. Always built —
    /// it is cheap and `diagnose` uses it even without a probe plan.
    pub regions: RegionTree,
    /// The solved instrumentation plan when compiled under
    /// [`ProbeMode::Auto`]; `None` under [`ProbeMode::Off`].
    pub probe_plan: Option<Arc<ProbePlan>>,
}

impl Accelerator {
    /// Schedule for a loop; panics if the loop was unrolled away.
    pub fn loop_schedule(&self, id: LoopId) -> &LoopSchedule {
        self.loop_schedules[id.0 as usize]
            .as_ref()
            .expect("unrolled loops have no standalone schedule")
    }

    /// Total reordering stages over all loop schedules (Nymble-MT context
    /// cost driver).
    pub fn total_reordering_stages(&self) -> usize {
        self.loop_schedules
            .iter()
            .flatten()
            .map(|s| s.reordering_stages())
            .sum()
    }

    /// Total stage count over all schedules.
    pub fn total_stages(&self) -> usize {
        self.loop_schedules
            .iter()
            .flatten()
            .map(|s| s.stages.len())
            .sum::<usize>()
            + self.top.stages.len()
    }
}

/// Collect `(LoopId, &Block)` for every loop (unrolled ones included; the
/// caller skips them when scheduling).
fn collect_loop_bodies<'k>(lm: &LoopMap, block: &'k Block, out: &mut Vec<(LoopId, &'k Block)>) {
    for s in block {
        match s {
            Stmt::For { body, .. } => {
                out.push((lm.id_of(s), body));
                collect_loop_bodies(lm, body, out);
            }
            Stmt::Critical { body } => collect_loop_bodies(lm, body, out),
            Stmt::If { then_b, else_b, .. } => {
                collect_loop_bodies(lm, then_b, out);
                collect_loop_bodies(lm, else_b, out);
            }
            _ => {}
        }
    }
}

/// Compile a kernel into an accelerator description.
///
/// # Panics
/// Panics when the lint gate rejects the kernel (`config.lint == Deny` and
/// the kernel has diagnostics); use [`try_compile`] for a `Result`.
pub fn compile(kernel: &Kernel, config: &HlsConfig) -> Accelerator {
    try_compile(kernel, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Compile a kernel, running the static analyzer *before* any scheduling
/// work when `config.lint` is not [`LintLevel::Off`].
pub fn try_compile(kernel: &Kernel, config: &HlsConfig) -> Result<Accelerator, CompileError> {
    match nymble_lint::enforce(kernel, config.lint) {
        Ok(report) => {
            if !report.is_clean() {
                eprint!("{}", report.render_human());
            }
        }
        Err(rendered) => return Err(CompileError::Lint(rendered)),
    }
    match nymble_lint::enforce_perf(kernel, config.perf_lint) {
        Ok(report) => {
            if !report.is_clean() {
                eprint!("{}", report.render_human());
            }
        }
        Err(rendered) => return Err(CompileError::Lint(rendered)),
    }
    Ok(compile_unchecked(kernel, config))
}

fn compile_unchecked(kernel: &Kernel, config: &HlsConfig) -> Accelerator {
    let lm = LoopMap::build(kernel);
    let mut bodies = Vec::new();
    collect_loop_bodies(&lm, &kernel.body, &mut bodies);

    let mut loop_schedules: Vec<Option<LoopSchedule>> = vec![None; lm.len()];
    let mut loop_dfgs: Vec<Option<Dfg>> = vec![None; lm.len()];
    for (id, body) in bodies {
        if lm.info(id).unrolled {
            continue;
        }
        let dfg = lower_block(kernel, body);
        let sched = schedule(&dfg, &config.limits);
        loop_schedules[id.0 as usize] = Some(sched);
        loop_dfgs[id.0 as usize] = Some(dfg);
    }

    let top_dfg = lower_block(kernel, &kernel.body);
    let top = schedule(&top_dfg, &config.limits);

    let fit = estimate_fit(
        kernel,
        &loop_dfgs,
        &loop_schedules,
        &top_dfg,
        &top,
        &config.cost,
    );

    // Region analysis: always build the tree (diagnosis uses it even when
    // no probes are planned); solve the knapsack only under Auto.
    let regions = RegionTree::build(kernel, &PerfParams::default());
    let probe_plan = match config.probe {
        ProbeMode::Off => None,
        ProbeMode::Auto { budget_alms } => Some(Arc::new(probe::select(
            &regions,
            kernel.num_threads,
            budget_alms,
            &ProbeCostParams::default(),
        ))),
    };

    Accelerator {
        name: kernel.name.clone(),
        num_threads: kernel.num_threads,
        loop_schedules,
        loop_dfgs,
        top,
        top_dfg,
        config: config.clone(),
        fit,
        regions,
        probe_plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nymble_ir::{KernelBuilder, MapDir, ScalarType, Type};

    fn simple_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("simple", 4);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let o = kb.buffer("O", ScalarType::F32, MapDir::From);
        let sum = kb.var("sum", Type::F32);
        let z = kb.c_f32(0.0);
        kb.set(sum, z);
        let n = kb.c_i64(16);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(sum);
            let s = kb.add(cur, v);
            kb.set(sum, s);
        });
        let sv = kb.get(sum);
        let z2 = kb.c_i64(0);
        kb.store(o, z2, sv);
        kb.finish()
    }

    #[test]
    fn compiles_and_schedules_loops() {
        let k = simple_kernel();
        let acc = compile(&k, &HlsConfig::default());
        assert_eq!(acc.loop_schedules.len(), 1);
        let ls = acc.loop_schedule(nymble_ir::loops::LoopId(0));
        assert!(ls.ii >= 1);
        assert!(ls.depth > 0);
        assert_eq!(ls.ext_reads_per_iter, 1);
        assert!(acc.fit.alms > 0);
        assert!(acc.fit.registers > 0);
        assert!(acc.fit.fmax_mhz > 50.0 && acc.fit.fmax_mhz < 500.0);
    }

    #[test]
    fn unrolled_loops_have_no_schedule() {
        let mut kb = KernelBuilder::new("u", 1);
        let x = kb.var("x", Type::I32);
        let zero = kb.c_i64(0);
        let four = kb.c_i64(4);
        let one = kb.c_i64(1);
        kb.for_unrolled("v", zero, four, one, |kb, v| {
            let c = kb.cast(ScalarType::I32, v);
            let cur = kb.get(x);
            let s = kb.add(cur, c);
            kb.set(x, s);
        });
        let k = kb.finish();
        let acc = compile(&k, &HlsConfig::default());
        assert_eq!(acc.loop_schedules.len(), 1);
        assert!(acc.loop_schedules[0].is_none());
        // ...but its ops appear in the top-level schedule.
        assert!(acc.top_dfg.len() >= 4);
    }

    #[test]
    fn more_threads_cost_more_area() {
        let k1 = {
            let mut kb = KernelBuilder::new("t1", 1);
            mk_body(&mut kb);
            kb.finish()
        };
        let k8 = {
            let mut kb = KernelBuilder::new("t8", 8);
            mk_body(&mut kb);
            kb.finish()
        };
        let a1 = compile(&k1, &HlsConfig::default());
        let a8 = compile(&k8, &HlsConfig::default());
        assert!(
            a8.fit.registers > a1.fit.registers,
            "8-thread contexts must cost more registers ({} vs {})",
            a8.fit.registers,
            a1.fit.registers
        );

        fn mk_body(kb: &mut KernelBuilder) {
            let a = kb.buffer("A", ScalarType::F32, MapDir::To);
            let x = kb.var("x", Type::F32);
            let n = kb.c_i64(8);
            kb.for_range("i", n, |kb, i| {
                let v = kb.load(a, i, Type::F32);
                let cur = kb.get(x);
                let s = kb.add(cur, v);
                kb.set(x, s);
            });
        }
    }

    /// Two threads both write OUT[0..8): a write/write race (NL001).
    fn racy_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("racy", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let n = kb.c_i64(8);
        kb.for_range("i", n, |kb, i| {
            let one = kb.c_f32(1.0);
            kb.store(out, i, one);
        });
        kb.finish()
    }

    #[test]
    fn lint_deny_refuses_racy_kernel() {
        let k = racy_kernel();
        let cfg = HlsConfig {
            lint: LintLevel::Deny,
            ..HlsConfig::default()
        };
        let err = try_compile(&k, &cfg).expect_err("deny gate must reject the race");
        let CompileError::Lint(report) = &err;
        assert!(report.contains("NL001"), "report names the code: {report}");
        assert!(err.to_string().contains("lint gate rejected"));
    }

    #[test]
    fn lint_off_and_warn_compile_racy_kernel() {
        let k = racy_kernel();
        for lint in [LintLevel::Off, LintLevel::Warn] {
            let cfg = HlsConfig {
                lint,
                ..HlsConfig::default()
            };
            let acc = try_compile(&k, &cfg).expect("off/warn must not block the compile");
            assert_eq!(acc.name, "racy");
        }
    }

    #[test]
    fn lint_deny_passes_clean_kernel() {
        // Each thread writes only OUT[tid]: disjoint, lint-clean.
        let mut kb = KernelBuilder::new("clean", 4);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let tid = kb.thread_id();
        let v = kb.load(a, tid, Type::F32);
        let s = kb.add(v, v);
        kb.store(out, tid, s);
        let k = kb.finish();
        let cfg = HlsConfig {
            lint: LintLevel::Deny,
            ..HlsConfig::default()
        };
        let acc = try_compile(&k, &cfg).expect("clean kernel passes the deny gate");
        assert_eq!(acc.name, "clean");
    }

    /// A correctness-clean float reduction: each thread owns its output
    /// element, but the carried `acc` chain is an NP001 recurrence.
    fn recurrence_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("recur", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let acc = kb.var("acc", Type::F32);
        let zero = kb.c_f32(0.0);
        kb.set(acc, zero);
        let tid = kb.thread_id();
        let n = kb.c_i64(64);
        let row = kb.mul(tid, n);
        let n2 = kb.c_i64(64);
        kb.for_range("i", n2, |kb, i| {
            let idx = kb.add(row, i);
            let v = kb.load(a, idx, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            kb.set(acc, s);
        });
        let fin = kb.get(acc);
        kb.store(out, tid, fin);
        kb.finish()
    }

    #[test]
    fn perf_lint_gate_is_independent_of_the_correctness_gate() {
        let k = recurrence_kernel();
        // Correctness-deny alone passes: the kernel is NL-clean.
        let correct_only = HlsConfig {
            lint: LintLevel::Deny,
            ..HlsConfig::default()
        };
        assert!(try_compile(&k, &correct_only).is_ok());
        // Perf-deny refuses it and names the NP code.
        let perf_deny = HlsConfig {
            perf_lint: LintLevel::Deny,
            ..HlsConfig::default()
        };
        let err = try_compile(&k, &perf_deny).expect_err("NP001 blocks perf-deny");
        let CompileError::Lint(report) = &err;
        assert!(report.contains("NP001"), "{report}");
        // Perf-warn (the usual setting) compiles.
        let perf_warn = HlsConfig {
            perf_lint: LintLevel::Warn,
            ..HlsConfig::default()
        };
        assert!(try_compile(&k, &perf_warn).is_ok());
    }
}
