//! Budget-aware counter selection over the region tree (auto-probe).
//!
//! Solves the instrumentation plan for one compiled design as a
//! tree-knapsack: every candidate probe (the kernel-root cycle counter, one
//! module per event class, one cycle counter per source region) has a
//! hardware price, and the optimizer packs the highest-profit probes into a
//! user-given ALM budget. The nesting constraint — a child region's
//! counter is only selectable when its parent region is instrumented, so
//! the call-tree stays decodable — is enforced by construction: candidates
//! are ordered (tier, profit score desc, pre-order asc), region profits
//! are monotone along ancestor chains (see
//! [`crate::region::RegionTree`]), and selection takes a *prefix* of that
//! order, stopping at the first candidate the budget cannot afford. The
//! prefix rule also makes plans monotone across budgets: a smaller
//! budget's plan is always a subset of a larger one's.

use crate::cost::FitReport;
use crate::region::{RegionKind, RegionTree};

/// Default ALM budget of `--profile=auto` (about a third of the paper's
/// profiling-unit footprint class: room for the root counter, all six
/// event counters and a deep region hierarchy at 8 threads).
pub const DEFAULT_PROBE_BUDGET_ALMS: u32 = 2048;

/// How the profiling plan is chosen for a compile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProbeMode {
    /// Hand-chosen fixed counter set (the paper's configuration); no plan
    /// is attached to the accelerator.
    #[default]
    Off,
    /// Derive the plan from the compiled design under an ALM budget.
    Auto {
        /// ALM budget for the probe hardware (counters only; the state
        /// tracker and flush engine are priced separately by
        /// `hls_profiling::overhead`).
        budget_alms: u32,
    },
}

impl ProbeMode {
    /// `Auto` with the default budget.
    pub fn auto() -> ProbeMode {
        ProbeMode::Auto {
            budget_alms: DEFAULT_PROBE_BUDGET_ALMS,
        }
    }
}

/// Per-counter hardware prices the optimizer works with. These mirror the
/// counter constants of `hls_profiling::overhead::OverheadParams` — the
/// profiling crate sits *above* this one in the dependency graph, so it
/// pins the two sets equal with a contract test (the same pattern as the
/// `nymble-lint` latency mirror).
#[derive(Clone, Debug)]
pub struct ProbeCostParams {
    /// Adder/valid-gating logic of one counter module.
    pub counter_alms_base: u32,
    /// Additional ALMs per thread source.
    pub counter_alms_per_thread: u32,
    /// Fixed registers of one counter module.
    pub counter_regs_base: u32,
    /// Aggregate registers per thread per counter.
    pub counter_regs_per_thread: u32,
}

impl Default for ProbeCostParams {
    fn default() -> Self {
        ProbeCostParams {
            counter_alms_base: 30,
            counter_alms_per_thread: 4,
            counter_regs_base: 20,
            counter_regs_per_thread: 12,
        }
    }
}

impl ProbeCostParams {
    /// ALMs of one counter module at `num_threads` sources.
    pub fn alms_per_counter(&self, num_threads: u32) -> u64 {
        self.counter_alms_base as u64 + self.counter_alms_per_thread as u64 * num_threads as u64
    }

    /// Registers of one counter module at `num_threads` sources.
    pub fn regs_per_counter(&self, num_threads: u32) -> u64 {
        self.counter_regs_base as u64 + self.counter_regs_per_thread as u64 * num_threads as u64
    }
}

/// One of the six event classes the paper's hand-chosen set records
/// (mirror of `hls_profiling::CounterSet`, selectable per class here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterClass {
    Stalls,
    IntOps,
    Flops,
    MemRead,
    MemWrite,
    LocalOps,
}

/// All event classes in selection priority order: stalls first (the
/// paper's central signal), then operation mix, then memory traffic.
pub const ALL_COUNTER_CLASSES: [CounterClass; 6] = [
    CounterClass::Stalls,
    CounterClass::IntOps,
    CounterClass::Flops,
    CounterClass::MemRead,
    CounterClass::MemWrite,
    CounterClass::LocalOps,
];

impl CounterClass {
    /// Stable lower-snake name (plan rendering, snapshot extras).
    pub fn name(self) -> &'static str {
        match self {
            CounterClass::Stalls => "stalls",
            CounterClass::IntOps => "int_ops",
            CounterClass::Flops => "flops",
            CounterClass::MemRead => "mem_read",
            CounterClass::MemWrite => "mem_write",
            CounterClass::LocalOps => "local_ops",
        }
    }
}

/// One selected region probe (a flattened [`crate::region::Region`], kept
/// plan-local so a plan outlives the tree it was solved over).
#[derive(Clone, Debug)]
pub struct PlanRegion {
    /// Region id (pre-order over the region tree; 0 = kernel root).
    pub id: u16,
    /// Parent region id (`None` only for the root). Always itself selected.
    pub parent: Option<u16>,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// IR construct kind.
    pub kind: RegionKind,
    /// Slash-separated source path.
    pub label: String,
    /// Selection score the knapsack ranked this region by.
    pub score: u64,
}

/// The solved instrumentation plan of one compiled design.
#[derive(Clone, Debug)]
pub struct ProbePlan {
    /// The budget the plan was solved under.
    pub budget_alms: u32,
    /// Selected event-counter classes, in priority order.
    pub counters: Vec<CounterClass>,
    /// Selected regions in pre-order; the kernel root comes first whenever
    /// anything at all fits the budget.
    pub regions: Vec<PlanRegion>,
    /// Candidate regions the budget could not afford.
    pub skipped_regions: usize,
    /// Modeled ALMs of the selected probe hardware.
    pub cost_alms: u64,
    /// Modeled registers of the selected probe hardware.
    pub cost_regs: u64,
}

impl ProbePlan {
    /// True when `c` is a selected event class.
    pub fn has_counter(&self, c: CounterClass) -> bool {
        self.counters.contains(&c)
    }

    /// True when every class of the hand-chosen default set is selected
    /// (the golden coverage criterion).
    pub fn covers_default_set(&self) -> bool {
        ALL_COUNTER_CLASSES.iter().all(|&c| self.has_counter(c))
    }

    /// The selected region with `id`, if any.
    pub fn region(&self, id: u16) -> Option<&PlanRegion> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Fit of the selected probe hardware alone (fmax is meaningless
    /// standalone and set to 0; combine with the design fit via
    /// [`FitReport::combine`] to re-derive it).
    pub fn fit(&self) -> FitReport {
        FitReport {
            alms: self.cost_alms,
            registers: self.cost_regs,
            dsps: 0,
            bram_kbits: 0,
            fmax_mhz: 0.0,
        }
    }

    /// Selected regions as (id, label) pairs for the Paraver `.pcf` event
    /// table (pre-order).
    pub fn pcf_regions(&self) -> Vec<(u16, String)> {
        self.regions
            .iter()
            .map(|r| (r.id, r.label.clone()))
            .collect()
    }

    /// Selected regions as (depth, label) pairs for the Paraver `.row`
    /// region hierarchy section (pre-order).
    pub fn row_regions(&self) -> Vec<(u32, String)> {
        self.regions
            .iter()
            .map(|r| (r.depth, r.label.clone()))
            .collect()
    }

    /// One-line summary for the repro binaries' stderr.
    pub fn summary(&self) -> String {
        format!(
            "auto-probe plan: {} event counters, {} regions ({} skipped), {} ALMs of {} budget",
            self.counters.len(),
            self.regions.len(),
            self.skipped_regions,
            self.cost_alms,
            self.budget_alms
        )
    }
}

/// Solve the budgeted plan for `tree`.
///
/// Candidates are priced uniformly (one counter module each) and ordered
/// in three tiers: the kernel-root cycle counter, then the six event
/// classes, then the remaining regions by (score desc, pre-order asc).
/// Selection is the longest affordable *prefix* of that order, which
/// yields both knapsack validity (ancestors precede descendants — region
/// scores are monotone along ancestor chains and ties break toward the
/// shallower pre-order index) and budget monotonicity (a smaller budget
/// selects a prefix of a larger budget's selection).
pub fn select(
    tree: &RegionTree,
    num_threads: u32,
    budget_alms: u32,
    params: &ProbeCostParams,
) -> ProbePlan {
    let alms_each = params.alms_per_counter(num_threads);
    let regs_each = params.regs_per_counter(num_threads);

    let mut region_order: Vec<&crate::region::Region> = tree.regions.iter().skip(1).collect();
    region_order.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));

    let mut plan = ProbePlan {
        budget_alms,
        counters: Vec::new(),
        regions: Vec::new(),
        skipped_regions: 0,
        cost_alms: 0,
        cost_regs: 0,
    };

    let afford = |plan: &mut ProbePlan| -> bool {
        if plan.cost_alms + alms_each > budget_alms as u64 {
            return false;
        }
        plan.cost_alms += alms_each;
        plan.cost_regs += regs_each;
        true
    };

    // Tier 0: the kernel-root cycle counter anchors the hierarchy.
    if !afford(&mut plan) {
        plan.skipped_regions = tree.regions.len();
        return plan;
    }
    let root = tree.region(0);
    plan.regions.push(PlanRegion {
        id: root.id,
        parent: root.parent,
        depth: root.depth,
        kind: root.kind,
        label: root.label.clone(),
        score: root.score,
    });

    // Tier 1: event-counter classes, fixed priority order.
    for &c in &ALL_COUNTER_CLASSES {
        if !afford(&mut plan) {
            plan.skipped_regions = region_order.len();
            return plan;
        }
        plan.counters.push(c);
    }

    // Tier 2: region cycle counters, highest profit first.
    for (i, r) in region_order.iter().enumerate() {
        if !afford(&mut plan) {
            plan.skipped_regions = region_order.len() - i;
            break;
        }
        plan.regions.push(PlanRegion {
            id: r.id,
            parent: r.parent,
            depth: r.depth,
            kind: r.kind,
            label: r.label.clone(),
            score: r.score,
        });
    }
    // Re-establish pre-order so downstream emission (`.pcf`, `.row`,
    // decode tables) iterates parents before children.
    plan.regions.sort_by_key(|r| r.id);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionTree;
    use nymble_ir::{Kernel, KernelBuilder, MapDir, ScalarType, Type};
    use nymble_lint::PerfParams;

    fn nest_kernel(threads: u32) -> Kernel {
        let mut kb = KernelBuilder::new("nest", threads);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::ToFrom);
        let acc = kb.var("acc", Type::F32);
        let rows = kb.c_i64(8);
        let cols = kb.c_i64(64);
        kb.for_range("i", rows, |kb, _i| {
            kb.for_range("j", cols, |kb, j| {
                let v = kb.load(a, j, Type::F32);
                let cur = kb.get(acc);
                let s = kb.add(cur, v);
                kb.set(acc, s);
            });
            kb.critical(|kb| {
                let zero = kb.c_i64(0);
                let cur = kb.load(c, zero, Type::F32);
                let mine = kb.get(acc);
                let s = kb.add(cur, mine);
                kb.store(c, zero, s);
            });
        });
        kb.finish()
    }

    fn tree(threads: u32) -> RegionTree {
        RegionTree::build(&nest_kernel(threads), &PerfParams::default())
    }

    #[test]
    fn default_budget_selects_everything_on_small_designs() {
        let t = tree(2);
        let plan = select(
            &t,
            2,
            DEFAULT_PROBE_BUDGET_ALMS,
            &ProbeCostParams::default(),
        );
        assert!(plan.covers_default_set(), "{plan:?}");
        assert_eq!(plan.regions.len(), t.len());
        assert_eq!(plan.skipped_regions, 0);
        assert!(plan.cost_alms <= DEFAULT_PROBE_BUDGET_ALMS as u64);
        // 4 regions + 6 event counters, uniformly priced.
        let p = ProbeCostParams::default();
        assert_eq!(plan.cost_alms, 10 * p.alms_per_counter(2));
        assert_eq!(plan.cost_regs, 10 * p.regs_per_counter(2));
    }

    #[test]
    fn parents_always_selected_before_children() {
        let t = tree(4);
        let p = ProbeCostParams::default();
        let each = p.alms_per_counter(4);
        for budget in 0..=(12 * each as u32) {
            let plan = select(&t, 4, budget, &p);
            for r in &plan.regions {
                if let Some(parent) = r.parent {
                    assert!(
                        plan.region(parent).is_some(),
                        "budget {budget}: region {} selected without parent {parent}",
                        r.id
                    );
                }
            }
        }
    }

    #[test]
    fn plans_are_monotone_across_budgets() {
        let t = tree(4);
        let p = ProbeCostParams::default();
        let each = p.alms_per_counter(4) as u32;
        let mut prev: Option<ProbePlan> = None;
        for budget in (0..=12 * each).step_by(37) {
            let plan = select(&t, 4, budget, &p);
            if let Some(prev) = &prev {
                for c in &prev.counters {
                    assert!(plan.has_counter(*c), "budget {budget} lost counter {c:?}");
                }
                for r in &prev.regions {
                    assert!(
                        plan.region(r.id).is_some(),
                        "budget {budget} lost region {}",
                        r.id
                    );
                }
            }
            prev = Some(plan);
        }
    }

    #[test]
    fn tight_budget_prefers_root_then_stalls() {
        let t = tree(8);
        let p = ProbeCostParams::default();
        let each = p.alms_per_counter(8) as u32;
        // Exactly two counters' worth of budget: root + stalls.
        let plan = select(&t, 8, 2 * each, &p);
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].id, 0);
        assert_eq!(plan.counters, vec![CounterClass::Stalls]);
        assert!(plan.skipped_regions > 0);
        // Zero budget: nothing at all.
        let empty = select(&t, 8, 0, &p);
        assert!(empty.regions.is_empty() && empty.counters.is_empty());
        assert_eq!(empty.cost_alms, 0);
    }

    #[test]
    fn plan_fit_combines_into_the_design_fit() {
        let t = tree(2);
        let plan = select(
            &t,
            2,
            DEFAULT_PROBE_BUDGET_ALMS,
            &ProbeCostParams::default(),
        );
        let base = crate::compile(&nest_kernel(2), &crate::HlsConfig::default()).fit;
        let combined = base.combine(&plan.fit(), &crate::cost::CostParams::default());
        assert_eq!(combined.alms, base.alms + plan.cost_alms);
        assert!(combined.fmax_mhz <= base.fmax_mhz);
        let o = combined.overhead_vs(&base);
        assert!(o.alms_pct > 0.0 && o.alms_pct < 15.0, "{o:?}");
    }
}
