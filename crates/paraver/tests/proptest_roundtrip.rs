//! Property tests: the `.prv` writer and parser are inverses for arbitrary
//! record streams, the analysis primitives conserve what they bin, and the
//! spill-sorting merge always hands sinks a nondecreasing stream.

use miniprop::{forall, Rng};
use paraver::analysis::{event_series, event_total, zoom, StateProfile};
use paraver::model::{Record, TraceMeta};
use paraver::parse::parse_prv;
use paraver::prv::TraceWriter;
use paraver::sink::{OrderCheckSink, VecSink};
use paraver::spill::SpillSorter;
use paraver::TraceSink;

const THREADS: u32 = 8;

fn arb_record(g: &mut Rng, max_t: u64) -> Record {
    if g.bool() {
        let begin = g.range_u64(0, max_t);
        Record::State {
            thread: g.range_u32(0, THREADS),
            begin,
            end: begin + g.range_u64(0, 1000),
            state: g.range_u32(0, 4),
        }
    } else {
        Record::Event {
            thread: g.range_u32(0, THREADS),
            time: g.range_u64(0, max_t),
            events: g.vec(1, 4, |g| {
                (42_000_000 + g.range_u32(1, 5), g.range_u64(0, 1_000_000))
            }),
        }
    }
}

/// An arbitrary record set, sorted into valid write order.
fn arb_trace(g: &mut Rng) -> Vec<Record> {
    let mut rs = g.vec(0, 200, |g| arb_record(g, 100_000));
    rs.sort_by_key(|r| r.sort_time());
    rs
}

#[test]
fn prv_write_parse_roundtrip() {
    forall(64, |g| {
        let records = arb_trace(g);
        let meta = TraceMeta::new("prop", 200_000, THREADS);
        let mut w = TraceWriter::new(Vec::new(), meta).unwrap();
        w.write_all(records.iter()).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let (meta2, parsed) = parse_prv(&text).unwrap();
        assert_eq!(meta2.num_threads, THREADS);
        assert_eq!(parsed, records);
    });
}

#[test]
fn event_series_conserves_totals() {
    forall(64, |g| {
        let records = arb_trace(g);
        let bin = g.range_u64(1, 10_000);
        for ty in 42_000_001..42_000_005u32 {
            let total = event_total(&records, ty);
            let series = event_series(&records, ty, bin, 200_000);
            assert_eq!(series.total(), total, "binning must conserve type {ty}");
        }
    });
}

#[test]
fn state_profile_total_equals_interval_sum() {
    forall(64, |g| {
        let records = arb_trace(g);
        let profile = StateProfile::compute(&records, THREADS);
        let expect: u64 = records
            .iter()
            .filter_map(|r| match r {
                Record::State { begin, end, .. } => Some(end - begin),
                _ => None,
            })
            .sum();
        assert_eq!(profile.total_time, expect);
        // Per-thread sums add up to the total.
        let per: u64 = profile.per_thread.iter().flat_map(|m| m.values()).sum();
        assert_eq!(per, expect);
    });
}

#[test]
fn zoom_never_grows_time() {
    forall(64, |g| {
        let records = arb_trace(g);
        let t0 = g.range_u64(0, 50_000);
        let len = g.range_u64(1, 50_000);
        let z = zoom(&records, t0, t0 + len);
        for r in &z {
            match r {
                Record::State { begin, end, .. } => {
                    assert!(*begin >= t0 && *end <= t0 + len);
                }
                Record::Event { time, .. } => {
                    assert!(*time >= t0 && *time < t0 + len);
                }
                Record::Comm { logical_send, .. } => {
                    assert!(*logical_send >= t0 && *logical_send < t0 + len);
                }
            }
        }
        // Zoomed state time never exceeds the original.
        let orig = StateProfile::compute(&records, THREADS).total_time;
        let zoomed = StateProfile::compute(&z, THREADS).total_time;
        assert!(zoomed <= orig);
    });
}

#[test]
fn relative_series_is_normalised() {
    forall(64, |g| {
        let records = arb_trace(g);
        let bin = g.range_u64(1, 10_000);
        let series = event_series(&records, 42_000_001, bin, 200_000);
        let rel = series.relative();
        for v in &rel {
            assert!((0.0..=1.0).contains(v));
        }
        if series.peak() > 0 {
            assert!(rel.iter().any(|&v| (v - 1.0).abs() < 1e-12));
        }
    });
}

#[test]
fn spill_merge_is_always_nondecreasing() {
    forall(64, |g| {
        // Unsorted input this time: the sorter's whole job.
        let records = g.vec(0, 400, |g| arb_record(g, 100_000));
        let cap = g.range_usize(1, 64);
        let mut sorter = SpillSorter::new(OrderCheckSink::default(), cap);
        for r in records.iter().cloned() {
            sorter.push(r).unwrap();
        }
        sorter.close().unwrap();
        assert_eq!(sorter.inner().records_seen, records.len() as u64);
        assert!(sorter.peak_in_memory() <= cap);
    });
}

#[test]
fn spill_merge_equals_materialized_stable_sort() {
    forall(32, |g| {
        let records = g.vec(0, 300, |g| arb_record(g, 500));
        let mut expect = records.clone();
        expect.sort_by_key(Record::sort_time);
        let cap = g.range_usize(1, 48);
        let mut sorter = SpillSorter::new(VecSink::new(), cap);
        for r in records.iter().cloned() {
            sorter.push(r).unwrap();
        }
        sorter.close().unwrap();
        assert_eq!(sorter.inner().records, expect);
    });
}
