//! Property tests: the `.prv` writer and parser are inverses for arbitrary
//! record streams, and the analysis primitives conserve what they bin.

use paraver::analysis::{event_series, event_total, zoom, StateProfile};
use paraver::model::{Record, TraceMeta};
use paraver::parse::parse_prv;
use paraver::prv::TraceWriter;
use proptest::prelude::*;

const THREADS: u32 = 8;

fn arb_record(max_t: u64) -> impl Strategy<Value = Record> {
    prop_oneof![
        (0..THREADS, 0..max_t, 0..1000u64, 0..4u32).prop_map(|(thread, begin, len, state)| {
            Record::State {
                thread,
                begin,
                end: begin + len,
                state,
            }
        }),
        (
            0..THREADS,
            0..max_t,
            proptest::collection::vec((1..5u32, 0..1_000_000u64), 1..4)
        )
            .prop_map(|(thread, time, events)| Record::Event {
                thread,
                time,
                events: events
                    .into_iter()
                    .map(|(ty, v)| (42_000_000 + ty, v))
                    .collect(),
            }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(arb_record(100_000), 0..200).prop_map(|mut rs| {
        rs.sort_by_key(|r| r.sort_time());
        rs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prv_write_parse_roundtrip(records in arb_trace()) {
        let meta = TraceMeta::new("prop", 200_000, THREADS);
        let mut w = TraceWriter::new(Vec::new(), meta).unwrap();
        w.write_all(records.iter()).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let (meta2, parsed) = parse_prv(&text).unwrap();
        prop_assert_eq!(meta2.num_threads, THREADS);
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn event_series_conserves_totals(records in arb_trace(), bin in 1u64..10_000) {
        for ty in 42_000_001..42_000_005u32 {
            let total = event_total(&records, ty);
            let series = event_series(&records, ty, bin, 200_000);
            prop_assert_eq!(series.total(), total, "binning must conserve type {}", ty);
        }
    }

    #[test]
    fn state_profile_total_equals_interval_sum(records in arb_trace()) {
        let profile = StateProfile::compute(&records, THREADS);
        let expect: u64 = records.iter().filter_map(|r| match r {
            Record::State { begin, end, .. } => Some(end - begin),
            _ => None,
        }).sum();
        prop_assert_eq!(profile.total_time, expect);
        // Per-thread sums add up to the total.
        let per: u64 = profile.per_thread.iter().flat_map(|m| m.values()).sum();
        prop_assert_eq!(per, expect);
    }

    #[test]
    fn zoom_never_grows_time(records in arb_trace(), t0 in 0u64..50_000, len in 1u64..50_000) {
        let z = zoom(&records, t0, t0 + len);
        for r in &z {
            match r {
                Record::State { begin, end, .. } => {
                    prop_assert!(*begin >= t0 && *end <= t0 + len);
                }
                Record::Event { time, .. } => {
                    prop_assert!(*time >= t0 && *time < t0 + len);
                }
                Record::Comm { logical_send, .. } => {
                    prop_assert!(*logical_send >= t0 && *logical_send < t0 + len);
                }
            }
        }
        // Zoomed state time never exceeds the original.
        let orig = StateProfile::compute(&records, THREADS).total_time;
        let zoomed = StateProfile::compute(&z, THREADS).total_time;
        prop_assert!(zoomed <= orig);
    }

    #[test]
    fn relative_series_is_normalised(records in arb_trace(), bin in 1u64..10_000) {
        let series = event_series(&records, 42_000_001, bin, 200_000);
        let rel = series.relative();
        for v in &rel {
            prop_assert!((0.0..=1.0).contains(v));
        }
        if series.peak() > 0 {
            prop_assert!(rel.iter().any(|&v| (v - 1.0).abs() < 1e-12));
        }
    }
}
