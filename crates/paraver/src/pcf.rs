//! `.pcf` configuration-file rendering.
//!
//! The `.pcf` tells Paraver how to display a trace: display defaults, the
//! semantic names of states, their colours, and labels for event types. The
//! subset rendered here is what Paraver needs to show the paper's state view
//! (Fig. 6) and counter timelines (Figs. 7–9).

use crate::model::{EventTypeDef, StateDef};
use std::fmt::Write as _;

/// Render a `.pcf` for the given states and event types.
pub fn render(states: &[StateDef], event_types: &[EventTypeDef]) -> String {
    let mut s = String::new();
    s.push_str("DEFAULT_OPTIONS\n\n");
    s.push_str("LEVEL               THREAD\n");
    s.push_str("UNITS               NANOSEC\n");
    s.push_str("LOOK_BACK           100\n");
    s.push_str("SPEED               1\n");
    s.push_str("FLAG_ICONS          ENABLED\n");
    s.push_str("NUM_OF_STATE_COLORS 1000\n");
    s.push_str("YMAX_SCALE          37\n\n\n");

    s.push_str("DEFAULT_SEMANTIC\n\n");
    s.push_str("THREAD_FUNC          State As Is\n\n\n");

    s.push_str("STATES\n");
    for st in states {
        let _ = writeln!(s, "{}    {}", st.id, st.name);
    }
    s.push('\n');
    s.push_str("STATES_COLOR\n");
    for st in states {
        let (r, g, b) = st.color;
        let _ = writeln!(s, "{}    {{{},{},{}}}", st.id, r, g, b);
    }
    s.push('\n');

    for et in event_types {
        s.push_str("EVENT_TYPE\n");
        // `0` is the gradient-render code Paraver uses for numeric counters.
        let _ = writeln!(s, "0    {}    {}", et.id, et.label);
        s.push('\n');
    }
    s
}

/// Parse the `STATES` and `EVENT_TYPE` sections back out of a `.pcf`
/// (used for round-trip testing and by external tooling).
pub fn parse(pcf: &str) -> (Vec<StateDef>, Vec<EventTypeDef>) {
    let mut states = Vec::new();
    let mut events = Vec::new();
    let mut colors = std::collections::HashMap::new();
    let mut section = "";
    for line in pcf.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match trimmed {
            "STATES" | "STATES_COLOR" | "EVENT_TYPE" | "DEFAULT_OPTIONS" | "DEFAULT_SEMANTIC" => {
                section = match trimmed {
                    "STATES" => "states",
                    "STATES_COLOR" => "colors",
                    "EVENT_TYPE" => "events",
                    _ => "",
                };
                continue;
            }
            _ => {}
        }
        let mut parts = trimmed.split_whitespace();
        match section {
            "states" => {
                if let (Some(id), Some(name)) = (parts.next(), parts.next()) {
                    if let Ok(id) = id.parse() {
                        states.push(StateDef {
                            id,
                            name: name.to_string(),
                            color: (0, 0, 0),
                        });
                    }
                }
            }
            "colors" => {
                if let (Some(id), Some(rgb)) = (parts.next(), parts.next()) {
                    if let Ok(id) = id.parse::<u32>() {
                        let rgb = rgb.trim_matches(['{', '}']);
                        let c: Vec<u8> = rgb.split(',').filter_map(|x| x.parse().ok()).collect();
                        if c.len() == 3 {
                            colors.insert(id, (c[0], c[1], c[2]));
                        }
                    }
                }
            }
            "events" => {
                if let (Some(_code), Some(id)) = (parts.next(), parts.next()) {
                    if let Ok(id) = id.parse() {
                        let label = parts.collect::<Vec<_>>().join(" ");
                        events.push(EventTypeDef { id, label });
                    }
                }
            }
            _ => {}
        }
    }
    for st in &mut states {
        if let Some(c) = colors.get(&st.id) {
            st.color = *c;
        }
    }
    (states, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_states_and_events() {
        let states = crate::states::defs();
        let events = crate::events::defs();
        let pcf = render(&states, &events);
        let (ps, pe) = parse(&pcf);
        assert_eq!(ps.len(), states.len());
        assert_eq!(pe.len(), events.len());
        assert_eq!(ps[3].name, "Spinning");
        assert_eq!(ps[3].color, (255, 0, 0), "spinning is red in Fig. 6");
        assert_eq!(pe[2].id, crate::events::FLOPS);
        assert!(pe[2].label.contains("Floating-point"));
    }

    #[test]
    fn contains_required_sections() {
        let pcf = render(&crate::states::defs(), &crate::events::defs());
        for sect in ["DEFAULT_OPTIONS", "STATES", "STATES_COLOR", "EVENT_TYPE"] {
            assert!(pcf.contains(sect), "missing section {sect}");
        }
    }
}
