//! The [`TraceSink`] abstraction: a consumer of [`Record`]s in nondecreasing
//! `sort_time()` order.
//!
//! Every stage of the streaming trace pipeline ends in a sink: the `.prv`
//! writer ([`crate::prv::TraceWriter`]), the full-bundle writer
//! ([`crate::prv::BundleWriter`]), an in-memory collector ([`VecSink`]) or a
//! discard/count stage ([`NullSink`]). The spill sorter
//! ([`crate::spill::SpillSorter`]) adapts an *unordered* record stream onto
//! any ordered sink with bounded memory.

use crate::error::TraceError;
use crate::model::Record;

/// A consumer of time-ordered trace records.
///
/// Contract: `push` is called with records whose `sort_time()` never
/// decreases; `close` is called exactly once after the final record. Sinks
/// that enforce the contract report violations as
/// [`TraceError::OutOfOrder`].
pub trait TraceSink {
    /// Consume one record.
    fn push(&mut self, r: Record) -> Result<(), TraceError>;

    /// Flush and finalize. Called once, after the last `push`.
    fn close(&mut self) -> Result<(), TraceError> {
        Ok(())
    }
}

/// Collects records in memory (the materialized path's backing store).
#[derive(Debug, Default)]
pub struct VecSink {
    pub records: Vec<Record>,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink::default()
    }

    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

impl TraceSink for VecSink {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.records.push(r);
        Ok(())
    }
}

/// Discards records, keeping only a count — for overhead measurements and
/// contract tests.
#[derive(Debug, Default)]
pub struct NullSink {
    pub records_seen: u64,
}

impl TraceSink for NullSink {
    fn push(&mut self, _r: Record) -> Result<(), TraceError> {
        self.records_seen += 1;
        Ok(())
    }
}

/// Asserts the ordering contract without writing anywhere; useful to wrap
/// any stage under test.
#[derive(Debug, Default)]
pub struct OrderCheckSink {
    last: u64,
    pub records_seen: u64,
}

impl TraceSink for OrderCheckSink {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        let t = r.sort_time();
        if t < self.last {
            return Err(TraceError::OutOfOrder {
                prev: self.last,
                next: t,
            });
        }
        self.last = t;
        self.records_seen += 1;
        Ok(())
    }
}

impl<S: TraceSink + ?Sized> TraceSink for Box<S> {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        (**self).push(r)
    }

    fn close(&mut self) -> Result<(), TraceError> {
        (**self).close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64) -> Record {
        Record::Event {
            thread: 0,
            time,
            events: vec![(1, 1)],
        }
    }

    #[test]
    fn vec_sink_collects() {
        let mut s = VecSink::new();
        s.push(ev(1)).unwrap();
        s.push(ev(2)).unwrap();
        s.close().unwrap();
        assert_eq!(s.into_records().len(), 2);
    }

    #[test]
    fn order_check_sink_rejects_regressions() {
        let mut s = OrderCheckSink::default();
        s.push(ev(5)).unwrap();
        s.push(ev(5)).unwrap();
        let err = s.push(ev(4)).unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { prev: 5, next: 4 }));
    }

    #[test]
    fn boxed_sinks_delegate() {
        let mut s: Box<dyn TraceSink> = Box::new(NullSink::default());
        s.push(ev(1)).unwrap();
        s.close().unwrap();
    }
}
