//! 2D histograms — Paraver's signature analysis view.
//!
//! Paraver's power comes from turning a timeline into a `threads ×
//! value-buckets` matrix: burst-duration histograms expose load imbalance,
//! event-value histograms expose bimodal behaviour (e.g. the distinct
//! transfer/compute regimes of the paper's blocked GEMM). This module
//! provides those matrices over the record model plus an ASCII renderer in
//! the style of the GUI's gradient view.

use crate::model::Record;
use std::fmt::Write as _;

/// A `threads × buckets` counting matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram2D {
    /// Inclusive lower edge of each bucket.
    pub bucket_edges: Vec<u64>,
    /// `counts[thread][bucket]`.
    pub counts: Vec<Vec<u64>>,
    /// What is being counted (for rendering).
    pub label: String,
}

impl Histogram2D {
    fn new(num_threads: u32, edges: Vec<u64>, label: String) -> Self {
        Histogram2D {
            counts: vec![vec![0; edges.len()]; num_threads as usize],
            bucket_edges: edges,
            label,
        }
    }

    fn bucket(&self, v: u64) -> usize {
        match self.bucket_edges.binary_search(&v) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    fn add(&mut self, thread: u32, v: u64) {
        let b = self.bucket(v);
        self.counts[thread as usize][b] += 1;
    }

    /// Total samples for one thread.
    pub fn thread_total(&self, t: u32) -> u64 {
        self.counts[t as usize].iter().sum()
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Render as an ASCII gradient table (rows = threads).
    pub fn render(&self) -> String {
        const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '@'];
        let peak = self
            .counts
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
            .max(1);
        let mut s = String::new();
        let _ = writeln!(s, "{} — rows: threads, cols: buckets", self.label);
        let _ = write!(s, "        ");
        for e in &self.bucket_edges {
            let _ = write!(s, "{:>8}", e);
        }
        s.push('\n');
        for (t, row) in self.counts.iter().enumerate() {
            let _ = write!(s, "T{t:<3} |");
            for &c in row {
                let idx = ((c as f64 / peak as f64) * (LEVELS.len() - 1) as f64).round() as usize;
                let ch = LEVELS[idx.min(LEVELS.len() - 1)];
                let _ = write!(s, " {ch}{ch}{ch}{ch}{ch}{ch} ");
            }
            s.push_str("|\n");
        }
        s
    }
}

/// Logarithmic bucket edges covering `[1, max]`.
pub fn log2_edges(max: u64) -> Vec<u64> {
    let mut edges = vec![0u64, 1];
    let mut e = 2u64;
    while e <= max.max(2) {
        edges.push(e);
        e = e.saturating_mul(2);
    }
    edges
}

/// Histogram of state-interval *durations* for one state (Paraver's
/// "useful duration" view — the paper reads load balance off it).
pub fn state_duration_histogram(records: &[Record], num_threads: u32, state: u32) -> Histogram2D {
    let max = records
        .iter()
        .filter_map(|r| match r {
            Record::State {
                begin,
                end,
                state: s,
                ..
            } if *s == state => Some(end - begin),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    let mut h = Histogram2D::new(
        num_threads,
        log2_edges(max),
        format!("duration histogram of state {state} (cycles, log2 buckets)"),
    );
    for r in records {
        if let Record::State {
            thread,
            begin,
            end,
            state: s,
        } = r
        {
            if *s == state && end > begin {
                h.add(*thread, end - begin);
            }
        }
    }
    h
}

/// Histogram of sampled event *values* for one event type (e.g. bytes per
/// sampling period — bimodal for phased transfer/compute behaviour).
pub fn event_value_histogram(records: &[Record], num_threads: u32, event_type: u32) -> Histogram2D {
    let max = records
        .iter()
        .filter_map(|r| match r {
            Record::Event { events, .. } => events
                .iter()
                .filter(|(ty, _)| *ty == event_type)
                .map(|(_, v)| *v)
                .max(),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    let mut h = Histogram2D::new(
        num_threads,
        log2_edges(max),
        format!("value histogram of event {event_type} (log2 buckets)"),
    );
    for r in records {
        if let Record::Event { thread, events, .. } = r {
            for (ty, v) in events {
                if *ty == event_type {
                    h.add(*thread, *v);
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states;

    #[test]
    fn log2_edges_cover_range() {
        let e = log2_edges(100);
        assert_eq!(e, vec![0, 1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn duration_histogram_buckets_by_length() {
        let records = vec![
            Record::State {
                thread: 0,
                begin: 0,
                end: 3, // dur 3 → bucket edge 2
                state: states::RUNNING,
            },
            Record::State {
                thread: 0,
                begin: 10,
                end: 74, // dur 64 → bucket edge 64
                state: states::RUNNING,
            },
            Record::State {
                thread: 1,
                begin: 0,
                end: 1, // dur 1
                state: states::RUNNING,
            },
            Record::State {
                thread: 1,
                begin: 5,
                end: 9,
                state: states::SPINNING, // other state: excluded
            },
        ];
        let h = state_duration_histogram(&records, 2, states::RUNNING);
        assert_eq!(h.total(), 3);
        assert_eq!(h.thread_total(0), 2);
        let b3 = h.bucket(3);
        assert_eq!(h.counts[0][b3], 1);
        let b64 = h.bucket(64);
        assert_eq!(h.counts[0][b64], 1);
        let b1 = h.bucket(1);
        assert_eq!(h.counts[1][b1], 1);
    }

    #[test]
    fn event_histogram_counts_values() {
        let records = vec![
            Record::Event {
                thread: 0,
                time: 0,
                events: vec![(42, 7), (43, 100)],
            },
            Record::Event {
                thread: 1,
                time: 5,
                events: vec![(42, 9)],
            },
        ];
        let h = event_value_histogram(&records, 2, 42);
        assert_eq!(h.total(), 2);
        // Values 7 and 9 land in the 4..8 and 8..16 buckets.
        assert_eq!(h.counts[0][h.bucket(7)], 1);
        assert_eq!(h.counts[1][h.bucket(9)], 1);
    }

    #[test]
    fn render_is_wellformed() {
        let records = vec![Record::State {
            thread: 0,
            begin: 0,
            end: 10,
            state: states::RUNNING,
        }];
        let h = state_duration_histogram(&records, 2, states::RUNNING);
        let s = h.render();
        assert!(s.contains("T0"));
        assert!(s.contains("T1"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn bucket_lookup_is_stable_at_edges() {
        let h = Histogram2D::new(1, vec![0, 1, 2, 4, 8], "t".into());
        assert_eq!(h.bucket(0), 0);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.bucket(4), 3);
        assert_eq!(h.bucket(1000), 4);
    }
}
