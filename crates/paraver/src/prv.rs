//! `.prv` trace-body writer.
//!
//! Line format (all ids 1-based):
//!
//! ```text
//! #Paraver (<date>):<ftime>:<nNodes>(<cpus>):<nAppl>:<nTasks>(<threads>:<node>)
//! 1:<cpu>:<appl>:<task>:<thread>:<begin>:<end>:<state>
//! 2:<cpu>:<appl>:<task>:<thread>:<time>:<type>:<value>[:<type>:<value>]...
//! 3:<cpu>:<a>:<t>:<th>:<lsend>:<psend>:<cpu>:<a>:<t>:<th>:<lrecv>:<precv>:<size>:<tag>
//! ```
//!
//! The writer streams through any [`std::io::Write`]; callers hand it records
//! in non-decreasing time order. Order and thread-range violations surface as
//! typed [`TraceError`]s — the streaming pipeline's merge stage feeds this
//! writer from a background thread, where a recoverable error (propagated to
//! the join point) is required rather than a panic.

use crate::error::TraceError;
use crate::model::{Record, TraceMeta};
use crate::sink::TraceSink;
use std::io::{self, Write};

/// Streaming `.prv` writer.
pub struct TraceWriter<W: Write> {
    out: W,
    meta: TraceMeta,
    records_written: u64,
    last_time: u64,
    /// Reusable line buffer: records are rendered with a bare decimal
    /// formatter instead of `fmt` machinery — the writer sits on the hot
    /// side of million-record traces and the formatting cost dominates
    /// otherwise. Output bytes are identical to the `write!` rendering.
    line: Vec<u8>,
}

/// Append `v` in decimal (same bytes `Display` produces).
#[inline]
fn push_u64(line: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    line.extend_from_slice(&tmp[i..]);
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer and emit the header line.
    pub fn new(mut out: W, meta: TraceMeta) -> io::Result<Self> {
        // One node holding `num_threads` cpus; one application with one task
        // of `num_threads` threads, all on node 1.
        writeln!(
            out,
            "#Paraver ({}):{}:1({}):1:1({}:1)",
            meta.date, meta.duration, meta.num_threads, meta.num_threads
        )?;
        Ok(TraceWriter {
            out,
            meta,
            records_written: 0,
            last_time: 0,
            line: Vec::with_capacity(128),
        })
    }

    fn check_thread(&self, thread: u32) -> Result<(), TraceError> {
        if thread >= self.meta.num_threads {
            return Err(TraceError::ThreadOutOfRange {
                thread,
                num_threads: self.meta.num_threads,
            });
        }
        Ok(())
    }

    /// Write one record.
    ///
    /// Returns [`TraceError::OutOfOrder`] if `r.sort_time()` is earlier than
    /// the previous record's, and [`TraceError::ThreadOutOfRange`] for a
    /// thread id beyond the trace's thread count; the record is not written
    /// in either case, and the writer stays usable.
    pub fn write(&mut self, r: &Record) -> Result<(), TraceError> {
        if r.sort_time() < self.last_time {
            return Err(TraceError::OutOfOrder {
                prev: self.last_time,
                next: r.sort_time(),
            });
        }
        match r {
            Record::State { thread, .. } | Record::Event { thread, .. } => {
                self.check_thread(*thread)?
            }
            Record::Comm {
                send_thread,
                recv_thread,
                ..
            } => {
                self.check_thread(*send_thread)?;
                self.check_thread(*recv_thread)?;
            }
        }
        let line = &mut self.line;
        line.clear();
        match r {
            Record::State {
                thread,
                begin,
                end,
                state,
            } => {
                debug_assert!(begin <= end, "state interval reversed");
                // 1:{tid}:1:1:{tid}:{begin}:{end}:{state}
                line.extend_from_slice(b"1:");
                push_u64(line, (*thread + 1) as u64);
                line.extend_from_slice(b":1:1:");
                push_u64(line, (*thread + 1) as u64);
                line.push(b':');
                push_u64(line, *begin);
                line.push(b':');
                push_u64(line, *end);
                line.push(b':');
                push_u64(line, *state as u64);
            }
            Record::Event {
                thread,
                time,
                events,
            } => {
                debug_assert!(!events.is_empty(), "event record with no events");
                // 2:{tid}:1:1:{tid}:{time}[:{type}:{value}]...
                line.extend_from_slice(b"2:");
                push_u64(line, (*thread + 1) as u64);
                line.extend_from_slice(b":1:1:");
                push_u64(line, (*thread + 1) as u64);
                line.push(b':');
                push_u64(line, *time);
                for (ty, v) in events {
                    line.push(b':');
                    push_u64(line, *ty as u64);
                    line.push(b':');
                    push_u64(line, *v);
                }
            }
            Record::Comm {
                send_thread,
                recv_thread,
                logical_send,
                physical_send,
                logical_recv,
                physical_recv,
                size,
                tag,
            } => {
                // 3:{s}:1:1:{s}:{ls}:{ps}:{r}:1:1:{r}:{lr}:{pr}:{size}:{tag}
                line.extend_from_slice(b"3:");
                push_u64(line, (*send_thread + 1) as u64);
                line.extend_from_slice(b":1:1:");
                push_u64(line, (*send_thread + 1) as u64);
                line.push(b':');
                push_u64(line, *logical_send);
                line.push(b':');
                push_u64(line, *physical_send);
                line.push(b':');
                push_u64(line, (*recv_thread + 1) as u64);
                line.extend_from_slice(b":1:1:");
                push_u64(line, (*recv_thread + 1) as u64);
                line.push(b':');
                push_u64(line, *logical_recv);
                line.push(b':');
                push_u64(line, *physical_recv);
                line.push(b':');
                push_u64(line, *size);
                line.push(b':');
                push_u64(line, *tag);
            }
        }
        line.push(b'\n');
        self.out.write_all(line)?;
        self.last_time = r.sort_time();
        self.records_written += 1;
        Ok(())
    }

    /// Write many records.
    pub fn write_all<'a>(
        &mut self,
        rs: impl IntoIterator<Item = &'a Record>,
    ) -> Result<(), TraceError> {
        for r in rs {
            self.write(r)?;
        }
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.write(&r)
    }

    fn close(&mut self) -> Result<(), TraceError> {
        self.out.flush()?;
        Ok(())
    }
}

/// Streaming writer for a full trace bundle (`.prv` + `.pcf` + `.row`).
///
/// The `.prv` body streams record-by-record through a [`TraceWriter`] (so the
/// bundle never holds the record set in memory); the `.pcf` and `.row`
/// sidecars are derived from metadata alone and are emitted on [`close`].
///
/// [`close`]: TraceSink::close
pub struct BundleWriter {
    writer: TraceWriter<io::BufWriter<std::fs::File>>,
    path_stem: std::path::PathBuf,
    meta: TraceMeta,
    states: Vec<crate::model::StateDef>,
    event_types: Vec<crate::model::EventTypeDef>,
    /// Instrumented source regions as (depth, label) for the `.row`'s
    /// `LEVEL REGION` section; empty without an auto-probe plan.
    regions: Vec<(u32, String)>,
    closed: bool,
}

impl BundleWriter {
    /// Create `<path_stem>.prv` (header written immediately); `.pcf`/`.row`
    /// follow at close time.
    pub fn create(
        path_stem: &std::path::Path,
        meta: &TraceMeta,
        states: &[crate::model::StateDef],
        event_types: &[crate::model::EventTypeDef],
    ) -> io::Result<Self> {
        let prv = std::fs::File::create(path_stem.with_extension("prv"))?;
        let writer = TraceWriter::new(io::BufWriter::new(prv), meta.clone())?;
        Ok(BundleWriter {
            writer,
            path_stem: path_stem.to_path_buf(),
            meta: meta.clone(),
            states: states.to_vec(),
            event_types: event_types.to_vec(),
            regions: Vec::new(),
            closed: false,
        })
    }

    /// Declare the instrumented source-region hierarchy (pre-order
    /// (depth, label) pairs); rendered into the `.row` at close time.
    pub fn with_regions(mut self, regions: Vec<(u32, String)>) -> Self {
        self.regions = regions;
        self
    }

    /// Number of `.prv` records written so far.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }
}

impl TraceSink for BundleWriter {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.writer.write(&r)
    }

    fn close(&mut self) -> Result<(), TraceError> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        self.writer.close()?;
        std::fs::write(
            self.path_stem.with_extension("pcf"),
            crate::pcf::render(&self.states, &self.event_types),
        )?;
        std::fs::write(
            self.path_stem.with_extension("row"),
            crate::row::render_with_regions(&self.meta, &self.regions),
        )?;
        Ok(())
    }
}

/// Write a full trace bundle (`.prv`, `.pcf`, `.row`) under `path_stem`.
///
/// Thin adapter over [`BundleWriter`] for the materialized path: records are
/// sorted by time (stable, so equal-time records keep their decode order —
/// the same order the streaming merge produces) and pushed through the
/// bundle sink.
pub fn write_bundle(
    path_stem: &std::path::Path,
    meta: &TraceMeta,
    records: &mut [Record],
    states: &[crate::model::StateDef],
    event_types: &[crate::model::EventTypeDef],
) -> io::Result<()> {
    write_bundle_with_regions(path_stem, meta, records, states, event_types, Vec::new())
}

/// [`write_bundle`] plus a `LEVEL REGION` hierarchy in the `.row` (the
/// auto-probe path; `regions` is pre-order (depth, label) pairs).
pub fn write_bundle_with_regions(
    path_stem: &std::path::Path,
    meta: &TraceMeta,
    records: &mut [Record],
    states: &[crate::model::StateDef],
    event_types: &[crate::model::EventTypeDef],
    regions: Vec<(u32, String)>,
) -> io::Result<()> {
    records.sort_by_key(|r| r.sort_time());
    let mut w = BundleWriter::create(path_stem, meta, states, event_types)?.with_regions(regions);
    for r in records.iter() {
        w.writer.write(r)?;
    }
    w.close()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta::new("test", 100, 2)
    }

    #[test]
    fn header_format() {
        let w = TraceWriter::new(Vec::new(), meta()).unwrap();
        let buf = w.finish().unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "#Paraver (01/01/2026 at 00:00):100:1(2):1:1(2:1)\n");
    }

    #[test]
    fn state_and_event_lines() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        w.write(&Record::State {
            thread: 0,
            begin: 0,
            end: 10,
            state: 1,
        })
        .unwrap();
        w.write(&Record::Event {
            thread: 1,
            time: 5,
            events: vec![(42_000_001, 7), (42_000_003, 9)],
        })
        .unwrap();
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "1:1:1:1:1:0:10:1");
        assert_eq!(lines[2], "2:2:1:1:2:5:42000001:7:42000003:9");
    }

    #[test]
    fn out_of_order_is_a_typed_recoverable_error() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        w.write(&Record::Event {
            thread: 0,
            time: 10,
            events: vec![(1, 1)],
        })
        .unwrap();
        let err = w
            .write(&Record::Event {
                thread: 0,
                time: 5,
                events: vec![(1, 1)],
            })
            .unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { prev: 10, next: 5 }));
        // The writer stays usable: the bad record was not written and a
        // later in-order record still succeeds.
        w.write(&Record::Event {
            thread: 0,
            time: 12,
            events: vec![(1, 1)],
        })
        .unwrap();
        assert_eq!(w.records_written(), 2);
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(s.lines().count(), 3, "header + two good records");
    }

    #[test]
    fn thread_out_of_range_is_a_typed_error() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        let err = w
            .write(&Record::Event {
                thread: 7,
                time: 1,
                events: vec![(1, 1)],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            TraceError::ThreadOutOfRange {
                thread: 7,
                num_threads: 2
            }
        ));
    }

    #[test]
    fn comm_line_roundtrip_shape() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        w.write(&Record::Comm {
            send_thread: 0,
            recv_thread: 1,
            logical_send: 1,
            physical_send: 2,
            logical_recv: 3,
            physical_recv: 4,
            size: 64,
            tag: 9,
        })
        .unwrap();
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(s.lines().nth(1).unwrap().starts_with("3:1:1:1:1:1:2:2:"));
    }

    #[test]
    fn bundle_writer_emits_all_three_files() {
        let dir = std::env::temp_dir().join(format!("prv-bundle-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("t");
        let mut b = BundleWriter::create(
            &stem,
            &meta(),
            &crate::states::defs(),
            &crate::events::defs(),
        )
        .unwrap();
        b.push(Record::Event {
            thread: 0,
            time: 3,
            events: vec![(42_000_001, 1)],
        })
        .unwrap();
        b.close().unwrap();
        for ext in ["prv", "pcf", "row"] {
            assert!(stem.with_extension(ext).exists(), ".{ext} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
