//! `.prv` trace-body writer.
//!
//! Line format (all ids 1-based):
//!
//! ```text
//! #Paraver (<date>):<ftime>:<nNodes>(<cpus>):<nAppl>:<nTasks>(<threads>:<node>)
//! 1:<cpu>:<appl>:<task>:<thread>:<begin>:<end>:<state>
//! 2:<cpu>:<appl>:<task>:<thread>:<time>:<type>:<value>[:<type>:<value>]...
//! 3:<cpu>:<a>:<t>:<th>:<lsend>:<psend>:<cpu>:<a>:<t>:<th>:<lrecv>:<precv>:<size>:<tag>
//! ```
//!
//! The writer streams through any [`std::io::Write`]; callers hand it records
//! in non-decreasing time order (checked in debug builds — Paraver itself
//! tolerates modest disorder but analysis tools prefer sorted traces).

use crate::model::{Record, TraceMeta};
use std::io::{self, Write};

/// Streaming `.prv` writer.
pub struct TraceWriter<W: Write> {
    out: W,
    meta: TraceMeta,
    records_written: u64,
    last_time: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer and emit the header line.
    pub fn new(mut out: W, meta: TraceMeta) -> io::Result<Self> {
        // One node holding `num_threads` cpus; one application with one task
        // of `num_threads` threads, all on node 1.
        writeln!(
            out,
            "#Paraver ({}):{}:1({}):1:1({}:1)",
            meta.date, meta.duration, meta.num_threads, meta.num_threads
        )?;
        Ok(TraceWriter {
            out,
            meta,
            records_written: 0,
            last_time: 0,
        })
    }

    /// Write one record.
    pub fn write(&mut self, r: &Record) -> io::Result<()> {
        debug_assert!(
            r.sort_time() >= self.last_time,
            "records must be written in time order ({} after {})",
            r.sort_time(),
            self.last_time
        );
        self.last_time = r.sort_time();
        match r {
            Record::State {
                thread,
                begin,
                end,
                state,
            } => {
                debug_assert!(*thread < self.meta.num_threads, "thread id out of range");
                debug_assert!(begin <= end, "state interval reversed");
                writeln!(
                    self.out,
                    "1:{0}:1:1:{0}:{1}:{2}:{3}",
                    thread + 1,
                    begin,
                    end,
                    state
                )?;
            }
            Record::Event {
                thread,
                time,
                events,
            } => {
                debug_assert!(*thread < self.meta.num_threads, "thread id out of range");
                debug_assert!(!events.is_empty(), "event record with no events");
                write!(self.out, "2:{0}:1:1:{0}:{1}", thread + 1, time)?;
                for (ty, v) in events {
                    write!(self.out, ":{ty}:{v}")?;
                }
                writeln!(self.out)?;
            }
            Record::Comm {
                send_thread,
                recv_thread,
                logical_send,
                physical_send,
                logical_recv,
                physical_recv,
                size,
                tag,
            } => {
                writeln!(
                    self.out,
                    "3:{0}:1:1:{0}:{1}:{2}:{3}:1:1:{3}:{4}:{5}:{6}:{7}",
                    send_thread + 1,
                    logical_send,
                    physical_send,
                    recv_thread + 1,
                    logical_recv,
                    physical_recv,
                    size,
                    tag
                )?;
            }
        }
        self.records_written += 1;
        Ok(())
    }

    /// Write many records.
    pub fn write_all<'a>(&mut self, rs: impl IntoIterator<Item = &'a Record>) -> io::Result<()> {
        for r in rs {
            self.write(r)?;
        }
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Write a full trace bundle (`.prv`, `.pcf`, `.row`) under `path_stem`.
///
/// Records are sorted by time before writing, since the profiling unit's
/// per-thread counters may decode in per-thread rather than global order.
pub fn write_bundle(
    path_stem: &std::path::Path,
    meta: &TraceMeta,
    records: &mut [Record],
    states: &[crate::model::StateDef],
    event_types: &[crate::model::EventTypeDef],
) -> io::Result<()> {
    records.sort_by_key(|r| r.sort_time());
    let prv = std::fs::File::create(path_stem.with_extension("prv"))?;
    let mut w = TraceWriter::new(io::BufWriter::new(prv), meta.clone())?;
    w.write_all(records.iter())?;
    w.finish()?;
    std::fs::write(
        path_stem.with_extension("pcf"),
        crate::pcf::render(states, event_types),
    )?;
    std::fs::write(path_stem.with_extension("row"), crate::row::render(meta))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta::new("test", 100, 2)
    }

    #[test]
    fn header_format() {
        let w = TraceWriter::new(Vec::new(), meta()).unwrap();
        let buf = w.finish().unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s, "#Paraver (01/01/2026 at 00:00):100:1(2):1:1(2:1)\n");
    }

    #[test]
    fn state_and_event_lines() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        w.write(&Record::State {
            thread: 0,
            begin: 0,
            end: 10,
            state: 1,
        })
        .unwrap();
        w.write(&Record::Event {
            thread: 1,
            time: 5,
            events: vec![(42_000_001, 7), (42_000_003, 9)],
        })
        .unwrap();
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "1:1:1:1:1:0:10:1");
        assert_eq!(lines[2], "2:2:1:1:2:5:42000001:7:42000003:9");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn rejects_unordered_in_debug() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        w.write(&Record::Event {
            thread: 0,
            time: 10,
            events: vec![(1, 1)],
        })
        .unwrap();
        let _ = w.write(&Record::Event {
            thread: 0,
            time: 5,
            events: vec![(1, 1)],
        });
    }

    #[test]
    fn comm_line_roundtrip_shape() {
        let mut w = TraceWriter::new(Vec::new(), meta()).unwrap();
        w.write(&Record::Comm {
            send_thread: 0,
            recv_thread: 1,
            logical_send: 1,
            physical_send: 2,
            logical_recv: 3,
            physical_recv: 4,
            size: 64,
            tag: 9,
        })
        .unwrap();
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        assert!(s.lines().nth(1).unwrap().starts_with("3:1:1:1:1:1:2:2:"));
    }
}
