//! `prv_tool` — command-line swiss knife for Paraver traces produced by the
//! HLS profiling flow (or by anything else writing standard `.prv`).
//!
//! ```text
//! prv_tool stats     <trace.prv>           time-in-state, totals, imbalance
//! prv_tool timeline  <trace.prv> [width]   ASCII state view
//! prv_tool hist      <trace.prv> <state>   duration histogram of a state id
//! prv_tool diff      <a.prv> <b.prv>       before/after comparison
//! prv_tool validate  <trace.prv>           structural checks
//! ```

use paraver::analysis::{find_critical_overlap, StateProfile};
use paraver::histogram::state_duration_histogram;
use paraver::parse::parse_prv;
use paraver::timeline::{render_states, TimelineOptions};
use paraver::{diff, events, states};
use std::process::ExitCode;

fn load(path: &str) -> (paraver::TraceMeta, Vec<paraver::Record>) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    parse_prv(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("prv_tool: {msg}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") if args.len() >= 2 => {
            let (meta, records) = load(&args[1]);
            println!(
                "{}: {} records, {} threads, {} cycles",
                args[1],
                records.len(),
                meta.num_threads,
                meta.duration
            );
            let p = StateProfile::compute(&records, meta.num_threads);
            for (id, name) in [
                (states::IDLE, "Idle"),
                (states::RUNNING, "Running"),
                (states::CRITICAL, "Critical"),
                (states::SPINNING, "Spinning"),
            ] {
                println!("  {:<9} {:>6.2}%", name, p.fraction(id) * 100.0);
            }
            for (ty, name) in [
                (events::STALLS, "stalls"),
                (events::INT_OPS, "int_ops"),
                (events::FLOPS, "flops"),
                (events::BYTES_READ, "bytes_rd"),
                (events::BYTES_WRITTEN, "bytes_wr"),
            ] {
                println!(
                    "  {:<9} {:>14}",
                    name,
                    paraver::analysis::event_total(&records, ty)
                );
            }
            if let Some(imb) = p.imbalance(states::RUNNING) {
                println!("  running-time imbalance (max/min): {imb:.3}");
            }
            ExitCode::SUCCESS
        }
        Some("timeline") if args.len() >= 2 => {
            let (meta, records) = load(&args[1]);
            let width = args.get(2).and_then(|w| w.parse().ok()).unwrap_or(100usize);
            let opts = TimelineOptions {
                width,
                ..Default::default()
            };
            print!(
                "{}",
                render_states(&records, meta.num_threads, meta.duration, &opts)
            );
            ExitCode::SUCCESS
        }
        Some("hist") if args.len() >= 3 => {
            let (meta, records) = load(&args[1]);
            let state: u32 = args[2]
                .parse()
                .unwrap_or_else(|_| die("state must be a number (0..3)"));
            print!(
                "{}",
                state_duration_histogram(&records, meta.num_threads, state).render()
            );
            ExitCode::SUCCESS
        }
        Some("diff") if args.len() >= 3 => {
            let (ma, ra) = load(&args[1]);
            let (mb, rb) = load(&args[2]);
            print!(
                "{}",
                diff::diff((&ma, &ra), (&mb, &rb)).render(&args[1], &args[2])
            );
            ExitCode::SUCCESS
        }
        Some("validate") if args.len() >= 2 => {
            let (meta, records) = load(&args[1]);
            let mut failures = 0;
            // State intervals per thread tile [0, duration)?
            for t in 0..meta.num_threads {
                let mut iv: Vec<(u64, u64)> = records
                    .iter()
                    .filter_map(|r| match r {
                        paraver::Record::State {
                            thread, begin, end, ..
                        } if *thread == t => Some((*begin, *end)),
                        _ => None,
                    })
                    .collect();
                iv.sort_unstable();
                if iv.is_empty() {
                    println!("  WARN: thread {t} has no state records");
                    continue;
                }
                if iv[0].0 != 0 || iv.last().unwrap().1 != meta.duration {
                    println!("  FAIL: thread {t} timeline does not span the run");
                    failures += 1;
                }
                if iv.windows(2).any(|w| w[0].1 != w[1].0) {
                    println!("  FAIL: thread {t} has gaps/overlaps");
                    failures += 1;
                }
            }
            match find_critical_overlap(&records, states::CRITICAL) {
                None => println!("  ok: no overlapping critical sections"),
                Some(t) => {
                    println!("  FAIL: overlapping critical sections at {t}");
                    failures += 1;
                }
            }
            if failures == 0 {
                println!("  ok: {} records validated", records.len());
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: prv_tool <stats|timeline|hist|diff|validate> <trace.prv> [...]\n\
                 see module docs for subcommand details"
            );
            ExitCode::FAILURE
        }
    }
}
