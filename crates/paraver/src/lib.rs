//! # paraver — Paraver trace toolchain
//!
//! Writers, parsers and analyses for the trace format of the BSC **Paraver**
//! visualization tool (Pillet et al., 1995), the HPC profiling frontend
//! targeted by the CLUSTER 2020 paper this repository reproduces.
//!
//! A Paraver trace is a bundle of three text files:
//!
//! * `.prv` — the trace body: a header line plus one line per record.
//!   Record kinds are **state** (type 1: an interval during which an actor is
//!   in one state), **event** (type 2: point samples of typed counters) and
//!   **communication** (type 3: point-to-point transfers). The paper supports
//!   states and events, leaving communications for multi-FPGA future work
//!   (§IV-A); this crate can still write/parse type-3 records so traces stay
//!   format-complete.
//! * `.pcf` — the configuration: state names/colours and event-type labels.
//! * `.row` — names for the rows (threads) of the timeline.
//!
//! The object model ([`model`]) maps the paper's actors onto Paraver's
//! `cpu:appl:task:thread` coordinates: one application, one task, one thread
//! row per FPGA hardware thread.
//!
//! [`analysis`] reproduces the computations behind the paper's figures
//! (time-in-state percentages for Fig. 6, binned bandwidth/FLOP-rate series
//! for Figs. 7–9 and 11–13), and [`timeline`] renders the state view as
//! ASCII art — the stand-in for Paraver's GUI in a headless reproduction.

pub mod analysis;
pub mod diff;
pub mod error;
pub mod histogram;
pub mod model;
pub mod parse;
pub mod pcf;
pub mod prv;
pub mod row;
pub mod sink;
pub mod spill;
pub mod timeline;

pub use error::TraceError;
pub use model::{EventTypeDef, Record, StateDef, TraceMeta};
pub use prv::{BundleWriter, TraceWriter};
pub use sink::{NullSink, OrderCheckSink, TraceSink, VecSink};
pub use spill::SpillSorter;

/// Standard state numbering used by this toolchain, matching Fig. 2 of the
/// paper and its colour legend (Fig. 6 caption): green running, red spinning,
/// blue critical, black idle.
pub mod states {
    /// No context loaded / context finished.
    pub const IDLE: u32 = 0;
    /// Context loaded and accelerator started.
    pub const RUNNING: u32 = 1;
    /// Inside a critical section (holding the hardware semaphore).
    pub const CRITICAL: u32 = 2;
    /// Spinning on the hardware semaphore waiting to enter a critical
    /// section.
    pub const SPINNING: u32 = 3;

    /// All states with display names and RGB colours for the `.pcf`.
    pub fn defs() -> Vec<crate::model::StateDef> {
        vec![
            crate::model::StateDef {
                id: IDLE,
                name: "Idle".into(),
                color: (0, 0, 0),
            },
            crate::model::StateDef {
                id: RUNNING,
                name: "Running".into(),
                color: (0, 255, 0),
            },
            crate::model::StateDef {
                id: CRITICAL,
                name: "Critical".into(),
                color: (0, 0, 255),
            },
            crate::model::StateDef {
                id: SPINNING,
                name: "Spinning".into(),
                color: (255, 0, 0),
            },
        ]
    }
}

/// Standard event-type numbering emitted by the HLS profiling unit
/// (§IV-B.2: stalls, compute performance, memory performance).
pub mod events {
    /// Pipeline stall cycles in the sampling period.
    pub const STALLS: u32 = 42_000_001;
    /// Integer operations committed in the sampling period.
    pub const INT_OPS: u32 = 42_000_002;
    /// Floating-point operations committed in the sampling period.
    pub const FLOPS: u32 = 42_000_003;
    /// Bytes read from external memory in the sampling period.
    pub const BYTES_READ: u32 = 42_000_004;
    /// Bytes written to external memory in the sampling period.
    pub const BYTES_WRITTEN: u32 = 42_000_005;
    /// Local (BRAM) memory operations in the sampling period.
    pub const LOCAL_OPS: u32 = 42_000_006;

    /// Base id of the per-region enter/exit event family emitted under
    /// `--profile=auto`: region `r` of the compiled design's region tree
    /// maps to event type `REGION_BASE + r` (value 1 = enter, 0 = exit).
    /// Region ids are `u16`, so the family stays below the next decade.
    pub const REGION_BASE: u32 = 42_100_000;

    /// Event type id of a region probe.
    pub fn region_type(region_id: u16) -> u32 {
        REGION_BASE + region_id as u32
    }

    /// `.pcf` definition of one region probe.
    pub fn region_def(region_id: u16, label: &str) -> crate::model::EventTypeDef {
        crate::model::EventTypeDef {
            id: region_type(region_id),
            label: format!("Region: {label}"),
        }
    }

    /// The standard event table plus one entry per instrumented region.
    /// `regions` is (region id, source label) in pre-order.
    pub fn defs_with_regions(regions: &[(u16, String)]) -> Vec<crate::model::EventTypeDef> {
        let mut d = defs();
        d.extend(regions.iter().map(|(id, label)| region_def(*id, label)));
        d
    }

    /// All event types with display labels for the `.pcf`.
    pub fn defs() -> Vec<crate::model::EventTypeDef> {
        vec![
            crate::model::EventTypeDef {
                id: STALLS,
                label: "Pipeline stall cycles".into(),
            },
            crate::model::EventTypeDef {
                id: INT_OPS,
                label: "Integer operations".into(),
            },
            crate::model::EventTypeDef {
                id: FLOPS,
                label: "Floating-point operations".into(),
            },
            crate::model::EventTypeDef {
                id: BYTES_READ,
                label: "External memory bytes read".into(),
            },
            crate::model::EventTypeDef {
                id: BYTES_WRITTEN,
                label: "External memory bytes written".into(),
            },
            crate::model::EventTypeDef {
                id: LOCAL_OPS,
                label: "Local memory operations".into(),
            },
        ]
    }
}
