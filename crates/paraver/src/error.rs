//! Typed errors of the trace-writing pipeline.
//!
//! The streaming path is built from composable stages (decode → sort/merge →
//! write); a stage that receives records out of contract — most importantly a
//! disordered merge feeding the order-enforcing [`crate::prv::TraceWriter`] —
//! must surface a recoverable error to its driver thread rather than panic.

use std::fmt;
use std::io;

/// Error produced by [`crate::sink::TraceSink`] implementations and the
/// `.prv` writer.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure (file create/write/flush, spill run read).
    Io(io::Error),
    /// A record arrived with a `sort_time()` earlier than the previous
    /// record's — the upstream merge violated the nondecreasing-time
    /// contract.
    OutOfOrder { prev: u64, next: u64 },
    /// A record referenced a thread id outside the trace's thread count.
    ThreadOutOfRange { thread: u32, num_threads: u32 },
    /// A spilled sort run failed to decode (truncated or corrupt bytes).
    CorruptRun(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::OutOfOrder { prev, next } => write!(
                f,
                "records must be written in nondecreasing time order \
                 ({next} after {prev})"
            ),
            TraceError::ThreadOutOfRange {
                thread,
                num_threads,
            } => write!(
                f,
                "record thread id {thread} out of range (trace has \
                 {num_threads} threads)"
            ),
            TraceError::CorruptRun(what) => write!(f, "corrupt spill run: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TraceError::OutOfOrder { prev: 10, next: 5 };
        assert!(e.to_string().contains("5 after 10"));
        let e = TraceError::ThreadOutOfRange {
            thread: 9,
            num_threads: 4,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn io_roundtrip_preserves_kind() {
        let io_err = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let t: TraceError = io_err.into();
        let back: io::Error = t.into();
        assert_eq!(back.kind(), io::ErrorKind::PermissionDenied);
        let ooo: io::Error = TraceError::OutOfOrder { prev: 2, next: 1 }.into();
        assert_eq!(ooo.kind(), io::ErrorKind::InvalidData);
    }
}
