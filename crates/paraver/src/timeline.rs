//! ASCII timeline rendering — the headless stand-in for the Paraver GUI.
//!
//! Renders the state view of a trace as one character row per hardware
//! thread, with each column covering a fixed time window and showing the
//! *dominant* state of that window. This is how the repository's examples
//! and `repro_*` binaries display the paper's Figs. 6, 11, 12 and 13.
//!
//! Legend (matching the paper's colour legend textually):
//! `.` Idle (black), `R` Running (green), `C` Critical (blue),
//! `S` Spinning (red).

use crate::model::Record;
use crate::states;
use std::fmt::Write as _;

/// Character used for a state id.
pub fn state_char(state: u32) -> char {
    match state {
        states::IDLE => '.',
        states::RUNNING => 'R',
        states::CRITICAL => 'C',
        states::SPINNING => 'S',
        other => char::from_digit(other % 36, 36).unwrap_or('?'),
    }
}

/// Options for rendering.
#[derive(Clone, Debug)]
pub struct TimelineOptions {
    /// Number of character columns.
    pub width: usize,
    /// Time range; `None` = full trace `[0, duration)`.
    pub window: Option<(u64, u64)>,
    /// Show a cycle-count axis below the chart.
    pub axis: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 100,
            window: None,
            axis: true,
        }
    }
}

/// Render the per-thread state timeline of a trace.
pub fn render_states(
    records: &[Record],
    num_threads: u32,
    duration: u64,
    opts: &TimelineOptions,
) -> String {
    let (t0, t1) = opts.window.unwrap_or((0, duration.max(1)));
    assert!(t1 > t0, "empty window");
    let width = opts.width.max(1);
    let span = t1 - t0;
    // dominance[thread][col][state] = covered time.
    let mut cover = vec![vec![[0u64; 64]; width]; num_threads as usize];
    for r in records {
        let Record::State {
            thread,
            begin,
            end,
            state,
        } = r
        else {
            continue;
        };
        let (b, e) = ((*begin).max(t0), (*end).min(t1));
        if b >= e {
            continue;
        }
        let sidx = (*state as usize).min(63);
        // Columns the interval touches.
        let c0 = ((b - t0) as u128 * width as u128 / span as u128) as usize;
        let c1 = (((e - t0) as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
        for (c, slot) in cover[*thread as usize]
            .iter_mut()
            .enumerate()
            .take(c1)
            .skip(c0)
        {
            let col_t0 = t0 + (c as u64 * span) / width as u64;
            let col_t1 = t0 + ((c as u64 + 1) * span) / width as u64;
            let ov = e.min(col_t1).saturating_sub(b.max(col_t0));
            slot[sidx] += ov;
        }
    }
    let mut out = String::new();
    for (t, row) in cover.iter().enumerate() {
        let _ = write!(out, "T{t:<2} |");
        for col in row {
            let (best, cov) = col
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(s, c)| (s as u32, *c))
                .unwrap_or((0, 0));
            out.push(if cov == 0 { ' ' } else { state_char(best) });
        }
        out.push_str("|\n");
    }
    if opts.axis {
        let left = format!("{t0} cy");
        let right = format!("{t1} cy");
        let pad = width.saturating_sub(right.len());
        let _ = writeln!(out, "    +{}+\n     {left:<pad$}{right}", "-".repeat(width));
    }
    out
}

/// Render a single numeric series (e.g. the Fig. 7 bandwidth curves) as a
/// bar sparkline using eighth-block style ASCII levels.
pub fn render_series(bins: &[f64], height_label: &str) -> String {
    const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let peak = bins.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::new();
    let _ = write!(out, "{height_label:>12} |");
    for &b in bins {
        let idx = if peak <= 0.0 {
            0
        } else {
            ((b / peak) * (LEVELS.len() - 1) as f64).round() as usize
        };
        out.push(LEVELS[idx.min(LEVELS.len() - 1)]);
    }
    out.push('|');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(thread: u32, begin: u64, end: u64, st: u32) -> Record {
        Record::State {
            thread,
            begin,
            end,
            state: st,
        }
    }

    #[test]
    fn renders_dominant_state_per_column() {
        let rs = vec![
            state(0, 0, 50, states::RUNNING),
            state(0, 50, 100, states::SPINNING),
            state(1, 0, 100, states::CRITICAL),
        ];
        let opts = TimelineOptions {
            width: 10,
            window: None,
            axis: false,
        };
        let s = render_states(&rs, 2, 100, &opts);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("RRRRRSSSSS"), "line 0: {}", lines[0]);
        assert!(lines[1].contains("CCCCCCCCCC"), "line 1: {}", lines[1]);
    }

    #[test]
    fn empty_window_is_blank_not_panic() {
        let rs = vec![state(0, 0, 10, states::RUNNING)];
        let opts = TimelineOptions {
            width: 5,
            window: Some((50, 100)),
            axis: false,
        };
        let s = render_states(&rs, 1, 100, &opts);
        assert!(s.contains("|     |"), "{s}");
    }

    #[test]
    fn sparkline_scales_to_peak() {
        let s = render_series(&[0.0, 0.5, 1.0], "GB/s");
        assert!(s.ends_with("|"));
        assert!(s.contains('@'), "{s}");
    }

    #[test]
    fn state_chars() {
        assert_eq!(state_char(states::IDLE), '.');
        assert_eq!(state_char(states::RUNNING), 'R');
        assert_eq!(state_char(states::CRITICAL), 'C');
        assert_eq!(state_char(states::SPINNING), 'S');
    }
}
