//! A/B trace comparison — the quantitative core of the paper's optimization
//! workflow: after each code change (§V-C's five GEMM steps), compare the new
//! trace against the previous one and report what moved.

use crate::analysis::{event_total, StateProfile};
use crate::model::{Record, TraceMeta};
use std::fmt::Write as _;

/// Comparison of two traces ("a" = before, "b" = after).
#[derive(Clone, Debug)]
pub struct TraceDiff {
    pub duration_a: u64,
    pub duration_b: u64,
    /// `duration_a / duration_b` — >1 means "b" is faster.
    pub speedup: f64,
    /// Per-state fraction deltas `(state, frac_a, frac_b)`.
    pub state_fracs: Vec<(u32, f64, f64)>,
    /// Per-event-type total deltas `(type, total_a, total_b)`.
    pub event_totals: Vec<(u32, u64, u64)>,
}

/// Compare two traces. Both must describe the same thread count (the same
/// accelerator with different code or inputs).
pub fn diff(a: (&TraceMeta, &[Record]), b: (&TraceMeta, &[Record])) -> TraceDiff {
    assert_eq!(
        a.0.num_threads, b.0.num_threads,
        "traces come from different accelerators"
    );
    let threads = a.0.num_threads;
    let pa = StateProfile::compute(a.1, threads);
    let pb = StateProfile::compute(b.1, threads);
    let mut states: Vec<u32> = pa.total.keys().chain(pb.total.keys()).copied().collect();
    states.sort_unstable();
    states.dedup();
    let state_fracs = states
        .into_iter()
        .map(|s| (s, pa.fraction(s), pb.fraction(s)))
        .collect();

    let mut types: Vec<u32> = Vec::new();
    for r in a.1.iter().chain(b.1) {
        if let Record::Event { events, .. } = r {
            types.extend(events.iter().map(|(t, _)| *t));
        }
    }
    types.sort_unstable();
    types.dedup();
    let event_totals = types
        .into_iter()
        .map(|t| (t, event_total(a.1, t), event_total(b.1, t)))
        .collect();

    TraceDiff {
        duration_a: a.0.duration,
        duration_b: b.0.duration,
        speedup: a.0.duration as f64 / b.0.duration.max(1) as f64,
        state_fracs,
        event_totals,
    }
}

impl TraceDiff {
    /// Render as a report table.
    pub fn render(&self, name_a: &str, name_b: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "trace diff: {name_a} ({} cy) → {name_b} ({} cy): {:.2}x",
            self.duration_a, self.duration_b, self.speedup
        );
        let _ = writeln!(
            s,
            "  {:<10} {:>9} {:>9} {:>9}",
            "state", name_a, name_b, "Δ pp"
        );
        for (st, fa, fb) in &self.state_fracs {
            let name = match *st {
                crate::states::IDLE => "Idle",
                crate::states::RUNNING => "Running",
                crate::states::CRITICAL => "Critical",
                crate::states::SPINNING => "Spinning",
                _ => "other",
            };
            let _ = writeln!(
                s,
                "  {:<10} {:>8.2}% {:>8.2}% {:>+8.2}",
                name,
                fa * 100.0,
                fb * 100.0,
                (fb - fa) * 100.0
            );
        }
        let _ = writeln!(
            s,
            "  {:<10} {:>12} {:>12} {:>8}",
            "event", name_a, name_b, "ratio"
        );
        for (ty, ta, tb) in &self.event_totals {
            let name = match *ty {
                crate::events::STALLS => "stalls",
                crate::events::INT_OPS => "int_ops",
                crate::events::FLOPS => "flops",
                crate::events::BYTES_READ => "bytes_rd",
                crate::events::BYTES_WRITTEN => "bytes_wr",
                crate::events::LOCAL_OPS => "local_ops",
                _ => "other",
            };
            let ratio = if *ta == 0 {
                f64::NAN
            } else {
                *tb as f64 / *ta as f64
            };
            let _ = writeln!(s, "  {:<10} {:>12} {:>12} {:>7.2}x", name, ta, tb, ratio);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{events, states};

    fn mk(duration: u64, crit: u64, flops: u64) -> (TraceMeta, Vec<Record>) {
        let meta = TraceMeta::new("t", duration, 2);
        let records = vec![
            Record::State {
                thread: 0,
                begin: 0,
                end: duration - crit,
                state: states::RUNNING,
            },
            Record::State {
                thread: 0,
                begin: duration - crit,
                end: duration,
                state: states::CRITICAL,
            },
            Record::Event {
                thread: 0,
                time: duration / 2,
                events: vec![(events::FLOPS, flops)],
            },
        ];
        (meta, records)
    }

    #[test]
    fn reports_speedup_and_deltas() {
        let (ma, ra) = mk(1000, 200, 500);
        let (mb, rb) = mk(500, 0, 500);
        let d = diff((&ma, &ra), (&mb, &rb));
        assert!((d.speedup - 2.0).abs() < 1e-12);
        let crit = d
            .state_fracs
            .iter()
            .find(|(s, _, _)| *s == states::CRITICAL)
            .unwrap();
        assert!(crit.1 > 0.19 && crit.2 == 0.0, "critical removed: {crit:?}");
        let fl = d
            .event_totals
            .iter()
            .find(|(t, _, _)| *t == events::FLOPS)
            .unwrap();
        assert_eq!((fl.1, fl.2), (500, 500), "same work either way");
        let rendered = d.render("before", "after");
        assert!(rendered.contains("2.00x"));
        assert!(rendered.contains("Critical"));
    }

    #[test]
    #[should_panic(expected = "different accelerators")]
    fn thread_count_mismatch_panics() {
        let (ma, ra) = mk(10, 0, 0);
        let mut mb = ma.clone();
        mb.num_threads = 4;
        let _ = diff((&ma, &ra), (&mb, &ra));
    }
}
