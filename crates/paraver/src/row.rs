//! `.row` label-file rendering: names for each timeline row at the CPU,
//! node and thread levels. The thread labels are what Paraver shows on the
//! left edge of the state view (the "THREAD 1.1.t" rows of Fig. 6).

use crate::model::TraceMeta;
use std::fmt::Write as _;

/// Render the `.row` file for a trace.
pub fn render(meta: &TraceMeta) -> String {
    let n = meta.num_threads;
    let mut s = String::new();
    let _ = writeln!(s, "LEVEL CPU SIZE {n}");
    for i in 1..=n {
        let _ = writeln!(s, "{i}.{}", meta.app_name);
    }
    s.push('\n');
    let _ = writeln!(s, "LEVEL NODE SIZE 1");
    let _ = writeln!(s, "{}", meta.app_name);
    s.push('\n');
    let _ = writeln!(s, "LEVEL THREAD SIZE {n}");
    for i in 1..=n {
        let _ = writeln!(s, "THREAD 1.1.{i}");
    }
    s
}

/// Number of thread rows declared in a `.row` file (for validation).
pub fn parse_thread_count(row: &str) -> Option<u32> {
    for line in row.lines() {
        if let Some(rest) = line.strip_prefix("LEVEL THREAD SIZE ") {
            return rest.trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_thread_rows() {
        let meta = TraceMeta::new("gemm", 10, 8);
        let r = render(&meta);
        assert!(r.contains("LEVEL THREAD SIZE 8"));
        assert!(r.contains("THREAD 1.1.8"));
        assert_eq!(parse_thread_count(&r), Some(8));
    }
}
