//! `.row` label-file rendering: names for each timeline row at the CPU,
//! node and thread levels. The thread labels are what Paraver shows on the
//! left edge of the state view (the "THREAD 1.1.t" rows of Fig. 6).

use crate::model::TraceMeta;
use std::fmt::Write as _;

/// Render the `.row` file for a trace.
pub fn render(meta: &TraceMeta) -> String {
    let n = meta.num_threads;
    let mut s = String::new();
    let _ = writeln!(s, "LEVEL CPU SIZE {n}");
    for i in 1..=n {
        let _ = writeln!(s, "{i}.{}", meta.app_name);
    }
    s.push('\n');
    let _ = writeln!(s, "LEVEL NODE SIZE 1");
    let _ = writeln!(s, "{}", meta.app_name);
    s.push('\n');
    let _ = writeln!(s, "LEVEL THREAD SIZE {n}");
    for i in 1..=n {
        let _ = writeln!(s, "THREAD 1.1.{i}");
    }
    s
}

/// Render the `.row` file plus a `LEVEL REGION` section naming the
/// instrumented source regions of an auto-probe plan. `regions` is
/// (nesting depth, source label) in pre-order; depth renders as
/// indentation, so the section reads as the region hierarchy. Plain
/// Paraver ignores unknown levels, so the file stays loadable.
pub fn render_with_regions(meta: &TraceMeta, regions: &[(u32, String)]) -> String {
    let mut s = render(meta);
    if regions.is_empty() {
        return s;
    }
    s.push('\n');
    let _ = writeln!(s, "LEVEL REGION SIZE {}", regions.len());
    for (depth, label) in regions {
        let _ = writeln!(s, "{}{label}", "  ".repeat(*depth as usize));
    }
    s
}

/// Number of thread rows declared in a `.row` file (for validation).
pub fn parse_thread_count(row: &str) -> Option<u32> {
    for line in row.lines() {
        if let Some(rest) = line.strip_prefix("LEVEL THREAD SIZE ") {
            return rest.trim().parse().ok();
        }
    }
    None
}

/// The `LEVEL REGION` section of a `.row` file as (depth, label) pairs;
/// empty when the trace was recorded without an auto-probe plan.
pub fn parse_regions(row: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in row.lines() {
        if line.starts_with("LEVEL REGION SIZE ") {
            in_section = true;
            continue;
        }
        if in_section {
            if line.trim().is_empty() || line.starts_with("LEVEL ") {
                break;
            }
            let label = line.trim_start();
            let depth = (line.len() - label.len()) as u32 / 2;
            out.push((depth, label.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_thread_rows() {
        let meta = TraceMeta::new("gemm", 10, 8);
        let r = render(&meta);
        assert!(r.contains("LEVEL THREAD SIZE 8"));
        assert!(r.contains("THREAD 1.1.8"));
        assert_eq!(parse_thread_count(&r), Some(8));
    }

    #[test]
    fn region_section_roundtrips_depth_and_labels() {
        let meta = TraceMeta::new("gemm", 10, 4);
        let regions = vec![
            (0, "gemm".to_string()),
            (1, "gemm/i".to_string()),
            (2, "gemm/i/j".to_string()),
        ];
        let r = render_with_regions(&meta, &regions);
        assert!(r.contains("LEVEL REGION SIZE 3"));
        assert!(r.contains("    gemm/i/j"), "{r}");
        assert_eq!(parse_regions(&r), regions);
        // Thread parsing is unaffected by the extra section.
        assert_eq!(parse_thread_count(&r), Some(4));
        // No plan → no section, and parsing returns empty.
        let plain = render_with_regions(&meta, &[]);
        assert!(!plain.contains("LEVEL REGION"));
        assert!(parse_regions(&plain).is_empty());
    }
}
