//! `.prv` parser — reads a trace body back into [`Record`]s.
//!
//! Used by round-trip tests, the analysis pipeline, and anyone who wants to
//! post-process traces produced by the profiling unit (or by real Paraver
//! tooling) without the GUI.

use crate::model::{Record, TraceMeta};
use std::fmt;

/// Parse failure with line number and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".prv parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, reason: impl Into<String>) -> ParseError {
    ParseError {
        line,
        reason: reason.into(),
    }
}

/// Parse a complete `.prv` document into its header metadata and records.
pub fn parse_prv(text: &str) -> Result<(TraceMeta, Vec<Record>), ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
    let meta = parse_header(header).map_err(|r| err(1, r))?;
    let mut records = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records.push(parse_record(line).map_err(|r| err(i + 1, r))?);
    }
    Ok((meta, records))
}

fn parse_header(h: &str) -> Result<TraceMeta, String> {
    // #Paraver (<date>):<ftime>:<nodes>(<cpus>):<nappl>:<ntasks>(<threads>:<node>)
    let rest = h
        .strip_prefix("#Paraver (")
        .ok_or("header must start with `#Paraver (`")?;
    let (date, rest) = rest
        .split_once("):")
        .ok_or("missing `):` after header date")?;
    let fields: Vec<&str> = rest.split(':').collect();
    if fields.len() < 4 {
        return Err(format!("header has {} fields, expected >= 4", fields.len()));
    }
    let duration: u64 = fields[0]
        .parse()
        .map_err(|_| format!("bad ftime `{}`", fields[0]))?;
    // The task list is like "1(8:1)" and itself contains colons, so rejoin
    // everything after the third field.
    let tasks = fields[3..].join(":");
    let threads = tasks
        .split_once('(')
        .and_then(|(_, r)| r.split_once(':'))
        .map(|(t, _)| t)
        .ok_or_else(|| format!("bad task list `{tasks}`"))?;
    let num_threads: u32 = threads
        .parse()
        .map_err(|_| format!("bad thread count `{threads}`"))?;
    Ok(TraceMeta {
        app_name: String::new(),
        duration,
        num_threads,
        date: date.to_string(),
    })
}

fn parse_record(line: &str) -> Result<Record, String> {
    let fields: Vec<&str> = line.split(':').collect();
    let kind: u8 = fields[0]
        .parse()
        .map_err(|_| format!("bad record kind `{}`", fields[0]))?;
    let num = |i: usize| -> Result<u64, String> {
        fields
            .get(i)
            .ok_or_else(|| format!("record too short (need field {i})"))?
            .parse()
            .map_err(|_| format!("bad number `{}` in field {i}", fields[i]))
    };
    match kind {
        1 => {
            if fields.len() != 8 {
                return Err(format!("state record has {} fields, want 8", fields.len()));
            }
            Ok(Record::State {
                thread: num(4)? as u32 - 1,
                begin: num(5)?,
                end: num(6)?,
                state: num(7)? as u32,
            })
        }
        2 => {
            if fields.len() < 8 || !(fields.len() - 6).is_multiple_of(2) {
                return Err(format!(
                    "event record has {} fields, want 6 + 2k (k>=1)",
                    fields.len()
                ));
            }
            let thread = num(4)? as u32 - 1;
            let time = num(5)?;
            let mut events = Vec::with_capacity((fields.len() - 6) / 2);
            let mut i = 6;
            while i + 1 < fields.len() {
                events.push((num(i)? as u32, num(i + 1)?));
                i += 2;
            }
            Ok(Record::Event {
                thread,
                time,
                events,
            })
        }
        3 => {
            if fields.len() != 15 {
                return Err(format!("comm record has {} fields, want 15", fields.len()));
            }
            Ok(Record::Comm {
                send_thread: num(4)? as u32 - 1,
                logical_send: num(5)?,
                physical_send: num(6)?,
                recv_thread: num(10)? as u32 - 1,
                logical_recv: num(11)?,
                physical_recv: num(12)?,
                size: num(13)?,
                tag: num(14)?,
            })
        }
        k => Err(format!("unknown record kind {k}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceMeta;
    use crate::prv::TraceWriter;

    fn roundtrip(records: Vec<Record>) -> (TraceMeta, Vec<Record>) {
        let meta = TraceMeta::new("rt", 1000, 4);
        let mut w = TraceWriter::new(Vec::new(), meta).unwrap();
        w.write_all(records.iter()).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        parse_prv(&text).unwrap()
    }

    #[test]
    fn state_event_roundtrip() {
        let records = vec![
            Record::State {
                thread: 2,
                begin: 0,
                end: 50,
                state: 1,
            },
            Record::Event {
                thread: 0,
                time: 25,
                events: vec![(42_000_001, 3), (42_000_004, 4096)],
            },
            Record::State {
                thread: 2,
                begin: 50,
                end: 80,
                state: 3,
            },
        ];
        let (meta, parsed) = roundtrip(records.clone());
        assert_eq!(meta.duration, 1000);
        assert_eq!(meta.num_threads, 4);
        assert_eq!(parsed, records);
    }

    #[test]
    fn comm_roundtrip() {
        let records = vec![Record::Comm {
            send_thread: 1,
            recv_thread: 3,
            logical_send: 10,
            physical_send: 11,
            logical_recv: 20,
            physical_recv: 21,
            size: 512,
            tag: 7,
        }];
        let (_, parsed) = roundtrip(records.clone());
        assert_eq!(parsed, records);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_prv("not a header\n").is_err());
        let bad = "#Paraver (d):100:1(2):1:1(2:1)\n9:1:1:1:1:0\n";
        let e = parse_prv(bad).unwrap_err();
        assert!(e.reason.contains("unknown record kind"), "{e}");
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "#Paraver (d):100:1(2):1:1(2:1)\n\n# a comment\n1:1:1:1:1:0:10:1\n";
        let (_, rs) = parse_prv(text).unwrap();
        assert_eq!(rs.len(), 1);
    }
}
