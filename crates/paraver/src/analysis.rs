//! Trace analyses reproducing the computations behind the paper's figures.
//!
//! * [`StateProfile`] — time-in-state per thread and in aggregate, the
//!   numbers quoted for Fig. 6 ("1.54% of time in critical sections,
//!   spinning on locks 1.57%").
//! * [`event_series`] — time-binned counter series, the data behind the
//!   bandwidth comparison of Fig. 7 and the load/compute phase plots of
//!   Figs. 8–9.
//! * [`throughput_gbps`] / [`gflops`] — unit conversions from cycle-denominated
//!   counters to the GB/s / GFLOP/s the paper reports (§V-D).

use crate::model::Record;
use std::collections::BTreeMap;

/// Aggregated time-in-state statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct StateProfile {
    /// `per_thread[t][state] = cycles` (states indexed by their id).
    pub per_thread: Vec<BTreeMap<u32, u64>>,
    /// Total cycles per state over all threads.
    pub total: BTreeMap<u32, u64>,
    /// Sum of all recorded state time over all threads.
    pub total_time: u64,
}

impl StateProfile {
    /// Compute the profile from a record stream.
    pub fn compute(records: &[Record], num_threads: u32) -> Self {
        let mut per_thread = vec![BTreeMap::new(); num_threads as usize];
        let mut total: BTreeMap<u32, u64> = BTreeMap::new();
        let mut total_time = 0u64;
        for r in records {
            if let Record::State {
                thread,
                begin,
                end,
                state,
            } = r
            {
                let dur = end.saturating_sub(*begin);
                *per_thread[*thread as usize].entry(*state).or_default() += dur;
                *total.entry(*state).or_default() += dur;
                total_time += dur;
            }
        }
        StateProfile {
            per_thread,
            total,
            total_time,
        }
    }

    /// Fraction (0..=1) of total recorded time spent in `state`.
    pub fn fraction(&self, state: u32) -> f64 {
        if self.total_time == 0 {
            return 0.0;
        }
        *self.total.get(&state).unwrap_or(&0) as f64 / self.total_time as f64
    }

    /// Fraction of thread `t`'s recorded time spent in `state`.
    pub fn thread_fraction(&self, t: u32, state: u32) -> f64 {
        let m = &self.per_thread[t as usize];
        let tt: u64 = m.values().sum();
        if tt == 0 {
            return 0.0;
        }
        *m.get(&state).unwrap_or(&0) as f64 / tt as f64
    }

    /// Load-balance metric: ratio of max to min per-thread time in `state`
    /// (1.0 = perfectly balanced). `None` when some thread has zero time.
    pub fn imbalance(&self, state: u32) -> Option<f64> {
        let times: Vec<u64> = self
            .per_thread
            .iter()
            .map(|m| *m.get(&state).unwrap_or(&0))
            .collect();
        let min = *times.iter().min()?;
        let max = *times.iter().max()?;
        if min == 0 {
            None
        } else {
            Some(max as f64 / min as f64)
        }
    }
}

/// A binned counter series: `bins[i]` is the sum of event values with
/// timestamps in `[i*bin_width, (i+1)*bin_width)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub bin_width: u64,
    pub bins: Vec<u64>,
}

impl Series {
    /// Value of the largest bin.
    pub fn peak(&self) -> u64 {
        self.bins.iter().copied().max().unwrap_or(0)
    }

    /// Mean bin value over the series' span.
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.bins.iter().sum::<u64>() as f64 / self.bins.len() as f64
    }

    /// Sum of all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Normalise each bin by the series peak, giving the "relative
    /// bandwidth" scale of Fig. 7.
    pub fn relative(&self) -> Vec<f64> {
        let p = self.peak();
        if p == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&b| b as f64 / p as f64).collect()
    }
}

/// Bin the values of `event_type` (over all threads) into windows of
/// `bin_width` cycles across `[0, duration)`.
pub fn event_series(records: &[Record], event_type: u32, bin_width: u64, duration: u64) -> Series {
    assert!(bin_width > 0, "bin width must be positive");
    let nbins = duration.div_ceil(bin_width).max(1) as usize;
    let mut bins = vec![0u64; nbins];
    for r in records {
        if let Record::Event { time, events, .. } = r {
            for (ty, v) in events {
                if *ty == event_type {
                    let b = ((*time / bin_width) as usize).min(nbins - 1);
                    bins[b] += v;
                }
            }
        }
    }
    Series { bin_width, bins }
}

/// Per-thread variant of [`event_series`].
pub fn event_series_per_thread(
    records: &[Record],
    event_type: u32,
    bin_width: u64,
    duration: u64,
    num_threads: u32,
) -> Vec<Series> {
    let nbins = duration.div_ceil(bin_width).max(1) as usize;
    let mut per: Vec<Series> = (0..num_threads)
        .map(|_| Series {
            bin_width,
            bins: vec![0; nbins],
        })
        .collect();
    for r in records {
        if let Record::Event {
            thread,
            time,
            events,
        } = r
        {
            for (ty, v) in events {
                if *ty == event_type {
                    let b = ((*time / bin_width) as usize).min(nbins - 1);
                    per[*thread as usize].bins[b] += v;
                }
            }
        }
    }
    per
}

/// Total of `event_type` over the whole trace.
pub fn event_total(records: &[Record], event_type: u32) -> u64 {
    records
        .iter()
        .filter_map(|r| match r {
            Record::Event { events, .. } => Some(
                events
                    .iter()
                    .filter(|(ty, _)| *ty == event_type)
                    .map(|(_, v)| *v)
                    .sum::<u64>(),
            ),
            _ => None,
        })
        .sum()
}

/// Convert a byte count over a cycle interval to GB/s at `clock_hz`.
pub fn throughput_gbps(bytes: u64, cycles: u64, clock_hz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / clock_hz;
    bytes as f64 / seconds / 1e9
}

/// Convert a FLOP count over a cycle interval to GFLOP/s at `clock_hz`
/// (how §V-D derives its 0.146 / 0.556 / 1.507 GFLOP/s figures).
pub fn gflops(flops: u64, cycles: u64, clock_hz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / clock_hz;
    flops as f64 / seconds / 1e9
}

/// Restrict records to a time window (the "zoom" of Fig. 6 bottom). State
/// intervals are clipped to the window; events/comms are kept when inside.
pub fn zoom(records: &[Record], t0: u64, t1: u64) -> Vec<Record> {
    let mut out = Vec::new();
    for r in records {
        match r {
            Record::State {
                thread,
                begin,
                end,
                state,
            } => {
                let b = (*begin).max(t0);
                let e = (*end).min(t1);
                if b < e {
                    out.push(Record::State {
                        thread: *thread,
                        begin: b,
                        end: e,
                        state: *state,
                    });
                }
            }
            Record::Event { time, .. } if *time >= t0 && *time < t1 => out.push(r.clone()),
            Record::Comm { logical_send, .. } if *logical_send >= t0 && *logical_send < t1 => {
                out.push(r.clone())
            }
            _ => {}
        }
    }
    out
}

/// Check the mutual-exclusion invariant behind Fig. 6's zoom: at no instant
/// are two threads simultaneously in state `critical_state`. Returns the
/// first violating time if any.
pub fn find_critical_overlap(records: &[Record], critical_state: u32) -> Option<u64> {
    let mut intervals: Vec<(u64, u64)> = records
        .iter()
        .filter_map(|r| match r {
            Record::State {
                begin, end, state, ..
            } if *state == critical_state && begin < end => Some((*begin, *end)),
            _ => None,
        })
        .collect();
    intervals.sort_unstable();
    for w in intervals.windows(2) {
        if w[1].0 < w[0].1 {
            return Some(w[1].0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states;

    fn state(thread: u32, begin: u64, end: u64, st: u32) -> Record {
        Record::State {
            thread,
            begin,
            end,
            state: st,
        }
    }

    #[test]
    fn profile_fractions() {
        let rs = vec![
            state(0, 0, 80, states::RUNNING),
            state(0, 80, 90, states::CRITICAL),
            state(0, 90, 100, states::SPINNING),
            state(1, 0, 100, states::RUNNING),
        ];
        let p = StateProfile::compute(&rs, 2);
        assert_eq!(p.total_time, 200);
        assert!((p.fraction(states::CRITICAL) - 0.05).abs() < 1e-12);
        assert!((p.thread_fraction(0, states::SPINNING) - 0.10).abs() < 1e-12);
        assert_eq!(p.thread_fraction(1, states::CRITICAL), 0.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let rs = vec![
            state(0, 0, 100, states::RUNNING),
            state(1, 0, 50, states::RUNNING),
        ];
        let p = StateProfile::compute(&rs, 2);
        assert_eq!(p.imbalance(states::RUNNING), Some(2.0));
        assert_eq!(p.imbalance(states::CRITICAL), None);
    }

    #[test]
    fn series_binning_and_relative() {
        let rs = vec![
            Record::Event {
                thread: 0,
                time: 5,
                events: vec![(crate::events::BYTES_READ, 100)],
            },
            Record::Event {
                thread: 1,
                time: 15,
                events: vec![(crate::events::BYTES_READ, 300)],
            },
            Record::Event {
                thread: 0,
                time: 15,
                events: vec![(crate::events::BYTES_READ, 100)],
            },
        ];
        let s = event_series(&rs, crate::events::BYTES_READ, 10, 30);
        assert_eq!(s.bins, vec![100, 400, 0]);
        assert_eq!(s.peak(), 400);
        assert_eq!(s.total(), 500);
        let rel = s.relative();
        assert_eq!(rel, vec![0.25, 1.0, 0.0]);
        let per = event_series_per_thread(&rs, crate::events::BYTES_READ, 10, 30, 2);
        assert_eq!(per[0].bins, vec![100, 100, 0]);
        assert_eq!(per[1].bins, vec![0, 300, 0]);
    }

    #[test]
    fn unit_conversions() {
        // 1 GB in 1 second worth of cycles at 100 MHz.
        let g = throughput_gbps(1_000_000_000, 100_000_000, 100e6);
        assert!((g - 1.0).abs() < 1e-12);
        let f = gflops(1_507_000, 1_000_000, 1e9);
        assert!((f - 1.507).abs() < 1e-9);
    }

    #[test]
    fn zoom_clips_states() {
        let rs = vec![state(0, 0, 100, states::RUNNING)];
        let z = zoom(&rs, 40, 60);
        assert_eq!(z, vec![state(0, 40, 60, states::RUNNING)]);
    }

    #[test]
    fn critical_overlap_detection() {
        let ok = vec![
            state(0, 0, 10, states::CRITICAL),
            state(1, 10, 20, states::CRITICAL),
        ];
        assert_eq!(find_critical_overlap(&ok, states::CRITICAL), None);
        let bad = vec![
            state(0, 0, 10, states::CRITICAL),
            state(1, 5, 15, states::CRITICAL),
        ];
        assert_eq!(find_critical_overlap(&bad, states::CRITICAL), Some(5));
    }

    #[test]
    fn event_total_sums() {
        let rs = vec![
            Record::Event {
                thread: 0,
                time: 0,
                events: vec![(crate::events::FLOPS, 10), (crate::events::STALLS, 5)],
            },
            Record::Event {
                thread: 1,
                time: 1,
                events: vec![(crate::events::FLOPS, 32)],
            },
        ];
        assert_eq!(event_total(&rs, crate::events::FLOPS), 42);
        assert_eq!(event_total(&rs, crate::events::STALLS), 5);
    }
}
