//! Memory-bounded stable sorting of record streams: spill-to-disk runs plus
//! a k-way timestamp merge.
//!
//! The streaming trace pipeline decodes records incrementally, but a `.prv`
//! body is globally sorted by time while state intervals only become known
//! at their *end* — a thread running for the whole kernel yields one interval
//! whose file position is near the start. A single-pass writer therefore
//! needs a full sort, and [`SpillSorter`] provides it without materializing
//! the run in RAM: records accumulate in a bounded buffer; each full buffer
//! is stably sorted and written to a temporary *run* file; `close()` merges
//! all runs with a k-way heap into the inner [`TraceSink`], holding only one
//! head record per run.
//!
//! Stability (and therefore byte-identical output with the materialized
//! `sort_by_key(sort_time)` path) follows from two facts: each run is sorted
//! with a stable sort, and arrival order assigns every record of run *i* a
//! smaller sequence number than any record of run *i+1* — so breaking merge
//! ties by run index reproduces the global stable order exactly.

use crate::error::TraceError;
use crate::model::Record;
use crate::sink::TraceSink;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default in-memory record budget (~64 B/record → a few MiB).
pub const DEFAULT_MAX_IN_MEMORY: usize = 64 * 1024;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bounded-memory stable sorter in front of an ordered [`TraceSink`].
pub struct SpillSorter<S: TraceSink> {
    inner: S,
    buf: Vec<Record>,
    max_in_memory: usize,
    spill_dir: PathBuf,
    dir_created: bool,
    runs: Vec<PathBuf>,
    runs_spilled: usize,
    peak_in_memory: usize,
    total_records: u64,
}

impl<S: TraceSink> SpillSorter<S> {
    /// Sorter holding at most `max_in_memory` records in RAM, spilling runs
    /// to a fresh directory under the system temp dir.
    pub fn new(inner: S, max_in_memory: usize) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hls-paraver-spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Self::with_spill_dir(inner, max_in_memory, dir)
    }

    /// Sorter spilling into an explicit directory (created on first spill).
    pub fn with_spill_dir(inner: S, max_in_memory: usize, spill_dir: PathBuf) -> Self {
        SpillSorter {
            inner,
            buf: Vec::new(),
            max_in_memory: max_in_memory.max(1),
            spill_dir,
            dir_created: false,
            runs: Vec::new(),
            runs_spilled: 0,
            peak_in_memory: 0,
            total_records: 0,
        }
    }

    /// Largest number of records ever resident in the in-memory buffer —
    /// the sorter's actual RAM bound, `<= max_in_memory`.
    pub fn peak_in_memory(&self) -> usize {
        self.peak_in_memory
    }

    /// Number of runs spilled to disk over the sorter's lifetime.
    pub fn spilled_runs(&self) -> usize {
        self.runs_spilled
    }

    /// Total records accepted.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Access the inner sink (e.g. to read a collector after `close`).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the inner sink. The sorter only pushes to the
    /// inner sink during [`TraceSink::close`], so a deferred sink (one whose
    /// target needs end-of-run metadata, like the `.prv` header's duration)
    /// can be installed any time before `close`.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consume the sorter, returning the inner sink.
    pub fn into_inner(self) -> S {
        // Field move is fine: Drop cleanup only removes files, which
        // `close()` already did; std::mem::forget pattern not needed because
        // SpillSorter's Drop is on the struct — destructure via ManuallyDrop.
        let mut me = std::mem::ManuallyDrop::new(self);
        me.cleanup();
        // SAFETY: `me` is ManuallyDrop; `inner` is read exactly once and the
        // remaining fields are dropped by ptr::drop_in_place-free leak of
        // plain data (Vec/PathBuf) — avoid that by taking them too.
        unsafe {
            let inner = std::ptr::read(&me.inner);
            std::ptr::drop_in_place(&mut me.buf);
            std::ptr::drop_in_place(&mut me.spill_dir);
            std::ptr::drop_in_place(&mut me.runs);
            inner
        }
    }

    fn spill(&mut self) -> Result<(), TraceError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if !self.dir_created {
            std::fs::create_dir_all(&self.spill_dir)?;
            self.dir_created = true;
        }
        // Stable sort: ties keep arrival order within the run.
        self.buf.sort_by_key(Record::sort_time);
        let path = self
            .spill_dir
            .join(format!("run-{:06}.bin", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for r in &self.buf {
            encode_record(&mut w, r)?;
        }
        w.flush()?;
        self.runs.push(path);
        self.runs_spilled += 1;
        self.buf.clear();
        Ok(())
    }

    fn cleanup(&mut self) {
        if self.dir_created {
            let _ = std::fs::remove_dir_all(&self.spill_dir);
            self.dir_created = false;
        }
        self.runs.clear();
    }

    /// Merge all spilled runs plus the in-memory tail into the inner sink.
    fn merge(&mut self) -> Result<(), TraceError> {
        self.buf.sort_by_key(Record::sort_time);
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            readers.push(RunReader::open(path)?);
        }
        // Heap of (Reverse(time), Reverse(run index)): pop smallest time,
        // ties resolved toward the earliest run — the stable global order.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let tail_idx = readers.len();
        let mut tail = self
            .buf
            .drain(..)
            .collect::<std::collections::VecDeque<_>>();
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(t) = r.peek_time() {
                heap.push(Reverse((t, i)));
            }
        }
        if let Some(front) = tail.front() {
            heap.push(Reverse((front.sort_time(), tail_idx)));
        }
        while let Some(Reverse((_, idx))) = heap.pop() {
            let rec = if idx == tail_idx {
                let rec = tail.pop_front().expect("tail run non-empty");
                if let Some(front) = tail.front() {
                    heap.push(Reverse((front.sort_time(), tail_idx)));
                }
                rec
            } else {
                let rec = readers[idx].next()?.expect("heap entry implies a record");
                if let Some(t) = readers[idx].peek_time() {
                    heap.push(Reverse((t, idx)));
                }
                rec
            };
            self.inner.push(rec)?;
        }
        Ok(())
    }
}

impl<S: TraceSink> TraceSink for SpillSorter<S> {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.buf.push(r);
        self.total_records += 1;
        self.peak_in_memory = self.peak_in_memory.max(self.buf.len());
        if self.buf.len() >= self.max_in_memory {
            self.spill()?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), TraceError> {
        let result = self.merge();
        self.cleanup();
        result?;
        self.inner.close()
    }
}

impl<S: TraceSink> Drop for SpillSorter<S> {
    fn drop(&mut self) {
        self.cleanup();
    }
}

/// Sequential reader over one spilled run with one-record lookahead.
struct RunReader {
    rdr: BufReader<File>,
    peeked: Option<Record>,
}

impl RunReader {
    fn open(path: &PathBuf) -> Result<Self, TraceError> {
        let mut r = RunReader {
            rdr: BufReader::new(File::open(path)?),
            peeked: None,
        };
        r.peeked = decode_record(&mut r.rdr)?;
        Ok(r)
    }

    fn peek_time(&self) -> Option<u64> {
        self.peeked.as_ref().map(Record::sort_time)
    }

    fn next(&mut self) -> Result<Option<Record>, TraceError> {
        let out = self.peeked.take();
        if out.is_some() {
            self.peeked = decode_record(&mut self.rdr)?;
        }
        Ok(out)
    }
}

// Compact little-endian codec for spilled records (internal format; the
// public trace formats remain the textual `.prv`/`.pcf`/`.row`).

const RUN_TAG_STATE: u8 = 1;
const RUN_TAG_EVENT: u8 = 2;
const RUN_TAG_COMM: u8 = 3;

fn encode_record(w: &mut impl Write, r: &Record) -> Result<(), TraceError> {
    match r {
        Record::State {
            thread,
            begin,
            end,
            state,
        } => {
            w.write_all(&[RUN_TAG_STATE])?;
            w.write_all(&thread.to_le_bytes())?;
            w.write_all(&begin.to_le_bytes())?;
            w.write_all(&end.to_le_bytes())?;
            w.write_all(&state.to_le_bytes())?;
        }
        Record::Event {
            thread,
            time,
            events,
        } => {
            w.write_all(&[RUN_TAG_EVENT])?;
            w.write_all(&thread.to_le_bytes())?;
            w.write_all(&time.to_le_bytes())?;
            w.write_all(&(events.len() as u32).to_le_bytes())?;
            for (ty, v) in events {
                w.write_all(&ty.to_le_bytes())?;
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Record::Comm {
            send_thread,
            recv_thread,
            logical_send,
            physical_send,
            logical_recv,
            physical_recv,
            size,
            tag,
        } => {
            w.write_all(&[RUN_TAG_COMM])?;
            w.write_all(&send_thread.to_le_bytes())?;
            w.write_all(&recv_thread.to_le_bytes())?;
            for v in [
                logical_send,
                physical_send,
                logical_recv,
                physical_recv,
                size,
                tag,
            ] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_exact_or_corrupt(r: &mut impl Read, buf: &mut [u8]) -> Result<(), TraceError> {
    r.read_exact(buf)
        .map_err(|_| TraceError::CorruptRun("truncated record".into()))
}

fn read_u32(r: &mut impl Read) -> Result<u32, TraceError> {
    let mut b = [0u8; 4];
    read_exact_or_corrupt(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    read_exact_or_corrupt(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn decode_record(r: &mut impl Read) -> Result<Option<Record>, TraceError> {
    let mut tag = [0u8; 1];
    match r.read_exact(&mut tag) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let rec = match tag[0] {
        RUN_TAG_STATE => Record::State {
            thread: read_u32(r)?,
            begin: read_u64(r)?,
            end: read_u64(r)?,
            state: read_u32(r)?,
        },
        RUN_TAG_EVENT => {
            let thread = read_u32(r)?;
            let time = read_u64(r)?;
            let n = read_u32(r)? as usize;
            let mut events = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                events.push((read_u32(r)?, read_u64(r)?));
            }
            Record::Event {
                thread,
                time,
                events,
            }
        }
        RUN_TAG_COMM => Record::Comm {
            send_thread: read_u32(r)?,
            recv_thread: read_u32(r)?,
            logical_send: read_u64(r)?,
            physical_send: read_u64(r)?,
            logical_recv: read_u64(r)?,
            physical_recv: read_u64(r)?,
            size: read_u64(r)?,
            tag: read_u64(r)?,
        },
        other => {
            return Err(TraceError::CorruptRun(format!("unknown tag {other:#x}")));
        }
    };
    Ok(Some(rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{OrderCheckSink, VecSink};

    fn ev(thread: u32, time: u64, v: u64) -> Record {
        Record::Event {
            thread,
            time,
            events: vec![(42_000_001, v)],
        }
    }

    fn st(thread: u32, begin: u64, end: u64) -> Record {
        Record::State {
            thread,
            begin,
            end,
            state: 1,
        }
    }

    #[test]
    fn matches_materialized_stable_sort() {
        // Adversarial: lots of equal timestamps so stability is observable.
        let mut input = Vec::new();
        for i in 0..1000u64 {
            input.push(ev(0, (i * 37) % 100, i));
            input.push(st(1, (i * 53) % 100, (i * 53) % 100 + 5));
        }
        let mut expect = input.clone();
        expect.sort_by_key(Record::sort_time);

        for cap in [7usize, 100, 5000] {
            let mut sorter = SpillSorter::new(VecSink::new(), cap);
            for r in input.iter().cloned() {
                sorter.push(r).unwrap();
            }
            sorter.close().unwrap();
            assert!(sorter.peak_in_memory() <= cap);
            if cap < input.len() {
                assert!(sorter.spilled_runs() > 0, "cap {cap} must spill");
            }
            assert_eq!(sorter.inner().records, expect, "cap {cap}");
        }
    }

    #[test]
    fn merged_output_is_nondecreasing() {
        let mut sorter = SpillSorter::new(OrderCheckSink::default(), 16);
        for i in (0..500u64).rev() {
            sorter.push(ev(0, i, i)).unwrap();
        }
        sorter.close().unwrap();
        assert_eq!(sorter.inner().records_seen, 500);
    }

    #[test]
    fn codec_roundtrips_all_kinds() {
        let records = vec![
            st(3, 10, 20),
            ev(1, 5, 99),
            Record::Event {
                thread: 2,
                time: 8,
                events: vec![(1, 2), (3, 4), (5, 6)],
            },
            Record::Comm {
                send_thread: 0,
                recv_thread: 1,
                logical_send: 1,
                physical_send: 2,
                logical_recv: 3,
                physical_recv: 4,
                size: 64,
                tag: 7,
            },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            encode_record(&mut bytes, r).unwrap();
        }
        let mut rdr = std::io::Cursor::new(bytes);
        let mut back = Vec::new();
        while let Some(r) = decode_record(&mut rdr).unwrap() {
            back.push(r);
        }
        assert_eq!(back, records);
    }

    #[test]
    fn spill_dir_is_cleaned_up() {
        let dir =
            std::env::temp_dir().join(format!("hls-paraver-spill-test-{}", std::process::id()));
        let mut sorter = SpillSorter::with_spill_dir(VecSink::new(), 2, dir.clone());
        for i in 0..10 {
            sorter.push(ev(0, i, i)).unwrap();
        }
        assert!(dir.exists(), "runs must hit the explicit dir");
        sorter.close().unwrap();
        assert!(!dir.exists(), "close must remove the spill dir");
    }

    #[test]
    fn into_inner_returns_collector() {
        let mut sorter = SpillSorter::new(VecSink::new(), 4);
        sorter.push(ev(0, 2, 0)).unwrap();
        sorter.push(ev(0, 1, 1)).unwrap();
        sorter.close().unwrap();
        let sink = sorter.into_inner();
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.records[0].sort_time(), 1);
    }
}
