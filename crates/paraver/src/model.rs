//! Trace object model.
//!
//! Paraver identifies an actor by the quadruple `cpu:appl:task:thread`
//! (1-based in the file format). The HLS profiling flow maps one FPGA
//! hardware thread to one Paraver thread of a single application/task, which
//! is how the paper's Figs. 6–13 label their rows ("THREAD 1.1.t").
//!
//! Times are in Paraver's time unit. The paper notes that "Paraver does not
//! support the notion of cycles. For all cases in the graphs where
//! microseconds are used, these are in fact cycles" (§V-A) — we adopt the
//! same convention: the time field carries *clock cycles*.

/// Trace-level metadata that goes into the `.prv` header and `.row` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Application (kernel) name; used in file naming and row labels.
    pub app_name: String,
    /// Total trace duration in cycles (the header `ftime`).
    pub duration: u64,
    /// Number of hardware threads (Paraver threads of task 1).
    pub num_threads: u32,
    /// Capture date string embedded in the header, e.g. `04/07/2026 at 12:00`.
    /// Purely cosmetic; kept fixed-format for reproducible output.
    pub date: String,
}

impl TraceMeta {
    /// Metadata with a canonical date stamp.
    pub fn new(app_name: &str, duration: u64, num_threads: u32) -> Self {
        TraceMeta {
            app_name: app_name.to_string(),
            duration,
            num_threads,
            date: "01/01/2026 at 00:00".to_string(),
        }
    }
}

/// One record of a `.prv` trace body.
///
/// `thread` is 0-based here and converted to Paraver's 1-based ids on
/// write-out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Type 1: `thread` is in `state` during `[begin, end)`.
    State {
        thread: u32,
        begin: u64,
        end: u64,
        state: u32,
    },
    /// Type 2: point sample of one or more `(type, value)` counters at
    /// `time`.
    Event {
        thread: u32,
        time: u64,
        events: Vec<(u32, u64)>,
    },
    /// Type 3: a point-to-point communication. Unused by the paper's flow
    /// (multi-FPGA is future work) but supported for format completeness.
    Comm {
        send_thread: u32,
        recv_thread: u32,
        logical_send: u64,
        physical_send: u64,
        logical_recv: u64,
        physical_recv: u64,
        size: u64,
        tag: u64,
    },
}

impl Record {
    /// The timestamp used for sorting records into file order.
    pub fn sort_time(&self) -> u64 {
        match self {
            Record::State { begin, .. } => *begin,
            Record::Event { time, .. } => *time,
            Record::Comm { logical_send, .. } => *logical_send,
        }
    }

    /// Paraver record-type discriminator (1/2/3).
    pub fn kind(&self) -> u8 {
        match self {
            Record::State { .. } => 1,
            Record::Event { .. } => 2,
            Record::Comm { .. } => 3,
        }
    }
}

/// A state definition for the `.pcf` (id, name, RGB colour).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateDef {
    pub id: u32,
    pub name: String,
    pub color: (u8, u8, u8),
}

/// An event-type definition for the `.pcf`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventTypeDef {
    pub id: u32,
    pub label: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_time_per_kind() {
        let s = Record::State {
            thread: 0,
            begin: 5,
            end: 9,
            state: 1,
        };
        let e = Record::Event {
            thread: 0,
            time: 7,
            events: vec![(1, 2)],
        };
        assert_eq!(s.sort_time(), 5);
        assert_eq!(e.sort_time(), 7);
        assert_eq!(s.kind(), 1);
        assert_eq!(e.kind(), 2);
    }
}
