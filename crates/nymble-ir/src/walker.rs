//! The per-thread semantic engine.
//!
//! A [`Walker`] executes one hardware thread of a kernel *functionally* and
//! reports what it did as a stream of [`StepEvent`]s. It deliberately knows
//! nothing about time: the untimed gold interpreter
//! ([`crate::interp::Interpreter`]) and the cycle-level FPGA simulator
//! (`fpga-sim`) both drive walkers, attributing cost (or not) to each event.
//!
//! ## Pausing protocol
//!
//! The walker is an explicit-stack interpreter, so a driver can suspend a
//! thread at synchronisation points:
//!
//! * On [`StepEvent::CriticalEnter`] the walker has *not yet* executed the
//!   critical body. The driver must not call [`Walker::step`] again until the
//!   (simulated) hardware semaphore has been acquired — mutual exclusion is
//!   the driver's responsibility, which lets the timed simulator model
//!   spinning precisely.
//! * On [`StepEvent::Barrier`] the driver steps the walker again only when
//!   all threads have arrived.
//!
//! All other events are informational; the walker can be stepped immediately.

use crate::expr::{eval_binop, eval_unop, Expr, ExprId};
use crate::kernel::{ArgId, ArgKind, Kernel, LocalMemId, VarId};
use crate::loops::{LoopId, LoopMap};
use crate::opcount::OpCounts;
use crate::stmt::{Stmt, Unroll};
use crate::types::{ScalarType, Type, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Functional data storage the walker reads and writes through.
///
/// The gold interpreter backs this with plain `Vec`s; the FPGA simulator
/// backs it with the simulated external-DRAM image so that data transfers and
/// values stay consistent with the timing model.
pub trait DataMemory {
    /// Load `ty` from buffer `buf` at *element* index `elem_idx` (a vector
    /// load reads `ty.lanes` consecutive elements).
    fn load_ext(&mut self, buf: ArgId, elem_idx: u64, ty: Type) -> Value;
    /// Store `v` to buffer `buf` at element index `elem_idx` (vector stores
    /// write all lanes consecutively).
    fn store_ext(&mut self, buf: ArgId, elem_idx: u64, v: Value);
}

/// One external-memory access, as observed on the thread's Avalon master.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Which buffer argument.
    pub buf: ArgId,
    /// Byte offset inside the buffer.
    pub byte_off: u64,
    /// Transfer size in bytes (element size × lanes; a burst for
    /// preload/write-back).
    pub bytes: u32,
    /// Direction.
    pub is_write: bool,
}

/// What a [`Walker::step`] call observed.
#[derive(Clone, Debug, PartialEq)]
pub enum StepEvent {
    /// A statement's worth of datapath compute was executed.
    /// Zero-valued counts are suppressed (no event).
    Ops(OpCounts),
    /// An individual external-memory access (variable-latency operation).
    Access(MemAccess),
    /// A preloader burst (external→local or local→external). Reported as a
    /// single access because the preloader issues one Avalon burst; carries
    /// the local memory involved so a timed driver can model DMA completion
    /// dependencies (blocked vs. double-buffered GEMM, Figs. 8 vs. 9).
    Burst { access: MemAccess, mem: LocalMemId },
    /// The current statement read from local memory `mem`. Emitted at most
    /// once per statement; a timed driver stalls the thread until any
    /// outstanding preloader DMA into `mem` has completed.
    LocalRead { mem: LocalMemId },
    /// Entered a non-unrolled loop; `trip` is the dynamic trip count.
    LoopEnter { loop_id: LoopId, trip: u64 },
    /// A new iteration of loop `loop_id` is about to execute.
    LoopIter { loop_id: LoopId },
    /// Left loop `loop_id`.
    LoopExit { loop_id: LoopId },
    /// About to enter a critical section: the thread will spin on the
    /// hardware semaphore. See the pausing protocol in the module docs.
    CriticalEnter,
    /// Left a critical section (semaphore released).
    CriticalExit,
    /// Arrived at a barrier. See the pausing protocol.
    Barrier,
    /// The thread has executed its whole body. Terminal: subsequent `step`
    /// calls return `Finished` again.
    Finished,
}

enum Frame<'k> {
    /// Plain statement sequence.
    Block { stmts: &'k [Stmt], idx: usize },
    /// Active counted loop (bounds pre-evaluated).
    Loop {
        /// The loop's stable id, resolved once at entry so per-iteration
        /// events need no [`LoopMap`] lookup.
        loop_id: LoopId,
        var: VarId,
        body: &'k [Stmt],
        next: i64,
        end: i64,
        step: i64,
        unrolled: bool,
        /// Body frame must be pushed for iteration `next` on resume.
        pending_iter: bool,
    },
    /// Critical section in flight (so we can emit CriticalExit on leave).
    Critical { body: &'k [Stmt], entered: bool },
}

/// Explicit-stack interpreter for one hardware thread.
///
/// Holds the loop map behind an [`Arc`] (shared by every thread of a run)
/// so a walker set plus its kernel borrow forms a self-contained, `Send`
/// simulation state.
pub struct Walker<'k> {
    kernel: &'k Kernel,
    loops: Arc<LoopMap>,
    tid: u32,
    /// Scalar argument values, indexed by `ArgId` (buffer slots unused).
    scalar_args: Vec<Value>,
    vars: Vec<Value>,
    local: Vec<Vec<Value>>,
    stack: Vec<Frame<'k>>,
    queue: VecDeque<StepEvent>,
    finished: bool,
    /// Local memories read by the statement currently being evaluated
    /// (deduplicates [`StepEvent::LocalRead`] to one per statement).
    stmt_local_reads: Vec<LocalMemId>,
    /// Per-statement memoisation of shared sub-expressions: the arena is a
    /// DAG (e.g. `x` in `x*x`), and a shared node is one datapath operator —
    /// it must evaluate, count and issue memory requests exactly once per
    /// statement execution.
    eval_gen: u64,
    eval_cache: Vec<Option<(u64, Value)>>,
    /// `shared[id]` — the expression is referenced more than once (by other
    /// expressions or statements), so it *can* be evaluated multiple times
    /// per statement and must go through the memo cache. Single-reference
    /// nodes — the vast majority — skip the cache bookkeeping entirely.
    shared: Vec<bool>,
}

/// Count every reference to each expression (expression children plus
/// statement operands); a node referenced at least twice may be evaluated
/// more than once within one statement and therefore must be memoised.
fn shared_expr_map(kernel: &Kernel) -> Vec<bool> {
    let mut refs = vec![0u32; kernel.exprs.len()];
    for e in kernel.exprs.iter() {
        for c in e.children() {
            refs[c.0 as usize] = refs[c.0 as usize].saturating_add(1);
        }
    }
    fn bump(refs: &mut [u32], id: ExprId) {
        refs[id.0 as usize] = refs[id.0 as usize].saturating_add(1);
    }
    fn visit_block(b: &[Stmt], refs: &mut [u32]) {
        for s in b {
            match s {
                Stmt::Assign { expr, .. } => bump(refs, *expr),
                Stmt::StoreExt { index, value, .. } | Stmt::StoreLocal { index, value, .. } => {
                    bump(refs, *index);
                    bump(refs, *value);
                }
                Stmt::For {
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    bump(refs, *start);
                    bump(refs, *end);
                    bump(refs, *step);
                    visit_block(body, refs);
                }
                Stmt::If {
                    cond,
                    then_b,
                    else_b,
                } => {
                    bump(refs, *cond);
                    visit_block(then_b, refs);
                    visit_block(else_b, refs);
                }
                Stmt::Critical { body } => visit_block(body, refs),
                Stmt::Preload {
                    src_off,
                    dst_off,
                    len,
                    ..
                } => {
                    bump(refs, *src_off);
                    bump(refs, *dst_off);
                    bump(refs, *len);
                }
                Stmt::WriteBack {
                    dst_off,
                    src_off,
                    len,
                    ..
                } => {
                    bump(refs, *dst_off);
                    bump(refs, *src_off);
                    bump(refs, *len);
                }
                Stmt::Barrier => {}
            }
        }
    }
    visit_block(&kernel.body, &mut refs);
    refs.into_iter().map(|r| r >= 2).collect()
}

impl<'k> Walker<'k> {
    /// Create a walker for hardware thread `tid`.
    ///
    /// `scalar_args` must have one entry per kernel argument; entries for
    /// buffer arguments are ignored (pass any placeholder).
    pub fn new(kernel: &'k Kernel, loops: Arc<LoopMap>, tid: u32, scalar_args: Vec<Value>) -> Self {
        assert!(tid < kernel.num_threads, "thread id out of range");
        assert_eq!(
            scalar_args.len(),
            kernel.args.len(),
            "one launch value per kernel argument"
        );
        for (i, arg) in kernel.args.iter().enumerate() {
            if let ArgKind::Scalar(st) = arg.kind {
                assert_eq!(
                    scalar_args[i].ty().scalar,
                    st,
                    "scalar arg `{}` launch value has wrong type",
                    arg.name
                );
            }
        }
        let vars = kernel
            .vars
            .iter()
            .map(|v| Value::zero(v.ty))
            .collect::<Vec<_>>();
        let local = kernel
            .local_mems
            .iter()
            .map(|m| vec![Value::zero(m.elem); m.len as usize])
            .collect::<Vec<_>>();
        Walker {
            kernel,
            loops,
            tid,
            scalar_args,
            vars,
            local,
            stack: vec![Frame::Block {
                stmts: &kernel.body,
                idx: 0,
            }],
            queue: VecDeque::new(),
            finished: false,
            stmt_local_reads: Vec::new(),
            eval_gen: 0,
            eval_cache: vec![None; kernel.exprs.len()],
            shared: shared_expr_map(kernel),
        }
    }

    /// The hardware thread id this walker executes.
    pub fn thread_id(&self) -> u32 {
        self.tid
    }

    /// True once [`StepEvent::Finished`] has been returned.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Read back a thread-local variable (for result checks in tests).
    pub fn var_value(&self, v: VarId) -> &Value {
        &self.vars[v.0 as usize]
    }

    /// Advance the thread until the next observable event.
    pub fn step<M: DataMemory + ?Sized>(&mut self, mem: &mut M) -> StepEvent {
        if let Some(ev) = self.queue.pop_front() {
            return ev;
        }
        if self.finished {
            return StepEvent::Finished;
        }
        loop {
            // Work the top frame until an event is produced.
            let Some(frame) = self.stack.last_mut() else {
                self.finished = true;
                return StepEvent::Finished;
            };
            match frame {
                Frame::Block { stmts, idx } => {
                    if *idx >= stmts.len() {
                        self.stack.pop();
                        // Leaving a critical body: emit the exit event.
                        if let Some(Frame::Critical { entered: true, .. }) = self.stack.last() {
                            self.stack.pop();
                            return StepEvent::CriticalExit;
                        }
                        continue;
                    }
                    let s = &stmts[*idx];
                    *idx += 1;
                    if let Some(ev) = self.exec_stmt(s, mem) {
                        return ev;
                    }
                    if let Some(ev) = self.queue.pop_front() {
                        return ev;
                    }
                }
                Frame::Loop {
                    loop_id,
                    var,
                    body,
                    next,
                    end,
                    step,
                    unrolled,
                    pending_iter,
                } => {
                    let done = if *step >= 0 {
                        *next >= *end
                    } else {
                        *next <= *end
                    };
                    if done {
                        let unrolled = *unrolled;
                        let loop_id = *loop_id;
                        self.stack.pop();
                        if !unrolled {
                            return StepEvent::LoopExit { loop_id };
                        }
                        continue;
                    }
                    // Start the next iteration.
                    let vslot = var.0 as usize;
                    let ty = self.kernel.vars[vslot].ty.scalar;
                    let cur = *next;
                    *next += *step;
                    *pending_iter = false;
                    let body: &'k [Stmt] = body;
                    let unrolled = *unrolled;
                    let loop_id = *loop_id;
                    self.vars[vslot] = Value::from_i64(ty, cur);
                    self.stack.push(Frame::Block {
                        stmts: body,
                        idx: 0,
                    });
                    if !unrolled {
                        return StepEvent::LoopIter { loop_id };
                    }
                }
                Frame::Critical { body, entered } => {
                    // We only reach here the second time (after the driver
                    // granted the lock): push the body and mark entered.
                    *entered = true;
                    let body: &'k [Stmt] = body;
                    self.stack.push(Frame::Block {
                        stmts: body,
                        idx: 0,
                    });
                }
            }
        }
    }

    /// Execute a single statement; may return a primary event and queue more.
    fn exec_stmt<M: DataMemory + ?Sized>(&mut self, s: &'k Stmt, mem: &mut M) -> Option<StepEvent> {
        self.stmt_local_reads.clear();
        self.eval_gen += 1;
        match s {
            Stmt::Assign { var, expr } => {
                let mut ops = OpCounts::default();
                let v = self.eval(*expr, mem, &mut ops);
                self.vars[var.0 as usize] = v;
                self.emit_ops(ops)
            }
            Stmt::StoreExt { buf, index, value } => {
                let mut ops = OpCounts::default();
                let idx = self.eval(*index, mem, &mut ops).as_i64() as u64;
                let v = self.eval(*value, mem, &mut ops);
                let bytes = v.ty().size_bytes();
                let elem_size = self.kernel.buffer_elem_size(*buf) as u64;
                mem.store_ext(*buf, idx, v);
                self.queue.push_back(StepEvent::Access(MemAccess {
                    buf: *buf,
                    byte_off: idx * elem_size,
                    bytes,
                    is_write: true,
                }));
                self.emit_ops(ops)
            }
            Stmt::StoreLocal {
                mem: lm,
                index,
                value,
            } => {
                let mut ops = OpCounts::default();
                let idx = self.eval(*index, mem, &mut ops).as_i64() as usize;
                let v = self.eval(*value, mem, &mut ops);
                self.write_local(*lm, idx, v);
                self.emit_ops(ops)
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
                unroll,
            } => {
                let mut ops = OpCounts::default();
                let s0 = self.eval(*start, mem, &mut ops).as_i64();
                let e0 = self.eval(*end, mem, &mut ops).as_i64();
                let st = self.eval(*step, mem, &mut ops).as_i64();
                assert!(st != 0, "zero loop step");
                let trip = if st > 0 {
                    ((e0 - s0).max(0) as u64).div_ceil(st as u64)
                } else {
                    ((s0 - e0).max(0) as u64).div_ceil((-st) as u64)
                };
                let unrolled = *unroll == Unroll::Full;
                let loop_id = self.loops.id_of(s);
                if !unrolled {
                    self.queue.push_back(StepEvent::LoopEnter { loop_id, trip });
                }
                self.stack.push(Frame::Loop {
                    loop_id,
                    var: *var,
                    body,
                    next: s0,
                    end: e0,
                    step: st,
                    unrolled,
                    pending_iter: true,
                });
                self.emit_ops(ops)
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let mut ops = OpCounts::default();
                let c = self.eval(*cond, mem, &mut ops).as_bool();
                let block: &'k [Stmt] = if c { then_b } else { else_b };
                if !block.is_empty() {
                    self.stack.push(Frame::Block {
                        stmts: block,
                        idx: 0,
                    });
                }
                self.emit_ops(ops)
            }
            Stmt::Critical { body } => {
                self.stack.push(Frame::Critical {
                    body,
                    entered: false,
                });
                Some(StepEvent::CriticalEnter)
            }
            Stmt::Barrier => Some(StepEvent::Barrier),
            Stmt::Preload {
                mem: lm,
                src,
                src_off,
                dst_off,
                len,
            } => {
                let mut ops = OpCounts::default();
                let soff = self.eval(*src_off, mem, &mut ops).as_i64() as u64;
                let doff = self.eval(*dst_off, mem, &mut ops).as_i64() as u64;
                let n = self.eval(*len, mem, &mut ops).as_i64() as u64;
                let elem_ty = self.kernel.local_mem(*lm).elem;
                let scalar_size = elem_ty.scalar.size_bytes() as u64;
                let lanes = elem_ty.lanes as u64;
                for i in 0..n {
                    // Source element index is in *scalar* elements of the
                    // buffer; each local element may be a vector.
                    let v = mem.load_ext(*src, soff + i * lanes, elem_ty);
                    self.write_local(*lm, (doff + i) as usize, v);
                }
                self.queue.push_back(StepEvent::Burst {
                    access: MemAccess {
                        buf: *src,
                        byte_off: soff * scalar_size,
                        bytes: (n * lanes * scalar_size) as u32,
                        is_write: false,
                    },
                    mem: *lm,
                });
                self.emit_ops(ops)
            }
            Stmt::WriteBack {
                mem: lm,
                dst,
                dst_off,
                src_off,
                len,
            } => {
                let mut ops = OpCounts::default();
                let doff = self.eval(*dst_off, mem, &mut ops).as_i64() as u64;
                let soff = self.eval(*src_off, mem, &mut ops).as_i64() as u64;
                let n = self.eval(*len, mem, &mut ops).as_i64() as u64;
                let elem_ty = self.kernel.local_mem(*lm).elem;
                let scalar_size = elem_ty.scalar.size_bytes() as u64;
                let lanes = elem_ty.lanes as u64;
                for i in 0..n {
                    let v = self.local[lm.0 as usize][(soff + i) as usize].clone();
                    mem.store_ext(*dst, doff + i * lanes, v);
                }
                self.queue.push_back(StepEvent::Burst {
                    access: MemAccess {
                        buf: *dst,
                        byte_off: doff * scalar_size,
                        bytes: (n * lanes * scalar_size) as u32,
                        is_write: true,
                    },
                    mem: *lm,
                });
                self.emit_ops(ops)
            }
        }
    }

    fn emit_ops(&mut self, ops: OpCounts) -> Option<StepEvent> {
        if ops.int_ops == 0 && ops.flops == 0 && ops.ext_loads == 0 && ops.local_loads == 0 {
            return self.queue.pop_front();
        }
        Some(StepEvent::Ops(ops))
    }

    fn write_local(&mut self, lm: LocalMemId, idx: usize, v: Value) {
        let memv = &mut self.local[lm.0 as usize];
        assert!(
            idx < memv.len(),
            "local memory `{}` index {} out of bounds ({})",
            self.kernel.local_mem(lm).name,
            idx,
            memv.len()
        );
        memv[idx] = v;
    }

    /// Evaluate an expression, counting ops and queueing access events.
    /// Shared sub-expressions are evaluated once per statement (memoised);
    /// single-reference nodes — evaluated exactly once per statement by
    /// construction — bypass the cache and its value clones.
    fn eval<M: DataMemory + ?Sized>(
        &mut self,
        id: ExprId,
        mem: &mut M,
        ops: &mut OpCounts,
    ) -> Value {
        if !self.shared[id.0 as usize] {
            return self.eval_uncached(id, mem, ops);
        }
        if let Some((g, v)) = &self.eval_cache[id.0 as usize] {
            if *g == self.eval_gen {
                return v.clone();
            }
        }
        let v = self.eval_uncached(id, mem, ops);
        self.eval_cache[id.0 as usize] = Some((self.eval_gen, v.clone()));
        v
    }

    fn eval_uncached<M: DataMemory + ?Sized>(
        &mut self,
        id: ExprId,
        mem: &mut M,
        ops: &mut OpCounts,
    ) -> Value {
        match self.kernel.expr(id) {
            Expr::Const(v) => v.clone(),
            Expr::Arg(a) => self.scalar_args[a.0 as usize].clone(),
            Expr::ThreadId => Value::I32(self.tid as i32),
            Expr::NumThreads => Value::I32(self.kernel.num_threads as i32),
            Expr::Var(v) => self.vars[v.0 as usize].clone(),
            Expr::Unary(op, a) => {
                let av = self.eval(*a, mem, ops);
                let lanes = av.ty().lanes.max(1) as u64;
                if av.ty().scalar.is_float() {
                    ops.flops += lanes;
                } else {
                    ops.int_ops += lanes;
                }
                eval_unop(*op, &av)
            }
            Expr::Binary(op, a, b) => {
                let av = self.eval(*a, mem, ops);
                let bv = self.eval(*b, mem, ops);
                let lanes = av.ty().lanes.max(1) as u64;
                if op.is_comparison() || !av.ty().scalar.is_float() {
                    ops.int_ops += lanes;
                } else {
                    ops.flops += lanes;
                }
                eval_binop(*op, &av, &bv)
            }
            Expr::Select {
                cond,
                then_v,
                else_v,
            } => {
                // Both sides are evaluated: the datapath computes both and
                // multiplexes (no short-circuit in hardware).
                let c = self.eval(*cond, mem, ops);
                let tv = self.eval(*then_v, mem, ops);
                let ev = self.eval(*else_v, mem, ops);
                ops.int_ops += tv.ty().lanes.max(1) as u64;
                if c.as_bool() {
                    tv
                } else {
                    ev
                }
            }
            Expr::Cast(ty, a) => {
                let av = self.eval(*a, mem, ops);
                ops.int_ops += 1;
                match ty {
                    ScalarType::I32 | ScalarType::I64 => Value::from_i64(*ty, av.as_i64()),
                    ScalarType::F32 | ScalarType::F64 => Value::from_f64(*ty, av.as_f64()),
                }
            }
            Expr::LoadExt { buf, index, ty } => {
                let idx = self.eval(*index, mem, ops).as_i64() as u64;
                let v = mem.load_ext(*buf, idx, *ty);
                ops.ext_loads += 1;
                let elem_size = ty.scalar.size_bytes() as u64;
                self.queue.push_back(StepEvent::Access(MemAccess {
                    buf: *buf,
                    byte_off: idx * elem_size,
                    bytes: ty.size_bytes(),
                    is_write: false,
                }));
                v
            }
            Expr::LoadLocal { mem: lm, index, ty } => {
                let idx = self.eval(*index, mem, ops).as_i64() as usize;
                ops.local_loads += 1;
                if !self.stmt_local_reads.contains(lm) {
                    self.stmt_local_reads.push(*lm);
                    self.queue.push_back(StepEvent::LocalRead { mem: *lm });
                }
                let memv = &self.local[lm.0 as usize];
                assert!(
                    idx < memv.len(),
                    "local memory `{}` index {} out of bounds ({})",
                    self.kernel.local_mem(*lm).name,
                    idx,
                    memv.len()
                );
                let v = memv[idx].clone();
                debug_assert_eq!(v.ty().scalar, ty.scalar);
                v
            }
            Expr::Lane(a, lane) => {
                let av = self.eval(*a, mem, ops);
                av.lane(*lane as usize).clone()
            }
            Expr::Splat(a, lanes) => {
                let av = self.eval(*a, mem, ops);
                Value::Vec(vec![av; *lanes as usize].into_boxed_slice())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::ScalarType;
    use crate::MapDir;

    /// Plain-vector memory for tests.
    pub struct VecMem {
        pub bufs: Vec<Vec<Value>>,
    }

    impl DataMemory for VecMem {
        fn load_ext(&mut self, buf: ArgId, elem_idx: u64, ty: Type) -> Value {
            let b = &self.bufs[buf.0 as usize];
            if ty.lanes <= 1 {
                b[elem_idx as usize].clone()
            } else {
                let lanes: Vec<Value> = (0..ty.lanes as u64)
                    .map(|l| b[(elem_idx + l) as usize].clone())
                    .collect();
                Value::Vec(lanes.into_boxed_slice())
            }
        }
        fn store_ext(&mut self, buf: ArgId, elem_idx: u64, v: Value) {
            let b = &mut self.bufs[buf.0 as usize];
            match v {
                Value::Vec(lanes) => {
                    for (l, lv) in lanes.iter().enumerate() {
                        b[elem_idx as usize + l] = lv.clone();
                    }
                }
                s => b[elem_idx as usize] = s,
            }
        }
    }

    fn drive_to_finish(w: &mut Walker, mem: &mut VecMem) -> Vec<StepEvent> {
        let mut evs = Vec::new();
        loop {
            let ev = w.step(mem);
            let fin = ev == StepEvent::Finished;
            evs.push(ev);
            if fin {
                return evs;
            }
        }
    }

    #[test]
    fn sums_buffer_with_loop_events() {
        let mut kb = KernelBuilder::new("sum", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let n = kb.scalar_arg("N", ScalarType::I64);
        let acc = kb.var("acc", Type::F32);
        let z = kb.c_f32(0.0);
        kb.set(acc, z);
        let n_e = kb.arg(n);
        kb.for_range("i", n_e, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(acc);
            let s = kb.add(cur, v);
            kb.set(acc, s);
        });
        let accv = kb.get(acc);
        let zero = kb.c_i64(0);
        kb.store(out, zero, accv);
        let k = kb.finish();
        let loops = LoopMap::build(&k);
        let mut mem = VecMem {
            bufs: vec![
                (0..4).map(|i| Value::F32(i as f32)).collect(),
                vec![Value::F32(-1.0)],
                vec![],
            ],
        };
        let args = vec![Value::I32(0), Value::I32(0), Value::I64(4)];
        let mut w = Walker::new(&k, std::sync::Arc::new(loops), 0, args);
        let evs = drive_to_finish(&mut w, &mut mem);
        assert_eq!(mem.bufs[1][0], Value::F32(0.0 + 1.0 + 2.0 + 3.0));
        let iters = evs
            .iter()
            .filter(|e| matches!(e, StepEvent::LoopIter { .. }))
            .count();
        assert_eq!(iters, 4);
        let enters: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::LoopEnter { trip, .. } => Some(*trip),
                _ => None,
            })
            .collect();
        assert_eq!(enters, vec![4]);
        let loads = evs
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    StepEvent::Access(MemAccess {
                        is_write: false,
                        ..
                    })
                )
            })
            .count();
        assert_eq!(loads, 4);
        let stores = evs
            .iter()
            .filter(|e| matches!(e, StepEvent::Access(MemAccess { is_write: true, .. })))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn critical_pauses_until_stepped() {
        let mut kb = KernelBuilder::new("c", 2);
        let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
        kb.critical(|kb| {
            let z = kb.c_i64(0);
            let cur = kb.load(out, z, Type::I32);
            let one = kb.c_i32(1);
            let inc = kb.add(cur, one);
            let z2 = kb.c_i64(0);
            kb.store(out, z2, inc);
        });
        let k = kb.finish();
        let loops = LoopMap::build(&k);
        let mut mem = VecMem {
            bufs: vec![vec![Value::I32(10)]],
        };
        let mut w = Walker::new(&k, std::sync::Arc::new(loops), 0, vec![Value::I32(0)]);
        assert_eq!(w.step(&mut mem), StepEvent::CriticalEnter);
        // Value untouched while paused.
        assert_eq!(mem.bufs[0][0], Value::I32(10));
        // Driver grants the lock by stepping again; run through the body.
        let mut saw_exit = false;
        loop {
            match w.step(&mut mem) {
                StepEvent::CriticalExit => saw_exit = true,
                StepEvent::Finished => break,
                _ => {}
            }
        }
        assert!(saw_exit);
        assert_eq!(mem.bufs[0][0], Value::I32(11));
    }

    #[test]
    fn unrolled_loops_emit_no_loop_events() {
        let mut kb = KernelBuilder::new("u", 1);
        let acc = kb.var("acc", Type::I32);
        let zero = kb.c_i64(0);
        let four = kb.c_i64(4);
        let one = kb.c_i64(1);
        kb.for_unrolled("i", zero, four, one, |kb, i| {
            let cur = kb.get(acc);
            let i32v = kb.cast(ScalarType::I32, i);
            let s = kb.add(cur, i32v);
            kb.set(acc, s);
        });
        let k = kb.finish();
        let loops = LoopMap::build(&k);
        let mut mem = VecMem { bufs: vec![] };
        let mut w = Walker::new(&k, std::sync::Arc::new(loops), 0, vec![]);
        let evs = drive_to_finish(&mut w, &mut mem);
        assert!(
            !evs.iter().any(|e| matches!(
                e,
                StepEvent::LoopEnter { .. }
                    | StepEvent::LoopIter { .. }
                    | StepEvent::LoopExit { .. }
            )),
            "unrolled loop must be invisible to the timing model: {evs:?}"
        );
        assert_eq!(w.var_value(VarId(0)), &Value::I32(1 + 2 + 3));
    }

    #[test]
    fn thread_id_and_num_threads() {
        let mut kb = KernelBuilder::new("t", 4);
        let v = kb.var("x", Type::I32);
        let tid = kb.thread_id();
        let nt = kb.num_threads_expr();
        let s = kb.mul(tid, nt);
        kb.set(v, s);
        let k = kb.finish();
        let loops = LoopMap::build(&k);
        let mut mem = VecMem { bufs: vec![] };
        let mut w = Walker::new(&k, std::sync::Arc::new(loops), 3, vec![]);
        drive_to_finish(&mut w, &mut mem);
        assert_eq!(w.var_value(VarId(0)), &Value::I32(12));
    }

    #[test]
    fn preload_bursts_and_copies() {
        let mut kb = KernelBuilder::new("p", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let lm = kb.local_mem("buf", Type::F32, 8);
        let two = kb.c_i64(2);
        let zero = kb.c_i64(0);
        let four = kb.c_i64(4);
        kb.preload(lm, a, two, zero, four);
        // OUT[0] = buf[1] (== A[3])
        let one = kb.c_i64(1);
        let v = kb.load_local(lm, one, Type::F32);
        let z2 = kb.c_i64(0);
        kb.store(out, z2, v);
        let k = kb.finish();
        let loops = LoopMap::build(&k);
        let mut mem = VecMem {
            bufs: vec![
                (0..8).map(|i| Value::F32(i as f32 * 10.0)).collect(),
                vec![Value::F32(0.0)],
            ],
        };
        let mut w = Walker::new(
            &k,
            std::sync::Arc::new(loops),
            0,
            vec![Value::I32(0), Value::I32(0)],
        );
        let evs = drive_to_finish(&mut w, &mut mem);
        assert_eq!(mem.bufs[1][0], Value::F32(30.0));
        let bursts: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::Burst { access, .. } => Some(*access),
                _ => None,
            })
            .collect();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].bytes, 16, "4 f32 elements in one burst");
        assert_eq!(bursts[0].byte_off, 8);
    }
}
