//! Kernel validation: referential integrity and structural rules.
//!
//! Nymble rejects programs its execution model cannot realise; this pass
//! mirrors the checks that matter for the simulator and scheduler:
//! every id must be in range, fully-unrolled loops may not contain
//! synchronisation (a barrier inside an unrolled dataflow graph has no
//! hardware realisation), and critical sections may not nest (the single
//! hardware semaphore of Fig. 1 is not re-entrant).

use crate::expr::{Expr, ExprId};
use crate::kernel::{ArgKind, Kernel};
use crate::stmt::{Block, Stmt, Unroll};
use std::fmt;

/// A validation failure, with a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel validation failed: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

fn err(msg: impl Into<String>) -> ValidationError {
    ValidationError(msg.into())
}

/// Validate a kernel. Called automatically by
/// [`crate::builder::KernelBuilder::finish`].
pub fn validate(k: &Kernel) -> Result<(), ValidationError> {
    if k.num_threads == 0 {
        return Err(err("num_threads must be >= 1"));
    }
    for (i, e) in k.exprs.iter().enumerate() {
        check_expr(k, ExprId(i as u32), e)?;
    }
    check_block(k, &k.body, false, false)?;
    Ok(())
}

fn check_expr(k: &Kernel, id: ExprId, e: &Expr) -> Result<(), ValidationError> {
    // Arena ids must point backwards: the builder always appends operands
    // before their users, which also guarantees acyclicity.
    for c in e.children() {
        if c.0 >= id.0 {
            return Err(err(format!(
                "expression {id:?} references non-prior expression {c:?} (cycle?)"
            )));
        }
    }
    match e {
        Expr::Arg(a) => {
            let arg = k
                .args
                .get(a.0 as usize)
                .ok_or_else(|| err(format!("expression {id:?}: unknown arg {a:?}")))?;
            if matches!(arg.kind, ArgKind::Buffer { .. }) {
                return Err(err(format!(
                    "expression {id:?}: buffer argument `{}` read as scalar; use a load",
                    arg.name
                )));
            }
        }
        Expr::Var(v) if v.0 as usize >= k.vars.len() => {
            return Err(err(format!("expression {id:?}: unknown var {v:?}")));
        }
        Expr::LoadExt { buf, ty, .. } => {
            let arg = k
                .args
                .get(buf.0 as usize)
                .ok_or_else(|| err(format!("expression {id:?}: unknown buffer {buf:?}")))?;
            match arg.kind {
                ArgKind::Buffer { elem, .. } => {
                    if elem != ty.scalar {
                        return Err(err(format!(
                            "expression {id:?}: loads {:?} from `{}` declared {:?}",
                            ty.scalar, arg.name, elem
                        )));
                    }
                }
                ArgKind::Scalar(_) => {
                    return Err(err(format!(
                        "expression {id:?}: load from scalar argument `{}`",
                        arg.name
                    )))
                }
            }
            if ty.lanes == 0 {
                return Err(err(format!("expression {id:?}: zero-lane load")));
            }
        }
        Expr::LoadLocal { mem, ty, .. } => {
            let m = k
                .local_mems
                .get(mem.0 as usize)
                .ok_or_else(|| err(format!("expression {id:?}: unknown local mem {mem:?}")))?;
            if m.elem.scalar != ty.scalar {
                return Err(err(format!(
                    "expression {id:?}: local mem `{}` element type mismatch",
                    m.name
                )));
            }
        }
        Expr::Splat(_, lanes) if *lanes < 2 => {
            return Err(err(format!("expression {id:?}: splat to < 2 lanes")));
        }
        _ => {}
    }
    Ok(())
}

fn check_block(
    k: &Kernel,
    b: &Block,
    in_unrolled: bool,
    in_critical: bool,
) -> Result<(), ValidationError> {
    for s in b {
        match s {
            Stmt::Assign { var, .. } => {
                if var.0 as usize >= k.vars.len() {
                    return Err(err(format!("assign to unknown var {var:?}")));
                }
            }
            Stmt::StoreExt { buf, .. } => {
                let arg = k
                    .args
                    .get(buf.0 as usize)
                    .ok_or_else(|| err(format!("store to unknown buffer {buf:?}")))?;
                if !matches!(arg.kind, ArgKind::Buffer { .. }) {
                    return Err(err(format!("store to scalar argument `{}`", arg.name)));
                }
            }
            Stmt::StoreLocal { mem, .. } => {
                if mem.0 as usize >= k.local_mems.len() {
                    return Err(err(format!("store to unknown local mem {mem:?}")));
                }
            }
            Stmt::For { body, unroll, .. } => {
                check_block(k, body, in_unrolled || *unroll == Unroll::Full, in_critical)?;
            }
            Stmt::If { then_b, else_b, .. } => {
                check_block(k, then_b, in_unrolled, in_critical)?;
                check_block(k, else_b, in_unrolled, in_critical)?;
            }
            Stmt::Critical { body } => {
                if in_critical {
                    return Err(err(
                        "nested critical sections: the hardware semaphore is not re-entrant",
                    ));
                }
                if in_unrolled {
                    return Err(err("critical section inside a fully-unrolled loop"));
                }
                check_block(k, body, in_unrolled, true)?;
            }
            Stmt::Barrier => {
                if in_unrolled {
                    return Err(err("barrier inside a fully-unrolled loop"));
                }
                if in_critical {
                    return Err(err(
                        "barrier inside a critical section would deadlock all threads",
                    ));
                }
            }
            Stmt::Preload { mem, src, .. } => {
                if mem.0 as usize >= k.local_mems.len() {
                    return Err(err(format!("preload to unknown local mem {mem:?}")));
                }
                let arg = k
                    .args
                    .get(src.0 as usize)
                    .ok_or_else(|| err(format!("preload from unknown buffer {src:?}")))?;
                if !matches!(arg.kind, ArgKind::Buffer { .. }) {
                    return Err(err(format!("preload from scalar argument `{}`", arg.name)));
                }
            }
            Stmt::WriteBack { mem, dst, .. } => {
                if mem.0 as usize >= k.local_mems.len() {
                    return Err(err(format!("writeback from unknown local mem {mem:?}")));
                }
                let arg = k
                    .args
                    .get(dst.0 as usize)
                    .ok_or_else(|| err(format!("writeback to unknown buffer {dst:?}")))?;
                if !matches!(arg.kind, ArgKind::Buffer { .. }) {
                    return Err(err(format!("writeback to scalar argument `{}`", arg.name)));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {

    use crate::builder::KernelBuilder;
    use crate::types::{ScalarType, Type};
    use crate::MapDir;

    #[test]
    fn accepts_wellformed() {
        let mut kb = KernelBuilder::new("ok", 2);
        let buf = kb.buffer("A", ScalarType::F32, MapDir::To);
        let v = kb.var("x", Type::F32);
        let idx = kb.c_i64(0);
        let ld = kb.load(buf, idx, Type::F32);
        kb.set(v, ld);
        assert!(kb.try_finish().is_ok());
    }

    #[test]
    fn rejects_nested_critical() {
        let mut kb = KernelBuilder::new("bad", 2);
        kb.critical(|kb| {
            kb.critical(|_| {});
        });
        let e = kb.try_finish().unwrap_err();
        assert!(e.0.contains("nested critical"), "{e}");
    }

    #[test]
    fn rejects_barrier_in_critical() {
        let mut kb = KernelBuilder::new("bad", 2);
        kb.critical(|kb| kb.barrier());
        let e = kb.try_finish().unwrap_err();
        assert!(e.0.contains("deadlock"), "{e}");
    }

    /// The `in_critical` flag must survive arbitrary nesting: a barrier
    /// buried in a `for` loop inside the critical body is just as deadly as
    /// a direct child.
    #[test]
    fn rejects_barrier_in_loop_inside_critical() {
        let mut kb = KernelBuilder::new("bad", 2);
        kb.critical(|kb| {
            let n = kb.c_i64(4);
            kb.for_range("i", n, |kb, _| kb.barrier());
        });
        let e = kb.try_finish().unwrap_err();
        assert!(e.0.contains("deadlock"), "{e}");
    }

    /// ...and through `if` branches, including the else branch.
    #[test]
    fn rejects_barrier_in_branch_inside_critical() {
        for in_else in [false, true] {
            let mut kb = KernelBuilder::new("bad", 2);
            kb.critical(|kb| {
                let t = kb.thread_id();
                let z = kb.c_i64(0);
                let c = kb.bin(crate::BinOp::Eq, t, z);
                kb.if_(
                    c,
                    |kb| {
                        if !in_else {
                            kb.barrier()
                        }
                    },
                    |kb| {
                        if in_else {
                            kb.barrier()
                        }
                    },
                );
            });
            let e = kb.try_finish().unwrap_err();
            assert!(e.0.contains("deadlock"), "in_else={in_else}: {e}");
        }
    }

    /// A barrier *after* a critical section is fine — the flag must reset
    /// when the section closes.
    #[test]
    fn accepts_barrier_after_critical() {
        let mut kb = KernelBuilder::new("ok", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        kb.critical(|kb| {
            let z = kb.c_i64(0);
            let one = kb.c_f32(1.0);
            kb.store(out, z, one);
        });
        kb.barrier();
        assert!(kb.try_finish().is_ok());
    }

    #[test]
    fn rejects_barrier_in_unrolled_loop() {
        let mut kb = KernelBuilder::new("bad", 2);
        let zero = kb.c_i64(0);
        let four = kb.c_i64(4);
        let one = kb.c_i64(1);
        kb.for_unrolled("i", zero, four, one, |kb, _| kb.barrier());
        let e = kb.try_finish().unwrap_err();
        assert!(e.0.contains("unrolled"), "{e}");
    }

    #[test]
    fn rejects_type_mismatched_load() {
        let mut kb = KernelBuilder::new("bad", 1);
        let buf = kb.buffer("A", ScalarType::F32, MapDir::To);
        let v = kb.var("x", Type::F64);
        let idx = kb.c_i64(0);
        let ld = kb.load(buf, idx, Type::F64); // F64 load from F32 buffer
        kb.set(v, ld);
        let e = kb.try_finish().unwrap_err();
        assert!(e.0.contains("declared"), "{e}");
    }

    #[test]
    fn rejects_scalar_read_of_buffer() {
        let mut kb = KernelBuilder::new("bad", 1);
        let buf = kb.buffer("A", ScalarType::F32, MapDir::To);
        let v = kb.var("x", Type::F32);
        let a = kb.arg(buf);
        kb.set(v, a);
        let e = kb.try_finish().unwrap_err();
        assert!(e.0.contains("read as scalar"), "{e}");
    }
}
