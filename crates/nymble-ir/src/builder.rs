//! Fluent kernel builder mirroring the OpenMP constructs used in the paper.
//!
//! Example — the inner product loop of the naive GEMM (Fig. 3):
//!
//! ```
//! use nymble_ir::{KernelBuilder, ScalarType, Type, MapDir, BinOp};
//!
//! let mut kb = KernelBuilder::new("matmul", 8);
//! let a = kb.buffer("A", ScalarType::F32, MapDir::To);
//! let b = kb.buffer("B", ScalarType::F32, MapDir::To);
//! let c = kb.buffer("C", ScalarType::F32, MapDir::From);
//! let dim = kb.scalar_arg("DIM", ScalarType::I32);
//!
//! let my_id = kb.thread_id();
//! let nthreads = kb.num_threads_expr();
//! let dim_e = kb.arg(dim);
//! let sum = kb.var("sum", Type::F32);
//! let zero = kb.c_f32(0.0);
//! kb.set(sum, zero);
//! kb.for_each("k", my_id, dim_e, nthreads, |kb, k| {
//!     let av = kb.load(a, k, Type::F32);
//!     let bv = kb.load(b, k, Type::F32);
//!     let prod = kb.bin(BinOp::Mul, av, bv);
//!     let s = kb.get(sum);
//!     let acc = kb.bin(BinOp::Add, s, prod);
//!     kb.set(sum, acc);
//! });
//! let kernel = kb.finish();
//! assert_eq!(kernel.num_threads, 8);
//! ```

use crate::expr::{BinOp, Expr, ExprId, UnOp};
use crate::kernel::{Arg, ArgId, ArgKind, Kernel, LocalMem, LocalMemId, MapDir, VarDecl, VarId};
use crate::stmt::{Block, Stmt, Unroll};
use crate::types::{ScalarType, Type, Value};

/// An opt-in check run by [`KernelBuilder::try_finish`] after structural
/// validation — the hook for external analyzers (e.g. `nymble-lint`'s
/// strict mode) without this crate depending on them.
pub type FinishCheck = Box<dyn Fn(&Kernel) -> Result<(), String> + Send + Sync>;

/// Builds a [`Kernel`] incrementally. Statements are appended to the
/// innermost open block; loops/criticals/ifs open nested blocks via closures.
pub struct KernelBuilder {
    kernel: Kernel,
    stack: Vec<Block>,
    strict_check: Option<FinishCheck>,
}

impl KernelBuilder {
    /// Start a kernel named `name` executing on `num_threads` hardware
    /// threads (the `num_threads(N)` clause of `#pragma omp target parallel`).
    pub fn new(name: &str, num_threads: u32) -> Self {
        assert!(num_threads >= 1, "kernel needs at least one thread");
        KernelBuilder {
            kernel: Kernel {
                name: name.to_string(),
                args: Vec::new(),
                vars: Vec::new(),
                local_mems: Vec::new(),
                exprs: Vec::new(),
                body: Block::new(),
                num_threads,
            },
            stack: vec![Block::new()],
            strict_check: None,
        }
    }

    /// Enable strict mode: `check` runs on the finished kernel after
    /// structural validation, and its error fails
    /// [`Self::try_finish`] (or panics [`Self::finish`]). Typically
    /// installed as `kb.set_strict_check(nymble_lint::strict_check(level))`.
    pub fn set_strict_check(&mut self, check: FinishCheck) {
        self.strict_check = Some(check);
    }

    // ----- declarations ---------------------------------------------------

    /// Declare an external buffer argument with a `map` clause.
    pub fn buffer(&mut self, name: &str, elem: ScalarType, map: MapDir) -> ArgId {
        let id = ArgId(self.kernel.args.len() as u32);
        self.kernel.args.push(Arg {
            name: name.to_string(),
            kind: ArgKind::Buffer { elem, map },
        });
        id
    }

    /// Declare a scalar argument (passed over the slave interface).
    pub fn scalar_arg(&mut self, name: &str, ty: ScalarType) -> ArgId {
        let id = ArgId(self.kernel.args.len() as u32);
        self.kernel.args.push(Arg {
            name: name.to_string(),
            kind: ArgKind::Scalar(ty),
        });
        id
    }

    /// Declare a thread-local variable.
    pub fn var(&mut self, name: &str, ty: Type) -> VarId {
        let id = VarId(self.kernel.vars.len() as u32);
        self.kernel.vars.push(VarDecl {
            name: name.to_string(),
            ty,
        });
        id
    }

    /// Declare a per-thread local BRAM memory of `len` elements of `elem`.
    pub fn local_mem(&mut self, name: &str, elem: Type, len: u64) -> LocalMemId {
        let id = LocalMemId(self.kernel.local_mems.len() as u32);
        self.kernel.local_mems.push(LocalMem {
            name: name.to_string(),
            elem,
            len,
            per_thread: true,
        });
        id
    }

    // ----- expressions ----------------------------------------------------

    fn push_expr(&mut self, e: Expr) -> ExprId {
        let id = ExprId(self.kernel.exprs.len() as u32);
        self.kernel.exprs.push(e);
        id
    }

    /// i32 constant.
    pub fn c_i32(&mut self, v: i32) -> ExprId {
        self.push_expr(Expr::Const(Value::I32(v)))
    }

    /// i64 constant.
    pub fn c_i64(&mut self, v: i64) -> ExprId {
        self.push_expr(Expr::Const(Value::I64(v)))
    }

    /// f32 constant.
    pub fn c_f32(&mut self, v: f32) -> ExprId {
        self.push_expr(Expr::Const(Value::F32(v)))
    }

    /// f64 constant.
    pub fn c_f64(&mut self, v: f64) -> ExprId {
        self.push_expr(Expr::Const(Value::F64(v)))
    }

    /// Read a scalar argument.
    pub fn arg(&mut self, a: ArgId) -> ExprId {
        self.push_expr(Expr::Arg(a))
    }

    /// `omp_get_thread_num()`.
    pub fn thread_id(&mut self) -> ExprId {
        self.push_expr(Expr::ThreadId)
    }

    /// `omp_get_num_threads()`.
    pub fn num_threads_expr(&mut self) -> ExprId {
        self.push_expr(Expr::NumThreads)
    }

    /// Read a variable.
    pub fn get(&mut self, v: VarId) -> ExprId {
        self.push_expr(Expr::Var(v))
    }

    /// Binary operation.
    pub fn bin(&mut self, op: BinOp, a: ExprId, b: ExprId) -> ExprId {
        self.push_expr(Expr::Binary(op, a, b))
    }

    /// Unary operation.
    pub fn un(&mut self, op: UnOp, a: ExprId) -> ExprId {
        self.push_expr(Expr::Unary(op, a))
    }

    /// `a + b`.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Mul, a, b)
    }

    /// `a / b`.
    pub fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        self.bin(BinOp::Div, a, b)
    }

    /// Multiply-add convenience: `a*b + c`.
    pub fn mul_add(&mut self, a: ExprId, b: ExprId, c: ExprId) -> ExprId {
        let p = self.mul(a, b);
        self.add(p, c)
    }

    /// Ternary select.
    pub fn select(&mut self, cond: ExprId, then_v: ExprId, else_v: ExprId) -> ExprId {
        self.push_expr(Expr::Select {
            cond,
            then_v,
            else_v,
        })
    }

    /// Scalar cast.
    pub fn cast(&mut self, ty: ScalarType, a: ExprId) -> ExprId {
        self.push_expr(Expr::Cast(ty, a))
    }

    /// External load of `ty` from `buf[index]` (vector load when
    /// `ty.lanes > 1`).
    pub fn load(&mut self, buf: ArgId, index: ExprId, ty: Type) -> ExprId {
        self.push_expr(Expr::LoadExt { buf, index, ty })
    }

    /// Local BRAM load.
    pub fn load_local(&mut self, mem: LocalMemId, index: ExprId, ty: Type) -> ExprId {
        self.push_expr(Expr::LoadLocal { mem, index, ty })
    }

    /// Extract vector lane.
    pub fn lane(&mut self, v: ExprId, lane: u8) -> ExprId {
        self.push_expr(Expr::Lane(v, lane))
    }

    /// Broadcast scalar to vector.
    pub fn splat(&mut self, v: ExprId, lanes: u8) -> ExprId {
        self.push_expr(Expr::Splat(v, lanes))
    }

    // ----- statements -----------------------------------------------------

    fn push_stmt(&mut self, s: Stmt) {
        self.stack
            .last_mut()
            .expect("builder block stack is never empty")
            .push(s);
    }

    /// `var = expr`.
    pub fn set(&mut self, var: VarId, expr: ExprId) {
        self.push_stmt(Stmt::Assign { var, expr });
    }

    /// `buf[index] = value` (external store).
    pub fn store(&mut self, buf: ArgId, index: ExprId, value: ExprId) {
        self.push_stmt(Stmt::StoreExt { buf, index, value });
    }

    /// `mem[index] = value` (local BRAM store).
    pub fn store_local(&mut self, mem: LocalMemId, index: ExprId, value: ExprId) {
        self.push_stmt(Stmt::StoreLocal { mem, index, value });
    }

    /// Counted loop with explicit start/end/step expressions. The closure
    /// receives the builder and an expression reading the induction variable.
    pub fn for_each(
        &mut self,
        var_name: &str,
        start: ExprId,
        end: ExprId,
        step: ExprId,
        f: impl FnOnce(&mut Self, ExprId),
    ) {
        self.for_loop(var_name, start, end, step, Unroll::None, f)
    }

    /// Like [`Self::for_each`] but fully unrolled (`#pragma unroll`): the
    /// loop body is inlined into the surrounding dataflow graph by the HLS
    /// scheduler, so trip count must be compile-time constant.
    pub fn for_unrolled(
        &mut self,
        var_name: &str,
        start: ExprId,
        end: ExprId,
        step: ExprId,
        f: impl FnOnce(&mut Self, ExprId),
    ) {
        self.for_loop(var_name, start, end, step, Unroll::Full, f)
    }

    fn for_loop(
        &mut self,
        var_name: &str,
        start: ExprId,
        end: ExprId,
        step: ExprId,
        unroll: Unroll,
        f: impl FnOnce(&mut Self, ExprId),
    ) {
        let var = self.var(var_name, Type::I64);
        let iv = self.get(var);
        self.stack.push(Block::new());
        f(self, iv);
        let body = self.stack.pop().expect("matching block push");
        self.push_stmt(Stmt::For {
            var,
            start,
            end,
            step,
            body,
            unroll,
        });
    }

    /// Simple `for i in 0..n` loop over an i64 range with step 1.
    pub fn for_range(&mut self, var_name: &str, n: ExprId, f: impl FnOnce(&mut Self, ExprId)) {
        let zero = self.c_i64(0);
        let one = self.c_i64(1);
        self.for_each(var_name, zero, n, one, f)
    }

    /// Two-sided conditional.
    pub fn if_(
        &mut self,
        cond: ExprId,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Block::new());
        then_f(self);
        let then_b = self.stack.pop().expect("matching block push");
        self.stack.push(Block::new());
        else_f(self);
        let else_b = self.stack.pop().expect("matching block push");
        self.push_stmt(Stmt::If {
            cond,
            then_b,
            else_b,
        });
    }

    /// One-sided conditional.
    pub fn if_then(&mut self, cond: ExprId, then_f: impl FnOnce(&mut Self)) {
        self.if_(cond, then_f, |_| {});
    }

    /// `#pragma omp critical` region.
    pub fn critical(&mut self, f: impl FnOnce(&mut Self)) {
        self.stack.push(Block::new());
        f(self);
        let body = self.stack.pop().expect("matching block push");
        self.push_stmt(Stmt::Critical { body });
    }

    /// `#pragma omp barrier`.
    pub fn barrier(&mut self) {
        self.push_stmt(Stmt::Barrier);
    }

    /// Preloader burst external→local.
    pub fn preload(
        &mut self,
        mem: LocalMemId,
        src: ArgId,
        src_off: ExprId,
        dst_off: ExprId,
        len: ExprId,
    ) {
        self.push_stmt(Stmt::Preload {
            mem,
            src,
            src_off,
            dst_off,
            len,
        });
    }

    /// Preloader burst local→external.
    pub fn write_back(
        &mut self,
        mem: LocalMemId,
        dst: ArgId,
        dst_off: ExprId,
        src_off: ExprId,
        len: ExprId,
    ) {
        self.push_stmt(Stmt::WriteBack {
            mem,
            dst,
            dst_off,
            src_off,
            len,
        });
    }

    /// Inspect the kernel under construction (declarations and expressions
    /// are complete; the body is only final after [`Self::finish`]).
    pub fn kernel_in_progress(&self) -> &Kernel {
        &self.kernel
    }

    /// Finalise and validate the kernel.
    ///
    /// # Panics
    /// Panics if the kernel fails validation; use [`Self::try_finish`] for a
    /// `Result`.
    pub fn finish(self) -> Kernel {
        self.try_finish().expect("kernel failed validation")
    }

    /// Finalise, returning validation errors instead of panicking.
    pub fn try_finish(mut self) -> Result<Kernel, crate::validate::ValidationError> {
        assert_eq!(
            self.stack.len(),
            1,
            "unbalanced block stack: a loop/if/critical closure escaped"
        );
        self.kernel.body = self.stack.pop().unwrap();
        crate::validate::validate(&self.kernel)?;
        if let Some(check) = &self.strict_check {
            check(&self.kernel).map_err(crate::validate::ValidationError)?;
        }
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut kb = KernelBuilder::new("nest", 2);
        let v = kb.var("x", Type::I32);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, _i| {
            kb.critical(|kb| {
                let one = kb.c_i32(1);
                kb.set(v, one);
            });
        });
        let k = kb.finish();
        assert_eq!(k.body.len(), 1);
        match &k.body[0] {
            Stmt::For { body, .. } => match &body[0] {
                Stmt::Critical { body } => assert!(matches!(body[0], Stmt::Assign { .. })),
                other => panic!("expected critical, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn if_builds_both_branches() {
        let mut kb = KernelBuilder::new("cond", 1);
        let v = kb.var("x", Type::I32);
        let c = kb.c_i32(1);
        let one = kb.c_i32(1);
        let two = kb.c_i32(2);
        kb.if_(c, |kb| kb.set(v, one), |kb| kb.set(v, two));
        let k = kb.finish();
        match &k.body[0] {
            Stmt::If { then_b, else_b, .. } => {
                assert_eq!(then_b.len(), 1);
                assert_eq!(else_b.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = KernelBuilder::new("bad", 0);
    }

    #[test]
    fn strict_check_runs_after_validation() {
        let mut kb = KernelBuilder::new("strict", 1);
        kb.set_strict_check(Box::new(|k: &Kernel| {
            if k.body.is_empty() {
                Err("strict mode: empty kernel".to_string())
            } else {
                Ok(())
            }
        }));
        let err = kb.try_finish().expect_err("strict check rejects");
        assert!(err.0.contains("strict mode"), "{err:?}");

        let mut kb = KernelBuilder::new("strict", 1);
        kb.set_strict_check(Box::new(|_| Ok(())));
        let v = kb.var("x", Type::I32);
        let one = kb.c_i32(1);
        kb.set(v, one);
        assert!(kb.try_finish().is_ok());
    }
}
