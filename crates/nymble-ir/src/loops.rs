//! Stable loop identities.
//!
//! The HLS scheduler produces one pipeline schedule per (non-unrolled) loop;
//! the timed executor must charge each dynamic iteration reported by the
//! walker against the right schedule. Both sides therefore need an agreed
//! naming of loops: [`LoopMap`] assigns each `Stmt::For` in a kernel a
//! [`LoopId`] by pre-order traversal.
//!
//! Identity is keyed on the statement's address inside the kernel's (heap
//! allocated, hence stable) block vectors, so a `LoopMap` is valid only for
//! the exact [`Kernel`] value it was built from — not for clones.

use crate::kernel::Kernel;
use crate::stmt::{Block, Stmt, Unroll};
use std::collections::HashMap;

/// Index of a loop in pre-order over the kernel body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// Static facts about one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopInfo {
    /// Loop nesting depth (0 = outermost in the kernel body).
    pub depth: u32,
    /// `#pragma unroll` — inlined into the parent dataflow graph.
    pub unrolled: bool,
    /// Whether the loop body (transitively) contains external memory
    /// accesses, i.e. variable-latency operations.
    pub has_vlo: bool,
    /// Whether the loop contains an inner (non-unrolled) loop.
    pub has_inner_loop: bool,
    /// Source-level name of the induction variable, for diagnostics.
    pub var_name: String,
}

/// Pre-order loop numbering for one kernel instance.
pub struct LoopMap {
    ids: HashMap<usize, LoopId>,
    infos: Vec<LoopInfo>,
}

impl LoopMap {
    /// Build the map for `k`.
    pub fn build(k: &Kernel) -> Self {
        let mut m = LoopMap {
            ids: HashMap::new(),
            infos: Vec::new(),
        };
        visit(k, &k.body, 0, &mut m);
        m
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True when the kernel has no loops.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Id of a `For` statement belonging to the mapped kernel.
    ///
    /// # Panics
    /// Panics if `s` is not a `For` of the kernel this map was built from.
    pub fn id_of(&self, s: &Stmt) -> LoopId {
        *self
            .ids
            .get(&(s as *const Stmt as usize))
            .expect("statement is not a registered loop of this kernel")
    }

    /// Static info for a loop.
    pub fn info(&self, id: LoopId) -> &LoopInfo {
        &self.infos[id.0 as usize]
    }

    /// Iterate `(LoopId, &LoopInfo)` in pre-order.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &LoopInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (LoopId(i as u32), info))
    }
}

fn block_has_vlo(k: &Kernel, b: &Block) -> bool {
    fn expr_has_vlo(k: &Kernel, id: crate::expr::ExprId) -> bool {
        let e = k.expr(id);
        e.is_vlo() || e.children().into_iter().any(|c| expr_has_vlo(k, c))
    }
    b.iter().any(|s| match s {
        Stmt::Assign { expr, .. } => expr_has_vlo(k, *expr),
        Stmt::StoreExt { .. } | Stmt::Preload { .. } | Stmt::WriteBack { .. } => true,
        Stmt::StoreLocal { index, value, .. } => expr_has_vlo(k, *index) || expr_has_vlo(k, *value),
        Stmt::For { body, .. } | Stmt::Critical { body } => block_has_vlo(k, body),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => expr_has_vlo(k, *cond) || block_has_vlo(k, then_b) || block_has_vlo(k, else_b),
        Stmt::Barrier => false,
    })
}

fn block_has_loop(b: &Block) -> bool {
    b.iter().any(|s| match s {
        Stmt::For { unroll, .. } => *unroll == Unroll::None,
        Stmt::Critical { body } => block_has_loop(body),
        Stmt::If { then_b, else_b, .. } => block_has_loop(then_b) || block_has_loop(else_b),
        _ => false,
    })
}

fn visit(k: &Kernel, b: &Block, depth: u32, m: &mut LoopMap) {
    for s in b {
        match s {
            Stmt::For {
                var, body, unroll, ..
            } => {
                let id = LoopId(m.infos.len() as u32);
                m.ids.insert(s as *const Stmt as usize, id);
                m.infos.push(LoopInfo {
                    depth,
                    unrolled: *unroll == Unroll::Full,
                    has_vlo: block_has_vlo(k, body),
                    has_inner_loop: block_has_loop(body),
                    var_name: k.var(*var).name.clone(),
                });
                visit(k, body, depth + 1, m);
            }
            Stmt::Critical { body } => visit(k, body, depth, m),
            Stmt::If { then_b, else_b, .. } => {
                visit(k, then_b, depth, m);
                visit(k, else_b, depth, m);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::ScalarType;
    use crate::{MapDir, Type};

    #[test]
    fn preorder_numbering_and_flags() {
        let mut kb = KernelBuilder::new("t", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, _i| {
            let n2 = kb.c_i64(4);
            kb.for_range("j", n2, |kb, j| {
                let v = kb.load(a, j, Type::F32);
                let x = kb.var("x", Type::F32);
                kb.set(x, v);
            });
        });
        let n3 = kb.c_i64(2);
        kb.for_range("k", n3, |_, _| {});
        let k = kb.finish();
        let m = LoopMap::build(&k);
        assert_eq!(m.len(), 3);
        let infos: Vec<_> = m.iter().map(|(_, i)| i.clone()).collect();
        assert_eq!(infos[0].var_name, "i");
        assert_eq!(infos[0].depth, 0);
        assert!(infos[0].has_vlo, "outer sees inner's external load");
        assert!(infos[0].has_inner_loop);
        assert_eq!(infos[1].var_name, "j");
        assert_eq!(infos[1].depth, 1);
        assert!(infos[1].has_vlo);
        assert!(!infos[1].has_inner_loop);
        assert_eq!(infos[2].var_name, "k");
        assert!(!infos[2].has_vlo);
    }

    #[test]
    fn id_of_matches_statement_identity() {
        let mut kb = KernelBuilder::new("t", 1);
        let n = kb.c_i64(1);
        kb.for_range("i", n, |_, _| {});
        let k = kb.finish();
        let m = LoopMap::build(&k);
        let s = &k.body[0];
        assert_eq!(m.id_of(s), LoopId(0));
    }
}
