//! Pseudo-C pretty-printer for kernels.
//!
//! Renders a kernel roughly in the style of the paper's listings
//! (Figs. 3–5, 10): OpenMP pragma header, C-like statements, `#pragma omp
//! critical` blocks. Useful for debugging builder-constructed kernels and
//! for documentation — the output is *not* meant to be compilable C.

use crate::expr::{BinOp, Expr, ExprId, UnOp};
use crate::kernel::{ArgKind, Kernel, MapDir};
use crate::stmt::{Block, Stmt, Unroll};
use std::fmt::Write as _;

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
    }
}

fn expr_str(k: &Kernel, id: ExprId) -> String {
    match k.expr(id) {
        Expr::Const(v) => match v {
            crate::Value::I32(x) => format!("{x}"),
            crate::Value::I64(x) => format!("{x}L"),
            crate::Value::F32(x) => format!("{x:?}f"),
            crate::Value::F64(x) => format!("{x:?}"),
            crate::Value::Vec(l) => format!("{{..{} lanes..}}", l.len()),
        },
        Expr::Arg(a) => k.arg(*a).name.clone(),
        Expr::ThreadId => "omp_get_thread_num()".to_string(),
        Expr::NumThreads => "omp_get_num_threads()".to_string(),
        Expr::Var(v) => k.var(*v).name.clone(),
        Expr::Unary(op, a) => {
            let a = expr_str(k, *a);
            match op {
                UnOp::Neg => format!("-({a})"),
                UnOp::Not => format!("~({a})"),
                UnOp::Abs => format!("abs({a})"),
                UnOp::Sqrt => format!("sqrt({a})"),
            }
        }
        Expr::Binary(op, a, b) => {
            let (sa, sb) = (expr_str(k, *a), expr_str(k, *b));
            match op {
                BinOp::Min | BinOp::Max => format!("{}({sa}, {sb})", binop_str(*op)),
                _ => format!("({sa} {} {sb})", binop_str(*op)),
            }
        }
        Expr::Select {
            cond,
            then_v,
            else_v,
        } => format!(
            "({} ? {} : {})",
            expr_str(k, *cond),
            expr_str(k, *then_v),
            expr_str(k, *else_v)
        ),
        Expr::Cast(ty, a) => format!("({ty:?})({})", expr_str(k, *a)),
        Expr::LoadExt { buf, index, ty } => {
            if ty.lanes > 1 {
                format!(
                    "*((VECTOR{}*)&{}[{}])",
                    ty.lanes,
                    k.arg(*buf).name,
                    expr_str(k, *index)
                )
            } else {
                format!("{}[{}]", k.arg(*buf).name, expr_str(k, *index))
            }
        }
        Expr::LoadLocal { mem, index, .. } => {
            format!("{}[{}]", k.local_mem(*mem).name, expr_str(k, *index))
        }
        Expr::Lane(a, l) => format!("{}[{l}]", expr_str(k, *a)),
        Expr::Splat(a, l) => format!("splat{l}({})", expr_str(k, *a)),
    }
}

fn block(k: &Kernel, b: &Block, out: &mut String, ind: usize, lines: &mut Vec<u32>) {
    let pad = "  ".repeat(ind);
    for s in b {
        // Record the first listing line this statement emits, in pre-order —
        // the same statement order analyzers walk, so `stmt_lines[i]` is the
        // span of the i-th visited statement.
        lines.push(out.bytes().filter(|&c| c == b'\n').count() as u32 + 1);
        match s {
            Stmt::Assign { var, expr } => {
                let _ = writeln!(out, "{pad}{} = {};", k.var(*var).name, expr_str(k, *expr));
            }
            Stmt::StoreExt { buf, index, value } => {
                let _ = writeln!(
                    out,
                    "{pad}{}[{}] = {};",
                    k.arg(*buf).name,
                    expr_str(k, *index),
                    expr_str(k, *value)
                );
            }
            Stmt::StoreLocal { mem, index, value } => {
                let _ = writeln!(
                    out,
                    "{pad}{}[{}] = {};",
                    k.local_mem(*mem).name,
                    expr_str(k, *index),
                    expr_str(k, *value)
                );
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
                unroll,
            } => {
                if *unroll == Unroll::Full {
                    let _ = writeln!(out, "{pad}#pragma unroll");
                }
                let v = &k.var(*var).name;
                let _ = writeln!(
                    out,
                    "{pad}for ({v} = {}; {v} < {}; {v} += {}) {{",
                    expr_str(k, *start),
                    expr_str(k, *end),
                    expr_str(k, *step)
                );
                block(k, body, out, ind + 1, lines);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let _ = writeln!(out, "{pad}if ({}) {{", expr_str(k, *cond));
                block(k, then_b, out, ind + 1, lines);
                if !else_b.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    block(k, else_b, out, ind + 1, lines);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Critical { body } => {
                let _ = writeln!(out, "{pad}#pragma omp critical\n{pad}{{");
                block(k, body, out, ind + 1, lines);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Barrier => {
                let _ = writeln!(out, "{pad}#pragma omp barrier");
            }
            Stmt::Preload {
                mem,
                src,
                src_off,
                dst_off,
                len,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}preload({} + {}, {} + {}, {});",
                    k.local_mem(*mem).name,
                    expr_str(k, *dst_off),
                    k.arg(*src).name,
                    expr_str(k, *src_off),
                    expr_str(k, *len)
                );
            }
            Stmt::WriteBack {
                mem,
                dst,
                dst_off,
                src_off,
                len,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}writeback({} + {}, {} + {}, {});",
                    k.arg(*dst).name,
                    expr_str(k, *dst_off),
                    k.local_mem(*mem).name,
                    expr_str(k, *src_off),
                    expr_str(k, *len)
                );
            }
        }
    }
}

/// A rendered pseudo-C listing plus statement spans.
///
/// `stmt_lines[i]` is the 1-based line of the *i*-th statement in pre-order
/// (statement first, then its child blocks in declaration order — `for`
/// body, `if` then/else, `critical` body). Analyzers that walk the kernel
/// in the same pre-order can turn a statement counter into a source span.
#[derive(Clone, Debug)]
pub struct Listing {
    /// The pseudo-C text (same as [`to_pseudo_c`]).
    pub text: String,
    /// 1-based first line of each statement, in pre-order.
    pub stmt_lines: Vec<u32>,
}

/// Render the kernel as a pseudo-C listing.
pub fn to_pseudo_c(k: &Kernel) -> String {
    listing(k).text
}

/// Render the kernel and record per-statement line spans.
pub fn listing(k: &Kernel) -> Listing {
    let mut out = String::new();
    let mut stmt_lines = Vec::new();
    // Signature with map clauses, in the style of the paper's listings.
    let mut maps: Vec<String> = Vec::new();
    let mut params: Vec<String> = Vec::new();
    for arg in &k.args {
        match arg.kind {
            ArgKind::Scalar(t) => params.push(format!("{t:?} {}", arg.name)),
            ArgKind::Buffer { elem, map } => {
                params.push(format!("{elem:?}* {}", arg.name));
                let dir = match map {
                    MapDir::To => "to",
                    MapDir::From => "from",
                    MapDir::ToFrom => "tofrom",
                    MapDir::Alloc => "alloc",
                };
                maps.push(format!("map({dir}: {})", arg.name));
            }
        }
    }
    let _ = writeln!(out, "void {}({}) {{", k.name, params.join(", "));
    let _ = writeln!(
        out,
        "  #pragma omp target parallel {} num_threads({})",
        maps.join(" "),
        k.num_threads
    );
    let _ = writeln!(out, "  {{");
    // Declarations.
    for m in &k.local_mems {
        let _ = writeln!(
            out,
            "    {:?} {}[{}]; // local (BRAM), {} lane(s)",
            m.elem.scalar, m.name, m.len, m.elem.lanes
        );
    }
    block(k, &k.body, &mut out, 2, &mut stmt_lines);
    let _ = writeln!(out, "  }}\n}}");
    Listing {
        text: out,
        stmt_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{ScalarType, Type};

    #[test]
    fn renders_paperlike_listing() {
        let mut kb = KernelBuilder::new("matmul", 8);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let c = kb.buffer("C", ScalarType::F32, MapDir::From);
        let sum = kb.var("sum", Type::F32);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            let cur = kb.get(sum);
            let s = kb.add(cur, v);
            kb.set(sum, s);
            kb.critical(|kb| {
                let sv = kb.get(sum);
                kb.store(c, i, sv);
            });
        });
        let k = kb.finish();
        let c_src = to_pseudo_c(&k);
        assert!(c_src.contains("#pragma omp target parallel"));
        assert!(c_src.contains("map(to: A)"));
        assert!(c_src.contains("map(from: C)"));
        assert!(c_src.contains("num_threads(8)"));
        assert!(c_src.contains("#pragma omp critical"));
        assert!(c_src.contains("sum = (sum + A[i]);"));
        assert!(c_src.contains("for (i = 0L; i < 4L; i += 1L)"));
    }

    #[test]
    fn vector_loads_render_as_casts() {
        let mut kb = KernelBuilder::new("v", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let x = kb.var("x", Type::vector(ScalarType::F32, 4));
        let i = kb.c_i64(0);
        let v = kb.load(a, i, Type::vector(ScalarType::F32, 4));
        kb.set(x, v);
        let k = kb.finish();
        let s = to_pseudo_c(&k);
        assert!(s.contains("*((VECTOR4*)&A[0L])"), "{s}");
    }

    #[test]
    fn listing_spans_map_preorder_statements_to_lines() {
        let mut kb = KernelBuilder::new("spans", 2);
        let a = kb.buffer("A", ScalarType::F32, MapDir::ToFrom);
        let n = kb.c_i64(4);
        // Pre-order: [0] for, [1] store, [2] critical, [3] store, [4] barrier.
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            kb.store(a, i, v);
            kb.critical(|kb| {
                let w = kb.load(a, i, Type::F32);
                kb.store(a, i, w);
            });
        });
        kb.barrier();
        let k = kb.finish();
        let l = listing(&k);
        assert_eq!(l.text, to_pseudo_c(&k));
        assert_eq!(l.stmt_lines.len(), 5);
        let line = |i: usize| {
            l.text
                .lines()
                .nth(l.stmt_lines[i] as usize - 1)
                .unwrap()
                .trim()
                .to_string()
        };
        assert!(line(0).starts_with("for ("), "{}", line(0));
        assert!(line(1).starts_with("A[i] = "), "{}", line(1));
        assert_eq!(line(2), "#pragma omp critical");
        assert!(line(3).starts_with("A[i] = "), "{}", line(3));
        assert_eq!(line(4), "#pragma omp barrier");
        // Spans strictly increase: pre-order matches listing order.
        assert!(l.stmt_lines.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unrolled_loops_get_pragma() {
        let mut kb = KernelBuilder::new("u", 1);
        let x = kb.var("x", Type::I64);
        let z = kb.c_i64(0);
        let four = kb.c_i64(4);
        let one = kb.c_i64(1);
        kb.for_unrolled("v", z, four, one, |kb, v| kb.set(x, v));
        let k = kb.finish();
        let s = to_pseudo_c(&k);
        assert!(s.contains("#pragma unroll"));
    }
}
