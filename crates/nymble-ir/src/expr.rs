//! Expression arena.
//!
//! Expressions are stored in a per-kernel arena ([`crate::Kernel::exprs`]) and
//! referenced by [`ExprId`]. The arena form is what the HLS scheduler lowers
//! into dataflow-graph nodes: every `Binary`/`Unary`/`LoadExt`/… node becomes
//! a datapath operator with a latency and a resource class.

use crate::kernel::{ArgId, LocalMemId, VarId};
use crate::types::{ScalarType, Type, Value};

/// Index of an expression in the kernel's expression arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Binary operators. Integer and floating-point flavours are distinguished by
/// the operand type, not the opcode (as in LLVM IR before instruction
/// selection); the scheduler assigns latencies accordingly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Comparison operators produce an `I32` boolean regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    Abs,
    Sqrt,
}

/// One node in the expression arena.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Compile-time constant.
    Const(Value),
    /// Read of a scalar kernel argument (bound at launch, e.g. `DIM`).
    Arg(ArgId),
    /// `omp_get_thread_num()` — hardware thread id, hardwired per context.
    ThreadId,
    /// `omp_get_num_threads()` — the accelerator's hardware thread count.
    NumThreads,
    /// Read of a thread-local variable (loop induction variable, accumulator…).
    Var(VarId),
    /// Unary operation.
    Unary(UnOp, ExprId),
    /// Binary operation. Lane-wise for vectors.
    Binary(BinOp, ExprId, ExprId),
    /// `cond ? a : b`, lowered to a datapath multiplexer.
    Select {
        cond: ExprId,
        then_v: ExprId,
        else_v: ExprId,
    },
    /// Scalar type conversion.
    Cast(ScalarType, ExprId),
    /// Load of `ty` from an external (DRAM) buffer argument at an element
    /// index; with `ty.lanes > 1` this is the paper's vectorized 128-bit
    /// access (`*((VECTOR*)&A[...])`). A variable-latency operation.
    LoadExt { buf: ArgId, index: ExprId, ty: Type },
    /// Load from an on-chip local memory (BRAM); fixed low latency.
    LoadLocal {
        mem: LocalMemId,
        index: ExprId,
        ty: Type,
    },
    /// Extract lane `lane` of a vector expression.
    Lane(ExprId, u8),
    /// Broadcast a scalar into a `lanes`-wide vector.
    Splat(ExprId, u8),
}

impl Expr {
    /// Children of this node, for generic traversal.
    pub fn children(&self) -> Vec<ExprId> {
        match self {
            Expr::Const(_) | Expr::Arg(_) | Expr::ThreadId | Expr::NumThreads | Expr::Var(_) => {
                Vec::new()
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::Lane(a, _) | Expr::Splat(a, _) => {
                vec![*a]
            }
            Expr::Binary(_, a, b) => vec![*a, *b],
            Expr::Select {
                cond,
                then_v,
                else_v,
            } => vec![*cond, *then_v, *else_v],
            Expr::LoadExt { index, .. } | Expr::LoadLocal { index, .. } => vec![*index],
        }
    }

    /// True for operations whose delay cannot be statically bounded
    /// (variable-latency operations, §III-B): external memory accesses.
    pub fn is_vlo(&self) -> bool {
        matches!(self, Expr::LoadExt { .. })
    }
}

/// Evaluate a binary operation on two scalar values. Comparison results are
/// `I32` 0/1; arithmetic follows the operand scalar type.
pub fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Value {
    // Lane-wise vector handling first.
    if let (Value::Vec(va), Value::Vec(vb)) = (a, b) {
        assert_eq!(va.len(), vb.len(), "vector width mismatch in {op:?}");
        let lanes: Vec<Value> = va
            .iter()
            .zip(vb.iter())
            .map(|(x, y)| eval_binop(op, x, y))
            .collect();
        return Value::Vec(lanes.into_boxed_slice());
    }
    let ty = a.ty().scalar;
    if op.is_comparison() {
        let r = if ty.is_float() {
            let (x, y) = (a.as_f64(), b.as_f64());
            match op {
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                _ => unreachable!(),
            }
        } else {
            let (x, y) = (a.as_i64(), b.as_i64());
            match op {
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                _ => unreachable!(),
            }
        };
        return Value::I32(r as i32);
    }
    if ty.is_float() {
        // f32 math is performed in f32 to reproduce the paper's
        // single-precision behaviour (including the π-study instability).
        if ty == ScalarType::F32 {
            let (x, y) = (
                match a {
                    Value::F32(v) => *v,
                    _ => a.as_f64() as f32,
                },
                match b {
                    Value::F32(v) => *v,
                    _ => b.as_f64() as f32,
                },
            );
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => panic!("bitwise op {op:?} on float"),
            };
            Value::F32(r)
        } else {
            let (x, y) = (a.as_f64(), b.as_f64());
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => panic!("bitwise op {op:?} on float"),
            };
            Value::F64(r)
        }
    } else {
        let (x, y) = (a.as_i64(), b.as_i64());
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            _ => unreachable!(),
        };
        Value::from_i64(ty, r)
    }
}

/// Evaluate a unary operation.
pub fn eval_unop(op: UnOp, a: &Value) -> Value {
    if let Value::Vec(va) = a {
        let lanes: Vec<Value> = va.iter().map(|x| eval_unop(op, x)).collect();
        return Value::Vec(lanes.into_boxed_slice());
    }
    let ty = a.ty().scalar;
    if ty.is_float() {
        let x = a.as_f64();
        let r = match op {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
            UnOp::Not => panic!("bitwise not on float"),
        };
        if ty == ScalarType::F32 {
            Value::F32(r as f32)
        } else {
            Value::F64(r)
        }
    } else {
        let x = a.as_i64();
        let r = match op {
            UnOp::Neg => x.wrapping_neg(),
            UnOp::Abs => x.abs(),
            UnOp::Not => !x,
            UnOp::Sqrt => (x as f64).sqrt() as i64,
        };
        Value::from_i64(ty, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Add, &Value::I32(2), &Value::I32(3)),
            Value::I32(5)
        );
        assert_eq!(
            eval_binop(BinOp::Mul, &Value::I64(-4), &Value::I64(4)),
            Value::I64(-16)
        );
        // Division by zero is defined as 0 (hardware divider quiet output).
        assert_eq!(
            eval_binop(BinOp::Div, &Value::I32(1), &Value::I32(0)),
            Value::I32(0)
        );
    }

    #[test]
    fn float_arithmetic_stays_f32() {
        let r = eval_binop(BinOp::Div, &Value::F32(4.0), &Value::F32(1.0 + 0.5));
        assert_eq!(r, Value::F32(4.0 / 1.5f32));
    }

    #[test]
    fn comparisons_yield_i32() {
        assert_eq!(
            eval_binop(BinOp::Lt, &Value::F32(1.0), &Value::F32(2.0)),
            Value::I32(1)
        );
        assert_eq!(
            eval_binop(BinOp::Ge, &Value::I32(1), &Value::I32(2)),
            Value::I32(0)
        );
    }

    #[test]
    fn vector_lanewise() {
        let a = Value::Vec(vec![Value::F32(1.0), Value::F32(2.0)].into_boxed_slice());
        let b = Value::Vec(vec![Value::F32(10.0), Value::F32(20.0)].into_boxed_slice());
        let r = eval_binop(BinOp::Add, &a, &b);
        assert_eq!(r.lane(0), &Value::F32(11.0));
        assert_eq!(r.lane(1), &Value::F32(22.0));
    }

    #[test]
    fn unops() {
        assert_eq!(eval_unop(UnOp::Neg, &Value::I32(5)), Value::I32(-5));
        assert_eq!(eval_unop(UnOp::Sqrt, &Value::F64(9.0)), Value::F64(3.0));
        assert_eq!(eval_unop(UnOp::Not, &Value::I32(0)), Value::I32(-1));
    }

    #[test]
    fn vlo_classification() {
        let load = Expr::LoadExt {
            buf: ArgId(0),
            index: ExprId(0),
            ty: Type::F32,
        };
        assert!(load.is_vlo());
        let ll = Expr::LoadLocal {
            mem: LocalMemId(0),
            index: ExprId(0),
            ty: Type::F32,
        };
        assert!(!ll.is_vlo());
    }
}
