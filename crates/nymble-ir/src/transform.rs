//! IR transformations: constant folding and dead-assignment elimination.
//!
//! Nymble's C frontend (Clang-based) hands the HLS middle end already-folded
//! IR; kernels built programmatically through [`crate::KernelBuilder`] often
//! contain foldable address arithmetic (`(0 * DIM) + j`, `i + 0`, …) that
//! would each become a datapath operator. This pass cleans them up before
//! scheduling, shrinking both the schedule and the area estimate. Semantics
//! preservation is property-tested against the interpreter.

use crate::expr::{eval_binop, eval_unop, BinOp, Expr, ExprId};
use crate::kernel::Kernel;
use crate::stmt::{Block, Stmt};
use crate::types::Value;

/// Statistics of one optimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Expression nodes replaced by constants.
    pub folded: usize,
    /// Algebraic identities simplified (`x+0`, `x*1`, `x*0`, …).
    pub identities: usize,
}

fn const_of(k: &Kernel, id: ExprId) -> Option<&Value> {
    match k.expr(id) {
        Expr::Const(v) => Some(v),
        _ => None,
    }
}

fn is_const_zero(k: &Kernel, id: ExprId) -> bool {
    const_of(k, id).map(|v| match v {
        Value::I32(0) | Value::I64(0) => true,
        Value::F32(x) => *x == 0.0,
        Value::F64(x) => *x == 0.0,
        _ => false,
    }) == Some(true)
}

fn is_const_one(k: &Kernel, id: ExprId) -> bool {
    const_of(k, id).map(|v| match v {
        Value::I32(1) | Value::I64(1) => true,
        Value::F32(x) => *x == 1.0,
        Value::F64(x) => *x == 1.0,
        _ => false,
    }) == Some(true)
}

/// Fold constants and algebraic identities in place. Returns statistics.
///
/// Folding is conservative: only pure scalar operators with fully-constant
/// operands fold; float folding follows the interpreter's own `eval_binop`
/// (bit-identical results by construction). Integer `x*0 → 0` is applied;
/// the float variant is **not** (it would change NaN/−0 behaviour).
pub fn fold_constants(k: &mut Kernel) -> FoldStats {
    let mut stats = FoldStats::default();
    // Iterate to fixpoint: folding a node can expose its user.
    loop {
        let mut changed = false;
        for i in 0..k.exprs.len() {
            let id = ExprId(i as u32);
            let replacement: Option<(Value, bool)> = match k.expr(id).clone() {
                Expr::Binary(op, a, b) => {
                    if let (Some(va), Some(vb)) = (const_of(k, a), const_of(k, b)) {
                        // Division by a constant zero stays a runtime op
                        // (the hardware divider defines it; don't hide it).
                        let div_by_zero =
                            matches!(op, BinOp::Div | BinOp::Rem) && is_const_zero(k, b);
                        if div_by_zero {
                            None
                        } else {
                            Some((eval_binop(op, va, vb), false))
                        }
                    } else {
                        None
                    }
                }
                Expr::Unary(op, a) => const_of(k, a).map(|va| (eval_unop(op, va), false)),
                _ => None,
            };
            if let Some((v, _)) = replacement {
                k.exprs[i] = Expr::Const(v);
                stats.folded += 1;
                changed = true;
                continue;
            }
            // Algebraic identities: rewrite the node to an alias of one
            // operand. We encode the alias as `Binary(Add, x, 0)` → replace
            // by a copy of the operand's node when that operand is itself a
            // leaf (keeps the arena's acyclicity trivially intact).
            if let Expr::Binary(op, a, b) = *k.expr(id) {
                let alias = match op {
                    BinOp::Add | BinOp::Sub if is_const_zero(k, b) => Some(a),
                    BinOp::Add if is_const_zero(k, a) => Some(b),
                    BinOp::Mul if is_const_one(k, b) => Some(a),
                    BinOp::Mul if is_const_one(k, a) => Some(b),
                    BinOp::Div if is_const_one(k, b) => Some(a),
                    BinOp::Shl | BinOp::Shr if is_const_zero(k, b) => Some(a),
                    _ => None,
                };
                if let Some(src) = alias {
                    let leaf = matches!(
                        k.expr(src),
                        Expr::Const(_)
                            | Expr::Arg(_)
                            | Expr::Var(_)
                            | Expr::ThreadId
                            | Expr::NumThreads
                    );
                    if leaf {
                        k.exprs[i] = k.expr(src).clone();
                        stats.identities += 1;
                        changed = true;
                        continue;
                    }
                }
                // Integer x * 0 → 0 (either side).
                if op == BinOp::Mul {
                    let int_zero = |e: ExprId| {
                        is_const_zero(k, e)
                            && const_of(k, e).map(|v| matches!(v, Value::I32(_) | Value::I64(_)))
                                == Some(true)
                    };
                    if int_zero(a) || int_zero(b) {
                        let zty = if int_zero(a) { a } else { b };
                        let z = const_of(k, zty).unwrap().clone();
                        k.exprs[i] = Expr::Const(z);
                        stats.identities += 1;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return stats;
        }
    }
}

/// Remove assignments to variables that are never read anywhere in the
/// kernel (conservative: any `Expr::Var(v)` in the arena counts as a read,
/// loop induction variables are always kept). Returns removed count.
pub fn eliminate_dead_assigns(k: &mut Kernel) -> usize {
    let mut read = vec![false; k.vars.len()];
    for e in &k.exprs {
        if let Expr::Var(v) = e {
            read[v.0 as usize] = true;
        }
    }
    // Induction variables are structural.
    fn mark_loop_vars(b: &Block, read: &mut [bool]) {
        for s in b {
            match s {
                Stmt::For { var, body, .. } => {
                    read[var.0 as usize] = true;
                    mark_loop_vars(body, read);
                }
                Stmt::Critical { body } => mark_loop_vars(body, read),
                Stmt::If { then_b, else_b, .. } => {
                    mark_loop_vars(then_b, read);
                    mark_loop_vars(else_b, read);
                }
                _ => {}
            }
        }
    }
    let mut read2 = read.clone();
    mark_loop_vars(&k.body, &mut read2);

    fn sweep(b: &mut Block, read: &[bool], removed: &mut usize) {
        b.retain_mut(|s| match s {
            Stmt::Assign { var, .. } => {
                if read[var.0 as usize] {
                    true
                } else {
                    *removed += 1;
                    false
                }
            }
            Stmt::For { body, .. } | Stmt::Critical { body } => {
                sweep(body, read, removed);
                true
            }
            Stmt::If { then_b, else_b, .. } => {
                sweep(then_b, read, removed);
                sweep(else_b, read, removed);
                true
            }
            _ => true,
        });
    }
    let mut removed = 0;
    let mut body = std::mem::take(&mut k.body);
    sweep(&mut body, &read2, &mut removed);
    k.body = body;
    removed
}

/// Run the full pass pipeline.
pub fn optimize(k: &mut Kernel) -> (FoldStats, usize) {
    let fs = fold_constants(k);
    let dead = eliminate_dead_assigns(k);
    (fs, dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::{Interpreter, LaunchArg};
    use crate::types::{ScalarType, Type};
    use crate::MapDir;

    #[test]
    fn folds_constant_arithmetic() {
        let mut kb = KernelBuilder::new("f", 1);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let a = kb.c_i64(6);
        let b = kb.c_i64(7);
        let p = kb.mul(a, b);
        let z = kb.c_i64(0);
        kb.store(out, z, p);
        let mut k = kb.finish();
        let s = fold_constants(&mut k);
        assert_eq!(s.folded, 1);
        assert!(matches!(k.expr(p), Expr::Const(Value::I64(42))));
        let r = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I64(0)])]);
        assert_eq!(r.buffers[0][0].as_i64(), 42);
    }

    #[test]
    fn identities_simplify() {
        let mut kb = KernelBuilder::new("i", 1);
        let n_arg = kb.scalar_arg("N", ScalarType::I64);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let n = kb.arg(n_arg);
        let zero = kb.c_i64(0);
        let one = kb.c_i64(1);
        let x1 = kb.add(n, zero); // n + 0 → n
        let x2 = kb.mul(x1, one); // (n) * 1 → n
        let z = kb.c_i64(0);
        kb.store(out, z, x2);
        let mut k = kb.finish();
        let s = fold_constants(&mut k);
        assert!(s.identities >= 2, "{s:?}");
        assert!(matches!(k.expr(x2), Expr::Arg(_)));
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Scalar(Value::I64(9)),
                LaunchArg::Buffer(vec![Value::I64(0)]),
            ],
        );
        assert_eq!(r.buffers[1][0].as_i64(), 9);
    }

    #[test]
    fn int_mul_by_zero_folds_but_not_float() {
        let mut kb = KernelBuilder::new("z", 1);
        let n_arg = kb.scalar_arg("N", ScalarType::I64);
        let f_arg = kb.scalar_arg("F", ScalarType::F32);
        let n = kb.arg(n_arg);
        let zero = kb.c_i64(0);
        let iz = kb.mul(n, zero); // folds to 0
        let f = kb.arg(f_arg);
        let fz = kb.c_f32(0.0);
        let fm = kb.mul(f, fz); // must NOT fold (NaN semantics)
        let vi = kb.var("vi", Type::I64);
        let vf = kb.var("vf", Type::F32);
        kb.set(vi, iz);
        kb.set(vf, fm);
        // Keep both alive through reads.
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let rvi = kb.get(vi);
        let z2 = kb.c_i64(0);
        kb.store(out, z2, rvi);
        let mut k = kb.finish();
        let _ = fold_constants(&mut k);
        assert!(matches!(k.expr(iz), Expr::Const(Value::I64(0))));
        assert!(matches!(k.expr(fm), Expr::Binary(..)), "float ×0 kept");
    }

    #[test]
    fn division_by_constant_zero_is_kept() {
        let mut kb = KernelBuilder::new("d", 1);
        let n_arg = kb.scalar_arg("N", ScalarType::I64);
        let n = kb.arg(n_arg);
        let z = kb.c_i64(0);
        let d = kb.div(n, z);
        let v = kb.var("v", Type::I64);
        kb.set(v, d);
        let mut k = kb.finish();
        let _ = fold_constants(&mut k);
        assert!(matches!(k.expr(d), Expr::Binary(..)));
    }

    #[test]
    fn dead_assigns_removed_but_loop_vars_kept() {
        let mut kb = KernelBuilder::new("dead", 1);
        let unused = kb.var("unused", Type::F32);
        let live = kb.var("live", Type::I64);
        let c = kb.c_f32(1.0);
        kb.set(unused, c); // dead
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, i| {
            let cur = kb.get(live);
            let s = kb.add(cur, i);
            kb.set(live, s);
        });
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let lv = kb.get(live);
        let z = kb.c_i64(0);
        kb.store(out, z, lv);
        let mut k = kb.finish();
        let removed = eliminate_dead_assigns(&mut k);
        assert_eq!(removed, 1);
        let r = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I64(0)])]);
        assert_eq!(r.buffers[0][0].as_i64(), 1 + 2 + 3);
        let _ = unused;
    }
}
