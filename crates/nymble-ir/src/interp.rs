//! Untimed gold-model interpreter.
//!
//! Drives one [`Walker`] per hardware thread with a deterministic
//! round-robin schedule, honouring critical-section mutual exclusion and
//! barriers. This is the functional reference the cycle-level simulator (and
//! the case-study kernels) are verified against.

use crate::kernel::{ArgId, ArgKind, Kernel};
use crate::loops::LoopMap;
use crate::opcount::OpCounts;
use crate::types::{Type, Value};
use crate::walker::{DataMemory, MemAccess, StepEvent, Walker};
use std::collections::VecDeque;

/// A launch value for one kernel argument.
#[derive(Clone, Debug)]
pub enum LaunchArg {
    /// Scalar argument value.
    Scalar(Value),
    /// Buffer contents (element values). For `map(from:)` buffers, pass the
    /// desired initial (usually zero) contents; results are read back from
    /// the interpreter after the run.
    Buffer(Vec<Value>),
}

/// Outcome of a gold-model run.
#[derive(Clone, Debug)]
pub struct InterpResult {
    /// Final buffer contents, indexed like the kernel arguments (scalar
    /// argument slots hold empty vectors).
    pub buffers: Vec<Vec<Value>>,
    /// Total dynamic operation counts over all threads.
    pub ops: OpCounts,
    /// External-memory traffic in bytes (reads, writes), including preloader
    /// bursts.
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Number of critical-section entries observed (sanity statistics).
    pub critical_entries: u64,
}

struct BufferMem {
    bufs: Vec<Vec<Value>>,
}

impl DataMemory for BufferMem {
    fn load_ext(&mut self, buf: ArgId, elem_idx: u64, ty: Type) -> Value {
        let b = &self.bufs[buf.0 as usize];
        let i = elem_idx as usize;
        assert!(
            i + (ty.lanes.max(1) as usize - 1) < b.len(),
            "load out of bounds: buffer {:?} len {} index {} lanes {}",
            buf,
            b.len(),
            i,
            ty.lanes
        );
        if ty.lanes <= 1 {
            b[i].clone()
        } else {
            let lanes: Vec<Value> = (0..ty.lanes as usize).map(|l| b[i + l].clone()).collect();
            Value::Vec(lanes.into_boxed_slice())
        }
    }

    fn store_ext(&mut self, buf: ArgId, elem_idx: u64, v: Value) {
        let b = &mut self.bufs[buf.0 as usize];
        let i = elem_idx as usize;
        match v {
            Value::Vec(lanes) => {
                assert!(i + lanes.len() <= b.len(), "vector store out of bounds");
                for (l, lv) in lanes.iter().enumerate() {
                    b[i + l] = lv.clone();
                }
            }
            s => {
                assert!(i < b.len(), "store out of bounds");
                b[i] = s;
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    WaitingLock,
    InCritical,
    AtBarrier,
    Done,
}

/// One observed external-memory access of a traced gold-model run
/// (see [`Interpreter::run_traced`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynAccess {
    /// Hardware thread that issued the access.
    pub thread: u32,
    /// Which buffer argument.
    pub buf: ArgId,
    /// First element index touched (byte offset / element size).
    pub elem: u64,
    /// Number of consecutive elements covered (vector lanes / burst length).
    pub lanes: u64,
    /// Direction.
    pub is_write: bool,
    /// Whether the thread held the critical-section lock.
    pub in_critical: bool,
    /// Barrier phase of the issuing thread: 0 before its first barrier
    /// release, incremented at each release it participates in.
    pub phase: u64,
}

/// Dynamic observations of a traced run — the oracle `nymble-lint` is
/// validated against: a lint-clean kernel must show no cross-thread
/// same-element conflict within a phase (NL001/NL003 soundness on the
/// executed schedule) and uniform per-thread barrier arrival counts
/// (NL002: divergent control flow shows up as differing counts).
#[derive(Clone, Debug, Default)]
pub struct DynTrace {
    /// Every external-buffer access, in deterministic execution order.
    pub accesses: Vec<DynAccess>,
    /// Barrier arrivals per thread. The hardware barrier waits for *all*
    /// threads, so unequal counts mean some threads would wait forever.
    pub barrier_arrivals: Vec<u64>,
}

impl DynTrace {
    /// First pair of accesses that conflict on the executed schedule:
    /// same buffer element, different threads, at least one write, same
    /// barrier phase, not both under the critical-section lock.
    pub fn find_conflict(&self) -> Option<(&DynAccess, &DynAccess)> {
        for (i, a) in self.accesses.iter().enumerate() {
            for b in &self.accesses[i + 1..] {
                if a.thread == b.thread
                    || a.buf != b.buf
                    || a.phase != b.phase
                    || !(a.is_write || b.is_write)
                    || (a.in_critical && b.in_critical)
                {
                    continue;
                }
                let overlap = a.elem < b.elem + b.lanes && b.elem < a.elem + a.lanes;
                if overlap {
                    return Some((a, b));
                }
            }
        }
        None
    }

    /// Whether every thread arrived at barriers the same number of times.
    pub fn barriers_uniform(&self) -> bool {
        self.barrier_arrivals.windows(2).all(|w| w[0] == w[1])
    }
}

/// The untimed interpreter.
pub struct Interpreter;

impl Interpreter {
    /// Run `kernel` to completion with the given launch arguments.
    ///
    /// # Panics
    /// Panics on malformed launches (wrong arg count / types) and on
    /// deadlock, which cannot occur for kernels accepted by the validator.
    pub fn run(kernel: &Kernel, launch: &[LaunchArg]) -> InterpResult {
        Self::run_traced(kernel, launch).0
    }

    /// [`Interpreter::run`], additionally recording every external-memory
    /// access (thread, element range, critical/phase context) and the
    /// per-thread barrier arrival counts — the dynamic oracle the
    /// `nymble-lint` static analyzer is validated against.
    ///
    /// Note the interpreter releases a barrier when all *live* (not yet
    /// finished) threads have arrived, so a kernel with thread-divergent
    /// barriers still runs to completion here; the divergence is visible in
    /// [`DynTrace::barrier_arrivals`] (real hardware, which waits for all
    /// `num_threads`, would deadlock — that is what NL002 flags).
    pub fn run_traced(kernel: &Kernel, launch: &[LaunchArg]) -> (InterpResult, DynTrace) {
        assert_eq!(
            launch.len(),
            kernel.args.len(),
            "one launch argument per kernel argument"
        );
        let mut scalar_args = Vec::with_capacity(launch.len());
        let mut bufs = Vec::with_capacity(launch.len());
        for (arg, la) in kernel.args.iter().zip(launch) {
            match (&arg.kind, la) {
                (ArgKind::Scalar(_), LaunchArg::Scalar(v)) => {
                    scalar_args.push(v.clone());
                    bufs.push(Vec::new());
                }
                (ArgKind::Buffer { .. }, LaunchArg::Buffer(b)) => {
                    scalar_args.push(Value::I32(0)); // placeholder
                    bufs.push(b.clone());
                }
                _ => panic!("launch argument kind mismatch for `{}`", arg.name),
            }
        }

        let loops = std::sync::Arc::new(LoopMap::build(kernel));
        let n = kernel.num_threads as usize;
        let mut walkers: Vec<Walker> = (0..n)
            .map(|t| Walker::new(kernel, loops.clone(), t as u32, scalar_args.clone()))
            .collect();
        let mut mem = BufferMem { bufs };
        let mut states = vec![ThreadState::Runnable; n];
        let mut lock_held_by: Option<usize> = None;
        let mut lock_queue: VecDeque<usize> = VecDeque::new();
        let mut barrier_count = 0usize;
        let mut done = 0usize;
        let mut ops = OpCounts::default();
        let (mut br, mut bw) = (0u64, 0u64);
        let mut crit_entries = 0u64;
        let mut accesses: Vec<DynAccess> = Vec::new();
        let mut barrier_arrivals = vec![0u64; n];
        let mut phase = vec![0u64; n];
        let mut record = |t: usize, a: &MemAccess, in_crit: bool, ph: u64| {
            let esz = kernel.buffer_elem_size(a.buf) as u64;
            accesses.push(DynAccess {
                thread: t as u32,
                buf: a.buf,
                elem: a.byte_off / esz,
                lanes: (a.bytes as u64 / esz).max(1),
                is_write: a.is_write,
                in_critical: in_crit,
                phase: ph,
            });
        };

        // Round-robin over runnable threads. A full sweep with no progress
        // means deadlock (impossible for validated kernels — defensive).
        while done < n {
            let mut progressed = false;
            for t in 0..n {
                if states[t] != ThreadState::Runnable && states[t] != ThreadState::InCritical {
                    continue;
                }
                progressed = true;
                let in_crit = states[t] == ThreadState::InCritical;
                match walkers[t].step(&mut mem) {
                    StepEvent::Ops(o) => ops.add(o),
                    StepEvent::Access(a) => {
                        if a.is_write {
                            bw += a.bytes as u64;
                        } else {
                            br += a.bytes as u64;
                        }
                        record(t, &a, in_crit, phase[t]);
                    }
                    StepEvent::Burst { access, .. } => {
                        if access.is_write {
                            bw += access.bytes as u64;
                        } else {
                            br += access.bytes as u64;
                        }
                        record(t, &access, in_crit, phase[t]);
                    }
                    StepEvent::LocalRead { .. } => {}
                    StepEvent::LoopEnter { .. }
                    | StepEvent::LoopIter { .. }
                    | StepEvent::LoopExit { .. } => {}
                    StepEvent::CriticalEnter => {
                        crit_entries += 1;
                        if lock_held_by.is_none() {
                            lock_held_by = Some(t);
                            states[t] = ThreadState::InCritical;
                        } else {
                            states[t] = ThreadState::WaitingLock;
                            lock_queue.push_back(t);
                        }
                    }
                    StepEvent::CriticalExit => {
                        assert_eq!(lock_held_by, Some(t), "exit from lock not held");
                        states[t] = ThreadState::Runnable;
                        lock_held_by = lock_queue.pop_front();
                        if let Some(next) = lock_held_by {
                            states[next] = ThreadState::InCritical;
                        }
                    }
                    StepEvent::Barrier => {
                        states[t] = ThreadState::AtBarrier;
                        barrier_count += 1;
                        barrier_arrivals[t] += 1;
                        // Threads that already finished never reach the
                        // barrier; all *live* threads must arrive.
                        if barrier_count == n - done {
                            barrier_count = 0;
                            for (s, st) in states.iter_mut().enumerate() {
                                if *st == ThreadState::AtBarrier {
                                    *st = ThreadState::Runnable;
                                    phase[s] += 1;
                                }
                            }
                        }
                    }
                    StepEvent::Finished => {
                        states[t] = ThreadState::Done;
                        done += 1;
                        // A thread retiring can satisfy a pending barrier:
                        // if every still-live thread is already parked
                        // there, release them now (arrival alone would
                        // never re-check the condition).
                        if barrier_count > 0 && barrier_count == n - done {
                            barrier_count = 0;
                            for (s, st) in states.iter_mut().enumerate() {
                                if *st == ThreadState::AtBarrier {
                                    *st = ThreadState::Runnable;
                                    phase[s] += 1;
                                }
                            }
                        }
                    }
                }
            }
            assert!(progressed || done == n, "interpreter deadlock");
        }

        (
            InterpResult {
                buffers: mem.bufs,
                ops,
                bytes_read: br,
                bytes_written: bw,
                critical_entries: crit_entries,
            },
            DynTrace {
                accesses,
                barrier_arrivals,
            },
        )
    }
}

/// Convenience: extract an `f32` slice from a result buffer.
pub fn buffer_as_f32(buf: &[Value]) -> Vec<f32> {
    buf.iter()
        .map(|v| match v {
            Value::F32(x) => *x,
            other => other.as_f64() as f32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::ScalarType;
    use crate::{MapDir, Type};

    /// Each of 4 threads increments a shared counter 10 times inside a
    /// critical section; the result must be exactly 40 (mutual exclusion).
    #[test]
    fn critical_increments_are_atomic() {
        let mut kb = KernelBuilder::new("atomic", 4);
        let out = kb.buffer("OUT", ScalarType::I32, MapDir::ToFrom);
        let n = kb.c_i64(10);
        kb.for_range("i", n, |kb, _| {
            kb.critical(|kb| {
                let z = kb.c_i64(0);
                let cur = kb.load(out, z, Type::I32);
                let one = kb.c_i32(1);
                let inc = kb.add(cur, one);
                let z2 = kb.c_i64(0);
                kb.store(out, z2, inc);
            });
        });
        let k = kb.finish();
        let r = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I32(0)])]);
        assert_eq!(r.buffers[0][0], Value::I32(40));
        assert_eq!(r.critical_entries, 40);
    }

    /// Barrier: phase 1 writes per-thread slots, phase 2 reads a neighbour's
    /// slot. Without the barrier this would read stale zeros under some
    /// interleavings; with it, every thread must see the neighbour's write.
    #[test]
    fn barrier_orders_phases() {
        let nthreads = 4;
        let mut kb = KernelBuilder::new("barrier", nthreads);
        let buf = kb.buffer("BUF", ScalarType::I32, MapDir::ToFrom);
        let out = kb.buffer("OUT", ScalarType::I32, MapDir::From);
        let tid = kb.thread_id();
        let tid64 = kb.cast(ScalarType::I64, tid);
        let hundred = kb.c_i32(100);
        let tid2 = kb.thread_id();
        let val = kb.add(tid2, hundred);
        kb.store(buf, tid64, val);
        kb.barrier();
        // read neighbour (tid+1) % n
        let tid3 = kb.thread_id();
        let one = kb.c_i32(1);
        let np = kb.num_threads_expr();
        let succ = kb.add(tid3, one);
        let wrapped = kb.bin(crate::BinOp::Rem, succ, np);
        let widx = kb.cast(ScalarType::I64, wrapped);
        let neigh = kb.load(buf, widx, Type::I32);
        let tid4 = kb.thread_id();
        let oidx = kb.cast(ScalarType::I64, tid4);
        kb.store(out, oidx, neigh);
        let k = kb.finish();
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vec![Value::I32(0); nthreads as usize]),
                LaunchArg::Buffer(vec![Value::I32(0); nthreads as usize]),
            ],
        );
        for t in 0..nthreads as usize {
            let expect = 100 + ((t + 1) % nthreads as usize) as i32;
            assert_eq!(r.buffers[1][t], Value::I32(expect), "thread {t}");
        }
    }

    #[test]
    fn traffic_accounting() {
        let mut kb = KernelBuilder::new("traffic", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let n = kb.c_i64(8);
        kb.for_range("i", n, |kb, i| {
            let v = kb.load(a, i, Type::F32);
            kb.store(out, i, v);
        });
        let k = kb.finish();
        let r = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vec![Value::F32(1.0); 8]),
                LaunchArg::Buffer(vec![Value::F32(0.0); 8]),
            ],
        );
        assert_eq!(r.bytes_read, 32);
        assert_eq!(r.bytes_written, 32);
        assert_eq!(r.ops.ext_loads, 8);
    }

    /// The traced run observes the race in a two-thread full-range store
    /// loop, and clean per-thread decomposition shows no conflict.
    #[test]
    fn traced_run_observes_races_and_phases() {
        // Racy: both threads store OUT[0..4).
        let mut kb = KernelBuilder::new("racy", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let n = kb.c_i64(4);
        kb.for_range("i", n, |kb, i| {
            let one = kb.c_f32(1.0);
            kb.store(out, i, one);
        });
        let k = kb.finish();
        let (_, trace) =
            Interpreter::run_traced(&k, &[LaunchArg::Buffer(vec![Value::F32(0.0); 4])]);
        assert_eq!(trace.accesses.len(), 8, "2 threads x 4 stores");
        assert!(trace.find_conflict().is_some(), "the race is observable");
        assert!(trace.barriers_uniform(), "no barriers at all");

        // Clean: thread t stores OUT[t], then a barrier, then OUT[t] again.
        let mut kb = KernelBuilder::new("clean", 2);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let tid = kb.thread_id();
        let one = kb.c_f32(1.0);
        kb.store(out, tid, one);
        kb.barrier();
        let tid2 = kb.thread_id();
        let two = kb.c_f32(2.0);
        kb.store(out, tid2, two);
        let k = kb.finish();
        let (_, trace) =
            Interpreter::run_traced(&k, &[LaunchArg::Buffer(vec![Value::F32(0.0); 2])]);
        assert!(trace.find_conflict().is_none(), "disjoint per-thread slots");
        assert_eq!(trace.barrier_arrivals, vec![1, 1]);
        assert!(trace.barriers_uniform());
        // The second store happens in phase 1 for both threads.
        assert!(trace.accesses.iter().any(|a| a.phase == 1));
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn launch_kind_mismatch_panics() {
        let mut kb = KernelBuilder::new("bad", 1);
        let _ = kb.buffer("A", ScalarType::F32, MapDir::To);
        let k = kb.finish();
        let _ = Interpreter::run(&k, &[LaunchArg::Scalar(Value::I32(0))]);
    }
}
