//! Kernel container: arguments, variables, local memories, expression arena
//! and the structured statement body.

use crate::expr::Expr;
use crate::stmt::Block;
use crate::types::{ScalarType, Type};

/// Index of a kernel argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArgId(pub u32);

/// Index of a thread-local variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of an on-chip local memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalMemId(pub u32);

/// OpenMP `map` clause direction controlling host↔FPGA data transfers
/// (§III-A: the OpenMP frontend "allow\[s\] users to clearly specify which and
/// how data has to be transferred").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapDir {
    /// `map(to: ...)` — copied host→device before execution.
    To,
    /// `map(from: ...)` — copied device→host after execution.
    From,
    /// `map(tofrom: ...)` — copied both ways.
    ToFrom,
    /// `map(alloc: ...)` — device scratch, never copied.
    Alloc,
}

/// Kind of kernel argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArgKind {
    /// Scalar passed by value over the slave interface (e.g. `DIM`).
    Scalar(ScalarType),
    /// Pointer to a buffer in external DRAM, with its element type and
    /// transfer direction.
    Buffer { elem: ScalarType, map: MapDir },
}

/// A kernel argument.
#[derive(Clone, Debug, PartialEq)]
pub struct Arg {
    pub name: String,
    pub kind: ArgKind,
}

/// A declared thread-local variable (register in the datapath context).
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    pub name: String,
    pub ty: Type,
}

/// An on-chip local memory (BRAM block).
#[derive(Clone, Debug, PartialEq)]
pub struct LocalMem {
    pub name: String,
    /// Element type (may be a vector type, as in the blocked GEMM's
    /// `VECTOR A_local[...]`).
    pub elem: Type,
    /// Number of elements.
    pub len: u64,
    /// Whether each hardware thread gets a private copy (the only mode used
    /// by the paper's kernels; shared local memories are reserved).
    pub per_thread: bool,
}

/// A complete kernel: the contents of one OpenMP `target` region
/// (Nymble currently supports one target region per application, §III-A).
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel name (used for trace/application naming).
    pub name: String,
    /// Launch arguments.
    pub args: Vec<Arg>,
    /// Thread-local variables.
    pub vars: Vec<VarDecl>,
    /// Local BRAM memories.
    pub local_mems: Vec<LocalMem>,
    /// Expression arena.
    pub exprs: Vec<Expr>,
    /// Structured body, executed by every hardware thread.
    pub body: Block,
    /// `num_threads(N)` clause — number of simultaneous hardware threads
    /// (the paper uses 8 throughout §V).
    pub num_threads: u32,
}

impl Kernel {
    /// Look up an expression node.
    pub fn expr(&self, id: crate::expr::ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// Argument metadata.
    pub fn arg(&self, id: ArgId) -> &Arg {
        &self.args[id.0 as usize]
    }

    /// Variable metadata.
    pub fn var(&self, id: VarId) -> &VarDecl {
        &self.vars[id.0 as usize]
    }

    /// Local memory metadata.
    pub fn local_mem(&self, id: LocalMemId) -> &LocalMem {
        &self.local_mems[id.0 as usize]
    }

    /// Element size in bytes of a buffer argument. Panics for scalar args.
    pub fn buffer_elem_size(&self, id: ArgId) -> u32 {
        match self.arg(id).kind {
            ArgKind::Buffer { elem, .. } => elem.size_bytes(),
            ArgKind::Scalar(_) => panic!("arg {:?} is not a buffer", id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_elem_size() {
        let k = Kernel {
            name: "t".into(),
            args: vec![Arg {
                name: "A".into(),
                kind: ArgKind::Buffer {
                    elem: ScalarType::F64,
                    map: MapDir::To,
                },
            }],
            vars: vec![],
            local_mems: vec![],
            exprs: vec![],
            body: Block::default(),
            num_threads: 1,
        };
        assert_eq!(k.buffer_elem_size(ArgId(0)), 8);
    }
}
