//! # nymble-ir — kernel intermediate representation for the Nymble-style HLS flow
//!
//! This crate models the input language of the HLS compiler described in the
//! CLUSTER 2020 paper *"Extending High-Level Synthesis with High-Performance
//! Computing Performance Visualization"*. The paper's Nymble compiler accepts
//! C/C++ with OpenMP 4.0 `target` offloading constructs; since this
//! reproduction has no C frontend, kernels are constructed through a builder
//! API ([`builder::KernelBuilder`]) that mirrors the OpenMP constructs used in
//! the paper's listings (Figs. 3–5 and 10):
//!
//! * `#pragma omp target parallel map(...) num_threads(N)` →
//!   [`builder::KernelBuilder::new`]`(name, num_threads)` plus `map_*` argument declarations,
//! * `omp_get_thread_num()` / `omp_get_num_threads()` → [`expr::Expr::ThreadId`]
//!   and [`expr::Expr::NumThreads`],
//! * `#pragma omp critical` → [`stmt::Stmt::Critical`],
//! * `#pragma omp barrier` → [`stmt::Stmt::Barrier`],
//! * `#pragma unroll W` and vector types → loop unroll annotations and
//!   multi-lane [`types::Type`]s.
//!
//! The IR is *structured* (loop trees, not CFGs) because Nymble embeds inner
//! loops into the surrounding dataflow graph as single variable-latency
//! operation nodes (§III-B of the paper); the structure is exactly what the
//! scheduler in `nymble-hls` consumes.
//!
//! The crate also contains the *semantic engine*: [`walker::Walker`] executes
//! one hardware thread of a kernel and yields a stream of
//! [`walker::StepEvent`]s (operation counts, external-memory accesses,
//! critical-section boundaries, loop-iteration boundaries). Two drivers exist:
//!
//! * [`interp::Interpreter`] — the untimed gold model used to verify
//!   functional correctness (e.g. GEMM against a CPU reference), and
//! * `fpga_sim::exec` (in the `fpga-sim` crate) — the cycle-level timed model
//!   that attaches the paper's profiling unit.

pub mod builder;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod loops;
pub mod opcount;
pub mod pretty;
pub mod stmt;
pub mod transform;
pub mod types;
pub mod validate;
pub mod walker;

pub use builder::{FinishCheck, KernelBuilder};
pub use expr::{BinOp, Expr, ExprId, UnOp};
pub use kernel::{Arg, ArgId, ArgKind, Kernel, LocalMem, LocalMemId, MapDir, VarDecl, VarId};
pub use stmt::{Block, Stmt};
pub use types::{ScalarType, Type, Value};
