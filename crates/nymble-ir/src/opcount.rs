//! Static operation counting.
//!
//! The profiling unit classifies compute performance into integer and
//! floating-point operations (§IV-B.2b: "Compute performance in Nymble can be
//! classified as two types: floating-point and integer performance"). The
//! walker needs per-statement-execution op counts to feed the counters; the
//! cost model needs per-kernel static counts to size the datapath. Both are
//! derived here.
//!
//! Counting convention: every `Binary`/`Unary`/`Select`/`Cast` evaluation
//! counts as one operation per lane, classified by its *result* scalar type.
//! Comparisons count as integer ops (they map to integer compare units even
//! for float inputs on the paper's Stratix 10 target, where FP compares are
//! decomposed). Loads/stores are counted separately as memory operations.

use crate::expr::{Expr, ExprId};
use crate::kernel::Kernel;

/// Operation counts attributed to one evaluation of an expression tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Integer (and address/compare/select) operations.
    pub int_ops: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// External-memory load operations (requests, not bytes).
    pub ext_loads: u64,
    /// Local-memory load operations.
    pub local_loads: u64,
}

impl OpCounts {
    /// Element-wise sum.
    pub fn add(&mut self, o: OpCounts) {
        self.int_ops += o.int_ops;
        self.flops += o.flops;
        self.ext_loads += o.ext_loads;
        self.local_loads += o.local_loads;
    }
}

/// Count the operations performed by one evaluation of `root` (including all
/// sub-expressions). The arena is a DAG: a shared sub-expression is one
/// datapath operator and is counted exactly once.
pub fn count_expr(k: &Kernel, root: ExprId) -> OpCounts {
    let mut c = OpCounts::default();
    let mut seen = vec![false; k.exprs.len()];
    count_rec(k, root, &mut c, &mut seen);
    c
}

fn count_rec(k: &Kernel, id: ExprId, c: &mut OpCounts, seen: &mut [bool]) {
    if seen[id.0 as usize] {
        return;
    }
    seen[id.0 as usize] = true;
    let e = k.expr(id);
    for child in e.children() {
        count_rec(k, child, c, seen);
    }
    match e {
        Expr::Binary(op, a, _) => {
            let lanes = expr_lanes(k, *a).max(1) as u64;
            // Result type decides the counter; comparisons are integer.
            if op.is_comparison() || !expr_is_float(k, *a) {
                c.int_ops += lanes;
            } else {
                c.flops += lanes;
            }
        }
        Expr::Unary(_, a) => {
            let lanes = expr_lanes(k, *a).max(1) as u64;
            if expr_is_float(k, *a) {
                c.flops += lanes;
            } else {
                c.int_ops += lanes;
            }
        }
        Expr::Select { then_v, .. } => {
            let lanes = expr_lanes(k, *then_v).max(1) as u64;
            c.int_ops += lanes; // multiplexer
        }
        Expr::Cast(_, _) => c.int_ops += 1,
        Expr::LoadExt { .. } => c.ext_loads += 1,
        Expr::LoadLocal { .. } => c.local_loads += 1,
        _ => {}
    }
}

/// Number of lanes an expression produces (best-effort static inference;
/// defaults to 1 when unknown, which is exact for the paper's kernels).
pub fn expr_lanes(k: &Kernel, id: ExprId) -> u8 {
    match k.expr(id) {
        Expr::Const(v) => v.ty().lanes,
        Expr::LoadExt { ty, .. } | Expr::LoadLocal { ty, .. } => ty.lanes,
        Expr::Splat(_, lanes) => *lanes,
        Expr::Lane(_, _) => 1,
        Expr::Var(v) => k.var(*v).ty.lanes,
        Expr::Binary(_, a, b) => expr_lanes(k, *a).max(expr_lanes(k, *b)),
        Expr::Unary(_, a) | Expr::Cast(_, a) => expr_lanes(k, *a),
        Expr::Select { then_v, else_v, .. } => expr_lanes(k, *then_v).max(expr_lanes(k, *else_v)),
        _ => 1,
    }
}

/// Whether an expression produces a floating-point value (static inference).
pub fn expr_is_float(k: &Kernel, id: ExprId) -> bool {
    match k.expr(id) {
        Expr::Const(v) => v.ty().scalar.is_float(),
        Expr::Arg(a) => match k.arg(*a).kind {
            crate::kernel::ArgKind::Scalar(t) => t.is_float(),
            crate::kernel::ArgKind::Buffer { elem, .. } => elem.is_float(),
        },
        Expr::ThreadId | Expr::NumThreads => false,
        Expr::Var(v) => k.var(*v).ty.scalar.is_float(),
        Expr::Unary(_, a) | Expr::Splat(a, _) | Expr::Lane(a, _) => expr_is_float(k, *a),
        Expr::Binary(op, a, _) => !op.is_comparison() && expr_is_float(k, *a),
        Expr::Select { then_v, .. } => expr_is_float(k, *then_v),
        Expr::Cast(t, _) => t.is_float(),
        Expr::LoadExt { ty, .. } | Expr::LoadLocal { ty, .. } => ty.scalar.is_float(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{ScalarType, Type};
    use crate::{BinOp, MapDir};

    #[test]
    fn counts_fma_as_two_flops_and_loads() {
        let mut kb = KernelBuilder::new("t", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let b = kb.buffer("B", ScalarType::F32, MapDir::To);
        let s = kb.var("sum", Type::F32);
        let i = kb.c_i64(0);
        let av = kb.load(a, i, Type::F32);
        let bv = kb.load(b, i, Type::F32);
        let sv = kb.get(s);
        let fma = kb.mul_add(av, bv, sv);
        kb.set(s, fma);
        let k = kb.finish();
        // The final Assign's expr is the fma expression.
        let root = match &k.body[0] {
            crate::Stmt::Assign { expr, .. } => *expr,
            _ => unreachable!(),
        };
        let c = count_expr(&k, root);
        assert_eq!(c.flops, 2);
        assert_eq!(c.int_ops, 0);
        assert_eq!(c.ext_loads, 2);
    }

    #[test]
    fn vector_ops_count_per_lane() {
        let mut kb = KernelBuilder::new("t", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let i = kb.c_i64(0);
        let v4 = Type::vector(ScalarType::F32, 4);
        let av = kb.load(a, i, v4);
        let bv = kb.load(a, i, v4);
        let sum = kb.bin(BinOp::Add, av, bv);
        let dst = kb.var("d", v4);
        kb.set(dst, sum);
        let k = kb.finish();
        let root = match &k.body[0] {
            crate::Stmt::Assign { expr, .. } => *expr,
            _ => unreachable!(),
        };
        let c = count_expr(&k, root);
        assert_eq!(c.flops, 4, "one vector add = 4 lane flops");
        assert_eq!(c.ext_loads, 2);
    }

    #[test]
    fn comparisons_are_integer_ops() {
        let mut kb = KernelBuilder::new("t", 1);
        let x = kb.c_f32(1.0);
        let y = kb.c_f32(2.0);
        let lt = kb.bin(BinOp::Lt, x, y);
        let v = kb.var("b", Type::I32);
        kb.set(v, lt);
        let k = kb.finish();
        let root = match &k.body[0] {
            crate::Stmt::Assign { expr, .. } => *expr,
            _ => unreachable!(),
        };
        let c = count_expr(&k, root);
        assert_eq!(c.int_ops, 1);
        assert_eq!(c.flops, 0);
    }

    #[test]
    fn lane_inference() {
        let mut kb = KernelBuilder::new("t", 1);
        let s = kb.c_f32(1.0);
        let v = kb.splat(s, 4);
        assert_eq!(expr_lanes(kb.kernel_in_progress(), v), 4);
    }
}
