//! Structured statements.
//!
//! Nymble compiles each loop body to a dataflow graph; inner loops appear as
//! single variable-latency nodes in the surrounding graph and pause it while
//! they run (§III-B). Keeping the IR structured (a loop tree) preserves
//! exactly the information the scheduler and the execution model need.

use crate::expr::ExprId;
use crate::kernel::{ArgId, LocalMemId, VarId};

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// Loop unrolling annotation (`#pragma unroll`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unroll {
    /// Not unrolled: the loop is pipelined with its scheduled initiation
    /// interval.
    None,
    /// Fully unrolled into the surrounding dataflow graph (the paper's
    /// `#pragma unroll VECTOR_LEN` / `#pragma unroll BLOCK_SIZE` inner loops).
    /// The trip count must be a compile-time constant.
    Full,
}

/// One structured statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Write `expr` into thread-local variable `var`. Used for both initial
    /// bindings and accumulator updates (`sum += ...` becomes
    /// `Assign { var: sum, expr: Add(Var(sum), ...) }`, which creates the
    /// loop-carried dependence the scheduler turns into a recurrence II).
    Assign { var: VarId, expr: ExprId },
    /// Store `value` to external buffer `buf` at element `index`.
    /// A variable-latency operation.
    StoreExt {
        buf: ArgId,
        index: ExprId,
        value: ExprId,
    },
    /// Store to local BRAM.
    StoreLocal {
        mem: LocalMemId,
        index: ExprId,
        value: ExprId,
    },
    /// Counted loop: `for (var = start; var < end; var += step)`.
    /// `start`/`end`/`step` are evaluated once on entry (as in the paper's
    /// kernels, where bounds are loop-invariant).
    For {
        var: VarId,
        start: ExprId,
        end: ExprId,
        step: ExprId,
        body: Block,
        unroll: Unroll,
    },
    /// Two-sided conditional. Nymble predicates small conditionals into the
    /// dataflow graph; larger ones become control regions. Either branch may
    /// be empty.
    If {
        cond: ExprId,
        then_b: Block,
        else_b: Block,
    },
    /// `#pragma omp critical` — body guarded by the hardware semaphore on the
    /// Avalon bus (Fig. 1). Entering sets the thread's Paraver state to
    /// Spinning until acquisition, then Critical until exit (Fig. 2).
    Critical { body: Block },
    /// `#pragma omp barrier` — all hardware threads rendezvous.
    Barrier,
    /// Preloader burst transfer: copy `len` elements from external buffer
    /// `src` starting at element `src_off` into local memory `mem` starting
    /// at element `dst_off` (§III-A: "The preloader can be used to
    /// efficiently pre-load data from the external memory to the local
    /// memory"). One element here is one `mem.elem` (possibly a vector).
    Preload {
        mem: LocalMemId,
        src: ArgId,
        src_off: ExprId,
        dst_off: ExprId,
        len: ExprId,
    },
    /// Preloader write-back: copy `len` elements from local memory to an
    /// external buffer (the mirror of `Preload`, used for blocked GEMM's
    /// result write-back).
    WriteBack {
        mem: LocalMemId,
        dst: ArgId,
        dst_off: ExprId,
        src_off: ExprId,
        len: ExprId,
    },
}

impl Stmt {
    /// Short mnemonic for diagnostics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Stmt::Assign { .. } => "assign",
            Stmt::StoreExt { .. } => "store.ext",
            Stmt::StoreLocal { .. } => "store.local",
            Stmt::For { .. } => "for",
            Stmt::If { .. } => "if",
            Stmt::Critical { .. } => "critical",
            Stmt::Barrier => "barrier",
            Stmt::Preload { .. } => "preload",
            Stmt::WriteBack { .. } => "writeback",
        }
    }

    /// Child blocks, for generic traversal.
    pub fn child_blocks(&self) -> Vec<&Block> {
        match self {
            Stmt::For { body, .. } | Stmt::Critical { body } => vec![body],
            Stmt::If { then_b, else_b, .. } => vec![then_b, else_b],
            _ => Vec::new(),
        }
    }
}

/// Depth-first visit of every statement in a block tree.
pub fn visit_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in block {
        f(s);
        for b in s.child_blocks() {
            visit_stmts(b, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_counts_nested() {
        let inner = Stmt::Barrier;
        let loop_s = Stmt::For {
            var: VarId(0),
            start: ExprId(0),
            end: ExprId(0),
            step: ExprId(0),
            body: vec![inner],
            unroll: Unroll::None,
        };
        let crit = Stmt::Critical { body: vec![loop_s] };
        let mut n = 0;
        visit_stmts(&vec![crit], &mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Stmt::Barrier.mnemonic(), "barrier");
    }
}
