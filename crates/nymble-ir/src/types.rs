//! Scalar and vector types plus runtime values.
//!
//! Nymble's datapath operates on C scalar types; the paper's vectorized GEMM
//! versions (Figs. 4 and 5) additionally use 128-bit vector types (`VECTOR`,
//! four `float` lanes). A [`Type`] is a scalar element type plus a lane count;
//! `lanes == 1` denotes a scalar.

/// Element type of a value flowing through the datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (used for address arithmetic).
    I64,
    /// IEEE-754 single precision. The paper's case studies are all
    /// single-precision (the π study even hits f32 numerical instability).
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl ScalarType {
    /// Size of one element in bytes (as laid out in external memory).
    pub const fn size_bytes(self) -> u32 {
        match self {
            ScalarType::I32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::F64 => 8,
        }
    }

    /// Whether the type is floating point (determines which performance
    /// counter — FLOP or integer-op — an operation feeds, §IV-B.2b).
    pub const fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }
}

/// A (possibly vector) datapath type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Type {
    /// Element type.
    pub scalar: ScalarType,
    /// Number of SIMD lanes; 1 for scalars. The paper's `VECTOR` type is
    /// `Type { scalar: F32, lanes: 4 }` (128-bit).
    pub lanes: u8,
}

impl Type {
    /// A scalar type with a single lane.
    pub const fn scalar(scalar: ScalarType) -> Self {
        Type { scalar, lanes: 1 }
    }

    /// A vector type with `lanes` lanes.
    pub const fn vector(scalar: ScalarType, lanes: u8) -> Self {
        Type { scalar, lanes }
    }

    /// Total width of the type in bytes.
    pub const fn size_bytes(&self) -> u32 {
        self.scalar.size_bytes() * self.lanes as u32
    }

    pub const I32: Type = Type::scalar(ScalarType::I32);
    pub const I64: Type = Type::scalar(ScalarType::I64);
    pub const F32: Type = Type::scalar(ScalarType::F32);
    pub const F64: Type = Type::scalar(ScalarType::F64);
}

/// A runtime value produced by the interpreter / simulator.
///
/// Vector values hold their lanes in a boxed slice; all lanes share the same
/// scalar type. Mixed-lane vectors are rejected by [`crate::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    /// Homogeneous vector of scalar values.
    Vec(Box<[Value]>),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::I32(_) => Type::I32,
            Value::I64(_) => Type::I64,
            Value::F32(_) => Type::F32,
            Value::F64(_) => Type::F64,
            Value::Vec(v) => {
                let elem = v.first().map(|e| e.ty().scalar).unwrap_or(ScalarType::F32);
                Type::vector(elem, v.len() as u8)
            }
        }
    }

    /// Interpret the value as a signed 64-bit integer (for indices, trip
    /// counts and conditions). Panics on vectors.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I32(v) => *v as i64,
            Value::I64(v) => *v,
            Value::F32(v) => *v as i64,
            Value::F64(v) => *v as i64,
            Value::Vec(_) => panic!("vector value used as scalar index"),
        }
    }

    /// Interpret the value as f64 (for float math). Panics on vectors.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::I32(v) => *v as f64,
            Value::I64(v) => *v as f64,
            Value::F32(v) => *v as f64,
            Value::F64(v) => *v,
            Value::Vec(_) => panic!("vector value used as scalar float"),
        }
    }

    /// Truthiness for conditions (non-zero).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::F32(v) => *v != 0.0,
            Value::F64(v) => *v != 0.0,
            other => other.as_i64() != 0,
        }
    }

    /// The canonical zero of a type (used to initialise variables and local
    /// memories, matching BRAM initialisation on the FPGA).
    pub fn zero(ty: Type) -> Value {
        let z = match ty.scalar {
            ScalarType::I32 => Value::I32(0),
            ScalarType::I64 => Value::I64(0),
            ScalarType::F32 => Value::F32(0.0),
            ScalarType::F64 => Value::F64(0.0),
        };
        if ty.lanes <= 1 {
            z
        } else {
            Value::Vec(vec![z; ty.lanes as usize].into_boxed_slice())
        }
    }

    /// Construct a scalar value of type `ty` from an f64 (lossy for ints).
    pub fn from_f64(ty: ScalarType, v: f64) -> Value {
        match ty {
            ScalarType::I32 => Value::I32(v as i32),
            ScalarType::I64 => Value::I64(v as i64),
            ScalarType::F32 => Value::F32(v as f32),
            ScalarType::F64 => Value::F64(v),
        }
    }

    /// Construct a scalar value of type `ty` from an i64 (wrapping for i32).
    pub fn from_i64(ty: ScalarType, v: i64) -> Value {
        match ty {
            ScalarType::I32 => Value::I32(v as i32),
            ScalarType::I64 => Value::I64(v),
            ScalarType::F32 => Value::F32(v as f32),
            ScalarType::F64 => Value::F64(v as f64),
        }
    }

    /// Lane access; a scalar is its own lane 0.
    pub fn lane(&self, i: usize) -> &Value {
        match self {
            Value::Vec(v) => &v[i],
            s => {
                assert_eq!(i, 0, "lane {i} of scalar");
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarType::I32.size_bytes(), 4);
        assert_eq!(ScalarType::I64.size_bytes(), 8);
        assert_eq!(ScalarType::F32.size_bytes(), 4);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
    }

    #[test]
    fn vector_type_width_matches_paper() {
        // The paper's VECTOR type is 128-bit: four f32 lanes.
        let v = Type::vector(ScalarType::F32, 4);
        assert_eq!(v.size_bytes(), 16);
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(Type::F32), Value::F32(0.0));
        let vz = Value::zero(Type::vector(ScalarType::I32, 3));
        assert_eq!(vz.ty(), Type::vector(ScalarType::I32, 3));
        assert_eq!(vz.lane(2), &Value::I32(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::I32(7).as_i64(), 7);
        assert_eq!(Value::F32(2.5).as_f64(), 2.5);
        assert!(Value::I64(1).as_bool());
        assert!(!Value::F64(0.0).as_bool());
        assert_eq!(Value::from_i64(ScalarType::I32, 300), Value::I32(300));
        assert_eq!(Value::from_f64(ScalarType::F64, 0.5), Value::F64(0.5));
    }

    #[test]
    fn value_type_roundtrip() {
        let v = Value::Vec(vec![Value::F32(1.0), Value::F32(2.0)].into_boxed_slice());
        assert_eq!(v.ty(), Type::vector(ScalarType::F32, 2));
        assert_eq!(v.lane(1), &Value::F32(2.0));
    }
}
