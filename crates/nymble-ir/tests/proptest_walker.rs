//! Property tests of the semantic engine: the walker and the gold
//! interpreter agree with direct Rust evaluation for randomly generated
//! programs, and synchronization semantics hold under arbitrary shapes.

use miniprop::{forall, Rng};
use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
use nymble_ir::{BinOp, KernelBuilder, MapDir, ScalarType, Type, Value};

/// A random straight-line integer expression over two inputs, evaluated in
/// parallel by the builder (IR) and directly in Rust.
#[derive(Clone, Debug)]
enum E {
    X,
    Y,
    Const(i32),
    Bin(BinOp, Box<E>, Box<E>),
}

const OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Min,
    BinOp::Max,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
];

fn arb_expr(g: &mut Rng, depth: usize) -> E {
    if depth == 0 || g.chance(35, 100) {
        match g.range_u32(0, 3) {
            0 => E::X,
            1 => E::Y,
            _ => E::Const(g.range_i64(-100, 100) as i32),
        }
    } else {
        E::Bin(
            *g.pick(&OPS),
            Box::new(arb_expr(g, depth - 1)),
            Box::new(arb_expr(g, depth - 1)),
        )
    }
}

fn eval_rust(e: &E, x: i64, y: i64) -> i64 {
    match e {
        E::X => x,
        E::Y => y,
        E::Const(c) => *c as i64,
        E::Bin(op, a, b) => {
            let (a, b) = (eval_rust(a, x, y), eval_rust(b, x, y));
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                _ => unreachable!(),
            }
        }
    }
}

fn lower(
    kb: &mut KernelBuilder,
    e: &E,
    x: nymble_ir::ExprId,
    y: nymble_ir::ExprId,
) -> nymble_ir::ExprId {
    match e {
        E::X => x,
        E::Y => y,
        E::Const(c) => kb.c_i64(*c as i64),
        E::Bin(op, a, b) => {
            let av = lower(kb, a, x, y);
            let bv = lower(kb, b, x, y);
            kb.bin(*op, av, bv)
        }
    }
}

#[test]
fn walker_matches_rust_eval() {
    forall(128, |g| {
        let e = arb_expr(g, 4);
        let x = g.range_i64(-1000, 1000);
        let y = g.range_i64(-1000, 1000);
        let mut kb = KernelBuilder::new("prop_expr", 1);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let xa = kb.scalar_arg("X", ScalarType::I64);
        let ya = kb.scalar_arg("Y", ScalarType::I64);
        let xe = kb.arg(xa);
        let ye = kb.arg(ya);
        let r = lower(&mut kb, &e, xe, ye);
        let zero = kb.c_i64(0);
        kb.store(out, zero, r);
        let k = kb.finish();
        let result = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vec![Value::I64(0)]),
                LaunchArg::Scalar(Value::I64(x)),
                LaunchArg::Scalar(Value::I64(y)),
            ],
        );
        assert_eq!(result.buffers[0][0].as_i64(), eval_rust(&e, x, y));
    });
}

#[test]
fn loop_sum_matches_closed_form() {
    forall(128, |g| {
        let start = g.range_i64(-50, 50);
        let trip = g.range_i64(0, 100);
        let step = g.range_i64(1, 7);
        let end = start + trip * step;
        let mut kb = KernelBuilder::new("prop_loop", 1);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let acc = kb.var("acc", Type::I64);
        let s = kb.c_i64(start);
        let e = kb.c_i64(end);
        let st = kb.c_i64(step);
        kb.for_each("i", s, e, st, |kb, i| {
            let cur = kb.get(acc);
            let sum = kb.add(cur, i);
            kb.set(acc, sum);
        });
        let a = kb.get(acc);
        let z = kb.c_i64(0);
        kb.store(out, z, a);
        let k = kb.finish();
        let result = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I64(0)])]);
        let expect: i64 = (0..trip).map(|n| start + n * step).sum();
        assert_eq!(result.buffers[0][0].as_i64(), expect);
    });
}

#[test]
fn critical_reduction_is_exact_for_any_thread_count() {
    forall(64, |g| {
        let threads = g.range_u32(1, 9);
        let reps = g.range_i64(1, 20);
        // Each thread adds its (tid+1) to a shared cell `reps` times inside
        // a critical; the result is order-independent in integers.
        let mut kb = KernelBuilder::new("prop_crit", threads);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::ToFrom);
        let n = kb.c_i64(reps);
        kb.for_range("r", n, |kb, _| {
            kb.critical(|kb| {
                let z = kb.c_i64(0);
                let cur = kb.load(out, z, Type::I64);
                let tid = kb.thread_id();
                let tid64 = kb.cast(ScalarType::I64, tid);
                let one = kb.c_i64(1);
                let t1 = kb.add(tid64, one);
                let upd = kb.add(cur, t1);
                let z2 = kb.c_i64(0);
                kb.store(out, z2, upd);
            });
        });
        let k = kb.finish();
        let result = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I64(0)])]);
        let expect: i64 = (1..=threads as i64).sum::<i64>() * reps;
        assert_eq!(result.buffers[0][0].as_i64(), expect);
    });
}

#[test]
fn vector_load_equals_scalar_loads() {
    forall(64, |g| {
        let len = g.range_usize(4, 64);
        let idx = (g.range_usize(0, 15) * 4).min(len - 4);
        let data: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
        let mut kb = KernelBuilder::new("prop_vec", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let i = kb.c_i64(idx as i64);
        let v = kb.load(a, i, Type::vector(ScalarType::F32, 4));
        let mut sum = kb.lane(v, 0);
        for l in 1..4 {
            let lane = kb.lane(v, l);
            sum = kb.add(sum, lane);
        }
        let z = kb.c_i64(0);
        kb.store(out, z, sum);
        let k = kb.finish();
        let vals: Vec<Value> = data.iter().map(|&x| Value::F32(x)).collect();
        let result = Interpreter::run(
            &k,
            &[
                LaunchArg::Buffer(vals),
                LaunchArg::Buffer(vec![Value::F32(0.0)]),
            ],
        );
        let got = buffer_as_f32(&result.buffers[1])[0];
        let expect: f32 = data[idx..idx + 4].iter().sum();
        assert!((got - expect).abs() < 1e-4);
    });
}

/// Constant folding + dead-assign elimination never change what a
/// kernel computes.
#[test]
fn optimization_preserves_semantics() {
    forall(128, |g| {
        let e = arb_expr(g, 4);
        let x = g.range_i64(-1000, 1000);
        let y = g.range_i64(-1000, 1000);
        let build = || {
            let mut kb = KernelBuilder::new("prop_opt", 1);
            let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
            let xa = kb.scalar_arg("X", ScalarType::I64);
            let ya = kb.scalar_arg("Y", ScalarType::I64);
            let xe = kb.arg(xa);
            let ye = kb.arg(ya);
            let r = lower(&mut kb, &e, xe, ye);
            // A dead temporary the optimizer should remove.
            let dead = kb.var("dead", nymble_ir::Type::I64);
            let c = kb.c_i64(123);
            kb.set(dead, c);
            let zero = kb.c_i64(0);
            kb.store(out, zero, r);
            kb.finish()
        };
        let baseline = build();
        let mut optimized = build();
        let (_stats, _removed) = nymble_ir::transform::optimize(&mut optimized);
        let launch = [
            LaunchArg::Buffer(vec![Value::I64(0)]),
            LaunchArg::Scalar(Value::I64(x)),
            LaunchArg::Scalar(Value::I64(y)),
        ];
        let a = Interpreter::run(&baseline, &launch);
        let b = Interpreter::run(&optimized, &launch);
        assert_eq!(a.buffers[0][0].as_i64(), b.buffers[0][0].as_i64());
        // The optimizer never *adds* work.
        assert!(b.ops.int_ops <= a.ops.int_ops);
    });
}
