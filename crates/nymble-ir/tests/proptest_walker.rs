//! Property tests of the semantic engine: the walker and the gold
//! interpreter agree with direct Rust evaluation for randomly generated
//! programs, and synchronization semantics hold under arbitrary shapes.

use nymble_ir::interp::{buffer_as_f32, Interpreter, LaunchArg};
use nymble_ir::{BinOp, KernelBuilder, MapDir, ScalarType, Type, Value};
use proptest::prelude::*;

/// A random straight-line integer expression over two inputs, evaluated in
/// parallel by the builder (IR) and directly in Rust.
#[derive(Clone, Debug)]
enum E {
    X,
    Y,
    Const(i32),
    Bin(BinOp, Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::X),
        Just(E::Y),
        (-100i32..100).prop_map(E::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Min),
                Just(BinOp::Max),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b)))
    })
}

fn eval_rust(e: &E, x: i64, y: i64) -> i64 {
    match e {
        E::X => x,
        E::Y => y,
        E::Const(c) => *c as i64,
        E::Bin(op, a, b) => {
            let (a, b) = (eval_rust(a, x, y), eval_rust(b, x, y));
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                _ => unreachable!(),
            }
        }
    }
}

fn lower(kb: &mut KernelBuilder, e: &E, x: nymble_ir::ExprId, y: nymble_ir::ExprId) -> nymble_ir::ExprId {
    match e {
        E::X => x,
        E::Y => y,
        E::Const(c) => kb.c_i64(*c as i64),
        E::Bin(op, a, b) => {
            let av = lower(kb, a, x, y);
            let bv = lower(kb, b, x, y);
            kb.bin(*op, av, bv)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn walker_matches_rust_eval(e in arb_expr(), x in -1000i64..1000, y in -1000i64..1000) {
        let mut kb = KernelBuilder::new("prop_expr", 1);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let xa = kb.scalar_arg("X", ScalarType::I64);
        let ya = kb.scalar_arg("Y", ScalarType::I64);
        let xe = kb.arg(xa);
        let ye = kb.arg(ya);
        let r = lower(&mut kb, &e, xe, ye);
        let zero = kb.c_i64(0);
        kb.store(out, zero, r);
        let k = kb.finish();
        let result = Interpreter::run(&k, &[
            LaunchArg::Buffer(vec![Value::I64(0)]),
            LaunchArg::Scalar(Value::I64(x)),
            LaunchArg::Scalar(Value::I64(y)),
        ]);
        prop_assert_eq!(result.buffers[0][0].as_i64(), eval_rust(&e, x, y));
    }

    #[test]
    fn loop_sum_matches_closed_form(
        start in -50i64..50,
        trip in 0i64..100,
        step in 1i64..7,
    ) {
        let end = start + trip * step;
        let mut kb = KernelBuilder::new("prop_loop", 1);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
        let acc = kb.var("acc", Type::I64);
        let s = kb.c_i64(start);
        let e = kb.c_i64(end);
        let st = kb.c_i64(step);
        kb.for_each("i", s, e, st, |kb, i| {
            let cur = kb.get(acc);
            let sum = kb.add(cur, i);
            kb.set(acc, sum);
        });
        let a = kb.get(acc);
        let z = kb.c_i64(0);
        kb.store(out, z, a);
        let k = kb.finish();
        let result = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I64(0)])]);
        let expect: i64 = (0..trip).map(|n| start + n * step).sum();
        prop_assert_eq!(result.buffers[0][0].as_i64(), expect);
    }

    #[test]
    fn critical_reduction_is_exact_for_any_thread_count(
        threads in 1u32..9,
        reps in 1i64..20,
    ) {
        // Each thread adds its (tid+1) to a shared cell `reps` times inside
        // a critical; the result is order-independent in integers.
        let mut kb = KernelBuilder::new("prop_crit", threads);
        let out = kb.buffer("OUT", ScalarType::I64, MapDir::ToFrom);
        let n = kb.c_i64(reps);
        kb.for_range("r", n, |kb, _| {
            kb.critical(|kb| {
                let z = kb.c_i64(0);
                let cur = kb.load(out, z, Type::I64);
                let tid = kb.thread_id();
                let tid64 = kb.cast(ScalarType::I64, tid);
                let one = kb.c_i64(1);
                let t1 = kb.add(tid64, one);
                let upd = kb.add(cur, t1);
                let z2 = kb.c_i64(0);
                kb.store(out, z2, upd);
            });
        });
        let k = kb.finish();
        let result = Interpreter::run(&k, &[LaunchArg::Buffer(vec![Value::I64(0)])]);
        let expect: i64 = (1..=threads as i64).sum::<i64>() * reps;
        prop_assert_eq!(result.buffers[0][0].as_i64(), expect);
    }

    #[test]
    fn vector_load_equals_scalar_loads(len in 4usize..64, idx in 0usize..15) {
        let idx = (idx * 4).min(len - 4);
        let data: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
        let mut kb = KernelBuilder::new("prop_vec", 1);
        let a = kb.buffer("A", ScalarType::F32, MapDir::To);
        let out = kb.buffer("OUT", ScalarType::F32, MapDir::From);
        let i = kb.c_i64(idx as i64);
        let v = kb.load(a, i, Type::vector(ScalarType::F32, 4));
        let mut sum = kb.lane(v, 0);
        for l in 1..4 {
            let lane = kb.lane(v, l);
            sum = kb.add(sum, lane);
        }
        let z = kb.c_i64(0);
        kb.store(out, z, sum);
        let k = kb.finish();
        let vals: Vec<Value> = data.iter().map(|&x| Value::F32(x)).collect();
        let result = Interpreter::run(&k, &[
            LaunchArg::Buffer(vals),
            LaunchArg::Buffer(vec![Value::F32(0.0)]),
        ]);
        let got = buffer_as_f32(&result.buffers[1])[0];
        let expect: f32 = data[idx..idx + 4].iter().sum();
        prop_assert!((got - expect).abs() < 1e-4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Constant folding + dead-assign elimination never change what a
    /// kernel computes.
    #[test]
    fn optimization_preserves_semantics(e in arb_expr(), x in -1000i64..1000, y in -1000i64..1000) {
        let build = || {
            let mut kb = KernelBuilder::new("prop_opt", 1);
            let out = kb.buffer("OUT", ScalarType::I64, MapDir::From);
            let xa = kb.scalar_arg("X", ScalarType::I64);
            let ya = kb.scalar_arg("Y", ScalarType::I64);
            let xe = kb.arg(xa);
            let ye = kb.arg(ya);
            let r = lower(&mut kb, &e, xe, ye);
            // A dead temporary the optimizer should remove.
            let dead = kb.var("dead", nymble_ir::Type::I64);
            let c = kb.c_i64(123);
            kb.set(dead, c);
            let zero = kb.c_i64(0);
            kb.store(out, zero, r);
            kb.finish()
        };
        let baseline = build();
        let mut optimized = build();
        let (_stats, _removed) = nymble_ir::transform::optimize(&mut optimized);
        let launch = [
            LaunchArg::Buffer(vec![Value::I64(0)]),
            LaunchArg::Scalar(Value::I64(x)),
            LaunchArg::Scalar(Value::I64(y)),
        ];
        let a = Interpreter::run(&baseline, &launch);
        let b = Interpreter::run(&optimized, &launch);
        prop_assert_eq!(a.buffers[0][0].as_i64(), b.buffers[0][0].as_i64());
        // The optimizer never *adds* work.
        prop_assert!(b.ops.int_ops <= a.ops.int_ops);
    }
}
