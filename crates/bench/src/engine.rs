//! # engine — work-stealing DAG scheduler for experiment sweeps
//!
//! A sweep (the GEMM version table, the π scaling study, an ablation grid)
//! is a dependency graph: compile kernels → run N simulations → per-run
//! analysis → cross-run tables. [`BatchEngine::run_graph`] executes a
//! [`TaskGraph`] of such nodes on a work-stealing worker pool while keeping
//! every observable output — tables, trace bundles, error reports —
//! **byte-identical to a serial run**:
//!
//! * each worker owns a deque; it pops its own front (LIFO, so a node it
//!   just released runs hot in cache) and steals from the *back* of a
//!   victim's deque when its own is empty;
//! * a node becomes runnable the instant its last dependency completes —
//!   the completing worker decrements each dependent's indegree and pushes
//!   newly released nodes onto its own deque;
//! * idle workers park on a condvar guarded by a queued/completed counter
//!   pair; the counters are updated under that same mutex *before* deque
//!   pushes, so no wakeup is ever lost and the queue accounting can never
//!   underflow;
//! * results land in a slot vector indexed by node-insertion order, so the
//!   returned reports (and everything reduced from them) never depend on
//!   which worker finished first;
//! * each node gets an isolated scratch directory (trace-pipeline spill
//!   files), so concurrent nodes never share mutable on-disk state;
//! * node failures are values ([`crate::BenchError`] inside
//!   [`NodeReport::outcome`]) and **dependents still run** — error policy
//!   (diagnostic table row vs. abort) belongs to the dependent, not the
//!   scheduler. A panicking node is recorded as [`BenchError::NodePanic`]
//!   so the graph drains, then the panic is re-raised.
//!
//! The flat [`BatchEngine::run`] API survives as a thin wrapper submitting
//! a graph of independent `Run` nodes. Everything is plain
//! `std::thread::scope` + `Mutex`/`Condvar` + atomics — no external
//! runtime — and the executor is workload-agnostic: the planned
//! `nymble-serve` daemon can schedule its jobs onto the same scheduler.

use crate::graph::{NodeCtx, NodeKind, NodeReport, NodeTask, TaskGraph};
use crate::BenchError;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-run context handed to each flat job closure (see [`BatchEngine::run`]).
#[derive(Clone, Debug)]
pub struct RunCtx {
    /// Submission index of this run (0-based, stable across worker counts).
    pub index: usize,
    /// Worker that executed the run (informational; never affects output).
    pub worker: usize,
    /// Private scratch directory for this run, created before the job
    /// starts and removed with the engine's scratch root afterwards. Used
    /// as the trace pipeline's spill directory so concurrent runs never
    /// interleave spill files.
    pub scratch_dir: PathBuf,
}

/// One schedulable independent run: a stable label plus the work itself.
pub struct RunSpec<'a, T> {
    /// Stable identifier used in tables and trace-bundle names; must not
    /// depend on scheduling.
    pub label: String,
    /// The run body. Receives this run's [`RunCtx`].
    #[allow(clippy::type_complexity)]
    pub task: Box<dyn FnOnce(&RunCtx) -> Result<T, BenchError> + Send + 'a>,
}

impl<'a, T> RunSpec<'a, T> {
    /// Build a spec from a label and a closure.
    pub fn new(
        label: impl Into<String>,
        task: impl FnOnce(&RunCtx) -> Result<T, BenchError> + Send + 'a,
    ) -> Self {
        RunSpec {
            label: label.into(),
            task: Box::new(task),
        }
    }
}

/// Outcome of one flat run, returned in submission order.
pub struct RunReport<T> {
    /// The spec's label.
    pub label: String,
    /// Submission index (equals this report's position in the result vec).
    pub index: usize,
    /// Worker that ran the job.
    pub worker: usize,
    /// Wall-clock time of the job body.
    pub wall: Duration,
    /// The run's value, or its typed failure.
    pub outcome: Result<T, BenchError>,
}

/// Scheduler-health counters for one graph execution.
#[derive(Clone, Debug)]
pub struct SchedStats {
    /// Workers the graph actually ran on (`jobs` clamped to node count).
    pub workers: usize,
    /// Nodes claimed from another worker's deque.
    pub steals: u64,
    /// Times a worker parked on the idle condvar.
    pub parks: u64,
    /// Nodes executed per worker (sums to the node count).
    pub executed: Vec<u64>,
    /// Wall-clock time each worker spent inside node bodies.
    pub busy: Vec<Duration>,
    /// End-to-end wall-clock time of the graph (spawn to join).
    pub makespan: Duration,
}

impl SchedStats {
    fn empty(workers: usize) -> Self {
        SchedStats {
            workers,
            steals: 0,
            parks: 0,
            executed: vec![0; workers],
            busy: vec![Duration::ZERO; workers],
            makespan: Duration::ZERO,
        }
    }

    /// Fraction of total worker-time spent inside node bodies:
    /// `Σ busy / (workers × makespan)`, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.makespan.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().map(|d| d.as_secs_f64()).sum();
        (busy / (self.workers as f64 * self.makespan.as_secs_f64())).min(1.0)
    }

    /// Total nodes executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// Result of executing a whole [`TaskGraph`]: one report per node, indexed
/// by node-insertion order, plus scheduler-health counters.
pub struct GraphRun<T> {
    /// One report per node, in node-insertion order.
    pub reports: Vec<NodeReport<T>>,
    /// Work-stealing statistics for this execution.
    pub stats: SchedStats,
}

/// Queue accounting shared by all workers, guarded by one mutex so the
/// parking test (`queued == 0 && completed < n`) is race-free.
struct Coord {
    /// Nodes currently sitting in some worker's deque.
    queued: usize,
    /// Nodes whose report has been recorded.
    completed: usize,
}

/// Process-unique scratch-root counter (no wall-clock involved, so batch
/// runs stay reproducible byte for byte).
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Work-stealing scheduler executing [`TaskGraph`]s (and flat [`RunSpec`]
/// lists) deterministically.
pub struct BatchEngine {
    jobs: usize,
    scratch_root: PathBuf,
}

impl BatchEngine {
    /// An engine with `jobs` workers (clamped to at least one). Scratch
    /// space lives under the system temp dir in a process-unique root.
    pub fn new(jobs: usize) -> Self {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let scratch_root =
            std::env::temp_dir().join(format!("hls-paraver-batch-{}-{}", std::process::id(), seq));
        BatchEngine {
            jobs: jobs.max(1),
            scratch_root,
        }
    }

    /// Number of worker threads this engine will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every spec as an independent `Run` node and return one
    /// [`RunReport`] per spec, **in submission order**, regardless of
    /// worker count or completion order.
    pub fn run<'a, T: Send + Sync + 'a>(&self, specs: Vec<RunSpec<'a, T>>) -> Vec<RunReport<T>> {
        self.run_with_stats(specs).0
    }

    /// [`BatchEngine::run`], also returning the scheduler statistics.
    pub fn run_with_stats<'a, T: Send + Sync + 'a>(
        &self,
        specs: Vec<RunSpec<'a, T>>,
    ) -> (Vec<RunReport<T>>, SchedStats) {
        let mut graph: TaskGraph<'a, T> = TaskGraph::new();
        for spec in specs {
            let task = spec.task;
            graph.add(
                NodeKind::Run,
                spec.label,
                &[],
                move |ctx: &NodeCtx<'_, T>| {
                    task(&RunCtx {
                        index: ctx.index,
                        worker: ctx.worker,
                        scratch_dir: ctx.scratch_dir.clone(),
                    })
                },
            );
        }
        let out = self.run_graph(graph);
        let reports = out
            .reports
            .into_iter()
            .map(|r| RunReport {
                label: r.label,
                index: r.index,
                worker: r.worker,
                wall: r.wall,
                outcome: r.outcome,
            })
            .collect();
        (reports, out.stats)
    }

    /// Execute a [`TaskGraph`]: every node runs exactly once, after all of
    /// its dependencies, on a pool of `jobs` work-stealing workers.
    /// Reports come back indexed by node-insertion order.
    ///
    /// If any node body panicked, the panic is re-raised here *after* the
    /// graph has drained (so sibling nodes still complete and report).
    pub fn run_graph<'a, T: Send + Sync>(&self, graph: TaskGraph<'a, T>) -> GraphRun<T> {
        let n = graph.nodes.len();
        let workers = self.jobs.min(n.max(1));
        if n == 0 {
            return GraphRun {
                reports: Vec::new(),
                stats: SchedStats::empty(workers),
            };
        }
        std::fs::create_dir_all(&self.scratch_root).expect("create batch scratch root");

        // Decompose the graph into executor state: forward edges, atomic
        // indegrees, one claim-once cell per node body, one result slot
        // per node.
        let mut deps_of: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut kinds: Vec<NodeKind> = Vec::with_capacity(n);
        // A claim-once cell: the node's label plus its boxed body.
        type Cell<'a, T> = Mutex<Option<(String, NodeTask<'a, T>)>>;
        let mut cells: Vec<Cell<'a, T>> = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots: Vec<usize> = Vec::new();
        let indegree: Vec<AtomicUsize> = graph
            .nodes
            .iter()
            .map(|node| AtomicUsize::new(node.deps.len()))
            .collect();
        for (i, node) in graph.nodes.into_iter().enumerate() {
            for &d in &node.deps {
                dependents[d].push(i);
            }
            if node.deps.is_empty() {
                roots.push(i);
            }
            deps_of.push(node.deps);
            kinds.push(node.kind);
            cells.push(Mutex::new(Some((node.label, node.task))));
        }
        let slots: Vec<OnceLock<NodeReport<T>>> = (0..n).map(|_| OnceLock::new()).collect();
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let coord = Mutex::new(Coord {
            queued: 0,
            completed: 0,
        });
        let idle = Condvar::new();
        let steals = AtomicU64::new(0);
        let parks = AtomicU64::new(0);
        let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

        // Seed the deques round-robin with the graph's roots. The count is
        // published before any worker spawns, so the accounting invariant
        // (coord.queued == Σ deque lengths, under the coord lock) holds
        // from the first instant.
        {
            for (k, &i) in roots.iter().enumerate() {
                deques[k % workers]
                    .lock()
                    .expect("deque poisoned")
                    .push_back(i);
            }
            coord.lock().expect("coord poisoned").queued = roots.len();
        }

        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..workers {
                let deques = &deques;
                let coord = &coord;
                let idle = &idle;
                let slots = &slots;
                let cells = &cells;
                let deps_of = &deps_of;
                let dependents = &dependents;
                let kinds = &kinds;
                let indegree = &indegree;
                let steals = &steals;
                let parks = &parks;
                let executed = &executed;
                let busy_ns = &busy_ns;
                let first_panic = &first_panic;
                let scratch_root = &self.scratch_root;
                s.spawn(move || loop {
                    // Own deque first (front: LIFO, freshly released nodes
                    // run while their inputs are hot), then steal from the
                    // back of the first non-empty victim.
                    let mut picked = deques[w].lock().expect("deque poisoned").pop_front();
                    if picked.is_none() && workers > 1 {
                        for off in 1..workers {
                            let v = (w + off) % workers;
                            if let Some(j) = deques[v].lock().expect("deque poisoned").pop_back() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                picked = Some(j);
                                break;
                            }
                        }
                    }
                    let i = match picked {
                        Some(i) => {
                            // The increment happened under the coord lock
                            // before the node was pushed, so this can
                            // never underflow.
                            coord.lock().expect("coord poisoned").queued -= 1;
                            i
                        }
                        None => {
                            let guard = coord.lock().expect("coord poisoned");
                            if guard.completed == n {
                                return;
                            }
                            if guard.queued > 0 {
                                // A node was published between our scan
                                // and this check — rescan.
                                continue;
                            }
                            // Nothing queued, graph not drained: every
                            // remaining node is blocked on one currently
                            // executing. Park until a completion.
                            parks.fetch_add(1, Ordering::Relaxed);
                            drop(idle.wait(guard).expect("coord poisoned"));
                            continue;
                        }
                    };

                    let (label, task) = cells[i]
                        .lock()
                        .expect("node cell poisoned")
                        .take()
                        .expect("node claimed twice");
                    let scratch_dir = scratch_root.join(format!("node-{i:04}"));
                    std::fs::create_dir_all(&scratch_dir).expect("create node scratch dir");
                    let ctx = NodeCtx {
                        index: i,
                        worker: w,
                        kind: kinds[i],
                        scratch_dir,
                        dep_ids: &deps_of[i],
                        slots,
                    };
                    let start = Instant::now();
                    let outcome = match catch_unwind(AssertUnwindSafe(|| task(&ctx))) {
                        Ok(res) => res,
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            let mut first = first_panic.lock().expect("panic slot poisoned");
                            if first.is_none() {
                                *first = Some(payload);
                            }
                            Err(BenchError::NodePanic {
                                label: label.clone(),
                                message,
                            })
                        }
                    };
                    let wall = start.elapsed();
                    busy_ns[w].fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
                    executed[w].fetch_add(1, Ordering::Relaxed);
                    let report = NodeReport {
                        label,
                        index: i,
                        worker: w,
                        kind: kinds[i],
                        wall,
                        outcome,
                    };
                    if slots[i].set(report).is_err() {
                        unreachable!("node {i} reported twice");
                    }

                    // Release dependents whose last dependency this was.
                    // AcqRel on the indegree pairs with the OnceLock write
                    // above: the releasing worker's slot store
                    // happens-before the released node's body.
                    let mut released: Vec<usize> = Vec::new();
                    for &d in &dependents[i] {
                        if indegree[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            released.push(d);
                        }
                    }
                    // Publish the accounting BEFORE the deque pushes (see
                    // the claim path above), then make the nodes visible
                    // and wake parked workers.
                    {
                        let mut guard = coord.lock().expect("coord poisoned");
                        guard.completed += 1;
                        guard.queued += released.len();
                    }
                    if !released.is_empty() {
                        let mut dq = deques[w].lock().expect("deque poisoned");
                        for &d in released.iter().rev() {
                            dq.push_front(d);
                        }
                    }
                    idle.notify_all();
                });
            }
        });
        let makespan = t0.elapsed();
        let _ = std::fs::remove_dir_all(&self.scratch_root);

        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            std::panic::resume_unwind(payload);
        }

        let reports: Vec<NodeReport<T>> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.into_inner()
                    .unwrap_or_else(|| panic!("node {i} produced no report"))
            })
            .collect();
        let stats = SchedStats {
            workers,
            steals: steals.into_inner(),
            parks: parks.into_inner(),
            executed: executed.into_iter().map(AtomicU64::into_inner).collect(),
            busy: busy_ns
                .into_iter()
                .map(|ns| Duration::from_nanos(ns.into_inner()))
                .collect(),
            makespan,
        };
        GraphRun { reports, stats }
    }
}

/// Best-effort rendering of a panic payload for [`BenchError::NodePanic`].
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use fpga_sim::SimError;

    #[test]
    fn results_come_back_in_submission_order() {
        let engine = BatchEngine::new(4);
        let specs: Vec<RunSpec<'_, usize>> = (0..32)
            .map(|i| {
                RunSpec::new(format!("job{i}"), move |ctx: &RunCtx| {
                    assert_eq!(ctx.index, i);
                    // Uneven work so completion order differs from
                    // submission order.
                    let spin = (31 - i) * 1000;
                    std::hint::black_box((0..spin).sum::<usize>());
                    Ok(i * 10)
                })
            })
            .collect();
        let reports = engine.run(specs);
        assert_eq!(reports.len(), 32);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.label, format!("job{i}"));
            assert_eq!(*r.outcome.as_ref().unwrap(), i * 10);
        }
    }

    #[test]
    fn a_failing_run_does_not_abort_the_sweep() {
        let engine = BatchEngine::new(2);
        let specs: Vec<RunSpec<'_, u32>> = (0..6)
            .map(|i| {
                RunSpec::new(format!("r{i}"), move |_: &RunCtx| {
                    if i == 3 {
                        Err(SimError::InvalidConfig("injected".into()).into())
                    } else {
                        Ok(i)
                    }
                })
            })
            .collect();
        let reports = engine.run(specs);
        assert_eq!(reports.len(), 6);
        assert!(reports[3].outcome.is_err());
        for (i, r) in reports.iter().enumerate() {
            if i != 3 {
                assert_eq!(*r.outcome.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    fn scratch_dirs_are_isolated_and_cleaned_up() {
        let engine = BatchEngine::new(3);
        let root = engine.scratch_root.clone();
        let specs: Vec<RunSpec<'_, PathBuf>> = (0..5)
            .map(|i| {
                RunSpec::new(format!("s{i}"), move |ctx: &RunCtx| {
                    assert!(ctx.scratch_dir.is_dir(), "scratch dir pre-created");
                    std::fs::write(ctx.scratch_dir.join("spill.tmp"), b"x").unwrap();
                    Ok(ctx.scratch_dir.clone())
                })
            })
            .collect();
        let reports = engine.run(specs);
        let dirs: Vec<_> = reports
            .iter()
            .map(|r| r.outcome.as_ref().unwrap().clone())
            .collect();
        for (i, d) in dirs.iter().enumerate() {
            for other in &dirs[i + 1..] {
                assert_ne!(d, other, "each run has a private dir");
            }
        }
        assert!(!root.exists(), "scratch root removed after the sweep");
    }

    #[test]
    fn borrowed_state_can_be_shared_across_jobs() {
        // RunSpec is lifetime-generic: jobs may borrow sweep-local state
        // (kernels, caches) without 'static gymnastics.
        let data = [1u64, 2, 3, 4];
        let engine = BatchEngine::new(2);
        let specs: Vec<RunSpec<'_, u64>> = data
            .iter()
            .enumerate()
            .map(|(i, v)| RunSpec::new(format!("b{i}"), move |_: &RunCtx| Ok(v * 2)))
            .collect();
        let out: Vec<u64> = engine
            .run(specs)
            .into_iter()
            .map(|r| r.outcome.unwrap())
            .collect();
        assert_eq!(out, vec![2, 4, 6, 8]);
    }

    #[test]
    fn dependencies_run_before_dependents_and_results_flow_through_ctx() {
        let engine = BatchEngine::new(4);
        let mut graph: TaskGraph<'_, u64> = TaskGraph::new();
        let a = graph.add(NodeKind::Compile, "a", &[], |_| Ok(2));
        let b = graph.add(NodeKind::Run, "b", &[a], |ctx| {
            Ok(ctx.dep(0).outcome.as_ref().unwrap() * 3)
        });
        let c = graph.add(NodeKind::Run, "c", &[a], |ctx| {
            Ok(ctx.dep(0).outcome.as_ref().unwrap() * 5)
        });
        let d = graph.add(NodeKind::Reduce, "d", &[b, c], |ctx| {
            assert_eq!(ctx.dep_count(), 2);
            assert_eq!(ctx.dep(0).label, "b");
            Ok(ctx.deps().map(|r| r.outcome.as_ref().unwrap()).sum())
        });
        let out = engine.run_graph(graph);
        assert_eq!(out.reports.len(), 4);
        assert_eq!(*out.reports[d.index()].outcome.as_ref().unwrap(), 16);
        assert_eq!(out.reports[a.index()].kind, NodeKind::Compile);
        assert_eq!(out.stats.total_executed(), 4);
    }

    #[test]
    fn a_failed_dependency_is_visible_to_its_dependent() {
        let engine = BatchEngine::new(2);
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        let run = graph.add(NodeKind::Run, "bad", &[], |_| {
            Err(SimError::InvalidConfig("injected".into()).into())
        });
        let reduce = graph.add(NodeKind::Reduce, "table", &[run], |ctx| {
            // Dependents always run; turning the failure into a row is
            // this node's decision.
            match &ctx.dep(0).outcome {
                Ok(_) => Ok("ok".to_string()),
                Err(e) => Ok(format!("{} failed: {e}", ctx.dep(0).label)),
            }
        });
        let out = engine.run_graph(graph);
        let row = out.reports[reduce.index()].outcome.as_ref().unwrap();
        assert!(row.starts_with("bad failed:"), "{row}");
    }

    #[test]
    fn a_panicking_node_drains_the_graph_then_reraises() {
        let engine = BatchEngine::new(2);
        let ran_sibling = std::sync::atomic::AtomicBool::new(false);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut graph: TaskGraph<'_, u32> = TaskGraph::new();
            graph.add(NodeKind::Run, "boom", &[], |_| panic!("kapow"));
            graph.add(NodeKind::Run, "sibling", &[], |_| {
                ran_sibling.store(true, Ordering::SeqCst);
                Ok(1)
            });
            engine.run_graph(graph)
        }));
        assert!(result.is_err(), "panic re-raised after the graph drained");
        assert!(
            ran_sibling.load(Ordering::SeqCst),
            "sibling still executed despite the panic"
        );
    }

    #[test]
    fn wide_diamond_graph_executes_every_node_once() {
        let engine = BatchEngine::new(8);
        let hits = AtomicU64::new(0);
        let mut graph: TaskGraph<'_, u64> = TaskGraph::new();
        let root = graph.add(NodeKind::Compile, "root", &[], |_| Ok(1));
        let mids: Vec<NodeId> = (0..40)
            .map(|i| {
                let hits = &hits;
                graph.add(NodeKind::Run, format!("m{i}"), &[root], move |ctx| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    Ok(ctx.dep(0).outcome.as_ref().unwrap() + i)
                })
            })
            .collect();
        let sink = graph.add(NodeKind::Reduce, "sink", &mids, |ctx| {
            Ok(ctx.deps().map(|r| r.outcome.as_ref().unwrap()).sum())
        });
        let out = engine.run_graph(graph);
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        // Σ (1 + i) for i in 0..40
        assert_eq!(*out.reports[sink.index()].outcome.as_ref().unwrap(), 820);
        assert_eq!(out.stats.total_executed(), 42);
        assert!(out.stats.makespan > Duration::ZERO);
    }
}
