//! # engine — parallel batch-run scheduler for experiment sweeps
//!
//! A sweep (the GEMM version table, the π scaling study, an ablation grid)
//! is a list of independent simulator runs. [`BatchEngine`] executes such a
//! list on a fixed pool of worker threads while keeping every observable
//! output — tables, trace bundles, error reports — **byte-identical to a
//! serial run**:
//!
//! * jobs are claimed from a shared queue in submission order, but results
//!   are collected into a slot vector indexed by submission order, so the
//!   returned `Vec` never depends on which worker finished first;
//! * each run gets its own [`RunCtx`] with an isolated scratch directory
//!   (for trace-pipeline spill files), so concurrent runs never share
//!   mutable on-disk state;
//! * run failures are values ([`crate::BenchError`] inside
//!   [`RunReport::outcome`]), not panics — one deadlocked configuration
//!   must not abort the remaining ninety-nine runs of a sweep;
//! * compilation is shared through [`nymble_hls::AccelCache`] by the
//!   closures themselves (see [`crate::sweep`]), so adding workers never
//!   repeats the expensive HLS front-end work.
//!
//! The pool is plain `std::thread::scope` + `Mutex<VecDeque>` + an mpsc
//! results channel — no external runtime — mirroring the streaming trace
//! pipeline's single-worker design from `hls_profiling::pipeline`.

use crate::BenchError;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Per-run context handed to each job closure.
#[derive(Clone, Debug)]
pub struct RunCtx {
    /// Submission index of this run (0-based, stable across worker counts).
    pub index: usize,
    /// Worker that executed the run (informational; never affects output).
    pub worker: usize,
    /// Private scratch directory for this run, created before the job
    /// starts and removed with the engine's scratch root afterwards. Used
    /// as the trace pipeline's spill directory so concurrent runs never
    /// interleave spill files.
    pub scratch_dir: PathBuf,
}

/// One schedulable run: a stable label plus the work itself.
pub struct RunSpec<'a, T> {
    /// Stable identifier used in tables and trace-bundle names; must not
    /// depend on scheduling.
    pub label: String,
    /// The run body. Receives this run's [`RunCtx`].
    #[allow(clippy::type_complexity)]
    pub task: Box<dyn FnOnce(&RunCtx) -> Result<T, BenchError> + Send + 'a>,
}

impl<'a, T> RunSpec<'a, T> {
    /// Build a spec from a label and a closure.
    pub fn new(
        label: impl Into<String>,
        task: impl FnOnce(&RunCtx) -> Result<T, BenchError> + Send + 'a,
    ) -> Self {
        RunSpec {
            label: label.into(),
            task: Box::new(task),
        }
    }
}

/// Outcome of one run, returned in submission order.
pub struct RunReport<T> {
    /// The spec's label.
    pub label: String,
    /// Submission index (equals this report's position in the result vec).
    pub index: usize,
    /// Worker that ran the job.
    pub worker: usize,
    /// Wall-clock time of the job body.
    pub wall: Duration,
    /// The run's value, or its typed failure.
    pub outcome: Result<T, BenchError>,
}

/// Process-unique scratch-root counter (no wall-clock involved, so batch
/// runs stay reproducible byte for byte).
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Fixed-size worker pool executing [`RunSpec`] lists deterministically.
pub struct BatchEngine {
    jobs: usize,
    scratch_root: PathBuf,
}

impl BatchEngine {
    /// An engine with `jobs` workers (clamped to at least one). Scratch
    /// space lives under the system temp dir in a process-unique root.
    pub fn new(jobs: usize) -> Self {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let scratch_root =
            std::env::temp_dir().join(format!("hls-paraver-batch-{}-{}", std::process::id(), seq));
        BatchEngine {
            jobs: jobs.max(1),
            scratch_root,
        }
    }

    /// Number of worker threads this engine will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every spec and return one [`RunReport`] per spec, **in
    /// submission order**, regardless of worker count or completion order.
    pub fn run<'a, T: Send>(&self, specs: Vec<RunSpec<'a, T>>) -> Vec<RunReport<T>> {
        let n = specs.len();
        if n == 0 {
            return Vec::new();
        }
        std::fs::create_dir_all(&self.scratch_root).expect("create batch scratch root");

        let queue: Mutex<VecDeque<(usize, RunSpec<'a, T>)>> =
            Mutex::new(specs.into_iter().enumerate().collect());
        let (tx, rx) = mpsc::channel::<RunReport<T>>();

        let workers = self.jobs.min(n);
        std::thread::scope(|s| {
            for worker in 0..workers {
                let queue = &queue;
                let tx = tx.clone();
                let scratch_root = &self.scratch_root;
                s.spawn(move || loop {
                    let job = queue.lock().expect("job queue poisoned").pop_front();
                    let Some((index, spec)) = job else { break };
                    let ctx = RunCtx {
                        index,
                        worker,
                        scratch_dir: scratch_root.join(format!("run-{index:04}")),
                    };
                    std::fs::create_dir_all(&ctx.scratch_dir).expect("create run scratch dir");
                    let t0 = Instant::now();
                    let outcome = (spec.task)(&ctx);
                    let report = RunReport {
                        label: spec.label,
                        index,
                        worker,
                        wall: t0.elapsed(),
                        outcome,
                    };
                    if tx.send(report).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Ordered collector: slot by submission index.
            let mut slots: Vec<Option<RunReport<T>>> = (0..n).map(|_| None).collect();
            for report in rx {
                let idx = report.index;
                slots[idx] = Some(report);
            }
            let _ = std::fs::remove_dir_all(&self.scratch_root);
            slots
                .into_iter()
                .enumerate()
                .map(|(i, r)| r.unwrap_or_else(|| panic!("run {i} produced no report")))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::SimError;

    #[test]
    fn results_come_back_in_submission_order() {
        let engine = BatchEngine::new(4);
        let specs: Vec<RunSpec<'_, usize>> = (0..32)
            .map(|i| {
                RunSpec::new(format!("job{i}"), move |ctx: &RunCtx| {
                    assert_eq!(ctx.index, i);
                    // Uneven work so completion order differs from
                    // submission order.
                    let spin = (31 - i) * 1000;
                    std::hint::black_box((0..spin).sum::<usize>());
                    Ok(i * 10)
                })
            })
            .collect();
        let reports = engine.run(specs);
        assert_eq!(reports.len(), 32);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.label, format!("job{i}"));
            assert_eq!(*r.outcome.as_ref().unwrap(), i * 10);
        }
    }

    #[test]
    fn a_failing_run_does_not_abort_the_sweep() {
        let engine = BatchEngine::new(2);
        let specs: Vec<RunSpec<'_, u32>> = (0..6)
            .map(|i| {
                RunSpec::new(format!("r{i}"), move |_: &RunCtx| {
                    if i == 3 {
                        Err(SimError::InvalidConfig("injected".into()).into())
                    } else {
                        Ok(i)
                    }
                })
            })
            .collect();
        let reports = engine.run(specs);
        assert_eq!(reports.len(), 6);
        assert!(reports[3].outcome.is_err());
        for (i, r) in reports.iter().enumerate() {
            if i != 3 {
                assert_eq!(*r.outcome.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    fn scratch_dirs_are_isolated_and_cleaned_up() {
        let engine = BatchEngine::new(3);
        let root = engine.scratch_root.clone();
        let specs: Vec<RunSpec<'_, PathBuf>> = (0..5)
            .map(|i| {
                RunSpec::new(format!("s{i}"), move |ctx: &RunCtx| {
                    assert!(ctx.scratch_dir.is_dir(), "scratch dir pre-created");
                    std::fs::write(ctx.scratch_dir.join("spill.tmp"), b"x").unwrap();
                    Ok(ctx.scratch_dir.clone())
                })
            })
            .collect();
        let reports = engine.run(specs);
        let dirs: Vec<_> = reports
            .iter()
            .map(|r| r.outcome.as_ref().unwrap().clone())
            .collect();
        for (i, d) in dirs.iter().enumerate() {
            for other in &dirs[i + 1..] {
                assert_ne!(d, other, "each run has a private dir");
            }
        }
        assert!(!root.exists(), "scratch root removed after the sweep");
    }

    #[test]
    fn borrowed_state_can_be_shared_across_jobs() {
        // RunSpec is lifetime-generic: jobs may borrow sweep-local state
        // (kernels, caches) without 'static gymnastics.
        let data = [1u64, 2, 3, 4];
        let engine = BatchEngine::new(2);
        let specs: Vec<RunSpec<'_, u64>> = data
            .iter()
            .enumerate()
            .map(|(i, v)| RunSpec::new(format!("b{i}"), move |_: &RunCtx| Ok(v * 2)))
            .collect();
        let out: Vec<u64> = engine
            .run(specs)
            .into_iter()
            .map(|r| r.outcome.unwrap())
            .collect();
        assert_eq!(out, vec![2, 4, 6, 8]);
    }
}
