//! Tiny command-line flag parser shared by the `repro_*` binaries
//! (stand-in for clap, which this build environment cannot fetch).
//!
//! Flags are `--name value` or `--name=value` pairs; unknown flags are
//! ignored so the binaries stay forgiving about each other's options.

use nymble_hls::{ProbeMode, DEFAULT_PROBE_BUDGET_ALMS};
use nymble_lint::LintLevel;
use std::path::PathBuf;

/// Parsed process arguments.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture `std::env::args()`.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().collect(),
        }
    }

    /// For tests: parse an explicit argument list.
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// The value of `flag`, accepting both `--flag value` and
    /// `--flag=value` spellings.
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        for (i, a) in self.raw.iter().enumerate() {
            if a == flag {
                return self.raw.get(i + 1).map(|s| s.as_str());
            }
            if let Some(v) = a.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
                return Some(v);
            }
        }
        None
    }

    /// The `--lint` gate level: absent means [`LintLevel::Off`], bare
    /// `--lint` means [`LintLevel::Deny`], and `--lint=LEVEL` /
    /// `--lint LEVEL` select one of `deny`, `warn`, `off`. An unknown
    /// level is an error (so a typo'd gate never silently disables it).
    pub fn lint_level(&self) -> Result<LintLevel, String> {
        for (i, a) in self.raw.iter().enumerate() {
            if let Some(v) = a.strip_prefix("--lint=") {
                return LintLevel::parse(v)
                    .ok_or_else(|| format!("--lint: unknown level `{v}` (deny, warn or off)"));
            }
            if a == "--lint" {
                // `--lint deny` selects a level; a bare `--lint` (next
                // token is another flag or nothing) means `deny`.
                if let Some(l) = self.raw.get(i + 1).and_then(|n| LintLevel::parse(n)) {
                    return Ok(l);
                }
                return Ok(LintLevel::Deny);
            }
        }
        Ok(LintLevel::Off)
    }

    /// The `--perf-lint` gate level for the `NP0xx` performance
    /// diagnostics: absent means [`LintLevel::Off`], bare `--perf-lint`
    /// means [`LintLevel::Warn`] (performance findings are advisory, so
    /// the bare flag reports rather than refuses — unlike `--lint`, whose
    /// correctness findings default to `deny`), and `--perf-lint=LEVEL` /
    /// `--perf-lint LEVEL` select one of `deny`, `warn`, `off`.
    pub fn perf_lint_level(&self) -> Result<LintLevel, String> {
        for (i, a) in self.raw.iter().enumerate() {
            if let Some(v) = a.strip_prefix("--perf-lint=") {
                return LintLevel::parse(v).ok_or_else(|| {
                    format!("--perf-lint: unknown level `{v}` (deny, warn or off)")
                });
            }
            if a == "--perf-lint" {
                if let Some(l) = self.raw.get(i + 1).and_then(|n| LintLevel::parse(n)) {
                    return Ok(l);
                }
                return Ok(LintLevel::Warn);
            }
        }
        Ok(LintLevel::Off)
    }

    /// `--flag N` as `u32`.
    pub fn u32(&self, flag: &str) -> Option<u32> {
        self.value_of(flag).and_then(|v| v.parse().ok())
    }

    /// `--flag N` as `u64`.
    pub fn u64(&self, flag: &str) -> Option<u64> {
        self.value_of(flag).and_then(|v| v.parse().ok())
    }

    /// `--flag N` as `i64`.
    pub fn i64(&self, flag: &str) -> Option<i64> {
        self.value_of(flag).and_then(|v| v.parse().ok())
    }

    /// `--flag PATH`.
    pub fn path(&self, flag: &str) -> Option<PathBuf> {
        self.value_of(flag).map(PathBuf::from)
    }

    /// The `--jobs N` worker count, defaulting to the machine's available
    /// parallelism. `--jobs 0` and unparsable values are typed errors —
    /// never a silent clamp — mirroring `SimConfig::validate()`.
    pub fn jobs(&self) -> Result<usize, String> {
        match self.value_of("--jobs") {
            None => Ok(default_jobs()),
            Some(v) => match v.parse::<usize>() {
                Ok(0) => Err("--jobs: worker count must be at least 1 (got 0)".to_string()),
                Ok(n) => Ok(n),
                Err(_) => Err(format!("--jobs: invalid worker count `{v}`")),
            },
        }
    }

    /// The `--mode` selector: `cycle` (default, the event-driven
    /// cycle-level simulator) or `analytical` (the roofline fast mode).
    /// An unknown mode is an error, never a silent fallback.
    pub fn mode(&self) -> Result<Mode, String> {
        match self.value_of("--mode") {
            None | Some("cycle") => Ok(Mode::Cycle),
            Some("analytical") => Ok(Mode::Analytical),
            Some(m) => Err(format!("--mode: unknown mode `{m}` (cycle or analytical)")),
        }
    }

    /// The `--profile` selector: absent means [`ProfileMode::Fixed`] (the
    /// paper's hand-chosen counter set), bare `--profile` or
    /// `--profile=auto` enables the auto-probe plan at the default budget,
    /// and `--profile=auto,budget=N` sets an explicit ALM budget for the
    /// knapsack pass. A zero budget or an unknown mode is a typed error,
    /// never a silent fallback (so `budget=0` exits cleanly instead of
    /// panicking inside the profiling unit).
    pub fn profile(&self) -> Result<ProfileMode, String> {
        fn parse(v: &str) -> Result<ProfileMode, String> {
            match v {
                "fixed" => Ok(ProfileMode::Fixed),
                "auto" => Ok(ProfileMode::Auto {
                    budget_alms: DEFAULT_PROBE_BUDGET_ALMS,
                }),
                _ => match v.strip_prefix("auto,budget=") {
                    Some(b) => match b.parse::<u32>() {
                        Ok(0) => Err("--profile: a 0-ALM budget selects nothing (one \
                                      counter costs ~30 ALMs plus ~4 per thread)"
                            .to_string()),
                        Ok(n) => Ok(ProfileMode::Auto { budget_alms: n }),
                        Err(_) => Err(format!("--profile: invalid budget `{b}`")),
                    },
                    None => Err(format!(
                        "--profile: unknown mode `{v}` (fixed or auto[,budget=N])"
                    )),
                },
            }
        }
        for (i, a) in self.raw.iter().enumerate() {
            if let Some(v) = a.strip_prefix("--profile=") {
                return parse(v);
            }
            if a == "--profile" {
                // `--profile auto,budget=N` selects a mode; a bare
                // `--profile` (next token is another flag or nothing)
                // means auto at the default budget.
                return match self.raw.get(i + 1).map(|s| s.as_str()) {
                    Some(n) if !n.starts_with("--") => parse(n),
                    _ => Ok(ProfileMode::Auto {
                        budget_alms: DEFAULT_PROBE_BUDGET_ALMS,
                    }),
                };
            }
        }
        Ok(ProfileMode::Fixed)
    }
}

/// How the repro binaries instrument the design: the paper's fixed
/// counter set, or the auto-probe plan selected by the budgeted
/// tree-knapsack pass over the static region tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileMode {
    /// The hand-chosen default: every event counter, no region probes.
    Fixed,
    /// `--profile=auto[,budget=N]`: counters and region probes selected
    /// at compile time against an ALM budget.
    Auto {
        /// ALM budget handed to the knapsack pass.
        budget_alms: u32,
    },
}

impl ProfileMode {
    /// The [`ProbeMode`] this selector puts into the HLS config.
    pub fn probe(self) -> ProbeMode {
        match self {
            ProfileMode::Fixed => ProbeMode::Off,
            ProfileMode::Auto { budget_alms } => ProbeMode::Auto { budget_alms },
        }
    }

    /// Stable name, as written into perf snapshots.
    pub fn name(self) -> &'static str {
        match self {
            ProfileMode::Fixed => "fixed",
            ProfileMode::Auto { .. } => "auto",
        }
    }
}

/// How a repro binary obtains its performance numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Event-driven cycle-level simulation (exact, slow).
    Cycle,
    /// Static roofline estimation (`fpga_sim::analytic`, microseconds).
    Analytical,
}

impl Mode {
    /// Stable name, as written into perf snapshots.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Cycle => "cycle",
            Mode::Analytical => "analytical",
        }
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::parse()
    }
}

/// Default worker count: one worker per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_vec(s.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_parse_and_missing_flags_default() {
        let a = args(&["prog", "--dim", "64", "--out", "/tmp/x", "--jobs", "3"]);
        assert_eq!(a.u32("--dim"), Some(64));
        assert_eq!(a.i64("--dim"), Some(64));
        assert_eq!(a.path("--out"), Some(PathBuf::from("/tmp/x")));
        assert_eq!(a.jobs(), Ok(3));
        assert_eq!(a.u32("--threads"), None);
    }

    #[test]
    fn equals_style_flags_parse() {
        let a = args(&["prog", "--dim=64", "--out=/tmp/x"]);
        assert_eq!(a.u32("--dim"), Some(64));
        assert_eq!(a.path("--out"), Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn lint_flag_spellings() {
        assert_eq!(args(&["prog"]).lint_level(), Ok(LintLevel::Off));
        assert_eq!(args(&["prog", "--lint"]).lint_level(), Ok(LintLevel::Deny));
        assert_eq!(
            args(&["prog", "--lint", "--out", "x"]).lint_level(),
            Ok(LintLevel::Deny)
        );
        assert_eq!(
            args(&["prog", "--lint", "warn"]).lint_level(),
            Ok(LintLevel::Warn)
        );
        assert_eq!(
            args(&["prog", "--lint=off"]).lint_level(),
            Ok(LintLevel::Off)
        );
        assert!(args(&["prog", "--lint=nope"]).lint_level().is_err());
    }

    #[test]
    fn perf_lint_flag_spellings() {
        // Absent → off; bare → warn (perf findings are advisory).
        assert_eq!(args(&["prog"]).perf_lint_level(), Ok(LintLevel::Off));
        assert_eq!(
            args(&["prog", "--perf-lint"]).perf_lint_level(),
            Ok(LintLevel::Warn)
        );
        assert_eq!(
            args(&["prog", "--perf-lint", "--out", "x"]).perf_lint_level(),
            Ok(LintLevel::Warn)
        );
        assert_eq!(
            args(&["prog", "--perf-lint", "deny"]).perf_lint_level(),
            Ok(LintLevel::Deny)
        );
        assert_eq!(
            args(&["prog", "--perf-lint=off"]).perf_lint_level(),
            Ok(LintLevel::Off)
        );
        assert!(args(&["prog", "--perf-lint=nope"])
            .perf_lint_level()
            .is_err());
        // The two gates parse independently.
        let a = args(&["prog", "--lint=deny", "--perf-lint=warn"]);
        assert_eq!(a.lint_level(), Ok(LintLevel::Deny));
        assert_eq!(a.perf_lint_level(), Ok(LintLevel::Warn));
    }

    #[test]
    fn jobs_rejects_zero_and_garbage_and_defaults_to_parallelism() {
        let zero = args(&["prog", "--jobs", "0"]).jobs();
        assert!(zero.is_err(), "--jobs 0 must be a typed error, not a clamp");
        assert!(zero.unwrap_err().contains("at least 1"));
        assert!(args(&["prog", "--jobs", "many"]).jobs().is_err());
        assert!(args(&["prog", "--jobs", "-2"]).jobs().is_err());
        assert_eq!(args(&["prog", "--jobs=8"]).jobs(), Ok(8));
        assert_eq!(args(&["prog"]).jobs(), Ok(default_jobs()));
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn profile_flag_spellings() {
        assert_eq!(args(&["prog"]).profile(), Ok(ProfileMode::Fixed));
        assert_eq!(
            args(&["prog", "--profile=fixed"]).profile(),
            Ok(ProfileMode::Fixed)
        );
        let auto_default = ProfileMode::Auto {
            budget_alms: DEFAULT_PROBE_BUDGET_ALMS,
        };
        assert_eq!(args(&["prog", "--profile"]).profile(), Ok(auto_default));
        assert_eq!(
            args(&["prog", "--profile", "--out", "x"]).profile(),
            Ok(auto_default)
        );
        assert_eq!(
            args(&["prog", "--profile=auto"]).profile(),
            Ok(auto_default)
        );
        assert_eq!(
            args(&["prog", "--profile=auto,budget=512"]).profile(),
            Ok(ProfileMode::Auto { budget_alms: 512 })
        );
        assert_eq!(
            args(&["prog", "--profile", "auto,budget=512"]).profile(),
            Ok(ProfileMode::Auto { budget_alms: 512 })
        );
    }

    #[test]
    fn profile_rejects_zero_budget_and_garbage() {
        // The acceptance case: `budget=0` is a clean CLI error, never a
        // panic inside the profiling unit.
        let zero = args(&["prog", "--profile=auto,budget=0"]).profile();
        assert!(zero.is_err());
        assert!(zero.unwrap_err().contains("selects nothing"));
        assert!(args(&["prog", "--profile=auto,budget=lots"])
            .profile()
            .is_err());
        assert!(args(&["prog", "--profile=sometimes"]).profile().is_err());
        assert!(args(&["prog", "--profile", "auto,budget=0"])
            .profile()
            .is_err());
    }

    #[test]
    fn mode_flag_spellings() {
        assert_eq!(args(&["prog"]).mode(), Ok(Mode::Cycle));
        assert_eq!(args(&["prog", "--mode", "cycle"]).mode(), Ok(Mode::Cycle));
        assert_eq!(
            args(&["prog", "--mode=analytical"]).mode(),
            Ok(Mode::Analytical)
        );
        assert!(args(&["prog", "--mode", "fast"]).mode().is_err());
    }
}
