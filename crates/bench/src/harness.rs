//! Minimal wall-clock bench harness (stand-in for Criterion, which needs a
//! crates.io fetch this build environment does not have).
//!
//! Each benchmark runs a warm-up iteration and then `samples` timed
//! iterations, printing min/median/max to stderr in a grep-friendly
//! format:
//!
//! ```text
//! [bench] group/name            median 12.345 ms  (min 11.9, max 14.0, n=10)
//! ```
//!
//! Use [`std::hint::black_box`] on inputs/outputs as with Criterion.

use std::time::{Duration, Instant};

/// A named group of benchmarks (mirrors Criterion's `benchmark_group`).
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// A group whose benchmarks each take `samples` timed iterations.
    pub fn new(name: &str, samples: usize) -> Self {
        Group {
            name: name.to_string(),
            samples: samples.max(1),
        }
    }

    /// Time `f`, discarding its result, and print the statistics. Returns
    /// the median for callers that assert on it.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        let _warmup = std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        eprintln!(
            "[bench] {:<40} median {:>10}  (min {}, max {}, n={})",
            format!("{}/{}", self.name, name),
            fmt_duration(median),
            fmt_duration(times[0]),
            fmt_duration(*times.last().unwrap()),
            self.samples,
        );
        median
    }
}

/// Times one repro-binary invocation end to end and turns it into a
/// machine-readable [`PerfSnapshot`](crate::snapshot::PerfSnapshot) (the
/// `--bench-json` path).
///
/// Start it first thing in `main`, run the workload, then `finish` with
/// the total simulated cycles the binary produced.
pub struct SnapshotTimer {
    start: Instant,
}

impl SnapshotTimer {
    /// Start timing now.
    pub fn start() -> Self {
        SnapshotTimer {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`SnapshotTimer::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Close the measured section: wall time, throughput and peak RSS.
    pub fn finish(
        &self,
        binary: &str,
        mode: crate::args::Mode,
        sim_cycles: u64,
    ) -> crate::snapshot::PerfSnapshot {
        crate::snapshot::PerfSnapshot::new(binary, mode.name(), self.elapsed_seconds(), sim_cycles)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_a_positive_median() {
        let g = Group::new("harness", 3);
        let mut n = 0u64;
        let med = g.bench("spin", || {
            n += 1;
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert!(n >= 4, "warm-up plus 3 samples");
        assert!(med > Duration::ZERO);
    }
}
