//! # sweep — multi-run experiment orchestration on the batch engine
//!
//! The deterministic middle layer between the [`crate::engine`] scheduler
//! and the `repro_*` binaries: it turns an experiment description (which
//! GEMM versions, which π problem sizes, where the trace bundles go) into
//! [`RunSpec`]s, shares one [`AccelCache`] across all workers so each
//! kernel is compiled exactly once per sweep, and renders the result tables
//! from the **collected, submission-ordered** reports — so the table text
//! and the trace bundles are byte-identical at `--jobs 1` and `--jobs 8`.
//!
//! Each run streams its trace through the background pipeline of
//! `hls_profiling::pipeline` with a run-private spill directory (from
//! [`RunCtx::scratch_dir`]) and a *tee* sink: records go to the
//! `.prv`/`.pcf`/`.row` bundle on disk and into an in-memory vector for the
//! figure rendering the binaries do afterwards.
//!
//! Simulator failures (e.g. a typed [`fpga_sim::SimError::Deadlock`]) are
//! carried in [`RunReport::outcome`] and rendered as table diagnostics —
//! one bad configuration never aborts the rest of a sweep.

use crate::engine::{BatchEngine, RunCtx, RunReport, RunSpec};
use crate::{gemm_launch, pi_launch, run_profiled_streaming_with, BenchError, ProfiledRun};
use fpga_sim::SimConfig;
use hls_profiling::{PipelineConfig, ProfilingConfig, SinkFactory, TraceData};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_hls::accel::HlsConfig;
use nymble_hls::{AccelCache, CacheStats};
use nymble_ir::Kernel;
use paraver::analysis::StateProfile;
use paraver::{states, Record, TraceError, TraceSink};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A [`TraceSink`] that forwards every record to an optional on-disk
/// bundle writer while collecting a copy in memory for figure rendering.
struct TeeSink {
    bundle: Option<paraver::prv::BundleWriter>,
    store: Arc<Mutex<Vec<Record>>>,
}

impl TraceSink for TeeSink {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.store
            .lock()
            .expect("record store poisoned")
            .push(r.clone());
        match &mut self.bundle {
            Some(w) => w.push(r),
            None => Ok(()),
        }
    }

    fn close(&mut self) -> Result<(), TraceError> {
        match &mut self.bundle {
            Some(w) => w.close(),
            None => Ok(()),
        }
    }
}

/// Sink factory streaming into `<stem>.prv/.pcf/.row` (when `stem` is
/// given) while teeing every record into `store`.
pub fn collecting_bundle_sink(
    stem: Option<PathBuf>,
    store: Arc<Mutex<Vec<Record>>>,
) -> SinkFactory {
    Box::new(move |meta| {
        let bundle = match stem {
            Some(stem) => Some(paraver::prv::BundleWriter::create(
                &stem,
                meta,
                &paraver::states::defs(),
                &paraver::events::defs(),
            )?),
            None => None,
        };
        Ok(Box::new(TeeSink { bundle, store }) as Box<dyn TraceSink + Send>)
    })
}

/// Sweep-wide shared state each run executes against: the compile cache
/// and the simulator/profiler/pipeline configuration.
struct SweepEnv<'a> {
    cache: &'a AccelCache,
    hls: &'a HlsConfig,
    sim: &'a SimConfig,
    prof: &'a ProfilingConfig,
    pipeline: &'a PipelineConfig,
}

/// Run one kernel through the streaming pipeline with a run-private spill
/// dir, producing a [`ProfiledRun`] whose records were collected by the tee
/// sink (and whose bundle, if `stem` is given, is already on disk).
fn profiled_streaming_run(
    env: &SweepEnv<'_>,
    kernel: &Kernel,
    stem: Option<PathBuf>,
    launch: &[fpga_sim::memimg::LaunchArg],
    ctx: &RunCtx,
) -> Result<ProfiledRun, BenchError> {
    let store = Arc::new(Mutex::new(Vec::new()));
    let pipe = PipelineConfig {
        spill_dir: Some(ctx.scratch_dir.clone()),
        ..env.pipeline.clone()
    };
    let (result, report) = run_profiled_streaming_with(
        env.cache,
        kernel,
        env.hls,
        env.sim,
        env.prof,
        pipe,
        collecting_bundle_sink(stem, store.clone()),
        launch,
    )?;
    let records = std::mem::take(&mut *store.lock().expect("record store poisoned"));
    let trace = TraceData {
        records,
        meta: report.meta.clone(),
        flushed_bytes: report.flushed_bytes,
        flush_count: report.flush_count,
    };
    Ok(ProfiledRun {
        result,
        trace,
        accel: env.cache.try_get_or_compile(kernel, env.hls)?,
    })
}

/// Configuration of the GEMM version sweep (§V-C).
pub struct GemmSweepConfig {
    pub params: GemmParams,
    /// HLS compile options, including the `nymble-lint` gate level; part of
    /// the compile-cache key.
    pub hls: HlsConfig,
    pub sim: SimConfig,
    pub prof: ProfilingConfig,
    pub pipeline: PipelineConfig,
    /// Where trace bundles go (`gemm_<dim>_<kernel>` stems); `None` skips
    /// bundle output.
    pub out: Option<PathBuf>,
    /// Worker count for the batch engine.
    pub jobs: usize,
}

/// Result of a GEMM sweep: one report per [`GemmVersion::ALL`] entry, in
/// that order, plus the compile-cache counters.
pub struct GemmSweep {
    pub runs: Vec<(GemmVersion, RunReport<ProfiledRun>)>,
    pub cache: CacheStats,
}

/// Run all five GEMM versions on the batch engine.
pub fn gemm_sweep(cfg: &GemmSweepConfig) -> GemmSweep {
    let cache = AccelCache::new();
    let launch = gemm_launch(&cfg.params);
    let kernels: Vec<(GemmVersion, Kernel)> = GemmVersion::ALL
        .iter()
        .map(|&v| (v, gemm::build(v, &cfg.params)))
        .collect();
    let engine = BatchEngine::new(cfg.jobs);
    let specs: Vec<RunSpec<'_, ProfiledRun>> = kernels
        .iter()
        .map(|(v, kernel)| {
            let stem = cfg
                .out
                .as_ref()
                .map(|o| o.join(format!("gemm_{}_{}", cfg.params.dim, kernel.name)));
            let env = SweepEnv {
                cache: &cache,
                hls: &cfg.hls,
                sim: &cfg.sim,
                prof: &cfg.prof,
                pipeline: &cfg.pipeline,
            };
            let launch = &launch;
            RunSpec::new(v.name(), move |ctx: &RunCtx| {
                profiled_streaming_run(&env, kernel, stem, launch, ctx)
            })
        })
        .collect();
    let reports = engine.run(specs);
    GemmSweep {
        runs: GemmVersion::ALL.iter().copied().zip(reports).collect(),
        cache: cache.stats(),
    }
}

/// Render the §V-C speedup table from a sweep, identically for any worker
/// count. Failed runs become diagnostic rows and are excluded from the
/// speedup baselines.
pub fn gemm_table(sweep: &GemmSweep, sim: &SimConfig, threads: u32) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>14} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "version", "cycles", "vs naive", "vs prev", "GB/s", "spin%", "crit%"
    )
    .unwrap();
    let (mut naive_c, mut prev_c) = (None::<u64>, None::<u64>);
    for (v, report) in &sweep.runs {
        match &report.outcome {
            Ok(run) => {
                let c = run.result.total_cycles;
                let naive = *naive_c.get_or_insert(c);
                let prev = prev_c.unwrap_or(c);
                let prof = StateProfile::compute(&run.trace.records, threads);
                writeln!(
                    out,
                    "{:<24} {:>14} {:>8.2}x {:>8.2}x {:>8.3} {:>7.2}% {:>7.2}%",
                    v.name(),
                    c,
                    naive as f64 / c as f64,
                    prev as f64 / c as f64,
                    run.result.throughput_gbps(sim),
                    prof.fraction(states::SPINNING) * 100.0,
                    prof.fraction(states::CRITICAL) * 100.0
                )
                .unwrap();
                prev_c = Some(c);
            }
            Err(e) => {
                writeln!(out, "{:<24} failed: {e}", v.name()).unwrap();
            }
        }
    }
    out
}

/// Configuration of the π scaling sweep (§V-D).
pub struct PiSweepConfig {
    /// Problem sizes to run (the paper's 1 M / 4 M / 10 M).
    pub steps: Vec<u64>,
    pub threads: u32,
    pub bs: u32,
    /// HLS compile options, including the `nymble-lint` gate level; part of
    /// the compile-cache key.
    pub hls: HlsConfig,
    pub sim: SimConfig,
    pub prof: ProfilingConfig,
    pub pipeline: PipelineConfig,
    /// Where trace bundles go (`pi_<steps>` stems); `None` skips bundles.
    pub out: Option<PathBuf>,
    pub jobs: usize,
}

/// One π run's payload: the profiled run plus the achieved π estimate.
pub struct PiRun {
    pub run: ProfiledRun,
    pub estimate: f32,
}

/// Result of a π sweep: one report per requested step count, in order.
pub struct PiSweep {
    pub runs: Vec<(u64, RunReport<PiRun>)>,
    pub cache: CacheStats,
}

/// Run the π kernel at every requested problem size on the batch engine.
/// The kernel's IR is independent of the step count (it arrives as launch
/// scalars), so the whole sweep compiles exactly once.
pub fn pi_sweep(cfg: &PiSweepConfig) -> PiSweep {
    let cache = AccelCache::new();
    let engine = BatchEngine::new(cfg.jobs);
    let specs: Vec<RunSpec<'_, PiRun>> = cfg
        .steps
        .iter()
        .map(|&steps| {
            let p = PiParams {
                steps,
                threads: cfg.threads,
                bs: cfg.bs,
            };
            let stem = cfg.out.as_ref().map(|o| o.join(format!("pi_{steps}")));
            let env = SweepEnv {
                cache: &cache,
                hls: &cfg.hls,
                sim: &cfg.sim,
                prof: &cfg.prof,
                pipeline: &cfg.pipeline,
            };
            RunSpec::new(format!("pi_{steps}"), move |ctx: &RunCtx| {
                let kernel = pi::build(&p);
                let (step, _) = pi::launch_scalars(&p);
                let launch = pi_launch(&p);
                let run = profiled_streaming_run(&env, &kernel, stem, &launch, ctx)?;
                let estimate = crate::f32_result(&run.result, 2)[0] * step;
                Ok(PiRun { run, estimate })
            })
        })
        .collect();
    let reports = engine.run(specs);
    PiSweep {
        runs: cfg.steps.iter().copied().zip(reports).collect(),
        cache: cache.stats(),
    }
}

/// Render the π sweep summary table (steps, cycles, estimate, GFLOP/s),
/// identically for any worker count.
pub fn pi_table(sweep: &PiSweep, sim: &SimConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>12} {:>14} {:>10} {:>10}",
        "steps", "cycles", "pi", "GFLOP/s"
    )
    .unwrap();
    for (steps, report) in &sweep.runs {
        match &report.outcome {
            Ok(pr) => writeln!(
                out,
                "{:>12} {:>14} {:>10.6} {:>10.3}",
                steps,
                pr.run.result.total_cycles,
                pr.estimate,
                pr.run.result.gflops(sim)
            )
            .unwrap(),
            Err(e) => writeln!(out, "{steps:>12} failed: {e}").unwrap(),
        }
    }
    out
}

/// Write the `(out, sweep stems)` bundles-written footer used by the repro
/// binaries (shared so their output stays consistent).
pub fn bundles_footer(out: &Path) -> String {
    format!("trace bundles written to {}", out.display())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gemm_cfg(jobs: usize) -> GemmSweepConfig {
        GemmSweepConfig {
            params: GemmParams {
                dim: 16,
                threads: 2,
                vec: 4,
                block: 8,
            },
            hls: HlsConfig::default(),
            sim: crate::gemm_sim_config(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: None,
            jobs,
        }
    }

    #[test]
    fn gemm_sweep_compiles_each_version_once() {
        let sweep = gemm_sweep(&tiny_gemm_cfg(4));
        assert_eq!(sweep.runs.len(), GemmVersion::ALL.len());
        for (v, r) in &sweep.runs {
            assert!(r.outcome.is_ok(), "{} failed", v.name());
        }
        assert_eq!(sweep.cache.entries, GemmVersion::ALL.len());
        assert_eq!(sweep.cache.misses as usize, GemmVersion::ALL.len());
        let table = gemm_table(&sweep, &crate::gemm_sim_config(), 2);
        assert!(table.contains("vs naive"));
        assert_eq!(table.lines().count(), 1 + GemmVersion::ALL.len());
    }

    #[test]
    fn pi_sweep_shares_one_compile_across_problem_sizes() {
        let cfg = PiSweepConfig {
            steps: vec![20_000, 50_000],
            threads: 2,
            bs: 8,
            hls: HlsConfig::default(),
            sim: crate::gemm_sim_config(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: None,
            jobs: 2,
        };
        let sweep = pi_sweep(&cfg);
        assert_eq!(sweep.cache.misses, 1, "one compile for every step count");
        for (steps, r) in &sweep.runs {
            let pr = r
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{steps}: {e}"));
            assert!((pr.estimate - std::f32::consts::PI).abs() < 1e-2);
        }
        let table = pi_table(&sweep, &crate::gemm_sim_config());
        assert!(table.contains("GFLOP/s"));
    }
}
