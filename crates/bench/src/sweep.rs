//! # sweep — experiments as task graphs on the work-stealing engine
//!
//! The deterministic middle layer between the [`crate::engine`] scheduler
//! and the `repro_*` binaries: it turns an experiment description (which
//! GEMM versions, which π problem sizes, where the trace bundles go) into
//! a [`TaskGraph`] and renders the result tables inside the graph itself.
//! Each sweep has the same shape:
//!
//! * one `Compile` node per distinct kernel populates the shared
//!   [`AccelCache`] entry (the π sweep has exactly one — its IR is
//!   step-independent), so a slow compile blocks only its own runs;
//! * one `Run` node per experiment streams the simulator's trace through
//!   the background pipeline of `hls_profiling::pipeline` with a
//!   node-private spill directory, collecting the sorted records in
//!   memory;
//! * one `Analyze` node per run writes the `.prv`/`.pcf`/`.row` bundle and
//!   computes the table-row metrics — overlapping with still-running
//!   simulations instead of waiting for the whole batch;
//! * one `Reduce` node renders the table from the rows **in submission
//!   order**, so the table text and the trace bundles are byte-identical
//!   at `--jobs 1` and `--jobs 8`.
//!
//! Simulator failures (e.g. a typed [`fpga_sim::SimError::Deadlock`]) and
//! lint-refused compiles are carried in the node outcomes and rendered as
//! table diagnostics — one bad configuration never aborts the rest of a
//! sweep.

use crate::engine::{BatchEngine, RunReport, SchedStats};
use crate::graph::{NodeCtx, NodeKind, TaskGraph};
use crate::{
    analytic_report, gemm_launch, pi_launch, run_profiled_streaming_with, spmv_launch, BenchError,
    ProfiledRun,
};
use fpga_sim::memimg::LaunchArg;
use fpga_sim::SimConfig;
use hls_profiling::{PipelineConfig, ProfilingConfig, SinkFactory, TraceData};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use kernels::spmv::{self, Csr};
use nymble_hls::accel::HlsConfig;
use nymble_hls::{AccelCache, CacheStats, ProbePlan};
use nymble_ir::Kernel;
use paraver::analysis::StateProfile;
use paraver::{states, Record, TraceError, TraceSink};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A [`TraceSink`] that forwards every record to an optional on-disk
/// bundle writer while collecting a copy in memory for figure rendering.
struct TeeSink {
    bundle: Option<paraver::prv::BundleWriter>,
    store: Arc<Mutex<Vec<Record>>>,
}

impl TraceSink for TeeSink {
    fn push(&mut self, r: Record) -> Result<(), TraceError> {
        self.store
            .lock()
            .expect("record store poisoned")
            .push(r.clone());
        match &mut self.bundle {
            Some(w) => w.push(r),
            None => Ok(()),
        }
    }

    fn close(&mut self) -> Result<(), TraceError> {
        match &mut self.bundle {
            Some(w) => w.close(),
            None => Ok(()),
        }
    }
}

/// The `.pcf` event table and `.row` region hierarchy for a trace: the
/// plain defs, extended by the auto-probe plan's regions when one was
/// compiled in.
fn bundle_defs(plan: Option<&ProbePlan>) -> (Vec<paraver::EventTypeDef>, Vec<(u32, String)>) {
    match plan {
        Some(p) => (
            paraver::events::defs_with_regions(&p.pcf_regions()),
            p.row_regions(),
        ),
        None => (paraver::events::defs(), Vec::new()),
    }
}

/// Sink factory streaming into `<stem>.prv/.pcf/.row` (when `stem` is
/// given) while teeing every record into `store`. `plan` extends the
/// bundle's event table and `.row` hierarchy with the auto-probe regions.
pub fn collecting_bundle_sink(
    stem: Option<PathBuf>,
    plan: Option<Arc<ProbePlan>>,
    store: Arc<Mutex<Vec<Record>>>,
) -> SinkFactory {
    Box::new(move |meta| {
        let bundle = match stem {
            Some(stem) => {
                let (event_defs, regions) = bundle_defs(plan.as_deref());
                Some(
                    paraver::prv::BundleWriter::create(
                        &stem,
                        meta,
                        &paraver::states::defs(),
                        &event_defs,
                    )?
                    .with_regions(regions),
                )
            }
            None => None,
        };
        Ok(Box::new(TeeSink { bundle, store }) as Box<dyn TraceSink + Send>)
    })
}

/// Replay an in-memory trace (already in sink order) through a fresh
/// bundle writer. Done by `Analyze` nodes so the disk I/O overlaps with
/// still-running simulations; the resulting bundle is byte-identical to
/// one streamed directly.
fn write_bundle(stem: &Path, trace: &TraceData) -> Result<(), BenchError> {
    let (event_defs, regions) = bundle_defs(trace.plan.as_deref());
    let mut w = paraver::prv::BundleWriter::create(
        stem,
        &trace.meta,
        &paraver::states::defs(),
        &event_defs,
    )
    .map_err(TraceError::from)?
    .with_regions(regions);
    for r in &trace.records {
        w.push(r.clone())?;
    }
    w.close()?;
    Ok(())
}

/// Sweep-wide shared state each node executes against: the compile cache
/// and the simulator/profiler/pipeline configuration.
#[derive(Clone, Copy)]
struct SweepEnv<'a> {
    cache: &'a AccelCache,
    hls: &'a HlsConfig,
    sim: &'a SimConfig,
    prof: &'a ProfilingConfig,
    pipeline: &'a PipelineConfig,
}

impl<'a> SweepEnv<'a> {
    fn of(
        cache: &'a AccelCache,
        cfg_hls: &'a HlsConfig,
        sim: &'a SimConfig,
        prof: &'a ProfilingConfig,
        pipeline: &'a PipelineConfig,
    ) -> Self {
        SweepEnv {
            cache,
            hls: cfg_hls,
            sim,
            prof,
            pipeline,
        }
    }
}

/// Run one kernel through the streaming pipeline with a node-private spill
/// dir, producing a [`ProfiledRun`] whose records were collected by the
/// tee sink. Bundle writing is left to the dependent `Analyze` node.
fn profiled_streaming_run(
    env: &SweepEnv<'_>,
    kernel: &Kernel,
    launch: &[LaunchArg],
    scratch_dir: &Path,
) -> Result<ProfiledRun, BenchError> {
    let store = Arc::new(Mutex::new(Vec::new()));
    let pipe = PipelineConfig {
        spill_dir: Some(scratch_dir.to_path_buf()),
        ..env.pipeline.clone()
    };
    let accel = env.cache.try_get_or_compile(kernel, env.hls)?;
    let (result, report) = run_profiled_streaming_with(
        env.cache,
        kernel,
        env.hls,
        env.sim,
        env.prof,
        pipe,
        collecting_bundle_sink(None, accel.probe_plan.clone(), store.clone()),
        launch,
    )?;
    let records = std::mem::take(&mut *store.lock().expect("record store poisoned"));
    let trace = TraceData {
        records,
        meta: report.meta.clone(),
        flushed_bytes: report.flushed_bytes,
        flush_count: report.flush_count,
        plan: accel.probe_plan.clone(),
    };
    Ok(ProfiledRun {
        result,
        trace,
        accel,
    })
}

/// Configuration of the GEMM version sweep (§V-C).
pub struct GemmSweepConfig {
    pub params: GemmParams,
    /// HLS compile options, including the `nymble-lint` gate level; part of
    /// the compile-cache key.
    pub hls: HlsConfig,
    pub sim: SimConfig,
    pub prof: ProfilingConfig,
    pub pipeline: PipelineConfig,
    /// Where trace bundles go (`gemm_<dim>_<kernel>` stems); `None` skips
    /// bundle output.
    pub out: Option<PathBuf>,
    /// Worker count for the batch engine.
    pub jobs: usize,
}

/// Result of a GEMM sweep: one report per [`GemmVersion::ALL`] entry, in
/// that order, plus the table its `Reduce` node rendered and the
/// compile-cache / scheduler counters.
pub struct GemmSweep {
    pub runs: Vec<(GemmVersion, RunReport<ProfiledRun>)>,
    /// The §V-C speedup table, rendered by the sweep's `Reduce` node in
    /// submission order (byte-identical at any worker count).
    pub table: String,
    pub cache: CacheStats,
    /// Work-stealing statistics of the sweep's graph execution.
    pub sched: SchedStats,
}

/// One rendered-row's metrics, computed by a GEMM `Analyze` node.
struct GemmRow {
    cycles: u64,
    gbps: f64,
    spin_pct: f64,
    crit_pct: f64,
}

/// Node payload of the GEMM sweep graph.
enum GemmNode {
    Compiled,
    Ran(ProfiledRun),
    Row(Result<GemmRow, String>),
    Table(String),
}

/// Run all five GEMM versions as one task graph: compile → run → analyze
/// per version, one table reduce at the end.
pub fn gemm_sweep(cfg: &GemmSweepConfig) -> GemmSweep {
    let cache = AccelCache::new();
    let launch = gemm_launch(&cfg.params);
    let threads = cfg.params.threads;
    let kernels: Vec<(GemmVersion, Kernel)> = GemmVersion::ALL
        .iter()
        .map(|&v| (v, gemm::build(v, &cfg.params)))
        .collect();
    let engine = BatchEngine::new(cfg.jobs);

    let mut graph: TaskGraph<'_, GemmNode> = TaskGraph::new();
    let mut run_ids = Vec::new();
    let mut analyze_ids = Vec::new();
    for (v, kernel) in &kernels {
        let env = SweepEnv::of(&cache, &cfg.hls, &cfg.sim, &cfg.prof, &cfg.pipeline);
        let stem = cfg
            .out
            .as_ref()
            .map(|o| o.join(format!("gemm_{}_{}", cfg.params.dim, kernel.name)));
        let launch = &launch;
        let sim = &cfg.sim;
        let compile = graph.add(
            NodeKind::Compile,
            format!("compile:{}", v.name()),
            &[],
            move |_: &NodeCtx<'_, GemmNode>| {
                // A lint-refused compile is cached as a value; the run
                // node surfaces it as its own typed failure so the table
                // renders it as a diagnostic row.
                let _ = env.cache.try_get_or_compile(kernel, env.hls);
                Ok(GemmNode::Compiled)
            },
        );
        let run = graph.add(
            NodeKind::Run,
            v.name(),
            &[compile],
            move |ctx: &NodeCtx<'_, GemmNode>| {
                profiled_streaming_run(&env, kernel, launch, &ctx.scratch_dir).map(GemmNode::Ran)
            },
        );
        let analyze = graph.add(
            NodeKind::Analyze,
            format!("analyze:{}", v.name()),
            &[run],
            move |ctx: &NodeCtx<'_, GemmNode>| {
                let row = match &ctx.dep(0).outcome {
                    Ok(GemmNode::Ran(pr)) => {
                        if let Some(stem) = &stem {
                            write_bundle(stem, &pr.trace)?;
                        }
                        let prof = StateProfile::compute(&pr.trace.records, threads);
                        Ok(GemmRow {
                            cycles: pr.result.total_cycles,
                            gbps: pr.result.throughput_gbps(sim),
                            spin_pct: prof.fraction(states::SPINNING) * 100.0,
                            crit_pct: prof.fraction(states::CRITICAL) * 100.0,
                        })
                    }
                    Ok(_) => unreachable!("run node produced a non-run payload"),
                    Err(e) => Err(e.to_string()),
                };
                Ok(GemmNode::Row(row))
            },
        );
        run_ids.push(run);
        analyze_ids.push(analyze);
    }
    let reduce = graph.add(
        NodeKind::Reduce,
        "gemm_table",
        &analyze_ids,
        move |ctx: &NodeCtx<'_, GemmNode>| Ok(GemmNode::Table(render_gemm_table(ctx))),
    );

    let out = engine.run_graph(graph);
    let sched = out.stats;
    let mut reports: Vec<Option<_>> = out.reports.into_iter().map(Some).collect();
    let table = match reports[reduce.index()]
        .take()
        .expect("reduce report")
        .outcome
    {
        Ok(GemmNode::Table(t)) => t,
        Ok(_) => unreachable!("reduce node produced a non-table payload"),
        Err(e) => unreachable!("table reduction cannot fail: {e}"),
    };
    let mut runs = Vec::with_capacity(run_ids.len());
    for (i, ((v, _), id)) in kernels.iter().zip(&run_ids).enumerate() {
        let r = reports[id.index()].take().expect("run report");
        runs.push((
            *v,
            RunReport {
                label: r.label,
                index: i,
                worker: r.worker,
                wall: r.wall,
                outcome: r.outcome.map(|n| match n {
                    GemmNode::Ran(pr) => pr,
                    _ => unreachable!("run node produced a non-run payload"),
                }),
            },
        ));
    }
    GemmSweep {
        runs,
        table,
        cache: cache.stats(),
        sched,
    }
}

/// Render the §V-C speedup table from the analyze rows, in submission
/// order. Failed runs become diagnostic rows and are excluded from the
/// speedup baselines.
fn render_gemm_table(ctx: &NodeCtx<'_, GemmNode>) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>14} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "version", "cycles", "vs naive", "vs prev", "GB/s", "spin%", "crit%"
    )
    .unwrap();
    let (mut naive_c, mut prev_c) = (None::<u64>, None::<u64>);
    for (v, dep) in GemmVersion::ALL.iter().zip(ctx.deps()) {
        let row = match &dep.outcome {
            Ok(GemmNode::Row(row)) => row.as_ref().map_err(Clone::clone),
            Ok(_) => unreachable!("analyze node produced a non-row payload"),
            Err(e) => {
                writeln!(out, "{:<24} failed: {e}", v.name()).unwrap();
                continue;
            }
        };
        match row {
            Ok(r) => {
                let naive = *naive_c.get_or_insert(r.cycles);
                let prev = prev_c.unwrap_or(r.cycles);
                writeln!(
                    out,
                    "{:<24} {:>14} {:>8.2}x {:>8.2}x {:>8.3} {:>7.2}% {:>7.2}%",
                    v.name(),
                    r.cycles,
                    naive as f64 / r.cycles as f64,
                    prev as f64 / r.cycles as f64,
                    r.gbps,
                    r.spin_pct,
                    r.crit_pct
                )
                .unwrap();
                prev_c = Some(r.cycles);
            }
            Err(e) => writeln!(out, "{:<24} failed: {e}", v.name()).unwrap(),
        }
    }
    out
}

/// The table a GEMM sweep's `Reduce` node rendered (kept as a free
/// function so call sites read the same as before the graph refactor).
pub fn gemm_table(sweep: &GemmSweep) -> String {
    sweep.table.clone()
}

/// Configuration of the π scaling sweep (§V-D).
pub struct PiSweepConfig {
    /// Problem sizes to run (the paper's 1 M / 4 M / 10 M).
    pub steps: Vec<u64>,
    pub threads: u32,
    pub bs: u32,
    /// HLS compile options, including the `nymble-lint` gate level; part of
    /// the compile-cache key.
    pub hls: HlsConfig,
    pub sim: SimConfig,
    pub prof: ProfilingConfig,
    pub pipeline: PipelineConfig,
    /// Where trace bundles go (`pi_<steps>` stems); `None` skips bundles.
    pub out: Option<PathBuf>,
    pub jobs: usize,
}

/// One π run's payload: the profiled run plus the achieved π estimate.
pub struct PiRun {
    pub run: ProfiledRun,
    pub estimate: f32,
}

/// Result of a π sweep: one report per requested step count, in order,
/// plus the table its `Reduce` node rendered.
pub struct PiSweep {
    pub runs: Vec<(u64, RunReport<PiRun>)>,
    /// The §V-D summary table, rendered by the sweep's `Reduce` node.
    pub table: String,
    pub cache: CacheStats,
    /// Work-stealing statistics of the sweep's graph execution.
    pub sched: SchedStats,
}

/// One rendered-row's metrics, computed by a π `Analyze` node.
struct PiRow {
    cycles: u64,
    estimate: f32,
    gflops: f64,
}

/// Node payload of the π sweep graph.
enum PiNode {
    Compiled,
    Ran(PiRun),
    Row(Result<PiRow, String>),
    Table(String),
}

/// Run the π kernel at every requested problem size as one task graph.
/// The kernel's IR is independent of the step count (it arrives as launch
/// scalars), so the whole sweep shares a single `Compile` node.
pub fn pi_sweep(cfg: &PiSweepConfig) -> PiSweep {
    let cache = AccelCache::new();
    let engine = BatchEngine::new(cfg.jobs);
    if cfg.steps.is_empty() {
        let out = engine.run_graph(TaskGraph::<'_, PiNode>::new());
        return PiSweep {
            runs: Vec::new(),
            table: pi_table_header(),
            cache: cache.stats(),
            sched: out.stats,
        };
    }

    let mut graph: TaskGraph<'_, PiNode> = TaskGraph::new();
    let shared_kernel = pi::build(&PiParams {
        steps: cfg.steps[0],
        threads: cfg.threads,
        bs: cfg.bs,
    });
    let env = SweepEnv::of(&cache, &cfg.hls, &cfg.sim, &cfg.prof, &cfg.pipeline);
    let compile = graph.add(
        NodeKind::Compile,
        "compile:pi",
        &[],
        move |_: &NodeCtx<'_, PiNode>| {
            let _ = env.cache.try_get_or_compile(&shared_kernel, env.hls);
            Ok(PiNode::Compiled)
        },
    );
    let mut run_ids = Vec::new();
    let mut analyze_ids = Vec::new();
    for &steps in &cfg.steps {
        let p = PiParams {
            steps,
            threads: cfg.threads,
            bs: cfg.bs,
        };
        let stem = cfg.out.as_ref().map(|o| o.join(format!("pi_{steps}")));
        let sim = &cfg.sim;
        let run = graph.add(
            NodeKind::Run,
            format!("pi_{steps}"),
            &[compile],
            move |ctx: &NodeCtx<'_, PiNode>| {
                let kernel = pi::build(&p);
                let (step, _) = pi::launch_scalars(&p);
                let launch = pi_launch(&p);
                let run = profiled_streaming_run(&env, &kernel, &launch, &ctx.scratch_dir)?;
                let estimate = crate::f32_result(&run.result, 2)[0] * step;
                Ok(PiNode::Ran(PiRun { run, estimate }))
            },
        );
        let analyze = graph.add(
            NodeKind::Analyze,
            format!("analyze:pi_{steps}"),
            &[run],
            move |ctx: &NodeCtx<'_, PiNode>| {
                let row = match &ctx.dep(0).outcome {
                    Ok(PiNode::Ran(pr)) => {
                        if let Some(stem) = &stem {
                            write_bundle(stem, &pr.run.trace)?;
                        }
                        Ok(PiRow {
                            cycles: pr.run.result.total_cycles,
                            estimate: pr.estimate,
                            gflops: pr.run.result.gflops(sim),
                        })
                    }
                    Ok(_) => unreachable!("run node produced a non-run payload"),
                    Err(e) => Err(e.to_string()),
                };
                Ok(PiNode::Row(row))
            },
        );
        run_ids.push(run);
        analyze_ids.push(analyze);
    }
    let steps_list = cfg.steps.clone();
    let reduce = graph.add(
        NodeKind::Reduce,
        "pi_table",
        &analyze_ids,
        move |ctx: &NodeCtx<'_, PiNode>| Ok(PiNode::Table(render_pi_table(ctx, &steps_list))),
    );

    let out = engine.run_graph(graph);
    let sched = out.stats;
    let mut reports: Vec<Option<_>> = out.reports.into_iter().map(Some).collect();
    let table = match reports[reduce.index()]
        .take()
        .expect("reduce report")
        .outcome
    {
        Ok(PiNode::Table(t)) => t,
        Ok(_) => unreachable!("reduce node produced a non-table payload"),
        Err(e) => unreachable!("table reduction cannot fail: {e}"),
    };
    let mut runs = Vec::with_capacity(run_ids.len());
    for (i, (&steps, id)) in cfg.steps.iter().zip(&run_ids).enumerate() {
        let r = reports[id.index()].take().expect("run report");
        runs.push((
            steps,
            RunReport {
                label: r.label,
                index: i,
                worker: r.worker,
                wall: r.wall,
                outcome: r.outcome.map(|n| match n {
                    PiNode::Ran(pr) => pr,
                    _ => unreachable!("run node produced a non-run payload"),
                }),
            },
        ));
    }
    PiSweep {
        runs,
        table,
        cache: cache.stats(),
        sched,
    }
}

fn pi_table_header() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>12} {:>14} {:>10} {:>10}",
        "steps", "cycles", "pi", "GFLOP/s"
    )
    .unwrap();
    out
}

/// Render the π sweep summary table (steps, cycles, estimate, GFLOP/s)
/// from the analyze rows, in submission order.
fn render_pi_table(ctx: &NodeCtx<'_, PiNode>, steps: &[u64]) -> String {
    let mut out = pi_table_header();
    for (steps, dep) in steps.iter().zip(ctx.deps()) {
        let row = match &dep.outcome {
            Ok(PiNode::Row(row)) => row.as_ref().map_err(Clone::clone),
            Ok(_) => unreachable!("analyze node produced a non-row payload"),
            Err(e) => {
                writeln!(out, "{steps:>12} failed: {e}").unwrap();
                continue;
            }
        };
        match row {
            Ok(r) => writeln!(
                out,
                "{:>12} {:>14} {:>10.6} {:>10.3}",
                steps, r.cycles, r.estimate, r.gflops
            )
            .unwrap(),
            Err(e) => writeln!(out, "{steps:>12} failed: {e}").unwrap(),
        }
    }
    out
}

/// The table a π sweep's `Reduce` node rendered.
pub fn pi_table(sweep: &PiSweep) -> String {
    sweep.table.clone()
}

/// Configuration of the SpMV thread-scaling sweep: one CSR matrix run at
/// every requested thread count (the high-T study of the scaling repro).
pub struct SpmvSweepConfig {
    /// The matrix, shared by every run; rows are striped over threads.
    pub matrix: Csr,
    /// Thread counts to sweep (each is a distinct kernel and compile).
    pub threads: Vec<u32>,
    /// HLS compile options, including the `nymble-lint` gate level; part of
    /// the compile-cache key.
    pub hls: HlsConfig,
    pub sim: SimConfig,
    pub prof: ProfilingConfig,
    pub pipeline: PipelineConfig,
    /// Where trace bundles go (`spmv_<rows>x<cols>_t<threads>` stems);
    /// `None` skips bundles.
    pub out: Option<PathBuf>,
    pub jobs: usize,
}

/// One SpMV run's payload: the profiled run plus the analytical fast-mode
/// prediction for the same configuration (when statically resolvable).
pub struct SpmvRun {
    pub run: ProfiledRun,
    pub analytic_cycles: Option<u64>,
}

/// Result of an SpMV sweep: one report per requested thread count, in
/// order, plus the table its `Reduce` node rendered.
pub struct SpmvSweep {
    pub runs: Vec<(u32, RunReport<SpmvRun>)>,
    /// The thread-scaling summary table, rendered by the sweep's `Reduce`
    /// node in submission order.
    pub table: String,
    pub cache: CacheStats,
    /// Work-stealing statistics of the sweep's graph execution.
    pub sched: SchedStats,
}

/// One rendered-row's metrics, computed by an SpMV `Analyze` node.
struct SpmvRow {
    cycles: u64,
    analytic: Option<u64>,
    gbps: f64,
    spin_pct: f64,
}

/// Node payload of the SpMV sweep graph.
enum SpmvNode {
    Compiled,
    Ran(SpmvRun),
    Row(Result<SpmvRow, String>),
    Table(String),
}

/// Run the SpMV kernel at every requested thread count as one task graph.
/// The row count is baked into the IR but the thread count is part of the
/// kernel too, so each count gets its own `Compile` node. Each run also
/// prices itself through the analytical fast mode so the table shows the
/// prediction error alongside the simulated cycles.
pub fn spmv_sweep(cfg: &SpmvSweepConfig) -> SpmvSweep {
    let cache = AccelCache::new();
    let engine = BatchEngine::new(cfg.jobs);
    let launch = spmv_launch(&cfg.matrix);
    let kernels: Vec<(u32, Kernel)> = cfg
        .threads
        .iter()
        .map(|&t| (t, spmv::build(cfg.matrix.rows as i64, t)))
        .collect();

    let mut graph: TaskGraph<'_, SpmvNode> = TaskGraph::new();
    let mut run_ids = Vec::new();
    let mut analyze_ids = Vec::new();
    for (t, kernel) in &kernels {
        let env = SweepEnv::of(&cache, &cfg.hls, &cfg.sim, &cfg.prof, &cfg.pipeline);
        let stem = cfg
            .out
            .as_ref()
            .map(|o| o.join(format!("spmv_{}x{}_t{t}", cfg.matrix.rows, cfg.matrix.cols)));
        let launch = &launch;
        let sim = &cfg.sim;
        let threads = *t;
        let compile = graph.add(
            NodeKind::Compile,
            format!("compile:spmv_t{t}"),
            &[],
            move |_: &NodeCtx<'_, SpmvNode>| {
                let _ = env.cache.try_get_or_compile(kernel, env.hls);
                Ok(SpmvNode::Compiled)
            },
        );
        let run = graph.add(
            NodeKind::Run,
            format!("spmv_t{t}"),
            &[compile],
            move |ctx: &NodeCtx<'_, SpmvNode>| {
                let run = profiled_streaming_run(&env, kernel, launch, &ctx.scratch_dir)?;
                let analytic_cycles =
                    analytic_report(env.cache, kernel, env.sim, launch).map(|r| r.total_cycles);
                Ok(SpmvNode::Ran(SpmvRun {
                    run,
                    analytic_cycles,
                }))
            },
        );
        let analyze = graph.add(
            NodeKind::Analyze,
            format!("analyze:spmv_t{t}"),
            &[run],
            move |ctx: &NodeCtx<'_, SpmvNode>| {
                let row = match &ctx.dep(0).outcome {
                    Ok(SpmvNode::Ran(pr)) => {
                        if let Some(stem) = &stem {
                            write_bundle(stem, &pr.run.trace)?;
                        }
                        let prof = StateProfile::compute(&pr.run.trace.records, threads);
                        Ok(SpmvRow {
                            cycles: pr.run.result.total_cycles,
                            analytic: pr.analytic_cycles,
                            gbps: pr.run.result.throughput_gbps(sim),
                            spin_pct: prof.fraction(states::SPINNING) * 100.0,
                        })
                    }
                    Ok(_) => unreachable!("run node produced a non-run payload"),
                    Err(e) => Err(e.to_string()),
                };
                Ok(SpmvNode::Row(row))
            },
        );
        run_ids.push(run);
        analyze_ids.push(analyze);
    }
    let threads_list = cfg.threads.clone();
    let reduce = graph.add(
        NodeKind::Reduce,
        "spmv_table",
        &analyze_ids,
        move |ctx: &NodeCtx<'_, SpmvNode>| {
            Ok(SpmvNode::Table(render_spmv_table(ctx, &threads_list)))
        },
    );

    let out = engine.run_graph(graph);
    let sched = out.stats;
    let mut reports: Vec<Option<_>> = out.reports.into_iter().map(Some).collect();
    let table = match reports[reduce.index()]
        .take()
        .expect("reduce report")
        .outcome
    {
        Ok(SpmvNode::Table(t)) => t,
        Ok(_) => unreachable!("reduce node produced a non-table payload"),
        Err(e) => unreachable!("table reduction cannot fail: {e}"),
    };
    let mut runs = Vec::with_capacity(run_ids.len());
    for (i, ((t, _), id)) in kernels.iter().zip(&run_ids).enumerate() {
        let r = reports[id.index()].take().expect("run report");
        runs.push((
            *t,
            RunReport {
                label: r.label,
                index: i,
                worker: r.worker,
                wall: r.wall,
                outcome: r.outcome.map(|n| match n {
                    SpmvNode::Ran(pr) => pr,
                    _ => unreachable!("run node produced a non-run payload"),
                }),
            },
        ));
    }
    SpmvSweep {
        runs,
        table,
        cache: cache.stats(),
        sched,
    }
}

/// Render the SpMV thread-scaling table (threads, cycles, analytical
/// prediction and error, GB/s, spin%) from the analyze rows.
fn render_spmv_table(ctx: &NodeCtx<'_, SpmvNode>, threads: &[u32]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>8} {:>8} {:>8}",
        "threads", "cycles", "analytic", "err%", "GB/s", "spin%"
    )
    .unwrap();
    for (t, dep) in threads.iter().zip(ctx.deps()) {
        let row = match &dep.outcome {
            Ok(SpmvNode::Row(row)) => row.as_ref().map_err(Clone::clone),
            Ok(_) => unreachable!("analyze node produced a non-row payload"),
            Err(e) => {
                writeln!(out, "{t:>8} failed: {e}").unwrap();
                continue;
            }
        };
        match row {
            Ok(r) => {
                let (analytic, err) = match r.analytic {
                    Some(a) => (
                        a.to_string(),
                        format!(
                            "{:+.1}",
                            (a as f64 - r.cycles as f64) / r.cycles as f64 * 100.0
                        ),
                    ),
                    None => ("-".to_string(), "-".to_string()),
                };
                writeln!(
                    out,
                    "{:>8} {:>14} {:>14} {:>8} {:>8.3} {:>7.2}%",
                    t, r.cycles, analytic, err, r.gbps, r.spin_pct
                )
                .unwrap();
            }
            Err(e) => writeln!(out, "{t:>8} failed: {e}").unwrap(),
        }
    }
    out
}

/// The table an SpMV sweep's `Reduce` node rendered.
pub fn spmv_table(sweep: &SpmvSweep) -> String {
    sweep.table.clone()
}

/// Write the `(out, sweep stems)` bundles-written footer used by the repro
/// binaries (shared so their output stays consistent).
pub fn bundles_footer(out: &Path) -> String {
    format!("trace bundles written to {}", out.display())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gemm_cfg(jobs: usize) -> GemmSweepConfig {
        GemmSweepConfig {
            params: GemmParams {
                dim: 16,
                threads: 2,
                vec: 4,
                block: 8,
            },
            hls: HlsConfig::default(),
            sim: crate::gemm_sim_config(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: None,
            jobs,
        }
    }

    #[test]
    fn gemm_sweep_compiles_each_version_once() {
        let sweep = gemm_sweep(&tiny_gemm_cfg(4));
        assert_eq!(sweep.runs.len(), GemmVersion::ALL.len());
        for (v, r) in &sweep.runs {
            assert!(r.outcome.is_ok(), "{} failed", v.name());
        }
        assert_eq!(sweep.cache.entries, GemmVersion::ALL.len());
        assert_eq!(sweep.cache.misses as usize, GemmVersion::ALL.len());
        let table = gemm_table(&sweep);
        assert!(table.contains("vs naive"));
        assert_eq!(table.lines().count(), 1 + GemmVersion::ALL.len());
        // compile + run + analyze per version, plus one reduce.
        assert_eq!(
            sweep.sched.total_executed() as usize,
            3 * GemmVersion::ALL.len() + 1
        );
    }

    #[test]
    fn spmv_sweep_scales_thread_counts_with_analytic_column() {
        let cfg = SpmvSweepConfig {
            matrix: Csr::random(64, 64, 4, 5),
            threads: vec![2, 4],
            hls: HlsConfig::default(),
            sim: crate::spmv_sim_config(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: None,
            jobs: 2,
        };
        let sweep = spmv_sweep(&cfg);
        assert_eq!(sweep.runs.len(), 2);
        // One compile per thread count: the count is baked into the IR.
        assert_eq!(sweep.cache.misses, 2);
        for (t, r) in &sweep.runs {
            let pr = r.outcome.as_ref().unwrap_or_else(|e| panic!("t{t}: {e}"));
            assert!(pr.run.result.total_cycles > 0);
            assert!(
                pr.analytic_cycles.is_some(),
                "t{t}: SpMV must be analytically resolvable via the memory image"
            );
        }
        let table = spmv_table(&sweep);
        assert!(table.contains("analytic"));
        assert_eq!(table.lines().count(), 1 + 2);
        assert_eq!(sweep.sched.total_executed(), 3 * 2 + 1);
    }

    #[test]
    fn pi_sweep_shares_one_compile_across_problem_sizes() {
        let cfg = PiSweepConfig {
            steps: vec![20_000, 50_000],
            threads: 2,
            bs: 8,
            hls: HlsConfig::default(),
            sim: crate::gemm_sim_config(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: None,
            jobs: 2,
        };
        let sweep = pi_sweep(&cfg);
        assert_eq!(sweep.cache.misses, 1, "one compile for every step count");
        for (steps, r) in &sweep.runs {
            let pr = r
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{steps}: {e}"));
            assert!((pr.estimate - std::f32::consts::PI).abs() < 1e-2);
        }
        let table = pi_table(&sweep);
        assert!(table.contains("GFLOP/s"));
        // one shared compile, then run + analyze per size, one reduce.
        assert_eq!(sweep.sched.total_executed(), 1 + 2 * 2 + 1);
    }
}
