//! # graph — typed task graphs for experiment sweeps
//!
//! A sweep is not a flat list of runs. The GEMM version table compiles five
//! kernels, simulates each, profiles each trace, and reduces everything
//! into one table; the π study compiles *once* and fans out over problem
//! sizes. [`TaskGraph`] makes that structure explicit: a DAG of typed
//! nodes ([`NodeKind::Compile`], [`NodeKind::Run`], [`NodeKind::Analyze`],
//! [`NodeKind::Reduce`]) with explicit dependency edges, executed by the
//! work-stealing scheduler in [`crate::engine`].
//!
//! Three properties keep graphs deterministic and deadlock-free:
//!
//! * **Acyclic by construction.** [`TaskGraph::add`] only accepts
//!   dependencies on nodes that already exist, so every edge points
//!   backwards and no cycle can ever be expressed.
//! * **Dependency results are readable.** A node's closure receives a
//!   [`NodeCtx`] whose [`NodeCtx::dep`] returns the finished
//!   [`NodeReport`] of each dependency — the scheduler guarantees the
//!   dependency completed (and its write is visible) before the dependent
//!   starts. Error policy is therefore the *node's* decision: a `Reduce`
//!   node turns a failed `Run` dependency into a diagnostic table row
//!   instead of the scheduler cancelling half the sweep.
//! * **Reduction in submission order.** Reports come back indexed by
//!   node-insertion order, and `Reduce` nodes iterate their dependencies
//!   in the order the edges were declared — so the reduced output never
//!   depends on worker count or completion order.

use crate::BenchError;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// What a node *is*, for scheduling statistics and progress labels. The
/// executor treats all kinds identically; the kind documents the role the
/// node plays in a sweep (and shows up in scheduler health metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// HLS front-end work: populate the [`nymble_hls::AccelCache`] entry
    /// its dependents will hit. A cache miss blocks only this node's
    /// dependents, never the rest of the sweep.
    Compile,
    /// One simulator run (or any other leaf workload).
    Run,
    /// Per-run post-processing that can overlap still-running simulations:
    /// trace-bundle writes, state profiles, diagnosis.
    Analyze,
    /// Cross-run aggregation in submission order: tables, figures,
    /// summary rows.
    Reduce,
}

impl NodeKind {
    /// Stable lowercase name (used in labels and snapshots).
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Compile => "compile",
            NodeKind::Run => "run",
            NodeKind::Analyze => "analyze",
            NodeKind::Reduce => "reduce",
        }
    }
}

/// Handle to a node of a [`TaskGraph`], used to declare edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index in the graph (and in the report vector returned by
    /// [`crate::engine::BatchEngine::run_graph`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A node body: runs on some worker thread once every dependency finished.
pub(crate) type NodeTask<'a, T> =
    Box<dyn FnOnce(&NodeCtx<'_, T>) -> Result<T, BenchError> + Send + 'a>;

pub(crate) struct NodeSpec<'a, T> {
    pub(crate) label: String,
    pub(crate) kind: NodeKind,
    pub(crate) deps: Vec<usize>,
    pub(crate) task: NodeTask<'a, T>,
}

/// A DAG of typed tasks, acyclic by construction (edges may only point at
/// already-added nodes). `T` is the payload every node produces; sweeps
/// use a small enum (`Compiled` / `Ran(..)` / `Row(..)` / `Table(..)`).
#[derive(Default)]
pub struct TaskGraph<'a, T> {
    pub(crate) nodes: Vec<NodeSpec<'a, T>>,
}

impl<'a, T> TaskGraph<'a, T> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph { nodes: Vec::new() }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node that runs after every node in `deps`. Dependencies must
    /// be handles previously returned by *this* graph's `add` — which is
    /// what makes every graph a DAG by construction.
    ///
    /// # Panics
    /// Panics when a dependency handle does not point backwards (i.e. it
    /// came from a different, larger graph).
    pub fn add(
        &mut self,
        kind: NodeKind,
        label: impl Into<String>,
        deps: &[NodeId],
        task: impl FnOnce(&NodeCtx<'_, T>) -> Result<T, BenchError> + Send + 'a,
    ) -> NodeId {
        let id = self.nodes.len();
        for d in deps {
            assert!(
                d.0 < id,
                "dependency {} of node {id} is not an earlier node of this graph",
                d.0
            );
        }
        self.nodes.push(NodeSpec {
            label: label.into(),
            kind,
            deps: deps.iter().map(|d| d.0).collect(),
            task: Box::new(task),
        });
        NodeId(id)
    }
}

/// Execution context handed to each node body.
pub struct NodeCtx<'s, T> {
    /// The node's index in the graph (stable across worker counts).
    pub index: usize,
    /// Worker that executes the node (informational; never affects output).
    pub worker: usize,
    /// The node's declared kind.
    pub kind: NodeKind,
    /// Private scratch directory for this node (spill files etc.), created
    /// before the body runs and removed with the engine's scratch root.
    pub scratch_dir: PathBuf,
    pub(crate) dep_ids: &'s [usize],
    pub(crate) slots: &'s [OnceLock<NodeReport<T>>],
}

impl<T> NodeCtx<'_, T> {
    /// Number of declared dependencies.
    pub fn dep_count(&self) -> usize {
        self.dep_ids.len()
    }

    /// The finished report of the `i`-th dependency (in edge-declaration
    /// order). The scheduler releases a node only after every dependency
    /// completed, so this never blocks.
    pub fn dep(&self, i: usize) -> &NodeReport<T> {
        self.slots[self.dep_ids[i]]
            .get()
            .expect("scheduler released a node before its dependency completed")
    }

    /// All dependency reports, in edge-declaration order.
    pub fn deps(&self) -> impl Iterator<Item = &NodeReport<T>> + '_ {
        (0..self.dep_count()).map(|i| self.dep(i))
    }
}

/// Outcome of one graph node, indexed by node-insertion order.
pub struct NodeReport<T> {
    /// The node's label.
    pub label: String,
    /// Node index in the graph (equals this report's position in the
    /// result vector).
    pub index: usize,
    /// Worker that executed the node.
    pub worker: usize,
    /// The node's declared kind.
    pub kind: NodeKind,
    /// Wall-clock time of the node body.
    pub wall: Duration,
    /// The node's payload, or its typed failure. A node whose body
    /// panicked reports [`BenchError::NodePanic`] here (and the panic is
    /// re-raised once the whole graph has drained).
    pub outcome: Result<T, BenchError>,
}
