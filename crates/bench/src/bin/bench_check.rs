//! Warn-only perf-trajectory gate for CI (`bench-smoke` job).
//!
//! Compares a freshly emitted `--bench-json` snapshot against the
//! committed baseline (`BENCH_pi.json` / `BENCH_gemm.json` /
//! `BENCH_scale.json` at the repo root) and prints a GitHub Actions
//! `::warning::` annotation when wall time regressed more than the
//! threshold (default 2×). It NEVER fails the build: CI runners have
//! noisy, heterogeneous hardware, so a wall regression is a prompt for a
//! human look, not a red X. A missing baseline (first run on a new
//! binary) is likewise only a note.
//!
//! `--extras` widens the gate to named `extra` entries of the snapshot —
//! the scaling study uses it to watch per-thread-count wall times and the
//! wheel-vs-heap speedup, so a dispatch-core regression that only shows
//! at T=256 still gets an annotation. Each entry drifts symmetrically: a
//! value is flagged when it moves beyond `threshold`× in either
//! direction, which catches both a wall time doubling and a speedup
//! halving with one rule.
//!
//! Usage: `bench_check --current PATH --committed PATH [--threshold X]
//!                     [--extras KEY[=X][,KEY[=X]...]]`

use bench::args::Args;
use bench::snapshot::PerfSnapshot;
use std::path::Path;

fn main() {
    let args = Args::parse();
    let Some(current) = args.path("--current") else {
        eprintln!("bench_check: --current PATH is required");
        std::process::exit(2);
    };
    let Some(committed) = args.path("--committed") else {
        eprintln!("bench_check: --committed PATH is required");
        std::process::exit(2);
    };
    let threshold = args
        .value_of("--threshold")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    let extras = match args.value_of("--extras") {
        Some(list) => match parse_extras(list, threshold) {
            Ok(specs) => specs,
            Err(e) => {
                eprintln!("bench_check: {e}");
                std::process::exit(2);
            }
        },
        None => Vec::new(),
    };
    for verdict in check(&current, &committed, threshold, &extras) {
        match verdict {
            Verdict::Ok(msg) | Verdict::Note(msg) => println!("{msg}"),
            Verdict::Warning(msg) => println!("::warning::{msg}"),
        }
    }
    // Always exit 0: this gate informs, it does not block.
}

enum Verdict {
    Ok(String),
    Note(String),
    Warning(String),
}

/// One `--extras` entry: a snapshot `extra` key plus its drift threshold.
struct ExtraSpec {
    key: String,
    threshold: f64,
}

/// Parse `KEY[=THRESHOLD],...`; entries without `=X` use the global
/// threshold.
fn parse_extras(list: &str, default_threshold: f64) -> Result<Vec<ExtraSpec>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|entry| match entry.split_once('=') {
            Some((key, t)) => {
                let threshold = t
                    .parse::<f64>()
                    .map_err(|_| format!("bad --extras threshold in {entry:?}"))?;
                if threshold <= 1.0 {
                    return Err(format!("--extras threshold must be > 1.0 in {entry:?}"));
                }
                Ok(ExtraSpec {
                    key: key.to_string(),
                    threshold,
                })
            }
            None => Ok(ExtraSpec {
                key: entry.to_string(),
                threshold: default_threshold,
            }),
        })
        .collect()
}

fn check(current: &Path, committed: &Path, threshold: f64, extras: &[ExtraSpec]) -> Vec<Verdict> {
    let cur = match PerfSnapshot::read(current) {
        Ok(s) => s,
        Err(e) => {
            return vec![Verdict::Note(format!(
                "bench_check: no current snapshot ({e})"
            ))]
        }
    };
    let base = match PerfSnapshot::read(committed) {
        Ok(s) => s,
        Err(e) => {
            return vec![Verdict::Note(format!(
                "bench_check: no committed baseline ({e}); commit the current snapshot to start the trajectory"
            ))]
        }
    };
    let mut verdicts = vec![compare(&cur, &base, threshold)];
    verdicts.extend(extras.iter().map(|spec| compare_extra(&cur, &base, spec)));
    verdicts
}

/// The wall-clock comparison, separated from I/O for testing.
fn compare(cur: &PerfSnapshot, base: &PerfSnapshot, threshold: f64) -> Verdict {
    if base.wall_seconds <= 0.0 {
        return Verdict::Note(format!(
            "bench_check: committed baseline has non-positive wall_seconds ({}); skipping",
            base.wall_seconds
        ));
    }
    let ratio = cur.wall_seconds / base.wall_seconds;
    let detail = format!(
        "{}: wall {:.3}s vs committed {:.3}s ({ratio:.2}x), {} vs {} simulated cycles",
        cur.binary, cur.wall_seconds, base.wall_seconds, cur.sim_cycles, base.sim_cycles
    );
    if ratio > threshold {
        Verdict::Warning(format!(
            "{detail} — exceeds the {threshold:.1}x wall-time regression threshold; \
             worth a look (CI hardware is noisy, so this does not fail the build)"
        ))
    } else {
        Verdict::Ok(format!("bench_check: within threshold — {detail}"))
    }
}

/// One named-extra comparison: symmetric drift check, so it flags a
/// speedup that halved as readily as a wall time that doubled.
fn compare_extra(cur: &PerfSnapshot, base: &PerfSnapshot, spec: &ExtraSpec) -> Verdict {
    let key = &spec.key;
    let (Some(c), Some(b)) = (cur.extra_value(key), base.extra_value(key)) else {
        return Verdict::Note(format!(
            "bench_check: extra {key:?} missing from current or committed snapshot; skipping"
        ));
    };
    if b <= 0.0 {
        return Verdict::Note(format!(
            "bench_check: committed extra {key:?} is non-positive ({b}); skipping"
        ));
    }
    let ratio = c / b;
    let detail = format!(
        "{} extra {key}: {c:.3} vs committed {b:.3} ({ratio:.2}x)",
        cur.binary
    );
    if ratio > spec.threshold || ratio < 1.0 / spec.threshold {
        Verdict::Warning(format!(
            "{detail} — drifted beyond the {:.1}x threshold; worth a look \
             (CI hardware is noisy, so this does not fail the build)",
            spec.threshold
        ))
    } else {
        Verdict::Ok(format!("bench_check: within threshold — {detail}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(wall: f64) -> PerfSnapshot {
        PerfSnapshot::new("repro_pi", "cycle", wall, 1_000)
    }

    fn snap_extra(key: &str, value: f64) -> PerfSnapshot {
        snap(1.0).with_extra(key, value)
    }

    fn spec(key: &str, threshold: f64) -> ExtraSpec {
        ExtraSpec {
            key: key.to_string(),
            threshold,
        }
    }

    #[test]
    fn within_threshold_is_ok() {
        assert!(matches!(
            compare(&snap(1.9), &snap(1.0), 2.0),
            Verdict::Ok(_)
        ));
    }

    #[test]
    fn beyond_threshold_warns() {
        let v = compare(&snap(2.1), &snap(1.0), 2.0);
        let Verdict::Warning(msg) = v else {
            panic!("expected a warning");
        };
        assert!(msg.contains("2.10x"));
    }

    #[test]
    fn zero_baseline_is_a_note_not_a_division() {
        assert!(matches!(
            compare(&snap(1.0), &snap(0.0), 2.0),
            Verdict::Note(_)
        ));
    }

    #[test]
    fn missing_files_are_notes() {
        let missing = Path::new("/nonexistent/snapshot.json");
        let verdicts = check(missing, missing, 2.0, &[]);
        assert_eq!(verdicts.len(), 1);
        assert!(matches!(verdicts[0], Verdict::Note(_)));
    }

    #[test]
    fn extra_within_threshold_is_ok() {
        let v = compare_extra(
            &snap_extra("wheel_speedup", 1.6),
            &snap_extra("wheel_speedup", 1.7),
            &spec("wheel_speedup", 1.3),
        );
        assert!(matches!(v, Verdict::Ok(_)));
    }

    #[test]
    fn extra_regression_warns_in_both_directions() {
        // A speedup that halved (ratio 0.5 < 1/1.3)...
        let v = compare_extra(
            &snap_extra("wheel_speedup", 0.85),
            &snap_extra("wheel_speedup", 1.7),
            &spec("wheel_speedup", 1.3),
        );
        assert!(matches!(v, Verdict::Warning(_)));
        // ...and a wall time that tripled (ratio 3.0 > 2.0).
        let v = compare_extra(
            &snap_extra("gemm_wall_s_t256", 30.0),
            &snap_extra("gemm_wall_s_t256", 10.0),
            &spec("gemm_wall_s_t256", 2.0),
        );
        assert!(matches!(v, Verdict::Warning(_)));
    }

    #[test]
    fn missing_extra_is_a_note() {
        let v = compare_extra(
            &snap(1.0),
            &snap_extra("wheel_speedup", 1.7),
            &spec("wheel_speedup", 1.3),
        );
        assert!(matches!(v, Verdict::Note(_)));
    }

    #[test]
    fn extras_list_parses_per_key_thresholds() {
        let specs = parse_extras("wheel_speedup=1.3, gemm_wall_s_t256", 2.0).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].key, "wheel_speedup");
        assert!((specs[0].threshold - 1.3).abs() < 1e-12);
        assert_eq!(specs[1].key, "gemm_wall_s_t256");
        assert!((specs[1].threshold - 2.0).abs() < 1e-12);
        assert!(parse_extras("k=abc", 2.0).is_err());
        assert!(parse_extras("k=0.9", 2.0).is_err());
    }
}
