//! Warn-only perf-trajectory gate for CI (`bench-smoke` job).
//!
//! Compares a freshly emitted `--bench-json` snapshot against the
//! committed baseline (`BENCH_pi.json` / `BENCH_gemm.json` at the repo
//! root) and prints a GitHub Actions `::warning::` annotation when wall
//! time regressed more than the threshold (default 2×). It NEVER fails
//! the build: CI runners have noisy, heterogeneous hardware, so a wall
//! regression is a prompt for a human look, not a red X. A missing
//! baseline (first run on a new binary) is likewise only a note.
//!
//! Usage: `bench_check --current PATH --committed PATH [--threshold X]`

use bench::args::Args;
use bench::snapshot::PerfSnapshot;
use std::path::Path;

fn main() {
    let args = Args::parse();
    let Some(current) = args.path("--current") else {
        eprintln!("bench_check: --current PATH is required");
        std::process::exit(2);
    };
    let Some(committed) = args.path("--committed") else {
        eprintln!("bench_check: --committed PATH is required");
        std::process::exit(2);
    };
    let threshold = args
        .value_of("--threshold")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    match check(&current, &committed, threshold) {
        Verdict::Ok(msg) | Verdict::Note(msg) => println!("{msg}"),
        Verdict::Warning(msg) => println!("::warning::{msg}"),
    }
    // Always exit 0: this gate informs, it does not block.
}

enum Verdict {
    Ok(String),
    Note(String),
    Warning(String),
}

fn check(current: &Path, committed: &Path, threshold: f64) -> Verdict {
    let cur = match PerfSnapshot::read(current) {
        Ok(s) => s,
        Err(e) => return Verdict::Note(format!("bench_check: no current snapshot ({e})")),
    };
    let base = match PerfSnapshot::read(committed) {
        Ok(s) => s,
        Err(e) => {
            return Verdict::Note(format!(
                "bench_check: no committed baseline ({e}); commit the current snapshot to start the trajectory"
            ))
        }
    };
    compare(&cur, &base, threshold)
}

/// The actual comparison, separated from I/O for testing.
fn compare(cur: &PerfSnapshot, base: &PerfSnapshot, threshold: f64) -> Verdict {
    if base.wall_seconds <= 0.0 {
        return Verdict::Note(format!(
            "bench_check: committed baseline has non-positive wall_seconds ({}); skipping",
            base.wall_seconds
        ));
    }
    let ratio = cur.wall_seconds / base.wall_seconds;
    let detail = format!(
        "{}: wall {:.3}s vs committed {:.3}s ({ratio:.2}x), {} vs {} simulated cycles",
        cur.binary, cur.wall_seconds, base.wall_seconds, cur.sim_cycles, base.sim_cycles
    );
    if ratio > threshold {
        Verdict::Warning(format!(
            "{detail} — exceeds the {threshold:.1}x wall-time regression threshold; \
             worth a look (CI hardware is noisy, so this does not fail the build)"
        ))
    } else {
        Verdict::Ok(format!("bench_check: within threshold — {detail}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(wall: f64) -> PerfSnapshot {
        PerfSnapshot::new("repro_pi", "cycle", wall, 1_000)
    }

    #[test]
    fn within_threshold_is_ok() {
        assert!(matches!(
            compare(&snap(1.9), &snap(1.0), 2.0),
            Verdict::Ok(_)
        ));
    }

    #[test]
    fn beyond_threshold_warns() {
        let v = compare(&snap(2.1), &snap(1.0), 2.0);
        let Verdict::Warning(msg) = v else {
            panic!("expected a warning");
        };
        assert!(msg.contains("2.10x"));
    }

    #[test]
    fn zero_baseline_is_a_note_not_a_division() {
        assert!(matches!(
            compare(&snap(1.0), &snap(0.0), 2.0),
            Verdict::Note(_)
        ));
    }

    #[test]
    fn missing_files_are_notes() {
        let missing = Path::new("/nonexistent/snapshot.json");
        assert!(matches!(check(missing, missing, 2.0), Verdict::Note(_)));
    }
}
