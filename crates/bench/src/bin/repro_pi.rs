//! Reproduces the π scaling case study of §V-D (Figs. 11–13): the state
//! views showing the host's sequential thread-start ramp, the achieved
//! GFLOP/s at 1 M / 4 M / 10 M iterations, and the paper's 15·10⁹-iteration
//! extrapolation.
//!
//! Usage: `repro_pi [--threads N] [--out DIR] [--jobs N]
//!                  [--mode cycle|analytical] [--bench-json PATH]
//!                  [--lint[=deny|warn|off]] [--perf-lint[=deny|warn|off]]
//!                  [--profile[=fixed|auto[,budget=N]]]`
//!
//! The three problem sizes run in parallel on the batch engine; the π
//! kernel's IR is step-count-independent, so the whole sweep shares one
//! HLS compile. Output is byte-identical for any `--jobs` value.
//! `--mode analytical` swaps the simulator for the roofline fast mode
//! (predicted cycles and GFLOP/s, no traces); `--bench-json PATH` writes
//! a machine-readable perf snapshot of the invocation.

use bench::args::{Args, Mode, ProfileMode};
use bench::harness::SnapshotTimer;
use bench::sweep::{bundles_footer, pi_sweep, pi_table, PiSweep, PiSweepConfig};
use bench::{analytic_report, lint_gate, perf_lint_gate, pi_launch, pi_sim_config};
use hls_profiling::diagnose::{
    confront, diagnose, perf_params_from_sim, render_confrontation, DiagnoseConfig,
};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::pi::{self, PiParams};
use nymble_hls::{AccelCache, HlsConfig};
use paraver::analysis::StateProfile;
use paraver::states;
use paraver::timeline::{render_states, TimelineOptions};
use std::path::PathBuf;

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let threads = args.u32("--threads").unwrap_or(8);
    let jobs = args.jobs().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let perf_lint = args.perf_lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mode = args.mode().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let profile = args.profile().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let bench_json = args.path("--bench-json");
    let out: PathBuf = args.path("--out").unwrap_or_else(|| "target/traces".into());
    std::fs::create_dir_all(&out).expect("create trace output dir");
    let sim = pi_sim_config();
    let prof = ProfilingConfig {
        sampling_period: 50_000,
        ..Default::default()
    };

    let paper = [
        (1_000_000u64, 0.146, 11),
        (4_000_000, 0.556, 12),
        (10_000_000, 1.507, 13),
    ];
    // Pre-sweep lint gate (the π IR is the same for every step count).
    let gate_kernel = pi::build(&PiParams {
        steps: paper[0].0,
        threads,
        bs: 8,
    });
    if let Err(report) = lint_gate(&[&gate_kernel], lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    if let Err(report) = perf_lint_gate(&[&gate_kernel], perf_lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }

    if mode == Mode::Analytical {
        let cache = AccelCache::new();
        let mut total = 0u64;
        println!("== π scaling (analytical fast mode): predicted cycles, {threads} threads ==\n");
        println!(
            "{:<14} {:>14} {:>15} {:>10}",
            "iterations", "cycles", "bound", "GFLOP/s"
        );
        for &(steps, paper_gflops, _) in &paper {
            let p = PiParams {
                steps,
                threads,
                bs: 8,
            };
            let k = pi::build(&p);
            let launch = pi_launch(&p);
            match analytic_report(&cache, &k, &sim, &launch) {
                Some(r) => {
                    total += r.total_cycles;
                    let flops = steps as f64 * kernels::reference::PI_FLOPS_PER_ITER as f64;
                    let gflops = flops / (r.total_cycles as f64 / sim.clock_hz()) / 1e9;
                    println!(
                        "{:<14} {:>14} {:>15} {:>10.3}  (paper: {paper_gflops})",
                        steps,
                        r.total_cycles,
                        r.bound.to_string(),
                        gflops
                    );
                }
                None => println!("{:<14} {:>14}", steps, "unresolvable"),
            }
        }
        println!(
            "\n(analytical mode: no simulation, no trace bundles — run --mode=cycle for figures;\n cross-validated within 15% of the cycle-level simulator, see crates/bench/tests/analytic_validation.rs)"
        );
        if let Some(path) = &bench_json {
            let snap = timer
                .finish("repro_pi", mode, total)
                .param("steps", "1000000,4000000,10000000")
                .param("threads", threads);
            snap.write(path).expect("write --bench-json");
            println!("\nperf snapshot written to {}", path.display());
        }
        return;
    }

    let sweep = pi_sweep(&PiSweepConfig {
        steps: paper.iter().map(|&(s, _, _)| s).collect(),
        threads,
        bs: 8,
        hls: HlsConfig {
            lint,
            perf_lint,
            probe: profile.probe(),
            ..HlsConfig::default()
        },
        sim: sim.clone(),
        prof,
        pipeline: PipelineConfig::default(),
        out: Some(out.clone()),
        jobs,
    });
    if let Some(plan) = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .find_map(|pr| pr.run.accel.probe_plan.clone())
    {
        println!("{}\n", plan.summary());
    }

    let mut per_iter_cycles = 0.0f64;
    for ((steps, paper_gflops, fig), (_, report)) in paper.iter().zip(&sweep.runs) {
        let pr = match &report.outcome {
            Ok(pr) => pr,
            Err(e) => {
                println!("== Fig. {fig}: π with {steps} iterations — run failed: {e} ==\n");
                continue;
            }
        };
        let (run, est) = (&pr.run, pr.estimate);
        let gflops = run.result.gflops(&sim);
        println!("== Fig. {fig}: π with {steps} iterations on {threads} threads ==\n");
        let opts = TimelineOptions {
            width: 100,
            window: None,
            axis: true,
        };
        println!(
            "{}",
            render_states(&run.trace.records, threads, run.trace.meta.duration, &opts)
        );
        let profst = StateProfile::compute(&run.trace.records, threads);
        println!(
            "cycles {:>10}  π ≈ {est:.6}  {gflops:.3} GFLOP/s (paper: {paper_gflops})  running {:.1}% of thread time",
            run.result.total_cycles,
            profst.fraction(states::RUNNING) * 100.0,
        );
        // Does the earliest thread finish before the last starts (Fig. 11)?
        let first_end = run.result.stats.per_thread[0].end_cycle;
        let last_start = run.result.stats.per_thread[threads as usize - 1].start_cycle;
        if first_end < last_start {
            println!(
                "thread 0 finished at {first_end} before thread {} started at {last_start} — the §V-D launch-overhead effect"
            , threads - 1);
        }
        // Predicted vs observed: the π kernel is NP-clean, so this section
        // mainly guards against an unpredicted hotspot (a measured
        // bottleneck the static pass has no finding for).
        if perf_lint != nymble_lint::LintLevel::Off {
            let d = diagnose(
                &run.trace,
                &run.result.stats,
                &sim,
                &DiagnoseConfig::default(),
            );
            let report =
                nymble_lint::perf_lint_kernel_with(&gate_kernel, &perf_params_from_sim(&sim));
            let outcomes = confront(&report, &run.trace, &run.result.stats, &d);
            println!("predicted vs observed:");
            print!("{}", render_confrontation(&outcomes));
        }
        println!();

        // Steady-state compute rate for the extrapolation below.
        let t7 = &run.result.stats.per_thread[threads as usize - 1];
        per_iter_cycles = (t7.end_cycle - t7.start_cycle) as f64 / (*steps as f64 / threads as f64);
    }

    println!(
        "== summary ({jobs} workers; {} compile for {} runs) ==\n",
        sweep.cache.misses,
        sweep.runs.len()
    );
    print!("{}", pi_table(&sweep));

    // §V-D extrapolation: "increasing the number of iterations to 15·10^9
    // would give us 36.84 GFLOP/s" (ignoring f32 instability).
    let big = 15e9f64;
    let launch_span = (threads as u64 - 1) as f64 * sim.launch_interval as f64;
    let total_cycles = launch_span + big / threads as f64 * per_iter_cycles;
    let flops = big * kernels::reference::PI_FLOPS_PER_ITER as f64;
    let gflops = flops / (total_cycles / sim.clock_hz()) / 1e9;
    println!("\n== extrapolation to 15·10⁹ iterations (paper: 36.84 GFLOP/s, ignoring f32 instability) ==\n");
    println!(
        "  predicted {total_cycles:.3e} cycles → {gflops:.2} GFLOP/s at {} MHz",
        sim.clock_mhz
    );
    println!("\n{}", bundles_footer(&out));
    if let Some(path) = &bench_json {
        write_cycle_snapshot(&timer, path, &sweep, &paper, threads, jobs, &sim, profile);
    }
}

/// Emit the `--bench-json` snapshot of a cycle-mode run, including a
/// timed analytical cross-check of the same three step counts so the
/// snapshot records the fast-mode speedup alongside the exact numbers.
#[allow(clippy::too_many_arguments)] // the snapshot records every knob of the invocation
fn write_cycle_snapshot(
    timer: &SnapshotTimer,
    path: &std::path::Path,
    sweep: &PiSweep,
    paper: &[(u64, f64, u32)],
    threads: u32,
    jobs: usize,
    sim: &fpga_sim::SimConfig,
    profile: ProfileMode,
) {
    let total_sim: u64 = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .map(|pr| pr.run.result.total_cycles)
        .sum();
    let at = SnapshotTimer::start();
    let cache = AccelCache::new();
    let analytic_total: u64 = paper
        .iter()
        .filter_map(|&(steps, _, _)| {
            let p = PiParams {
                steps,
                threads,
                bs: 8,
            };
            let k = pi::build(&p);
            analytic_report(&cache, &k, sim, &pi_launch(&p)).map(|r| r.total_cycles)
        })
        .sum();
    let analytic_wall = at.elapsed_seconds();
    let wall = timer.elapsed_seconds();
    let probe_alms = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .find_map(|pr| {
            pr.run
                .accel
                .probe_plan
                .as_ref()
                .map(|pl| pl.cost_alms as f64)
        })
        .unwrap_or(0.0);
    let snap = timer
        .finish("repro_pi", Mode::Cycle, total_sim)
        .param("steps", "1000000,4000000,10000000")
        .param("threads", threads)
        .param("jobs", jobs)
        .param("profile", profile.name())
        .with_extra("probe_overhead", probe_alms)
        .with_extra("analytical_wall_seconds", analytic_wall)
        .with_extra("analytical_total_cycles", analytic_total as f64)
        .with_extra("analytical_speedup", wall / analytic_wall.max(1e-9))
        .with_extra("worker_utilization", sweep.sched.utilization())
        .with_extra("sched_steals", sweep.sched.steals as f64)
        .with_extra("sched_parks", sweep.sched.parks as f64)
        .with_extra("sched_makespan_seconds", sweep.sched.makespan.as_secs_f64());
    snap.write(path).expect("write --bench-json");
    println!("\nperf snapshot written to {}", path.display());
}
