//! High-thread-count scaling study of the simulator itself: the
//! timing-wheel dispatch core and the event-driven device models at
//! T = 64 / 128 / 256, the range where the binary-heap core's
//! pop-per-event dispatch used to dominate the wall clock.
//!
//! Usage: `repro_scale [--dim N] [--rows N] [--cols N] [--nnz N]
//!                     [--threads LIST] [--ab-threads N]
//!                     [--out DIR] [--jobs N] [--bench-json PATH]
//!                     [--lint[=deny|warn|off]] [--perf-lint[=deny|warn|off]]
//!                     [--profile[=fixed|auto[,budget=N]]]`
//!
//! Three sections:
//!
//! 1. **Thread-count scaling** — GEMM (No Critical Sections) and SpMV run
//!    untraced on the wheel core at every thread count in `--threads`,
//!    reporting simulated cycles, wall time, simulation throughput and
//!    the device-event wake mix (line fetches, channel grants, DMA).
//! 2. **Dispatch core A/B** — the same GEMM workload at `--ab-threads` on
//!    the wheel core vs. the retained binary-heap baseline. Both produce
//!    bit-identical results (see `fpga-sim/src/difftest.rs`); only the
//!    wall clock differs. The speedup lands in the perf snapshot.
//! 3. **SpMV trace sweep** — the thread counts again through the full
//!    streaming trace pipeline (batch engine + bundles), with the
//!    analytical fast-mode prediction column. `--profile=auto[,budget=N]`
//!    runs this section under the auto-probe plan (the untraced scaling
//!    sections stay uninstrumented by design).
//!
//! `--bench-json PATH` writes the machine-readable snapshot the committed
//! `BENCH_scale.json` trajectory is built from.

use bench::args::{Args, Mode};
use bench::harness::SnapshotTimer;
use bench::sweep::{bundles_footer, spmv_sweep, spmv_table, SpmvSweepConfig};
use bench::{analytic_report, lint_gate, perf_lint_gate, spmv_launch, spmv_sim_config};
use fpga_sim::memimg::LaunchArg;
use fpga_sim::{DeviceStats, Executor, NullSnoop, RunResult, SimConfig};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::spmv::{self, Csr};
use nymble_hls::{AccelCache, HlsConfig};
use nymble_ir::Kernel;
use std::path::PathBuf;
use std::time::Instant;

/// One untraced wheel-core measurement.
struct ScaleRun {
    result: RunResult,
    devices: DeviceStats,
    wall: f64,
}

/// Run `kernel` untraced on the wheel core, timing the simulation only
/// (compile time is excluded — the cache is pre-warmed by the caller).
fn timed_run(
    cache: &AccelCache,
    kernel: &Kernel,
    sim: &SimConfig,
    launch: &[LaunchArg],
) -> ScaleRun {
    let accel = cache.get_or_compile(kernel, &HlsConfig::default());
    let t0 = Instant::now();
    let (result, devices) =
        Executor::run_with_device_stats(kernel, &accel, sim, launch, &mut NullSnoop)
            .unwrap_or_else(|e| panic!("{}: sim failed: {e}", kernel.name));
    ScaleRun {
        result,
        devices,
        wall: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let dim = args.i64("--dim").unwrap_or(256);
    let rows = args.u64("--rows").unwrap_or(1024) as usize;
    let cols = args.u64("--cols").unwrap_or(1024) as usize;
    let nnz = args.u64("--nnz").unwrap_or(8) as usize;
    let threads: Vec<u32> = match args.value_of("--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim().parse().unwrap_or_else(|_| {
                    eprintln!("repro_scale: bad --threads entry {t:?}");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => vec![64, 128, 256],
    };
    let ab_threads = args
        .u32("--ab-threads")
        .unwrap_or_else(|| threads.iter().copied().max().unwrap_or(128).min(128));
    let jobs = args.jobs().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let perf_lint = args.perf_lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let profile = args.profile().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let bench_json = args.path("--bench-json");
    let out: PathBuf = args.path("--out").unwrap_or_else(|| "target/traces".into());
    std::fs::create_dir_all(&out).expect("create trace output dir");
    let sim = spmv_sim_config();

    let matrix = Csr::random(rows, cols, nnz, 7);
    let gemm_p = |t: u32| GemmParams {
        dim,
        threads: t,
        vec: 4,
        block: 8,
    };
    let gate_t = *threads.first().expect("--threads must be non-empty");
    let gate_gemm = gemm::build(GemmVersion::NoCritical, &gemm_p(gate_t));
    let gate_spmv = spmv::build(matrix.rows as i64, gate_t);
    if let Err(report) = lint_gate(&[&gate_gemm, &gate_spmv], lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    if let Err(report) = perf_lint_gate(&[&gate_gemm, &gate_spmv], perf_lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }

    // §1: thread-count scaling on the wheel core, untraced.
    println!("== thread-count scaling, wheel dispatch core (GEMM dim {dim}, SpMV {rows}x{cols} nnz/row {nnz}) ==\n");
    println!(
        "{:<8} {:>8} {:>14} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "workload",
        "threads",
        "cycles",
        "wall s",
        "Mcyc/s",
        "line wakes",
        "grant wakes",
        "dma wakes"
    );
    let cache = AccelCache::new();
    let spmv_launch_args = spmv_launch(&matrix);
    let mut total_sim = 0u64;
    let mut scale_extras: Vec<(String, f64)> = Vec::new();
    let mut worst_spmv_err = 0.0f64;
    for &t in &threads {
        let gk = gemm::build(GemmVersion::NoCritical, &gemm_p(t));
        let gl = bench::gemm_launch(&gemm_p(t));
        let g = timed_run(&cache, &gk, &sim, &gl);
        total_sim += g.result.total_cycles;
        print_scale_row("gemm", t, &g);
        scale_extras.push((format!("gemm_wall_s_t{t}"), g.wall));

        let sk = spmv::build(matrix.rows as i64, t);
        let s = timed_run(&cache, &sk, &sim, &spmv_launch_args);
        total_sim += s.result.total_cycles;
        print_scale_row("spmv", t, &s);
        scale_extras.push((format!("spmv_wall_s_t{t}"), s.wall));
        if let Some(r) = analytic_report(&cache, &sk, &sim, &spmv_launch_args) {
            let err = (r.total_cycles as f64 - s.result.total_cycles as f64)
                / s.result.total_cycles as f64
                * 100.0;
            if err.abs() > worst_spmv_err.abs() {
                worst_spmv_err = err;
            }
        }
        if t == *threads.last().unwrap() {
            let d = g.devices;
            scale_extras.push(("gemm_line_fetch_wakes".into(), d.line_fetch_wakes as f64));
            scale_extras.push((
                "gemm_channel_grant_wakes".into(),
                d.channel_grant_wakes as f64,
            ));
            scale_extras.push(("gemm_dma_wakes".into(), d.dma_wakes as f64));
            let d = s.devices;
            scale_extras.push(("spmv_line_fetch_wakes".into(), d.line_fetch_wakes as f64));
            scale_extras.push((
                "spmv_channel_grant_wakes".into(),
                d.channel_grant_wakes as f64,
            ));
            scale_extras.push(("spmv_dma_wakes".into(), d.dma_wakes as f64));
        }
    }
    println!(
        "\nSpMV analytical fast mode: worst error {worst_spmv_err:+.1}% across the sweep \
         (±15% bound enforced in crates/bench/tests/analytic_validation.rs)"
    );

    // §2: dispatch core A/B at the reference thread count.
    let abk = gemm::build(GemmVersion::NoCritical, &gemm_p(ab_threads));
    let abl = bench::gemm_launch(&gemm_p(ab_threads));
    let accel = cache.get_or_compile(&abk, &HlsConfig::default());
    let t0 = Instant::now();
    let wheel = Executor::run(&abk, &accel, &sim, &abl, &mut NullSnoop).expect("wheel run");
    let wheel_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let heap =
        Executor::run_heap_baseline(&abk, &accel, &sim, &abl, &mut NullSnoop).expect("heap run");
    let heap_wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        wheel.total_cycles, heap.total_cycles,
        "the two dispatch cores must agree cycle-for-cycle"
    );
    total_sim += wheel.total_cycles + heap.total_cycles;
    let speedup = heap_wall / wheel_wall.max(1e-9);
    println!("\n== dispatch core A/B: GEMM dim {dim} at {ab_threads} threads ==\n");
    println!(
        "  wheel + run-ahead + batched snoop  {wheel_wall:>8.3} s\n  \
           binary heap, pop-per-event         {heap_wall:>8.3} s\n  \
           speedup                            {speedup:>8.2}x  (identical {} simulated cycles)",
        wheel.total_cycles
    );

    // §3: SpMV through the full streaming trace pipeline.
    let sweep = spmv_sweep(&SpmvSweepConfig {
        matrix: matrix.clone(),
        threads: threads.clone(),
        hls: HlsConfig {
            lint,
            perf_lint,
            probe: profile.probe(),
            ..HlsConfig::default()
        },
        sim: sim.clone(),
        prof: ProfilingConfig::default(),
        pipeline: PipelineConfig::default(),
        out: Some(out.clone()),
        jobs,
    });
    for (t, r) in &sweep.runs {
        if let Ok(pr) = &r.outcome {
            total_sim += pr.run.result.total_cycles;
        } else if let Err(e) = &r.outcome {
            eprintln!("spmv_t{t} trace run failed: {e}");
        }
    }
    println!(
        "\n== SpMV trace sweep ({jobs} workers, {} compiles for {} runs) ==\n",
        sweep.cache.misses,
        sweep.runs.len()
    );
    print!("{}", spmv_table(&sweep));
    if let Some(plan) = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .find_map(|pr| pr.run.accel.probe_plan.clone())
    {
        println!("\n{}", plan.summary());
    }
    println!("\n{}", bundles_footer(&out));

    if let Some(path) = &bench_json {
        let threads_str = threads
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let probe_alms = sweep
            .runs
            .iter()
            .filter_map(|(_, r)| r.outcome.as_ref().ok())
            .find_map(|pr| {
                pr.run
                    .accel
                    .probe_plan
                    .as_ref()
                    .map(|pl| pl.cost_alms as f64)
            })
            .unwrap_or(0.0);
        let mut snap = timer
            .finish("repro_scale", Mode::Cycle, total_sim)
            .param("dim", dim)
            .param("rows", rows)
            .param("cols", cols)
            .param("nnz", nnz)
            .param("threads", threads_str)
            .param("ab_threads", ab_threads)
            .param("jobs", jobs)
            .param("profile", profile.name())
            .with_extra("probe_overhead", probe_alms)
            .with_extra("wheel_wall_s", wheel_wall)
            .with_extra("heap_wall_s", heap_wall)
            .with_extra("wheel_speedup", speedup)
            .with_extra("spmv_analytic_err_pct", worst_spmv_err)
            .with_extra("worker_utilization", sweep.sched.utilization());
        for (k, v) in scale_extras {
            snap = snap.with_extra(&k, v);
        }
        snap.write(path).expect("write --bench-json");
        println!("\nperf snapshot written to {}", path.display());
    }
}

fn print_scale_row(workload: &str, threads: u32, r: &ScaleRun) {
    println!(
        "{:<8} {:>8} {:>14} {:>9.3} {:>10.2} {:>12} {:>12} {:>10}",
        workload,
        threads,
        r.result.total_cycles,
        r.wall,
        r.result.total_cycles as f64 / r.wall.max(1e-9) / 1e6,
        r.devices.line_fetch_wakes,
        r.devices.channel_grant_wakes,
        r.devices.dma_wakes
    );
}
