//! Reproduces §V-B — *Profiling Overhead and Hardware Footprint* (E1/E2).
//!
//! Study 1 (the five GEMM accelerators): register overhead ≤ 5.4%
//! (geo-mean 2.41%), ALM overhead ≤ 4% (geo-mean 3.42%), fmax degradation
//! ≤ 8 MHz at ~140 MHz. Study 2 (the larger π accelerator): 1.3% registers,
//! 1.5% ALMs, 1 MHz at ~148 MHz. Also verifies the per-counter claim:
//! "each of the counters contributes similarly to the hardware overhead".
//!
//! Usage: `repro_overhead [--threads N] [--jobs N] [--bench-json PATH]
//!                        [--lint[=deny|warn|off]] [--perf-lint[=deny|warn|off]]
//!                        [--profile[=fixed|auto[,budget=N]]]`
//!
//! `--profile=auto[,budget=N]` prices the auto-probe plan instead of the
//! fixed counter set: each design's profiling-unit fit then includes the
//! selected counters *and* region probes, so the overhead tables show
//! what the knapsack pass actually spends against its budget.
//!
//! The study runs as one task graph on the work-stealing engine: six
//! `Compile` nodes (five GEMM versions plus π) populate the shared
//! compile cache, one `Analyze` node per GEMM design computes its
//! cost-model fit row as soon as that design is compiled, and a `Reduce`
//! node renders the table in submission order — identical for any
//! `--jobs` value. The study is purely static (cost-model fits, no
//! simulation), so `--mode` is accepted for uniformity but does not
//! change the tables; a `--bench-json` snapshot records zero simulated
//! cycles.

use bench::args::Args;
use bench::engine::BatchEngine;
use bench::graph::{NodeCtx, NodeKind, TaskGraph};
use bench::harness::SnapshotTimer;
use bench::{lint_gate, perf_lint_gate};
use hls_profiling::counters::CounterSet;
use hls_profiling::overhead::{instrumented_fit, profiling_fit, OverheadParams};
use hls_profiling::ProfilingConfig;
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_hls::accel::{Accelerator, HlsConfig};
use nymble_hls::cost::geo_mean;
use nymble_hls::AccelCache;
use std::fmt::Write as _;
use std::sync::Arc;

/// Node payload of the overhead-study graph.
enum OvhNode {
    Accel(Arc<Accelerator>),
    Row {
        line: String,
        alm_pct: f64,
        reg_pct: f64,
    },
    Block(String),
}

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let threads = args.u32("--threads").unwrap_or(8);
    let jobs = args.jobs().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let perf_lint = args.perf_lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mode = args.mode().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let profile = args.profile().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let bench_json = args.path("--bench-json");
    let hls = HlsConfig {
        lint,
        perf_lint,
        probe: profile.probe(),
        ..HlsConfig::default()
    };
    let prof = ProfilingConfig::default();
    let op = OverheadParams::default();
    let cache = AccelCache::new();
    let engine = BatchEngine::new(jobs);

    println!("== E1: hardware footprint of the profiling unit — study 1 (GEMM accelerators) ==\n");
    println!(
        "{:<24} {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8} | {:>7} {:>7} {:>9}",
        "design",
        "ALMs",
        "regs",
        "fmax",
        "ALMs+PU",
        "regs+PU",
        "fmax+PU",
        "ΔALM%",
        "Δreg%",
        "Δfmax MHz"
    );
    let gp = GemmParams {
        threads,
        ..GemmParams::paper_scale()
    };
    let pp = PiParams {
        threads,
        ..Default::default()
    };
    // Lint all six study designs (five GEMM versions plus π) up front, so
    // at `--lint=deny` the binary exits before compiling anything.
    let gate_kernels: Vec<_> = GemmVersion::ALL
        .iter()
        .map(|&v| gemm::build(v, &gp))
        .chain(std::iter::once(pi::build(&pp)))
        .collect();
    if let Err(report) = lint_gate(&gate_kernels.iter().collect::<Vec<_>>(), lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    if let Err(report) = perf_lint_gate(&gate_kernels.iter().collect::<Vec<_>>(), perf_lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    drop(gate_kernels);

    // One task graph for the whole study: a Compile node per design, an
    // Analyze fit-row per GEMM design, a Reduce rendering the table in
    // submission order (so it never depends on `--jobs`).
    let mut graph: TaskGraph<'_, OvhNode> = TaskGraph::new();
    let mut analyze_ids = Vec::new();
    for &v in GemmVersion::ALL.iter() {
        let (cache, hls, gp, prof, op) = (&cache, &hls, &gp, &prof, &op);
        let compile = graph.add(
            NodeKind::Compile,
            format!("compile:{}", v.name()),
            &[],
            move |_: &NodeCtx<'_, OvhNode>| {
                Ok(OvhNode::Accel(
                    cache.get_or_compile(&gemm::build(v, gp), hls),
                ))
            },
        );
        let analyze = graph.add(
            NodeKind::Analyze,
            format!("fit:{}", v.name()),
            &[compile],
            move |ctx: &NodeCtx<'_, OvhNode>| {
                let OvhNode::Accel(acc) = ctx.dep(0).outcome.as_ref().expect("compile node") else {
                    unreachable!("compile node produced a non-accel payload")
                };
                // Under --profile=auto the fit prices the design's own
                // plan (counters + region probes) instead of the fixed set.
                let prof_v = match &acc.probe_plan {
                    Some(plan) => prof.clone().with_plan(plan.clone()),
                    None => prof.clone(),
                };
                let with = instrumented_fit(&acc.fit, threads, &prof_v, op, &hls.cost);
                let o = with.overhead_vs(&acc.fit);
                let line = format!(
                    "{:<24} {:>9} {:>9} {:>8.1} | {:>9} {:>9} {:>8.1} | {:>6.2}% {:>6.2}% {:>9.1}",
                    v.name(),
                    acc.fit.alms,
                    acc.fit.registers,
                    acc.fit.fmax_mhz,
                    with.alms,
                    with.registers,
                    with.fmax_mhz,
                    o.alms_pct,
                    o.registers_pct,
                    o.fmax_delta_mhz
                );
                Ok(OvhNode::Row {
                    line,
                    alm_pct: o.alms_pct,
                    reg_pct: o.registers_pct,
                })
            },
        );
        analyze_ids.push(analyze);
    }
    let pi_compile = graph.add(NodeKind::Compile, "compile:pi", &[], {
        let (cache, hls, pp) = (&cache, &hls, &pp);
        move |_: &NodeCtx<'_, OvhNode>| {
            Ok(OvhNode::Accel(cache.get_or_compile(&pi::build(pp), hls)))
        }
    });
    let reduce = graph.add(
        NodeKind::Reduce,
        "study1_table",
        &analyze_ids,
        move |ctx: &NodeCtx<'_, OvhNode>| {
            let mut block = String::new();
            let mut alm_pcts = Vec::new();
            let mut reg_pcts = Vec::new();
            for dep in ctx.deps() {
                let OvhNode::Row {
                    line,
                    alm_pct,
                    reg_pct,
                } = dep.outcome.as_ref().expect("fit node")
                else {
                    unreachable!("fit node produced a non-row payload")
                };
                writeln!(block, "{line}").unwrap();
                alm_pcts.push(*alm_pct);
                reg_pcts.push(*reg_pct);
            }
            let max_or = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
            writeln!(
                block,
                "\n  registers: max {:.2}% geo-mean {:.2}%   (paper: max 5.4%, geo-mean 2.41%)",
                max_or(&reg_pcts),
                geo_mean(&reg_pcts)
            )
            .unwrap();
            writeln!(
                block,
                "  ALMs:      max {:.2}% geo-mean {:.2}%   (paper: max 4%,   geo-mean 3.42%)",
                max_or(&alm_pcts),
                geo_mean(&alm_pcts)
            )
            .unwrap();
            Ok(OvhNode::Block(block))
        },
    );
    let out = engine.run_graph(graph);
    let OvhNode::Block(block) = out.reports[reduce.index()]
        .outcome
        .as_ref()
        .expect("study-1 reduce")
    else {
        unreachable!("reduce node produced a non-block payload")
    };
    print!("{block}");

    println!("\n== E2: study 2 (π accelerator) ==\n");
    let OvhNode::Accel(acc) = out.reports[pi_compile.index()]
        .outcome
        .as_ref()
        .expect("pi compile node")
    else {
        unreachable!("compile node produced a non-accel payload")
    };
    let pi_prof = match &acc.probe_plan {
        Some(plan) => prof.clone().with_plan(plan.clone()),
        None => prof.clone(),
    };
    if let Some(plan) = &acc.probe_plan {
        println!("  {}", plan.summary());
    }
    let with = instrumented_fit(&acc.fit, threads, &pi_prof, &op, &hls.cost);
    let o = with.overhead_vs(&acc.fit);
    println!(
        "  pi: ALMs {} → {} (+{:.2}%), registers {} → {} (+{:.2}%), fmax {:.1} → {:.1} MHz (−{:.1})",
        acc.fit.alms,
        with.alms,
        o.alms_pct,
        acc.fit.registers,
        with.registers,
        o.registers_pct,
        acc.fit.fmax_mhz,
        with.fmax_mhz,
        o.fmax_delta_mhz
    );
    println!("  (paper: registers +1.3%, ALMs +1.5%, fmax −1 MHz at 148 MHz)");

    println!(
        "\n== per-counter contribution (§V-B: \"each of the counters contributes similarly\") ==\n"
    );
    let none = profiling_fit(
        threads,
        &ProfilingConfig {
            counters: CounterSet::NONE,
            ..prof.clone()
        },
        &op,
    );
    let names = [
        "stalls",
        "int_ops",
        "flops",
        "mem_read",
        "mem_write",
        "local_ops",
    ];
    for (i, name) in names.iter().enumerate() {
        let mut set = CounterSet::NONE;
        match i {
            0 => set.stalls = true,
            1 => set.int_ops = true,
            2 => set.flops = true,
            3 => set.mem_read = true,
            4 => set.mem_write = true,
            _ => set.local_ops = true,
        }
        let f = profiling_fit(
            threads,
            &ProfilingConfig {
                counters: set,
                ..prof.clone()
            },
            &op,
        );
        println!(
            "  {:<10} +{:>4} ALMs, +{:>4} registers",
            name,
            f.alms - none.alms,
            f.registers - none.registers
        );
    }
    let stats = cache.stats();
    println!(
        "\n({jobs} workers; {} designs compiled once each)",
        stats.entries
    );
    if let Some(path) = &bench_json {
        let probe_alms = acc
            .probe_plan
            .as_ref()
            .map(|pl| pl.cost_alms as f64)
            .unwrap_or(0.0);
        let snap = timer
            .finish("repro_overhead", mode, 0)
            .param("threads", threads)
            .param("jobs", jobs)
            .param("profile", profile.name())
            .with_extra("probe_overhead", probe_alms)
            .with_extra("worker_utilization", out.stats.utilization())
            .with_extra("sched_steals", out.stats.steals as f64)
            .with_extra("sched_parks", out.stats.parks as f64);
        snap.write(path).expect("write --bench-json");
        println!("\nperf snapshot written to {}", path.display());
    }
}
