//! Reproduces the GEMM case study of §V-C: the speedup progression quoted in
//! the text, the Paraver state view of Fig. 6 (with its zoom), the relative
//! bandwidth comparison of Fig. 7, and the phase plots of Figs. 8 and 9.
//!
//! Usage: `repro_gemm [--dim N] [--threads N] [--out DIR] [--jobs N]
//!                    [--lint[=deny|warn|off]]`
//!
//! `--dim 512` runs at the paper's scale (slow); the default 128 preserves
//! every ratio (see EXPERIMENTS.md). Trace bundles (`.prv`/`.pcf`/`.row`)
//! are written under `--out` (default `target/traces`). The five versions
//! run in parallel on the batch engine (`--jobs`, default: all hardware
//! threads); tables and bundles are byte-identical for any worker count —
//! including across `--lint` levels, since the analyzer never touches the
//! compiled artifact.

use bench::args::Args;
use bench::sweep::{bundles_footer, gemm_sweep, gemm_table, GemmSweep, GemmSweepConfig};
use bench::{gemm_sim_config, lint_gate};
use hls_profiling::diagnose::{diagnose, DiagnoseConfig};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::{self, GemmParams, GemmVersion};
use nymble_hls::HlsConfig;
use paraver::analysis::{event_series, StateProfile};
use paraver::timeline::{render_series, render_states, TimelineOptions};
use paraver::{events, states};
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let dim = args.u32("--dim").unwrap_or(128) as i64;
    let threads = args.u32("--threads").unwrap_or(8);
    let jobs = args.jobs();
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let out: PathBuf = args.path("--out").unwrap_or_else(|| "target/traces".into());
    std::fs::create_dir_all(&out).expect("create trace output dir");

    let p = GemmParams {
        dim,
        threads,
        ..Default::default()
    };
    let sim = gemm_sim_config();

    // Pre-sweep lint gate: analyze all five versions before any
    // simulation time is spent.
    let kernels: Vec<_> = GemmVersion::ALL
        .iter()
        .map(|&v| gemm::build(v, &p))
        .collect();
    if let Err(report) = lint_gate(&kernels.iter().collect::<Vec<_>>(), lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }

    let sweep: GemmSweep = gemm_sweep(&GemmSweepConfig {
        params: p,
        hls: HlsConfig {
            lint,
            ..HlsConfig::default()
        },
        sim: sim.clone(),
        prof: ProfilingConfig::default(),
        pipeline: PipelineConfig::default(),
        out: Some(out.clone()),
        jobs,
    });
    println!("== T-GEMM: execution time and speedups (§V-C text) ==\n");
    print!("{}", gemm_table(&sweep, &sim, threads));
    println!(
        "\n({} workers; compile cache: {} kernels compiled once, {} shared reuses)",
        jobs, sweep.cache.misses, sweep.cache.hits
    );

    println!("\n-- automated trace diagnosis (hls_profiling::diagnose) --\n");
    for (v, report) in &sweep.runs {
        match &report.outcome {
            Ok(run) => {
                let d = diagnose(
                    &run.trace,
                    &run.result.stats,
                    &sim,
                    &DiagnoseConfig::default(),
                );
                println!("{:<24} {:?}: {}", v.name(), d.bottleneck, d.advice);
            }
            Err(e) => {
                println!("{:<24} run failed, no trace to diagnose: {e}", v.name());
                if let bench::BenchError::Sim(se) = e {
                    if let Some(hint) = hls_profiling::diagnose::sim_error_hint(se) {
                        println!("{:<24} hint: {hint}", "");
                    }
                }
            }
        }
    }
    println!(
        "\n(paper @512: naive 853,522,308 cycles; 1.14x, 1.93x over previous, 5.28x and 19x over naive)"
    );

    // ---- Fig. 6: state view of the naive version -------------------------
    let naive = match &sweep.runs[0].1.outcome {
        Ok(run) => run,
        Err(e) => {
            println!("\nnaive run failed ({e}); skipping the figure renders");
            println!("\n{}", bundles_footer(&out));
            return;
        }
    };
    println!(
        "\n== Fig. 6: Paraver state view, naive GEMM (R=Running S=Spinning C=Critical .=Idle) ==\n"
    );
    let opts = TimelineOptions {
        width: 100,
        window: None,
        axis: true,
    };
    println!(
        "{}",
        render_states(
            &naive.trace.records,
            threads,
            naive.trace.meta.duration,
            &opts
        )
    );
    let prof = StateProfile::compute(&naive.trace.records, threads);
    println!(
        "time in critical sections: {:.2}%   spinning on locks: {:.2}%   (paper: 1.54% / 1.57%)",
        prof.fraction(states::CRITICAL) * 100.0,
        prof.fraction(states::SPINNING) * 100.0
    );

    // Zoom (Fig. 6 bottom): around the first long spin interval.
    if let Some((t0, t1)) = find_spin_window(&naive.trace.records) {
        println!("\n-- zoom [{t0}, {t1}): one thread spins while another is in its critical section --\n");
        let zopts = TimelineOptions {
            width: 100,
            window: Some((t0, t1)),
            axis: true,
        };
        println!(
            "{}",
            render_states(
                &naive.trace.records,
                threads,
                naive.trace.meta.duration,
                &zopts
            )
        );
    }

    // ---- Fig. 7: relative bandwidth over relative execution time --------
    println!("\n== Fig. 7: relative external-memory bandwidth over each version's execution ==\n");
    for (v, report) in &sweep.runs {
        let Ok(run) = &report.outcome else { continue };
        let dur = run.trace.meta.duration.max(1);
        let bins = 100u64;
        let series_r = event_series(
            &run.trace.records,
            events::BYTES_READ,
            dur.div_ceil(bins),
            dur,
        );
        let series_w = event_series(
            &run.trace.records,
            events::BYTES_WRITTEN,
            dur.div_ceil(bins),
            dur,
        );
        let total: Vec<f64> = series_r
            .bins
            .iter()
            .zip(&series_w.bins)
            .map(|(r, w)| (r + w) as f64)
            .collect();
        println!("{}", render_series(&total, v.name()));
    }
    println!("\n(each row spans that version's own runtime, as in the paper's per-version panels)");

    // ---- Figs. 8 & 9: load/compute phases, blocked vs double-buffered ----
    for (v, fig) in [(GemmVersion::Blocked, 8), (GemmVersion::DoubleBuffered, 9)] {
        let report = &sweep.runs.iter().find(|(rv, _)| *rv == v).unwrap().1;
        let Ok(run) = &report.outcome else { continue };
        let dur = run.trace.meta.duration.max(1);
        let bins = 100u64;
        let bw = event_series(
            &run.trace.records,
            events::BYTES_READ,
            dur.div_ceil(bins),
            dur,
        );
        let fl = event_series(&run.trace.records, events::FLOPS, dur.div_ceil(bins), dur);
        let st = event_series(&run.trace.records, events::STALLS, dur.div_ceil(bins), dur);
        println!(
            "\n== Fig. {fig}: {} — throughput (top) vs compute (middle) vs stalls (bottom) ==\n",
            v.name()
        );
        println!(
            "{}",
            render_series(
                &bw.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "DRAM bytes"
            )
        );
        println!(
            "{}",
            render_series(
                &fl.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "FLOPs"
            )
        );
        println!(
            "{}",
            render_series(
                &st.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "stalls"
            )
        );
    }
    println!(
        "\n(Fig. 8: alternating load/compute phases; Fig. 9: reads overlap compute — flatter both)"
    );
    println!("\n{}", bundles_footer(&out));
}

/// Find a window around the first sizeable spinning interval.
fn find_spin_window(records: &[paraver::Record]) -> Option<(u64, u64)> {
    let mut best: Option<(u64, u64)> = None;
    for r in records {
        if let paraver::Record::State {
            begin, end, state, ..
        } = r
        {
            if *state == states::SPINNING && end > begin {
                let len = end - begin;
                if best.is_none_or(|(b, e)| e - b < len) {
                    best = Some((*begin, *end));
                }
            }
        }
    }
    best.map(|(b, e)| {
        let pad = (e - b).max(50);
        (b.saturating_sub(pad), e + pad)
    })
}
