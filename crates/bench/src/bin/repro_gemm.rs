//! Reproduces the GEMM case study of §V-C: the speedup progression quoted in
//! the text, the Paraver state view of Fig. 6 (with its zoom), the relative
//! bandwidth comparison of Fig. 7, and the phase plots of Figs. 8 and 9.
//!
//! Usage: `repro_gemm [--dim N] [--threads N] [--out DIR]`
//!
//! `--dim 512` runs at the paper's scale (slow); the default 128 preserves
//! every ratio (see EXPERIMENTS.md). Trace bundles (`.prv`/`.pcf`/`.row`)
//! are written under `--out` (default `target/traces`).

use bench::{gemm_sim_config, run_gemm};
use hls_profiling::diagnose::{diagnose, DiagnoseConfig};
use kernels::gemm::{GemmParams, GemmVersion};
use paraver::analysis::{event_series, StateProfile};
use paraver::timeline::{render_series, render_states, TimelineOptions};
use paraver::{events, states};
use std::path::PathBuf;

fn main() {
    let dim = arg_u32("--dim").unwrap_or(128) as i64;
    let threads = arg_u32("--threads").unwrap_or(8);
    let out: PathBuf = arg_str("--out")
        .unwrap_or_else(|| "target/traces".to_string())
        .into();
    std::fs::create_dir_all(&out).expect("create trace output dir");

    let p = GemmParams {
        dim,
        threads,
        ..Default::default()
    };
    let sim = gemm_sim_config();

    println!("== T-GEMM: execution time and speedups (§V-C text) ==\n");
    println!(
        "{:<24} {:>14} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "version", "cycles", "vs naive", "vs prev", "GB/s", "spin%", "crit%"
    );
    let mut runs = Vec::new();
    let (mut naive_c, mut prev_c) = (0u64, 0u64);
    for v in GemmVersion::ALL {
        let run = run_gemm(v, &p, &sim);
        let c = run.result.total_cycles;
        if v == GemmVersion::Naive {
            naive_c = c;
            prev_c = c;
        }
        let prof = StateProfile::compute(&run.trace.records, threads);
        println!(
            "{:<24} {:>14} {:>8.2}x {:>8.2}x {:>8.3} {:>7.2}% {:>7.2}%",
            v.name(),
            c,
            naive_c as f64 / c as f64,
            prev_c as f64 / c as f64,
            run.result.throughput_gbps(&sim),
            prof.fraction(states::SPINNING) * 100.0,
            prof.fraction(states::CRITICAL) * 100.0
        );
        prev_c = c;
        let stem = out.join(format!("gemm_{dim}_{}", run.trace.meta.app_name));
        run.trace.write_bundle(&stem).expect("write trace bundle");
        runs.push((v, run));
    }
    println!("\n-- automated trace diagnosis (hls_profiling::diagnose) --\n");
    for (v, run) in &runs {
        let d = diagnose(
            &run.trace,
            &run.result.stats,
            &sim,
            &DiagnoseConfig::default(),
        );
        println!("{:<24} {:?}: {}", v.name(), d.bottleneck, d.advice);
    }
    println!(
        "\n(paper @512: naive 853,522,308 cycles; 1.14x, 1.93x over previous, 5.28x and 19x over naive)"
    );

    // ---- Fig. 6: state view of the naive version -------------------------
    let (_, naive) = &runs[0];
    println!(
        "\n== Fig. 6: Paraver state view, naive GEMM (R=Running S=Spinning C=Critical .=Idle) ==\n"
    );
    let opts = TimelineOptions {
        width: 100,
        window: None,
        axis: true,
    };
    println!(
        "{}",
        render_states(
            &naive.trace.records,
            threads,
            naive.trace.meta.duration,
            &opts
        )
    );
    let prof = StateProfile::compute(&naive.trace.records, threads);
    println!(
        "time in critical sections: {:.2}%   spinning on locks: {:.2}%   (paper: 1.54% / 1.57%)",
        prof.fraction(states::CRITICAL) * 100.0,
        prof.fraction(states::SPINNING) * 100.0
    );

    // Zoom (Fig. 6 bottom): around the first long spin interval.
    if let Some((t0, t1)) = find_spin_window(&naive.trace.records) {
        println!("\n-- zoom [{t0}, {t1}): one thread spins while another is in its critical section --\n");
        let zopts = TimelineOptions {
            width: 100,
            window: Some((t0, t1)),
            axis: true,
        };
        println!(
            "{}",
            render_states(
                &naive.trace.records,
                threads,
                naive.trace.meta.duration,
                &zopts
            )
        );
    }

    // ---- Fig. 7: relative bandwidth over relative execution time --------
    println!("\n== Fig. 7: relative external-memory bandwidth over each version's execution ==\n");
    for (v, run) in &runs {
        let dur = run.trace.meta.duration.max(1);
        let bins = 100u64;
        let series_r = event_series(
            &run.trace.records,
            events::BYTES_READ,
            dur.div_ceil(bins),
            dur,
        );
        let series_w = event_series(
            &run.trace.records,
            events::BYTES_WRITTEN,
            dur.div_ceil(bins),
            dur,
        );
        let total: Vec<f64> = series_r
            .bins
            .iter()
            .zip(&series_w.bins)
            .map(|(r, w)| (r + w) as f64)
            .collect();
        println!("{}", render_series(&total, v.name()));
    }
    println!("\n(each row spans that version's own runtime, as in the paper's per-version panels)");

    // ---- Figs. 8 & 9: load/compute phases, blocked vs double-buffered ----
    for (v, fig) in [(GemmVersion::Blocked, 8), (GemmVersion::DoubleBuffered, 9)] {
        let run = &runs.iter().find(|(rv, _)| *rv == v).unwrap().1;
        let dur = run.trace.meta.duration.max(1);
        let bins = 100u64;
        let bw = event_series(
            &run.trace.records,
            events::BYTES_READ,
            dur.div_ceil(bins),
            dur,
        );
        let fl = event_series(&run.trace.records, events::FLOPS, dur.div_ceil(bins), dur);
        let st = event_series(&run.trace.records, events::STALLS, dur.div_ceil(bins), dur);
        println!(
            "\n== Fig. {fig}: {} — throughput (top) vs compute (middle) vs stalls (bottom) ==\n",
            v.name()
        );
        println!(
            "{}",
            render_series(
                &bw.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "DRAM bytes"
            )
        );
        println!(
            "{}",
            render_series(
                &fl.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "FLOPs"
            )
        );
        println!(
            "{}",
            render_series(
                &st.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "stalls"
            )
        );
    }
    println!(
        "\n(Fig. 8: alternating load/compute phases; Fig. 9: reads overlap compute — flatter both)"
    );
    println!("\ntrace bundles written to {}", out.display());
}

/// Find a window around the first sizeable spinning interval.
fn find_spin_window(records: &[paraver::Record]) -> Option<(u64, u64)> {
    let mut best: Option<(u64, u64)> = None;
    for r in records {
        if let paraver::Record::State {
            begin, end, state, ..
        } = r
        {
            if *state == states::SPINNING && end > begin {
                let len = end - begin;
                if best.is_none_or(|(b, e)| e - b < len) {
                    best = Some((*begin, *end));
                }
            }
        }
    }
    best.map(|(b, e)| {
        let pad = (e - b).max(50);
        (b.saturating_sub(pad), e + pad)
    })
}

fn arg_u32(flag: &str) -> Option<u32> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn arg_str(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
