//! Reproduces the GEMM case study of §V-C: the speedup progression quoted in
//! the text, the Paraver state view of Fig. 6 (with its zoom), the relative
//! bandwidth comparison of Fig. 7, and the phase plots of Figs. 8 and 9.
//!
//! Usage: `repro_gemm [--dim N] [--threads N] [--out DIR] [--jobs N]
//!                    [--mode cycle|analytical] [--bench-json PATH]
//!                    [--lint[=deny|warn|off]] [--perf-lint[=deny|warn|off]]
//!                    [--profile[=fixed|auto[,budget=N]]]`
//!
//! `--dim 512` runs at the paper's scale (slow); the default 128 preserves
//! every ratio (see EXPERIMENTS.md). Trace bundles (`.prv`/`.pcf`/`.row`)
//! are written under `--out` (default `target/traces`). The five versions
//! run in parallel on the batch engine (`--jobs`, default: all hardware
//! threads); tables and bundles are byte-identical for any worker count —
//! including across `--lint` levels, since the analyzer never touches the
//! compiled artifact.
//!
//! `--mode analytical` replaces the simulation with the roofline fast
//! mode (`fpga_sim::analytic`): the speedup table in microseconds, no
//! traces or figures. `--bench-json PATH` writes a machine-readable perf
//! snapshot of the invocation (wall time, simulated cycles, throughput,
//! peak RSS — plus the analytical cross-check in cycle mode).
//!
//! `--profile=auto[,budget=N]` replaces the fixed counter set with the
//! auto-probe plan: the compiler's static region analysis plus the
//! budgeted knapsack pass pick the counters and region probes, the trace
//! bundles gain the region hierarchy, and the diagnosis section
//! attributes cycles to source regions.

use bench::args::{Args, Mode, ProfileMode};
use bench::harness::SnapshotTimer;
use bench::sweep::{bundles_footer, gemm_sweep, gemm_table, GemmSweep, GemmSweepConfig};
use bench::{analytic_report, gemm_launch, gemm_sim_config, lint_gate, perf_lint_gate};
use hls_profiling::diagnose::{
    confront, diagnose, perf_params_from_sim, render_confrontation, DiagnoseConfig,
};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::{self, GemmParams, GemmVersion};
use nymble_hls::{AccelCache, HlsConfig};
use paraver::analysis::{event_series, StateProfile};
use paraver::timeline::{render_series, render_states, TimelineOptions};
use paraver::{events, states};
use std::path::PathBuf;

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let dim = args.u32("--dim").unwrap_or(128) as i64;
    let threads = args.u32("--threads").unwrap_or(8);
    let jobs = args.jobs().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let perf_lint = args.perf_lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mode = args.mode().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let profile = args.profile().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let bench_json = args.path("--bench-json");
    let out: PathBuf = args.path("--out").unwrap_or_else(|| "target/traces".into());
    std::fs::create_dir_all(&out).expect("create trace output dir");

    let p = GemmParams {
        dim,
        threads,
        ..Default::default()
    };
    let sim = gemm_sim_config();

    // Pre-sweep lint gate: analyze all five versions before any
    // simulation time is spent.
    let kernels: Vec<_> = GemmVersion::ALL
        .iter()
        .map(|&v| gemm::build(v, &p))
        .collect();
    if let Err(report) = lint_gate(&kernels.iter().collect::<Vec<_>>(), lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    if let Err(report) = perf_lint_gate(&kernels.iter().collect::<Vec<_>>(), perf_lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }

    if mode == Mode::Analytical {
        let cache = AccelCache::new();
        let launch = gemm_launch(&p);
        let mut total = 0u64;
        let mut naive = None;
        let mut prev = None;
        println!(
            "== T-GEMM (analytical fast mode): predicted cycles, dim {dim}, {threads} threads ==\n"
        );
        println!(
            "{:<24} {:>14} {:>15} {:>8} {:>9}",
            "version", "cycles", "bound", "vs prev", "vs naive"
        );
        for (v, k) in GemmVersion::ALL.iter().zip(&kernels) {
            match analytic_report(&cache, k, &sim, &launch) {
                Some(r) => {
                    total += r.total_cycles;
                    let naive_c = *naive.get_or_insert(r.total_cycles);
                    let vs_prev = prev
                        .map(|pc: u64| format!("{:.2}x", pc as f64 / r.total_cycles as f64))
                        .unwrap_or_else(|| "-".into());
                    println!(
                        "{:<24} {:>14} {:>15} {:>8} {:>8.2}x",
                        v.name(),
                        r.total_cycles,
                        r.bound.to_string(),
                        vs_prev,
                        naive_c as f64 / r.total_cycles as f64
                    );
                    prev = Some(r.total_cycles);
                }
                None => println!("{:<24} {:>14}", v.name(), "unresolvable"),
            }
        }
        println!(
            "\n(analytical mode: no simulation, no trace bundles — run --mode=cycle for figures;\n cross-validated within 15% of the cycle-level simulator, see crates/bench/tests/analytic_validation.rs)"
        );
        if let Some(path) = &bench_json {
            let snap = timer
                .finish("repro_gemm", mode, total)
                .param("dim", dim)
                .param("threads", threads);
            snap.write(path).expect("write --bench-json");
            println!("\nperf snapshot written to {}", path.display());
        }
        return;
    }

    let sweep: GemmSweep = gemm_sweep(&GemmSweepConfig {
        params: p,
        hls: HlsConfig {
            lint,
            perf_lint,
            probe: profile.probe(),
            ..HlsConfig::default()
        },
        sim: sim.clone(),
        prof: ProfilingConfig::default(),
        pipeline: PipelineConfig::default(),
        out: Some(out.clone()),
        jobs,
    });
    println!("== T-GEMM: execution time and speedups (§V-C text) ==\n");
    print!("{}", gemm_table(&sweep));
    if let Some(plan) = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .find_map(|run| run.accel.probe_plan.clone())
    {
        println!("\n{}", plan.summary());
    }
    println!(
        "\n({} workers; compile cache: {} kernels compiled once, {} shared reuses)",
        jobs, sweep.cache.misses, sweep.cache.hits
    );

    println!("\n-- automated trace diagnosis (hls_profiling::diagnose) --\n");
    for (v, report) in &sweep.runs {
        match &report.outcome {
            Ok(run) => {
                let d = diagnose(
                    &run.trace,
                    &run.result.stats,
                    &sim,
                    &DiagnoseConfig::default(),
                );
                println!("{:<24} {:?}: {}", v.name(), d.bottleneck, d.advice);
                // Under --profile=auto: attribute the run's cycles to the
                // source regions the plan instrumented, and name the
                // hottest one next to the state-level verdict.
                if let Some(plan) = &run.accel.probe_plan {
                    let att =
                        hls_profiling::attribute_regions(&run.accel.regions, plan, &run.trace);
                    if let Some(hot) = hls_profiling::hottest_region(&att) {
                        println!(
                            "{:<24} hottest region: {} [{}] — {} cycles, {:.0}% of the kernel attributed",
                            "",
                            hot.label,
                            hot.kind.name(),
                            hot.cycles,
                            hls_profiling::diagnose::attribution_coverage(&att) * 100.0
                        );
                    }
                }
                // Predicted vs observed: confront each static NP finding
                // with the measured trace (and flag measured hotspots the
                // static pass missed).
                if perf_lint != nymble_lint::LintLevel::Off {
                    let idx = GemmVersion::ALL.iter().position(|x| x == v).unwrap();
                    let report = nymble_lint::perf_lint_kernel_with(
                        &kernels[idx],
                        &perf_params_from_sim(&sim),
                    );
                    let outcomes = confront(&report, &run.trace, &run.result.stats, &d);
                    print!("{}", render_confrontation(&outcomes));
                }
            }
            Err(e) => {
                println!("{:<24} run failed, no trace to diagnose: {e}", v.name());
                if let bench::BenchError::Sim(se) = e {
                    if let Some(hint) = hls_profiling::diagnose::sim_error_hint(se) {
                        println!("{:<24} hint: {hint}", "");
                    }
                }
            }
        }
    }
    println!(
        "\n(paper @512: naive 853,522,308 cycles; 1.14x, 1.93x over previous, 5.28x and 19x over naive)"
    );

    // ---- Fig. 6: state view of the naive version -------------------------
    let naive = match &sweep.runs[0].1.outcome {
        Ok(run) => run,
        Err(e) => {
            println!("\nnaive run failed ({e}); skipping the figure renders");
            println!("\n{}", bundles_footer(&out));
            if let Some(path) = &bench_json {
                write_cycle_snapshot(&timer, path, &sweep, &kernels, &sim, &p, jobs, profile);
            }
            return;
        }
    };
    println!(
        "\n== Fig. 6: Paraver state view, naive GEMM (R=Running S=Spinning C=Critical .=Idle) ==\n"
    );
    let opts = TimelineOptions {
        width: 100,
        window: None,
        axis: true,
    };
    println!(
        "{}",
        render_states(
            &naive.trace.records,
            threads,
            naive.trace.meta.duration,
            &opts
        )
    );
    let prof = StateProfile::compute(&naive.trace.records, threads);
    println!(
        "time in critical sections: {:.2}%   spinning on locks: {:.2}%   (paper: 1.54% / 1.57%)",
        prof.fraction(states::CRITICAL) * 100.0,
        prof.fraction(states::SPINNING) * 100.0
    );

    // Zoom (Fig. 6 bottom): around the first long spin interval.
    if let Some((t0, t1)) = find_spin_window(&naive.trace.records) {
        println!("\n-- zoom [{t0}, {t1}): one thread spins while another is in its critical section --\n");
        let zopts = TimelineOptions {
            width: 100,
            window: Some((t0, t1)),
            axis: true,
        };
        println!(
            "{}",
            render_states(
                &naive.trace.records,
                threads,
                naive.trace.meta.duration,
                &zopts
            )
        );
    }

    // ---- Fig. 7: relative bandwidth over relative execution time --------
    println!("\n== Fig. 7: relative external-memory bandwidth over each version's execution ==\n");
    for (v, report) in &sweep.runs {
        let Ok(run) = &report.outcome else { continue };
        let dur = run.trace.meta.duration.max(1);
        let bins = 100u64;
        let series_r = event_series(
            &run.trace.records,
            events::BYTES_READ,
            dur.div_ceil(bins),
            dur,
        );
        let series_w = event_series(
            &run.trace.records,
            events::BYTES_WRITTEN,
            dur.div_ceil(bins),
            dur,
        );
        let total: Vec<f64> = series_r
            .bins
            .iter()
            .zip(&series_w.bins)
            .map(|(r, w)| (r + w) as f64)
            .collect();
        println!("{}", render_series(&total, v.name()));
    }
    println!("\n(each row spans that version's own runtime, as in the paper's per-version panels)");

    // ---- Figs. 8 & 9: load/compute phases, blocked vs double-buffered ----
    for (v, fig) in [(GemmVersion::Blocked, 8), (GemmVersion::DoubleBuffered, 9)] {
        let report = &sweep.runs.iter().find(|(rv, _)| *rv == v).unwrap().1;
        let Ok(run) = &report.outcome else { continue };
        let dur = run.trace.meta.duration.max(1);
        let bins = 100u64;
        let bw = event_series(
            &run.trace.records,
            events::BYTES_READ,
            dur.div_ceil(bins),
            dur,
        );
        let fl = event_series(&run.trace.records, events::FLOPS, dur.div_ceil(bins), dur);
        let st = event_series(&run.trace.records, events::STALLS, dur.div_ceil(bins), dur);
        println!(
            "\n== Fig. {fig}: {} — throughput (top) vs compute (middle) vs stalls (bottom) ==\n",
            v.name()
        );
        println!(
            "{}",
            render_series(
                &bw.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "DRAM bytes"
            )
        );
        println!(
            "{}",
            render_series(
                &fl.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "FLOPs"
            )
        );
        println!(
            "{}",
            render_series(
                &st.bins.iter().map(|&b| b as f64).collect::<Vec<_>>(),
                "stalls"
            )
        );
    }
    println!(
        "\n(Fig. 8: alternating load/compute phases; Fig. 9: reads overlap compute — flatter both)"
    );
    println!("\n{}", bundles_footer(&out));
    if let Some(path) = &bench_json {
        write_cycle_snapshot(&timer, path, &sweep, &kernels, &sim, &p, jobs, profile);
    }
}

/// Emit the `--bench-json` snapshot of a cycle-mode run: wall time and
/// simulated cycles across the whole sweep, plus a timed analytical
/// cross-check of the same five kernels so the snapshot records the
/// fast-mode speedup alongside the exact numbers.
#[allow(clippy::too_many_arguments)] // the snapshot records every knob of the invocation
fn write_cycle_snapshot(
    timer: &SnapshotTimer,
    path: &std::path::Path,
    sweep: &GemmSweep,
    kernels: &[nymble_ir::Kernel],
    sim: &fpga_sim::SimConfig,
    p: &GemmParams,
    jobs: usize,
    profile: ProfileMode,
) {
    let total_sim: u64 = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .map(|run| run.result.total_cycles)
        .sum();
    let at = SnapshotTimer::start();
    let cache = AccelCache::new();
    let launch = gemm_launch(p);
    let analytic_total: u64 = kernels
        .iter()
        .filter_map(|k| analytic_report(&cache, k, sim, &launch))
        .map(|r| r.total_cycles)
        .sum();
    let analytic_wall = at.elapsed_seconds();
    let wall = timer.elapsed_seconds();
    // Modeled ALM cost of the auto-probe plan (0 under the fixed set) —
    // the `probe_overhead` extra the `bench_check` gate watches.
    let probe_alms = sweep
        .runs
        .iter()
        .filter_map(|(_, r)| r.outcome.as_ref().ok())
        .find_map(|run| run.accel.probe_plan.as_ref().map(|pl| pl.cost_alms as f64))
        .unwrap_or(0.0);
    let snap = timer
        .finish("repro_gemm", Mode::Cycle, total_sim)
        .param("dim", p.dim)
        .param("threads", p.threads)
        .param("jobs", jobs)
        .param("profile", profile.name())
        .with_extra("probe_overhead", probe_alms)
        .with_extra("analytical_wall_seconds", analytic_wall)
        .with_extra("analytical_total_cycles", analytic_total as f64)
        .with_extra("analytical_speedup", wall / analytic_wall.max(1e-9))
        .with_extra("worker_utilization", sweep.sched.utilization())
        .with_extra("sched_steals", sweep.sched.steals as f64)
        .with_extra("sched_parks", sweep.sched.parks as f64)
        .with_extra("sched_makespan_seconds", sweep.sched.makespan.as_secs_f64());
    snap.write(path).expect("write --bench-json");
    println!("\nperf snapshot written to {}", path.display());
}

/// Find a window around the first sizeable spinning interval.
fn find_spin_window(records: &[paraver::Record]) -> Option<(u64, u64)> {
    let mut best: Option<(u64, u64)> = None;
    for r in records {
        if let paraver::Record::State {
            begin, end, state, ..
        } = r
        {
            if *state == states::SPINNING && end > begin {
                let len = end - begin;
                if best.is_none_or(|(b, e)| e - b < len) {
                    best = Some((*begin, *end));
                }
            }
        }
    }
    best.map(|(b, e)| {
        let pad = (e - b).max(50);
        (b.saturating_sub(pad), e + pad)
    })
}
