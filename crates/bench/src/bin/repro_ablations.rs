//! Ablation study of the simulator design decisions DESIGN.md calls out —
//! not a paper table, but the evidence that each mechanism is load-bearing
//! for the reproduced results:
//!
//! * **MSHR depth** — bounded per-port memory-level parallelism is what
//!   gives the *Partial Vectorization* step its ~2× (not 4×) gain;
//! * **XOR bank hashing** — without it, the GEMM's power-of-2 strides
//!   collapse onto one DRAM bank and every version flatlines;
//! * **line buffers** — per-(thread, buffer) single-line caches are what
//!   make sequential A-row reads cheap in the scalar versions;
//! * **sampling period** — the §IV-B.2 trade-off: "the higher the period,
//!   the more data is produced" (rate vs. volume).
//!
//! Usage: `repro_ablations [--dim N] [--jobs N] [--mode cycle|analytical]
//!                         [--bench-json PATH] [--lint[=deny|warn|off]]`
//!
//! The whole 16-run grid executes on the batch engine with one shared
//! compile cache (two kernels compiled once each); a run that fails with a
//! typed simulator error becomes a diagnostic row, not an abort.
//!
//! `--mode analytical` prints the roofline predictions for the two study
//! kernels and explains which of the ablated mechanisms the fast mode
//! abstracts away (the grids themselves need the cycle-level simulator).

use bench::args::{Args, Mode};
use bench::engine::{BatchEngine, RunCtx, RunSpec};
use bench::harness::SnapshotTimer;
use bench::{
    analytic_report, gemm_launch, gemm_sim_config, lint_gate, run_profiled_with,
    run_unprofiled_with,
};
use fpga_sim::{RunResult, SimConfig};
use hls_profiling::ProfilingConfig;
use kernels::gemm::{self, GemmParams, GemmVersion};
use nymble_hls::{AccelCache, HlsConfig};

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let dim = args.i64("--dim").unwrap_or(64);
    let jobs = args.jobs();
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mode = args.mode().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let bench_json = args.path("--bench-json");
    let p = GemmParams {
        dim,
        ..Default::default()
    };
    let base = gemm_sim_config();
    let launch = gemm_launch(&p);
    let v2 = gemm::build(GemmVersion::NoCritical, &p);
    let v3 = gemm::build(GemmVersion::Vectorized, &p);
    if let Err(report) = lint_gate(&[&v2, &v3], lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    let hls = HlsConfig {
        lint,
        ..HlsConfig::default()
    };
    let hls = &hls;
    let cache = AccelCache::new();
    let engine = BatchEngine::new(jobs);

    if mode == Mode::Analytical {
        println!("== ablation kernels through the analytical fast mode (base config) ==\n");
        let mut total = 0u64;
        for (tag, k) in [("v2 (no-critical)", &v2), ("v3 (vectorized)", &v3)] {
            match analytic_report(&cache, k, &base, &launch) {
                Some(r) => {
                    total += r.total_cycles;
                    println!(
                        "  {tag:<20} {:>12} predicted cycles   bound: {}",
                        r.total_cycles, r.bound
                    );
                }
                None => println!("  {tag:<20} unresolvable"),
            }
        }
        println!(
            "\nThe roofline model prices steady-state bandwidth and latency; it abstracts\n\
             away MSHR depth, bank hashing and line-buffer state — exactly the mechanisms\n\
             this binary ablates. Run --mode=cycle for the actual grids."
        );
        if let Some(path) = &bench_json {
            let snap = timer
                .finish("repro_ablations", mode, total)
                .param("dim", dim);
            snap.write(path).expect("write --bench-json");
            println!("\nperf snapshot written to {}", path.display());
        }
        return;
    }
    let mut total_sim: u64 = 0;

    println!("== MSHR depth: what Partial Vectorization's gain depends on ==\n");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "MSHRs", "v2 cycles", "v3 cycles", "v3 gain"
    );
    const MSHRS: [u32; 4] = [1, 2, 4, 8];
    let specs: Vec<RunSpec<'_, RunResult>> = MSHRS
        .iter()
        .flat_map(|&mshrs| {
            [(&v2, "v2"), (&v3, "v3")].map(|(kernel, tag)| {
                let cfg = SimConfig {
                    port_mshrs: mshrs,
                    ..base.clone()
                };
                let (cache, launch) = (&cache, &launch);
                RunSpec::new(format!("mshr{mshrs}_{tag}"), move |_: &RunCtx| {
                    run_unprofiled_with(cache, kernel, hls, &cfg, launch)
                })
            })
        })
        .collect();
    let reports = engine.run(specs);
    for (i, &mshrs) in MSHRS.iter().enumerate() {
        match (&reports[2 * i].outcome, &reports[2 * i + 1].outcome) {
            (Ok(r2), Ok(r3)) => {
                total_sim += r2.total_cycles + r3.total_cycles;
                println!(
                    "{:>6} {:>14} {:>14} {:>7.2}x",
                    mshrs,
                    r2.total_cycles,
                    r3.total_cycles,
                    r2.total_cycles as f64 / r3.total_cycles as f64
                )
            }
            (a, b) => {
                let e = a.as_ref().err().or(b.as_ref().err()).unwrap();
                println!("{mshrs:>6} failed: {e}");
            }
        }
    }

    println!("\n== DRAM bank hashing: power-of-2 strides vs the bank map ==\n");
    const HASHING: [(&str, bool); 2] = [("hashed", true), ("linear", false)];
    let specs: Vec<RunSpec<'_, RunResult>> = HASHING
        .iter()
        .map(|&(label, hash)| {
            let cfg = SimConfig {
                dram_bank_hash: hash,
                ..base.clone()
            };
            let (cache, launch, v2) = (&cache, &launch, &v2);
            RunSpec::new(label, move |_: &RunCtx| {
                run_unprofiled_with(cache, v2, hls, &cfg, launch)
            })
        })
        .collect();
    for ((label, _), report) in HASHING.iter().zip(engine.run(specs)) {
        match &report.outcome {
            Ok(r2) => {
                total_sim += r2.total_cycles;
                println!(
                    "  {label:<7} v2: {:>12} cycles, {:>9} contended requests",
                    r2.total_cycles, r2.stats.dram_contended
                )
            }
            Err(e) => println!("  {label:<7} failed: {e}"),
        }
    }

    println!("\n== per-port line buffers: sequential-stream reuse ==\n");
    const LINE_BUFS: [(&str, bool); 2] = [("enabled", true), ("disabled", false)];
    let specs: Vec<RunSpec<'_, RunResult>> = LINE_BUFS
        .iter()
        .map(|&(label, lbuf)| {
            let cfg = SimConfig {
                line_buffers: lbuf,
                ..base.clone()
            };
            let (cache, launch, v2) = (&cache, &launch, &v2);
            RunSpec::new(label, move |_: &RunCtx| {
                run_unprofiled_with(cache, v2, hls, &cfg, launch)
            })
        })
        .collect();
    for ((label, _), report) in LINE_BUFS.iter().zip(engine.run(specs)) {
        match &report.outcome {
            Ok(r2) => {
                total_sim += r2.total_cycles;
                println!(
                    "  {label:<9} v2: {:>12} cycles, hit rate {:>5.1}%, {:>9} line fetches",
                    r2.total_cycles,
                    r2.stats.read_hit_rate() * 100.0,
                    r2.stats.line_fetches
                )
            }
            Err(e) => println!("  {label:<9} failed: {e}"),
        }
    }

    println!("\n== sampling period: trace volume vs temporal resolution (§IV-B.2) ==\n");
    println!(
        "{:>10} {:>12} {:>10} {:>8}",
        "period", "trace bytes", "records", "flushes"
    );
    const PERIODS: [u64; 4] = [500, 2_000, 10_000, 50_000];
    let specs: Vec<RunSpec<'_, (u64, usize, usize)>> = PERIODS
        .iter()
        .map(|&period| {
            let prof = ProfilingConfig {
                sampling_period: period,
                ..Default::default()
            };
            let (cache, launch, v3, base) = (&cache, &launch, &v3, &base);
            RunSpec::new(format!("period{period}"), move |_: &RunCtx| {
                let run = run_profiled_with(cache, v3, hls, base, &prof, launch)?;
                Ok((
                    run.trace.flushed_bytes,
                    run.trace.records.len(),
                    run.trace.flush_count,
                ))
            })
        })
        .collect();
    for (&period, report) in PERIODS.iter().zip(&engine.run(specs)) {
        match &report.outcome {
            Ok((bytes, records, flushes)) => {
                println!("{period:>10} {bytes:>12} {records:>10} {flushes:>8}")
            }
            Err(e) => println!("{period:>10} failed: {e}"),
        }
    }

    let stats = cache.stats();
    println!(
        "\n({jobs} workers; {} runs shared {} compiled kernels)",
        stats.hits + stats.misses,
        stats.entries
    );
    if let Some(path) = &bench_json {
        let snap = timer
            .finish("repro_ablations", mode, total_sim)
            .param("dim", dim)
            .param("jobs", jobs);
        snap.write(path).expect("write --bench-json");
        println!("\nperf snapshot written to {}", path.display());
    }
}
