//! Ablation study of the simulator design decisions DESIGN.md calls out —
//! not a paper table, but the evidence that each mechanism is load-bearing
//! for the reproduced results:
//!
//! * **MSHR depth** — bounded per-port memory-level parallelism is what
//!   gives the *Partial Vectorization* step its ~2× (not 4×) gain;
//! * **XOR bank hashing** — without it, the GEMM's power-of-2 strides
//!   collapse onto one DRAM bank and every version flatlines;
//! * **line buffers** — per-(thread, buffer) single-line caches are what
//!   make sequential A-row reads cheap in the scalar versions;
//! * **sampling period** — the §IV-B.2 trade-off: "the higher the period,
//!   the more data is produced" (rate vs. volume).
//!
//! Usage: `repro_ablations [--dim N]`

use bench::{gemm_launch, gemm_sim_config, run_profiled, run_unprofiled};
use fpga_sim::SimConfig;
use hls_profiling::ProfilingConfig;
use kernels::gemm::{self, GemmParams, GemmVersion};

fn main() {
    let dim = std::env::args()
        .skip_while(|a| a != "--dim")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(64i64);
    let p = GemmParams {
        dim,
        ..Default::default()
    };
    let base = gemm_sim_config();
    let launch = gemm_launch(&p);
    let v2 = gemm::build(GemmVersion::NoCritical, &p);
    let v3 = gemm::build(GemmVersion::Vectorized, &p);

    println!("== MSHR depth: what Partial Vectorization's gain depends on ==\n");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "MSHRs", "v2 cycles", "v3 cycles", "v3 gain"
    );
    for mshrs in [1u32, 2, 4, 8] {
        let cfg = SimConfig {
            port_mshrs: mshrs,
            ..base.clone()
        };
        let c2 = run_unprofiled(&v2, &cfg, &launch).total_cycles;
        let c3 = run_unprofiled(&v3, &cfg, &launch).total_cycles;
        println!(
            "{:>6} {:>14} {:>14} {:>7.2}x",
            mshrs,
            c2,
            c3,
            c2 as f64 / c3 as f64
        );
    }

    println!("\n== DRAM bank hashing: power-of-2 strides vs the bank map ==\n");
    for (label, hash) in [("hashed", true), ("linear", false)] {
        let cfg = SimConfig {
            dram_bank_hash: hash,
            ..base.clone()
        };
        let r2 = run_unprofiled(&v2, &cfg, &launch);
        println!(
            "  {label:<7} v2: {:>12} cycles, {:>9} contended requests",
            r2.total_cycles, r2.stats.dram_contended
        );
    }

    println!("\n== per-port line buffers: sequential-stream reuse ==\n");
    for (label, lbuf) in [("enabled", true), ("disabled", false)] {
        let cfg = SimConfig {
            line_buffers: lbuf,
            ..base.clone()
        };
        let r2 = run_unprofiled(&v2, &cfg, &launch);
        println!(
            "  {label:<9} v2: {:>12} cycles, hit rate {:>5.1}%, {:>9} line fetches",
            r2.total_cycles,
            r2.stats.read_hit_rate() * 100.0,
            r2.stats.line_fetches
        );
    }

    println!("\n== sampling period: trace volume vs temporal resolution (§IV-B.2) ==\n");
    println!(
        "{:>10} {:>12} {:>10} {:>8}",
        "period", "trace bytes", "records", "flushes"
    );
    for period in [500u64, 2_000, 10_000, 50_000] {
        let prof = ProfilingConfig {
            sampling_period: period,
            ..Default::default()
        };
        let run = run_profiled(&v3, &base, &prof, &launch);
        println!(
            "{:>10} {:>12} {:>10} {:>8}",
            period,
            run.trace.flushed_bytes,
            run.trace.records.len(),
            run.trace.flush_count
        );
    }
}
