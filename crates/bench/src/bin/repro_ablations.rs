//! Ablation study of the simulator design decisions DESIGN.md calls out —
//! not a paper table, but the evidence that each mechanism is load-bearing
//! for the reproduced results:
//!
//! * **MSHR depth** — bounded per-port memory-level parallelism is what
//!   gives the *Partial Vectorization* step its ~2× (not 4×) gain;
//! * **XOR bank hashing** — without it, the GEMM's power-of-2 strides
//!   collapse onto one DRAM bank and every version flatlines;
//! * **line buffers** — per-(thread, buffer) single-line caches are what
//!   make sequential A-row reads cheap in the scalar versions;
//! * **sampling period** — the §IV-B.2 trade-off: "the higher the period,
//!   the more data is produced" (rate vs. volume).
//!
//! Usage: `repro_ablations [--dim N] [--jobs N] [--mode cycle|analytical]
//!                         [--bench-json PATH] [--lint[=deny|warn|off]]
//!                         [--perf-lint[=deny|warn|off]]
//!                         [--profile[=fixed|auto[,budget=N]]]`
//!
//! `--profile=auto[,budget=N]` runs the profiled sampling-period grid
//! under the auto-probe plan (counters and region probes selected by the
//! knapsack pass) instead of the fixed counter set.
//!
//! The whole study is one task graph on the work-stealing engine: two
//! `Compile` nodes (v2 and v3) gate sixteen `Run` nodes across the four
//! grids, and one `Reduce` node per section renders its rows in submission
//! order — so a run of any section can overlap any other, and the tables
//! are byte-identical for every `--jobs` value. A run that fails with a
//! typed simulator error becomes a diagnostic row, not an abort.
//!
//! `--mode analytical` prints the roofline predictions for the two study
//! kernels and explains which of the ablated mechanisms the fast mode
//! abstracts away (the grids themselves need the cycle-level simulator).

use bench::args::{Args, Mode};
use bench::engine::BatchEngine;
use bench::graph::{NodeCtx, NodeId, NodeKind, TaskGraph};
use bench::harness::SnapshotTimer;
use bench::{
    analytic_report, gemm_launch, gemm_sim_config, lint_gate, perf_lint_gate, run_profiled_with,
    run_unprofiled_with,
};
use fpga_sim::{RunResult, SimConfig};
use hls_profiling::ProfilingConfig;
use kernels::gemm::{self, GemmParams, GemmVersion};
use nymble_hls::{AccelCache, HlsConfig};
use std::fmt::Write as _;

/// Node payload of the ablation graph.
enum AblNode {
    Compiled,
    Sim(Box<RunResult>),
    Trace {
        bytes: u64,
        records: usize,
        flushes: usize,
    },
    Section(String),
}

fn main() {
    let timer = SnapshotTimer::start();
    let args = Args::parse();
    let dim = args.i64("--dim").unwrap_or(64);
    let jobs = args.jobs().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let lint = args.lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let perf_lint = args.perf_lint_level().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mode = args.mode().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let profile = args.profile().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let bench_json = args.path("--bench-json");
    let p = GemmParams {
        dim,
        ..Default::default()
    };
    let base = gemm_sim_config();
    let launch = gemm_launch(&p);
    let v2 = gemm::build(GemmVersion::NoCritical, &p);
    let v3 = gemm::build(GemmVersion::Vectorized, &p);
    if let Err(report) = lint_gate(&[&v2, &v3], lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    if let Err(report) = perf_lint_gate(&[&v2, &v3], perf_lint) {
        eprintln!("{report}");
        std::process::exit(1);
    }
    let hls = HlsConfig {
        lint,
        perf_lint,
        probe: profile.probe(),
        ..HlsConfig::default()
    };
    let hls = &hls;
    let cache = AccelCache::new();
    let engine = BatchEngine::new(jobs);

    if mode == Mode::Analytical {
        println!("== ablation kernels through the analytical fast mode (base config) ==\n");
        let mut total = 0u64;
        for (tag, k) in [("v2 (no-critical)", &v2), ("v3 (vectorized)", &v3)] {
            match analytic_report(&cache, k, &base, &launch) {
                Some(r) => {
                    total += r.total_cycles;
                    println!(
                        "  {tag:<20} {:>12} predicted cycles   bound: {}",
                        r.total_cycles, r.bound
                    );
                }
                None => println!("  {tag:<20} unresolvable"),
            }
        }
        println!(
            "\nThe roofline model prices steady-state bandwidth and latency; it abstracts\n\
             away MSHR depth, bank hashing and line-buffer state — exactly the mechanisms\n\
             this binary ablates. Run --mode=cycle for the actual grids."
        );
        if let Some(path) = &bench_json {
            let snap = timer
                .finish("repro_ablations", mode, total)
                .param("dim", dim);
            snap.write(path).expect("write --bench-json");
            println!("\nperf snapshot written to {}", path.display());
        }
        return;
    }

    // --- build the whole study as one dependency graph -------------------
    const MSHRS: [u32; 4] = [1, 2, 4, 8];
    const HASHING: [(&str, bool); 2] = [("hashed", true), ("linear", false)];
    const LINE_BUFS: [(&str, bool); 2] = [("enabled", true), ("disabled", false)];
    const PERIODS: [u64; 4] = [500, 2_000, 10_000, 50_000];

    let mut graph: TaskGraph<'_, AblNode> = TaskGraph::new();
    let (cache, launch, base, v2, v3) = (&cache, &launch, &base, &v2, &v3);
    let c2 = graph.add(
        NodeKind::Compile,
        "compile:v2",
        &[],
        move |_: &NodeCtx<'_, AblNode>| {
            // A refusal here surfaces as a `failed:` row on every dependent run.
            let _ = cache.try_get_or_compile(v2, hls);
            Ok(AblNode::Compiled)
        },
    );
    let c3 = graph.add(
        NodeKind::Compile,
        "compile:v3",
        &[],
        move |_: &NodeCtx<'_, AblNode>| {
            let _ = cache.try_get_or_compile(v3, hls);
            Ok(AblNode::Compiled)
        },
    );

    // MSHR grid: v2 and v3 at each depth, then one reduce for the table.
    let mut mshr_ids = Vec::new();
    for &mshrs in MSHRS.iter() {
        for (kernel, tag, dep) in [(v2, "v2", c2), (v3, "v3", c3)] {
            let cfg = SimConfig {
                port_mshrs: mshrs,
                ..base.clone()
            };
            mshr_ids.push(graph.add(
                NodeKind::Run,
                format!("mshr{mshrs}_{tag}"),
                &[dep],
                move |_: &NodeCtx<'_, AblNode>| {
                    run_unprofiled_with(cache, kernel, hls, &cfg, launch)
                        .map(|r| AblNode::Sim(Box::new(r)))
                },
            ));
        }
    }
    let mshr_reduce = graph.add(
        NodeKind::Reduce,
        "mshr_table",
        &mshr_ids,
        move |ctx: &NodeCtx<'_, AblNode>| {
            let mut block = String::new();
            for (i, &mshrs) in MSHRS.iter().enumerate() {
                match (&ctx.dep(2 * i).outcome, &ctx.dep(2 * i + 1).outcome) {
                    (Ok(AblNode::Sim(r2)), Ok(AblNode::Sim(r3))) => writeln!(
                        block,
                        "{:>6} {:>14} {:>14} {:>7.2}x",
                        mshrs,
                        r2.total_cycles,
                        r3.total_cycles,
                        r2.total_cycles as f64 / r3.total_cycles as f64
                    )
                    .unwrap(),
                    (a, b) => {
                        let e = a.as_ref().err().or(b.as_ref().err()).unwrap();
                        writeln!(block, "{mshrs:>6} failed: {e}").unwrap();
                    }
                }
            }
            Ok(AblNode::Section(block))
        },
    );

    // Bank-hashing pair (v2 only).
    let mut hash_ids = Vec::new();
    for &(label, hash) in HASHING.iter() {
        let cfg = SimConfig {
            dram_bank_hash: hash,
            ..base.clone()
        };
        hash_ids.push(graph.add(
            NodeKind::Run,
            label,
            &[c2],
            move |_: &NodeCtx<'_, AblNode>| {
                run_unprofiled_with(cache, v2, hls, &cfg, launch).map(|r| AblNode::Sim(Box::new(r)))
            },
        ));
    }
    let hash_reduce = graph.add(
        NodeKind::Reduce,
        "hash_table",
        &hash_ids,
        move |ctx: &NodeCtx<'_, AblNode>| {
            let mut block = String::new();
            for ((label, _), dep) in HASHING.iter().zip(ctx.deps()) {
                match &dep.outcome {
                    Ok(AblNode::Sim(r2)) => writeln!(
                        block,
                        "  {label:<7} v2: {:>12} cycles, {:>9} contended requests",
                        r2.total_cycles, r2.stats.dram_contended
                    )
                    .unwrap(),
                    Ok(_) => unreachable!("run node produced a non-sim payload"),
                    Err(e) => writeln!(block, "  {label:<7} failed: {e}").unwrap(),
                }
            }
            Ok(AblNode::Section(block))
        },
    );

    // Line-buffer pair (v2 only).
    let mut lbuf_ids = Vec::new();
    for &(label, lbuf) in LINE_BUFS.iter() {
        let cfg = SimConfig {
            line_buffers: lbuf,
            ..base.clone()
        };
        lbuf_ids.push(graph.add(
            NodeKind::Run,
            label,
            &[c2],
            move |_: &NodeCtx<'_, AblNode>| {
                run_unprofiled_with(cache, v2, hls, &cfg, launch).map(|r| AblNode::Sim(Box::new(r)))
            },
        ));
    }
    let lbuf_reduce = graph.add(
        NodeKind::Reduce,
        "linebuf_table",
        &lbuf_ids,
        move |ctx: &NodeCtx<'_, AblNode>| {
            let mut block = String::new();
            for ((label, _), dep) in LINE_BUFS.iter().zip(ctx.deps()) {
                match &dep.outcome {
                    Ok(AblNode::Sim(r2)) => writeln!(
                        block,
                        "  {label:<9} v2: {:>12} cycles, hit rate {:>5.1}%, {:>9} line fetches",
                        r2.total_cycles,
                        r2.stats.read_hit_rate() * 100.0,
                        r2.stats.line_fetches
                    )
                    .unwrap(),
                    Ok(_) => unreachable!("run node produced a non-sim payload"),
                    Err(e) => writeln!(block, "  {label:<9} failed: {e}").unwrap(),
                }
            }
            Ok(AblNode::Section(block))
        },
    );

    // Sampling-period grid (profiled v3).
    let mut period_ids = Vec::new();
    for &period in PERIODS.iter() {
        let prof = ProfilingConfig {
            sampling_period: period,
            ..Default::default()
        };
        period_ids.push(graph.add(
            NodeKind::Run,
            format!("period{period}"),
            &[c3],
            move |_: &NodeCtx<'_, AblNode>| {
                let run = run_profiled_with(cache, v3, hls, base, &prof, launch)?;
                Ok(AblNode::Trace {
                    bytes: run.trace.flushed_bytes,
                    records: run.trace.records.len(),
                    flushes: run.trace.flush_count,
                })
            },
        ));
    }
    let period_reduce = graph.add(
        NodeKind::Reduce,
        "sampling_table",
        &period_ids,
        move |ctx: &NodeCtx<'_, AblNode>| {
            let mut block = String::new();
            for (&period, dep) in PERIODS.iter().zip(ctx.deps()) {
                match &dep.outcome {
                    Ok(AblNode::Trace {
                        bytes,
                        records,
                        flushes,
                    }) => writeln!(block, "{period:>10} {bytes:>12} {records:>10} {flushes:>8}")
                        .unwrap(),
                    Ok(_) => unreachable!("run node produced a non-trace payload"),
                    Err(e) => writeln!(block, "{period:>10} failed: {e}").unwrap(),
                }
            }
            Ok(AblNode::Section(block))
        },
    );

    let out = engine.run_graph(graph);
    let section = |id: NodeId| -> &str {
        match out.reports[id.index()].outcome.as_ref() {
            Ok(AblNode::Section(s)) => s,
            Ok(_) => unreachable!("reduce node produced a non-section payload"),
            Err(e) => unreachable!("reduce node failed: {e}"),
        }
    };
    let total_sim: u64 = out
        .reports
        .iter()
        .filter_map(|r| match r.outcome.as_ref() {
            Ok(AblNode::Sim(res)) => Some(res.total_cycles),
            _ => None,
        })
        .sum();

    println!("== MSHR depth: what Partial Vectorization's gain depends on ==\n");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "MSHRs", "v2 cycles", "v3 cycles", "v3 gain"
    );
    print!("{}", section(mshr_reduce));

    println!("\n== DRAM bank hashing: power-of-2 strides vs the bank map ==\n");
    print!("{}", section(hash_reduce));

    println!("\n== per-port line buffers: sequential-stream reuse ==\n");
    print!("{}", section(lbuf_reduce));

    println!("\n== sampling period: trace volume vs temporal resolution (§IV-B.2) ==\n");
    println!(
        "{:>10} {:>12} {:>10} {:>8}",
        "period", "trace bytes", "records", "flushes"
    );
    print!("{}", section(period_reduce));
    // The profiled grid above ran under this plan (v3 is already cached,
    // so re-fetching it here is free).
    if let Some(plan) = &cache.get_or_compile(v3, hls).probe_plan {
        println!("\n{}", plan.summary());
    }

    let stats = cache.stats();
    let runs = out
        .reports
        .iter()
        .filter(|r| matches!(r.kind, NodeKind::Run))
        .count();
    println!(
        "\n({jobs} workers; {} runs shared {} compiled kernels)",
        runs, stats.entries
    );
    if let Some(path) = &bench_json {
        let probe_alms = cache
            .get_or_compile(v3, hls)
            .probe_plan
            .as_ref()
            .map(|pl| pl.cost_alms as f64)
            .unwrap_or(0.0);
        let snap = timer
            .finish("repro_ablations", mode, total_sim)
            .param("dim", dim)
            .param("jobs", jobs)
            .param("profile", profile.name())
            .with_extra("probe_overhead", probe_alms)
            .with_extra("worker_utilization", out.stats.utilization())
            .with_extra("sched_steals", out.stats.steals as f64)
            .with_extra("sched_parks", out.stats.parks as f64)
            .with_extra("sched_makespan_seconds", out.stats.makespan.as_secs_f64());
        snap.write(path).expect("write --bench-json");
        println!("\nperf snapshot written to {}", path.display());
    }
}
