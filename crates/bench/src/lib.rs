//! # bench — experiment harness regenerating every table and figure of §V
//!
//! Shared plumbing for the `repro_*` binaries and the wall-clock benches
//! (see [`harness`]): compile a case-study kernel, run it through the
//! cycle-level simulator with the profiling unit attached, decode the
//! Paraver trace, and derive the paper's metrics. See `EXPERIMENTS.md` for
//! the experiment↔binary map.

pub mod args;
pub mod engine;
pub mod graph;
pub mod harness;
pub mod snapshot;
pub mod sweep;

use fpga_sim::memimg::LaunchArg;
use fpga_sim::{Executor, NullSnoop, RunResult, SimConfig, SimError};
use hls_profiling::{
    PipelineConfig, PipelineError, ProfilingConfig, ProfilingConfigError, ProfilingUnit,
    SinkFactory, StreamReport, TraceData,
};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use kernels::reference;
use kernels::spmv::{self, Csr};
use nymble_hls::accel::{Accelerator, CompileError, HlsConfig};
use nymble_hls::{AccelCache, ProbePlan};
use nymble_ir::{Kernel, Value};
use nymble_lint::LintLevel;
use paraver::TraceSink;
use std::path::PathBuf;
use std::sync::Arc;

/// Anything that can fail inside one graph node: the compile (e.g. the
/// `nymble-lint` gate at `deny`), the simulator (typed deadlock / config
/// errors), the streaming trace pipeline, or the node body itself
/// panicking (recorded so the rest of the graph still drains).
#[derive(Debug)]
pub enum BenchError {
    /// The HLS compile was refused (e.g. by the lint gate).
    Compile(CompileError),
    /// The cycle-level simulator rejected the run.
    Sim(SimError),
    /// The background trace pipeline failed.
    Pipeline(PipelineError),
    /// The profiling configuration (after aligning it with the compiled
    /// design's auto-probe plan) was rejected — e.g. a budget so tight the
    /// knapsack pass selected nothing.
    Profiling(ProfilingConfigError),
    /// A graph node's body panicked; the scheduler records this outcome,
    /// finishes the graph, and then re-raises the original panic.
    NodePanic {
        /// Label of the node that panicked.
        label: String,
        /// Rendered panic payload.
        message: String,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Compile(e) => write!(f, "{e}"),
            BenchError::Sim(e) => write!(f, "{e}"),
            BenchError::Pipeline(e) => write!(f, "{e}"),
            BenchError::Profiling(e) => write!(f, "{e}"),
            BenchError::NodePanic { label, message } => {
                write!(f, "node `{label}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Compile(e) => Some(e),
            BenchError::Sim(e) => Some(e),
            BenchError::Pipeline(e) => Some(e),
            BenchError::Profiling(e) => Some(e),
            BenchError::NodePanic { .. } => None,
        }
    }
}

impl From<CompileError> for BenchError {
    fn from(e: CompileError) -> Self {
        BenchError::Compile(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<PipelineError> for BenchError {
    fn from(e: PipelineError) -> Self {
        BenchError::Pipeline(e)
    }
}

impl From<ProfilingConfigError> for BenchError {
    fn from(e: ProfilingConfigError) -> Self {
        BenchError::Profiling(e)
    }
}

impl From<paraver::TraceError> for BenchError {
    fn from(e: paraver::TraceError) -> Self {
        BenchError::Pipeline(PipelineError::Trace(e))
    }
}

/// Convert an `f32` slice into a buffer launch argument.
pub fn f32_buffer(data: &[f32]) -> LaunchArg {
    LaunchArg::Buffer(data.iter().map(|&x| Value::F32(x)).collect())
}

/// Read an `f32` buffer back out of a run result.
pub fn f32_result(r: &RunResult, arg: usize) -> Vec<f32> {
    r.buffers[arg]
        .iter()
        .map(|v| match v {
            Value::F32(x) => *x,
            other => other.as_f64() as f32,
        })
        .collect()
}

/// Outcome of one profiled experiment run. The compiled accelerator is
/// [`Arc`]-shared so a batch sweep's runs of the same kernel hold one
/// artifact (see [`nymble_hls::AccelCache`]).
pub struct ProfiledRun {
    pub result: RunResult,
    pub trace: TraceData,
    pub accel: Arc<Accelerator>,
}

/// [`run_profiled_in`] under an explicit [`HlsConfig`]: the lint gate in
/// `hls.lint` runs before the compile, and a refused compile surfaces as
/// [`BenchError::Compile`] instead of panicking.
pub fn run_profiled_with(
    cache: &AccelCache,
    kernel: &Kernel,
    hls: &HlsConfig,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    launch: &[LaunchArg],
) -> Result<ProfiledRun, BenchError> {
    let accel = cache.try_get_or_compile(kernel, hls)?;
    let prof = planned_prof(prof, &accel)?;
    let mut unit = ProfilingUnit::new(&kernel.name, kernel.num_threads, prof);
    let result = Executor::run(kernel, &accel, sim, launch, &mut unit)?;
    Ok(ProfiledRun {
        result,
        trace: unit.finish(),
        accel,
    })
}

/// [`run_profiled`] against a shared compile cache: the kernel is compiled
/// at most once per cache however many runs (or worker threads) request it.
pub fn run_profiled_in(
    cache: &AccelCache,
    kernel: &Kernel,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    launch: &[LaunchArg],
) -> Result<ProfiledRun, SimError> {
    match run_profiled_with(cache, kernel, &HlsConfig::default(), sim, prof, launch) {
        Ok(run) => Ok(run),
        Err(BenchError::Sim(e)) => Err(e),
        // The default config has the lint gate off and no pipeline.
        Err(e) => unreachable!("impossible failure under HlsConfig::default(): {e}"),
    }
}

/// Compile and run a kernel with the profiling unit attached.
///
/// # Panics
/// Panics on simulator errors; batch sweeps that must survive a failing
/// run use [`run_profiled_in`] and report the typed [`SimError`] instead.
pub fn run_profiled(
    kernel: &Kernel,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    launch: &[LaunchArg],
) -> ProfiledRun {
    run_profiled_in(&AccelCache::new(), kernel, sim, prof, launch).expect("simulation failed")
}

/// [`run_profiled_streaming_in`] under an explicit [`HlsConfig`]: the lint
/// gate in `hls.lint` runs before the compile, and a refused compile
/// surfaces as [`BenchError::Compile`] instead of panicking.
#[allow(clippy::too_many_arguments)] // the fully-explicit variant: every knob of the stack
pub fn run_profiled_streaming_with(
    cache: &AccelCache,
    kernel: &Kernel,
    hls: &HlsConfig,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    pipeline: PipelineConfig,
    sink_factory: SinkFactory,
    launch: &[LaunchArg],
) -> Result<(RunResult, StreamReport), BenchError> {
    let accel = cache.try_get_or_compile(kernel, hls)?;
    let prof = planned_prof(prof, &accel)?;
    let mut unit = ProfilingUnit::new_streaming(
        &kernel.name,
        kernel.num_threads,
        prof,
        pipeline,
        sink_factory,
    );
    let result = Executor::run(kernel, &accel, sim, launch, &mut unit);
    // Drain the pipeline even when the simulator failed mid-run, so the
    // worker thread is always joined; the simulator error takes precedence.
    let report = unit.finish_streaming();
    let result = result?;
    Ok((result, report?))
}

/// [`run_profiled_streaming`] against a shared compile cache, with
/// simulator failures surfaced as typed [`BenchError::Sim`] values.
pub fn run_profiled_streaming_in(
    cache: &AccelCache,
    kernel: &Kernel,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    pipeline: PipelineConfig,
    sink_factory: SinkFactory,
    launch: &[LaunchArg],
) -> Result<(RunResult, StreamReport), BenchError> {
    run_profiled_streaming_with(
        cache,
        kernel,
        &HlsConfig::default(),
        sim,
        prof,
        pipeline,
        sink_factory,
        launch,
    )
}

/// Compile and run a kernel with the profiling unit in streaming mode:
/// every trace-buffer flush feeds the background decode → bounded-sort →
/// sink pipeline instead of accumulating in memory.
///
/// # Panics
/// Panics on simulator errors (see [`run_profiled_streaming_in`]).
pub fn run_profiled_streaming(
    kernel: &Kernel,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    pipeline: PipelineConfig,
    sink_factory: SinkFactory,
    launch: &[LaunchArg],
) -> Result<(RunResult, StreamReport), PipelineError> {
    match run_profiled_streaming_in(
        &AccelCache::new(),
        kernel,
        sim,
        prof,
        pipeline,
        sink_factory,
        launch,
    ) {
        Ok(ok) => Ok(ok),
        Err(BenchError::Pipeline(e)) => Err(e),
        Err(BenchError::Sim(e)) => panic!("simulation failed: {e}"),
        // The default config has the lint gate off, and this path never
        // goes through the graph scheduler.
        Err(e) => unreachable!("{e}"),
    }
}

/// Align the shared profiling configuration with the compiled design's
/// auto-probe plan (when the compile selected one) and validate the
/// result, so a budget that selects nothing surfaces as a typed
/// [`BenchError::Profiling`] instead of a panic inside the profiling unit.
fn planned_prof(
    prof: &ProfilingConfig,
    accel: &Accelerator,
) -> Result<ProfilingConfig, BenchError> {
    let cfg = match &accel.probe_plan {
        Some(plan) => prof.clone().with_plan(plan.clone()),
        None => prof.clone(),
    };
    cfg.validate()?;
    Ok(cfg)
}

/// Sink factory that streams the trace into a `.prv`/`.pcf`/`.row` bundle
/// under `path_stem` (for [`run_profiled_streaming`]).
pub fn bundle_sink(path_stem: PathBuf) -> SinkFactory {
    bundle_sink_with_plan(path_stem, None)
}

/// [`bundle_sink`] for a design compiled under `--profile=auto`: the
/// plan's region probes land in the `.pcf` event table and the `.row`
/// region hierarchy, so Paraver (and `diagnose`) can name the source
/// region behind every record.
pub fn bundle_sink_with_plan(path_stem: PathBuf, plan: Option<Arc<ProbePlan>>) -> SinkFactory {
    Box::new(move |meta| {
        let (event_defs, regions) = match &plan {
            Some(p) => (
                paraver::events::defs_with_regions(&p.pcf_regions()),
                p.row_regions(),
            ),
            None => (paraver::events::defs(), Vec::new()),
        };
        let w =
            paraver::BundleWriter::create(&path_stem, meta, &paraver::states::defs(), &event_defs)?
                .with_regions(regions);
        Ok(Box::new(w) as Box<dyn TraceSink + Send>)
    })
}

/// [`run_unprofiled_in`] under an explicit [`HlsConfig`]: the lint gate in
/// `hls.lint` runs before the compile, and a refused compile surfaces as
/// [`BenchError::Compile`] instead of panicking.
pub fn run_unprofiled_with(
    cache: &AccelCache,
    kernel: &Kernel,
    hls: &HlsConfig,
    sim: &SimConfig,
    launch: &[LaunchArg],
) -> Result<RunResult, BenchError> {
    let accel = cache.try_get_or_compile(kernel, hls)?;
    Executor::run(kernel, &accel, sim, launch, &mut NullSnoop).map_err(Into::into)
}

/// [`run_unprofiled`] against a shared compile cache.
pub fn run_unprofiled_in(
    cache: &AccelCache,
    kernel: &Kernel,
    sim: &SimConfig,
    launch: &[LaunchArg],
) -> Result<RunResult, SimError> {
    let accel = cache.get_or_compile(kernel, &HlsConfig::default());
    Executor::run(kernel, &accel, sim, launch, &mut NullSnoop)
}

/// Pre-sweep lint gate shared by the `repro_*` binaries: lint every kernel
/// at `level`, printing findings (human-rendered) to stderr. At
/// [`LintLevel::Deny`] a dirty kernel turns the whole gate into `Err` with
/// the rendered reports, so the binary can exit nonzero *before* spending
/// any simulation time.
pub fn lint_gate(kernels: &[&Kernel], level: LintLevel) -> Result<(), String> {
    let mut failures = Vec::new();
    for kernel in kernels {
        match nymble_lint::enforce(kernel, level) {
            Ok(report) => {
                if !report.is_clean() {
                    eprint!("{}", report.render_human());
                }
            }
            Err(rendered) => failures.push(rendered),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Performance twin of [`lint_gate`]: run the `NP0xx` diagnostics on every
/// kernel at `level`. Findings are warnings with quantitative predictions
/// (predicted cycles, bytes, serialization) — at [`LintLevel::Warn`] they
/// print to stderr and the sweep proceeds; [`LintLevel::Deny`] refuses a
/// flagged design up front, before any simulation time is spent.
pub fn perf_lint_gate(kernels: &[&Kernel], level: LintLevel) -> Result<(), String> {
    let mut failures = Vec::new();
    for kernel in kernels {
        match nymble_lint::enforce_perf(kernel, level) {
            Ok(report) => {
                if !report.is_clean() {
                    eprint!("{}", report.render_human());
                }
            }
            Err(rendered) => failures.push(rendered),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Compile and run a kernel without profiling (the overhead-study baseline).
///
/// # Panics
/// Panics on simulator errors (see [`run_unprofiled_in`]).
pub fn run_unprofiled(kernel: &Kernel, sim: &SimConfig, launch: &[LaunchArg]) -> RunResult {
    run_unprofiled_in(&AccelCache::new(), kernel, sim, launch).expect("simulation failed")
}

/// GEMM launch arguments (A, B, C) with deterministic contents.
pub fn gemm_launch(p: &GemmParams) -> Vec<LaunchArg> {
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    vec![
        f32_buffer(&a),
        f32_buffer(&b),
        f32_buffer(&vec![0.0; d * d]),
    ]
}

/// [`run_gemm`] against a shared compile cache.
pub fn run_gemm_in(
    cache: &AccelCache,
    version: GemmVersion,
    p: &GemmParams,
    sim: &SimConfig,
) -> Result<ProfiledRun, SimError> {
    let kernel = gemm::build(version, p);
    run_profiled_in(
        cache,
        &kernel,
        sim,
        &ProfilingConfig::default(),
        &gemm_launch(p),
    )
}

/// Run one GEMM version end to end with profiling.
pub fn run_gemm(version: GemmVersion, p: &GemmParams, sim: &SimConfig) -> ProfiledRun {
    run_gemm_in(&AccelCache::new(), version, p, sim).expect("simulation failed")
}

/// The π kernel's launch arguments for `p`.
pub fn pi_launch(p: &PiParams) -> Vec<LaunchArg> {
    let (step, spt) = pi::launch_scalars(p);
    vec![
        LaunchArg::Scalar(Value::F32(step)),
        LaunchArg::Scalar(Value::I64(spt)),
        f32_buffer(&[0.0]),
    ]
}

/// [`run_pi`] against a shared compile cache. The π kernel's IR does not
/// depend on the step count (it arrives as launch scalars), so every
/// problem size of the §V-D study shares one compile.
pub fn run_pi_in(
    cache: &AccelCache,
    p: &PiParams,
    sim: &SimConfig,
    prof: &ProfilingConfig,
) -> Result<(ProfiledRun, f32), SimError> {
    let kernel = pi::build(p);
    let (step, _) = pi::launch_scalars(p);
    let run = run_profiled_in(cache, &kernel, sim, prof, &pi_launch(p))?;
    let est = f32_result(&run.result, 2)[0] * step;
    Ok((run, est))
}

/// Run the π kernel with profiling; returns the run plus the achieved π
/// estimate.
pub fn run_pi(p: &PiParams, sim: &SimConfig, prof: &ProfilingConfig) -> (ProfiledRun, f32) {
    run_pi_in(&AccelCache::new(), p, sim, prof).expect("simulation failed")
}

/// The simulator configuration used for GEMM experiments: identical hardware
/// timing to the default, but with the host launch cost scaled to the
/// scaled-down default problem (the paper's fixed ~6 ms software cost is
/// invisible at 512² / 853 M cycles but would dominate a 128² run).
pub fn gemm_sim_config() -> SimConfig {
    SimConfig::default().with_fast_launch()
}

/// Run the analytical fast mode (`fpga_sim::analytic`) for one kernel:
/// compile (through the shared cache), derive the launch scalars and memory
/// image the same way the simulator does, and evaluate the roofline model.
/// The image lets memory-dependent loop bounds (CSR SpMV row pointers)
/// resolve; `None` when the kernel's bounds are still not statically
/// resolvable.
pub fn analytic_report(
    cache: &AccelCache,
    kernel: &Kernel,
    sim: &SimConfig,
    launch: &[LaunchArg],
) -> Option<fpga_sim::AnalyticReport> {
    let accel = cache.get_or_compile(kernel, &HlsConfig::default());
    let (mem, scalars) = fpga_sim::memimg::MemImage::new(kernel, launch);
    fpga_sim::analytic::estimate_with_image(kernel, &accel, sim, &scalars, &mem)
}

/// The simulator configuration of the π study: full host launch overhead,
/// calibrated so the 1 M / 4 M / 10 M-iteration GFLOP/s land in the band
/// Figs. 11–13 report.
pub fn pi_sim_config() -> SimConfig {
    SimConfig::default()
}

/// The dense input vector for an SpMV run: deterministic, zero-free.
pub fn spmv_x(cols: usize) -> Vec<f32> {
    (0..cols).map(|i| (i as f32 * 0.37).sin() + 1.5).collect()
}

/// SpMV launch arguments (`ROW_PTR`, `COL_IDX`, `VALS`, `X`, `Y`) for `m`.
pub fn spmv_launch(m: &Csr) -> Vec<LaunchArg> {
    let i64_buf = |v: &[i64]| LaunchArg::Buffer(v.iter().map(|&x| Value::I64(x)).collect());
    vec![
        i64_buf(&m.row_ptr),
        i64_buf(&m.col_idx),
        f32_buffer(&m.values),
        f32_buffer(&spmv_x(m.cols)),
        LaunchArg::Buffer(vec![Value::F32(0.0); m.rows]),
    ]
}

/// Build the SpMV kernel and run it with profiling through a shared cache.
pub fn run_spmv_in(
    cache: &AccelCache,
    m: &Csr,
    threads: u32,
    sim: &SimConfig,
) -> Result<ProfiledRun, SimError> {
    let kernel = spmv::build(m.rows as i64, threads);
    run_profiled_in(
        cache,
        &kernel,
        sim,
        &ProfilingConfig::default(),
        &spmv_launch(m),
    )
}

/// The simulator configuration for SpMV experiments: like GEMM, the
/// scaled-down problem sizes need the scaled launch cost.
pub fn spmv_sim_config() -> SimConfig {
    SimConfig::default().with_fast_launch()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_gemm_smoke() {
        let p = GemmParams {
            dim: 16,
            threads: 2,
            vec: 4,
            block: 8,
        };
        let run = run_gemm(GemmVersion::NoCritical, &p, &gemm_sim_config());
        assert!(run.result.total_cycles > 0);
        assert!(!run.trace.records.is_empty());
        let d = p.dim as usize;
        let a = reference::gen_matrix(d, 1);
        let b = reference::gen_matrix(d, 2);
        let gold = reference::gemm(&a, &b, d);
        let got = f32_result(&run.result, 2);
        for (g, e) in got.iter().zip(&gold) {
            assert!((g - e).abs() < 1e-3 * e.abs().max(1.0));
        }
    }

    #[test]
    fn profiled_pi_smoke() {
        let p = PiParams {
            steps: 64_000,
            threads: 4,
            bs: 8,
        };
        let (run, est) = run_pi(&p, &gemm_sim_config(), &ProfilingConfig::default());
        assert!((est - std::f32::consts::PI).abs() < 1e-2);
        assert!(run.trace.flushed_bytes > 0);
    }
}
