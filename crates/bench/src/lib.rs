//! # bench — experiment harness regenerating every table and figure of §V
//!
//! Shared plumbing for the `repro_*` binaries and the wall-clock benches
//! (see [`harness`]): compile a case-study kernel, run it through the
//! cycle-level simulator with the profiling unit attached, decode the
//! Paraver trace, and derive the paper's metrics. See `EXPERIMENTS.md` for
//! the experiment↔binary map.

pub mod harness;

use fpga_sim::memimg::LaunchArg;
use fpga_sim::{Executor, NullSnoop, RunResult, SimConfig};
use hls_profiling::{
    PipelineConfig, PipelineError, ProfilingConfig, ProfilingUnit, SinkFactory, StreamReport,
    TraceData,
};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use kernels::reference;
use nymble_hls::accel::{compile, Accelerator, HlsConfig};
use nymble_ir::{Kernel, Value};
use paraver::TraceSink;
use std::path::PathBuf;

/// Convert an `f32` slice into a buffer launch argument.
pub fn f32_buffer(data: &[f32]) -> LaunchArg {
    LaunchArg::Buffer(data.iter().map(|&x| Value::F32(x)).collect())
}

/// Read an `f32` buffer back out of a run result.
pub fn f32_result(r: &RunResult, arg: usize) -> Vec<f32> {
    r.buffers[arg]
        .iter()
        .map(|v| match v {
            Value::F32(x) => *x,
            other => other.as_f64() as f32,
        })
        .collect()
}

/// Outcome of one profiled experiment run.
pub struct ProfiledRun {
    pub result: RunResult,
    pub trace: TraceData,
    pub accel: Accelerator,
}

/// Compile and run a kernel with the profiling unit attached.
pub fn run_profiled(
    kernel: &Kernel,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    launch: &[LaunchArg],
) -> ProfiledRun {
    let accel = compile(kernel, &HlsConfig::default());
    let mut unit = ProfilingUnit::new(&kernel.name, kernel.num_threads, prof.clone());
    let result = Executor::run(kernel, &accel, sim, launch, &mut unit);
    ProfiledRun {
        result,
        trace: unit.finish(),
        accel,
    }
}

/// Compile and run a kernel with the profiling unit in streaming mode:
/// every trace-buffer flush feeds the background decode → bounded-sort →
/// sink pipeline instead of accumulating in memory.
pub fn run_profiled_streaming(
    kernel: &Kernel,
    sim: &SimConfig,
    prof: &ProfilingConfig,
    pipeline: PipelineConfig,
    sink_factory: SinkFactory,
    launch: &[LaunchArg],
) -> Result<(RunResult, StreamReport), PipelineError> {
    let accel = compile(kernel, &HlsConfig::default());
    let mut unit = ProfilingUnit::new_streaming(
        &kernel.name,
        kernel.num_threads,
        prof.clone(),
        pipeline,
        sink_factory,
    );
    let result = Executor::run(kernel, &accel, sim, launch, &mut unit);
    let report = unit.finish_streaming()?;
    Ok((result, report))
}

/// Sink factory that streams the trace into a `.prv`/`.pcf`/`.row` bundle
/// under `path_stem` (for [`run_profiled_streaming`]).
pub fn bundle_sink(path_stem: PathBuf) -> SinkFactory {
    Box::new(move |meta| {
        let w = paraver::BundleWriter::create(
            &path_stem,
            meta,
            &paraver::states::defs(),
            &paraver::events::defs(),
        )?;
        Ok(Box::new(w) as Box<dyn TraceSink + Send>)
    })
}

/// Compile and run a kernel without profiling (the overhead-study baseline).
pub fn run_unprofiled(kernel: &Kernel, sim: &SimConfig, launch: &[LaunchArg]) -> RunResult {
    let accel = compile(kernel, &HlsConfig::default());
    Executor::run(kernel, &accel, sim, launch, &mut NullSnoop)
}

/// GEMM launch arguments (A, B, C) with deterministic contents.
pub fn gemm_launch(p: &GemmParams) -> Vec<LaunchArg> {
    let d = p.dim as usize;
    let a = reference::gen_matrix(d, 1);
    let b = reference::gen_matrix(d, 2);
    vec![
        f32_buffer(&a),
        f32_buffer(&b),
        f32_buffer(&vec![0.0; d * d]),
    ]
}

/// Run one GEMM version end to end with profiling.
pub fn run_gemm(version: GemmVersion, p: &GemmParams, sim: &SimConfig) -> ProfiledRun {
    let kernel = gemm::build(version, p);
    run_profiled(&kernel, sim, &ProfilingConfig::default(), &gemm_launch(p))
}

/// Run the π kernel with profiling; returns the run plus the achieved π
/// estimate.
pub fn run_pi(p: &PiParams, sim: &SimConfig, prof: &ProfilingConfig) -> (ProfiledRun, f32) {
    let kernel = pi::build(p);
    let (step, spt) = pi::launch_scalars(p);
    let launch = vec![
        LaunchArg::Scalar(Value::F32(step)),
        LaunchArg::Scalar(Value::I64(spt)),
        f32_buffer(&[0.0]),
    ];
    let run = run_profiled(&kernel, sim, prof, &launch);
    let est = f32_result(&run.result, 2)[0] * step;
    (run, est)
}

/// The simulator configuration used for GEMM experiments: identical hardware
/// timing to the default, but with the host launch cost scaled to the
/// scaled-down default problem (the paper's fixed ~6 ms software cost is
/// invisible at 512² / 853 M cycles but would dominate a 128² run).
pub fn gemm_sim_config() -> SimConfig {
    SimConfig::default().with_fast_launch()
}

/// The simulator configuration of the π study: full host launch overhead,
/// calibrated so the 1 M / 4 M / 10 M-iteration GFLOP/s land in the band
/// Figs. 11–13 report.
pub fn pi_sim_config() -> SimConfig {
    SimConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_gemm_smoke() {
        let p = GemmParams {
            dim: 16,
            threads: 2,
            vec: 4,
            block: 8,
        };
        let run = run_gemm(GemmVersion::NoCritical, &p, &gemm_sim_config());
        assert!(run.result.total_cycles > 0);
        assert!(!run.trace.records.is_empty());
        let d = p.dim as usize;
        let a = reference::gen_matrix(d, 1);
        let b = reference::gen_matrix(d, 2);
        let gold = reference::gemm(&a, &b, d);
        let got = f32_result(&run.result, 2);
        for (g, e) in got.iter().zip(&gold) {
            assert!((g - e).abs() < 1e-3 * e.abs().max(1.0));
        }
    }

    #[test]
    fn profiled_pi_smoke() {
        let p = PiParams {
            steps: 64_000,
            threads: 4,
            bs: 8,
        };
        let (run, est) = run_pi(&p, &gemm_sim_config(), &ProfilingConfig::default());
        assert!((est - std::f32::consts::PI).abs() < 1e-2);
        assert!(run.trace.flushed_bytes > 0);
    }
}
