//! Machine-readable perf snapshots (`--bench-json`).
//!
//! Every `repro_*` binary can emit one JSON object describing the run it
//! just performed: wall time, simulated cycles, simulation throughput
//! (simulated cycles per wall second) and peak RSS. Committed snapshots
//! (`BENCH_gemm.json`, `BENCH_pi.json` at the repo root) form the perf
//! trajectory: CI re-runs the binary, emits a fresh snapshot and *warns*
//! (never fails) when wall time regresses more than 2× against the
//! committed one — see `bench_check` and the `bench-smoke` CI job.
//!
//! The format is deliberately flat so the hand-rolled writer/reader pair
//! below stays trivial (this build environment cannot fetch serde):
//! one top-level object, string or number values, one `params` string map
//! and one `extra` number map, no deeper nesting.

use std::io::Write;
use std::path::Path;

/// One perf measurement of one repro binary invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfSnapshot {
    /// Binary name (`repro_gemm`, ...).
    pub binary: String,
    /// `cycle` for the event-driven cycle-level simulator, `analytical`
    /// for the roofline fast mode.
    pub mode: String,
    /// Workload parameters (dim, threads, steps ...), stringified.
    pub params: Vec<(String, String)>,
    /// End-to-end wall-clock seconds of the measured section.
    pub wall_seconds: f64,
    /// Total simulated cycles across every run the binary performed.
    pub sim_cycles: u64,
    /// Simulation throughput: `sim_cycles / wall_seconds`.
    pub cycles_per_sec: f64,
    /// Peak resident set size of this process, in KiB (Linux `VmHWM`).
    pub peak_rss_kb: u64,
    /// Free-form numeric extras (e.g. `analytical_wall_seconds`,
    /// `analytical_speedup`).
    pub extra: Vec<(String, f64)>,
}

impl PerfSnapshot {
    /// Build a snapshot, deriving throughput and sampling peak RSS.
    pub fn new(binary: &str, mode: &str, wall_seconds: f64, sim_cycles: u64) -> Self {
        PerfSnapshot {
            binary: binary.to_string(),
            mode: mode.to_string(),
            params: Vec::new(),
            wall_seconds,
            sim_cycles,
            cycles_per_sec: if wall_seconds > 0.0 {
                sim_cycles as f64 / wall_seconds
            } else {
                0.0
            },
            peak_rss_kb: peak_rss_kb(),
            extra: Vec::new(),
        }
    }

    /// Add a workload parameter.
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a numeric extra.
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }

    /// Render as a JSON object (stable key order, newline-terminated).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        s.push_str(&format!("  \"binary\": {},\n", json_str(&self.binary)));
        s.push_str(&format!("  \"mode\": {},\n", json_str(&self.mode)));
        s.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(k), json_str(v)));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"wall_seconds\": {},\n",
            json_f64(self.wall_seconds)
        ));
        s.push_str(&format!("  \"sim_cycles\": {},\n", self.sim_cycles));
        s.push_str(&format!(
            "  \"cycles_per_sec\": {},\n",
            json_f64(self.cycles_per_sec)
        ));
        s.push_str(&format!("  \"peak_rss_kb\": {},\n", self.peak_rss_kb));
        s.push_str("  \"extra\": {");
        for (i, (k, v)) in self.extra.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(k), json_f64(*v)));
        }
        s.push_str("}\n}\n");
        s
    }

    /// Write the JSON rendering to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Parse a snapshot previously produced by [`PerfSnapshot::to_json`].
    ///
    /// This is a reader for *our own* flat output, not a general JSON
    /// parser; unknown keys are ignored so snapshots stay forward
    /// compatible.
    pub fn parse(text: &str) -> Result<PerfSnapshot, String> {
        let mut snap = PerfSnapshot {
            binary: String::new(),
            mode: String::new(),
            params: Vec::new(),
            wall_seconds: 0.0,
            sim_cycles: 0,
            cycles_per_sec: 0.0,
            peak_rss_kb: 0,
            extra: Vec::new(),
        };
        snap.binary = string_field(text, "binary").unwrap_or_default();
        snap.mode = string_field(text, "mode").unwrap_or_default();
        snap.wall_seconds = number_field(text, "wall_seconds").ok_or("missing wall_seconds")?;
        snap.sim_cycles = number_field(text, "sim_cycles").unwrap_or(0.0) as u64;
        snap.cycles_per_sec = number_field(text, "cycles_per_sec").unwrap_or(0.0);
        snap.peak_rss_kb = number_field(text, "peak_rss_kb").unwrap_or(0.0) as u64;
        snap.params = object_field(text, "params")
            .into_iter()
            .map(|(k, v)| (k, v.trim_matches('"').to_string()))
            .collect();
        snap.extra = object_field(text, "extra")
            .into_iter()
            .filter_map(|(k, v)| v.parse::<f64>().ok().map(|n| (k, n)))
            .collect();
        Ok(snap)
    }

    /// Read and parse a snapshot file.
    pub fn read(path: &Path) -> Result<PerfSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// A numeric extra by key.
    pub fn extra_value(&self, key: &str) -> Option<f64> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Peak resident set size of the current process in KiB (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Keep readable precision without trailing float noise.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() {
            "0".to_string()
        } else {
            s.to_string()
        }
    } else {
        "0".to_string()
    }
}

/// `"key": "value"` — the string value of a top-level field.
fn string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// `"key": 123.4` — the numeric value of a top-level field.
fn number_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let mut from = 0;
    while let Some(pos) = text[from..].find(&pat) {
        let at = from + pos + pat.len();
        let rest = text[at..].trim_start();
        // Skip string/object-valued fields with the same name.
        if rest.starts_with('"') || rest.starts_with('{') {
            from = at;
            continue;
        }
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
            .unwrap_or(rest.len());
        return rest[..end].parse().ok();
    }
    None
}

/// `"key": {...}` — the `k: v` pairs of a flat single-line object field.
fn object_field(text: &str, key: &str) -> Vec<(String, String)> {
    let pat = format!("\"{key}\":");
    let Some(at) = text.find(&pat) else {
        return Vec::new();
    };
    let rest = text[at + pat.len()..].trim_start();
    let Some(rest) = rest.strip_prefix('{') else {
        return Vec::new();
    };
    let Some(end) = rest.find('}') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            Some((k.trim().trim_matches('"').to_string(), v.trim().to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_fields() {
        let snap = PerfSnapshot::new("repro_gemm", "cycle", 12.5, 1_000_000)
            .param("dim", 512)
            .param("threads", 8)
            .with_extra("analytical_wall_seconds", 0.002)
            .with_extra("analytical_speedup", 6250.0);
        let text = snap.to_json();
        let back = PerfSnapshot::parse(&text).unwrap();
        assert_eq!(back.binary, "repro_gemm");
        assert_eq!(back.mode, "cycle");
        assert_eq!(back.wall_seconds, 12.5);
        assert_eq!(back.sim_cycles, 1_000_000);
        assert_eq!(back.cycles_per_sec, 80_000.0);
        assert_eq!(
            back.params,
            vec![
                ("dim".to_string(), "512".to_string()),
                ("threads".to_string(), "8".to_string())
            ]
        );
        assert_eq!(back.extra_value("analytical_speedup"), Some(6250.0));
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        assert!(peak_rss_kb() > 0, "VmHWM should parse on this platform");
    }

    #[test]
    fn parse_tolerates_unknown_keys_and_missing_extras() {
        let text = r#"{
  "binary": "repro_pi",
  "mode": "cycle",
  "future_field": "ignored",
  "params": {},
  "wall_seconds": 3.25,
  "sim_cycles": 42,
  "cycles_per_sec": 12.92,
  "peak_rss_kb": 1024,
  "extra": {}
}"#;
        let snap = PerfSnapshot::parse(text).unwrap();
        assert_eq!(snap.binary, "repro_pi");
        assert_eq!(snap.wall_seconds, 3.25);
        assert_eq!(snap.sim_cycles, 42);
        assert!(snap.extra.is_empty());
    }

    #[test]
    fn missing_wall_seconds_is_an_error() {
        assert!(PerfSnapshot::parse("{}").is_err());
    }
}
