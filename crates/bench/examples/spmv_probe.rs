//! Calibration probe for the analytical model's SpMV contention term:
//! prints simulated vs. predicted cycles plus the simulator's memory
//! counters (line fetches/hits, contended DRAM grants, stalls) over a
//! small matrix-shape × thread-count grid. This is the tool the
//! restart-contention constants in `fpga_sim::analytic::loop_cost` were
//! fitted with — rerun it after touching the memory system or the model
//! to see where the error moved before the ±15% validation suite
//! (`crates/bench/tests/analytic_validation.rs`) turns red.
//!
//! `cargo run --release -p bench --example spmv_probe`

use bench::{analytic_report, spmv_launch, spmv_sim_config};
use kernels::spmv::{self, Csr};
use nymble_hls::AccelCache;

fn probe(rows: usize, cols: usize, nnz: usize, threads: u32) {
    let m = Csr::random(rows, cols, nnz, 7);
    let k = spmv::build(m.rows as i64, threads);
    let sim = spmv_sim_config();
    let launch = spmv_launch(&m);
    let cache = AccelCache::new();
    let report = analytic_report(&cache, &k, &sim, &launch).expect("resolvable");
    let accel = cache.get_or_compile(&k, &nymble_hls::HlsConfig::default());
    let run = fpga_sim::Executor::run(&k, &accel, &sim, &launch, &mut fpga_sim::NullSnoop).unwrap();
    let err = (report.total_cycles as f64 - run.total_cycles as f64) / run.total_cycles as f64;
    let s = &run.stats;
    println!(
        "rows={rows} nnz={nnz} T={threads}: sim {} est {} err {:+.1}% | fetches {} hits {} contended {} reqs {} stalls {}",
        run.total_cycles, report.total_cycles, err * 100.0,
        s.line_fetches, s.line_hits, s.dram_contended, s.read_requests,
        s.total_stalls(),
    );
}

fn main() {
    probe(64, 256, 8, 1);
    probe(64, 256, 8, 2);
    probe(128, 256, 8, 4);
    probe(256, 256, 8, 8);
    probe(384, 64, 4, 4);
    probe(256, 256, 16, 8);
}
