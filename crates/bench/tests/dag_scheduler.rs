//! Scheduler-level guarantees of the work-stealing DAG executor, checked
//! directly on [`bench::graph::TaskGraph`] (the sweep-level determinism
//! suite lives in `batch_engine.rs`):
//!
//! * **every edge is respected** — a dependency's body *finishes* before
//!   any dependent's body starts, across random DAG shapes and worker
//!   counts (miniprop property);
//! * **every node runs exactly once and the graph drains** — a deadlock
//!   would hang the test, a lost node would fail the completion count;
//! * **reduce output is byte-identical** at `--jobs 1`, `2` and `8`.

use bench::engine::BatchEngine;
use bench::graph::{NodeCtx, NodeId, NodeKind, TaskGraph};
use miniprop::forall;
use std::sync::atomic::{AtomicU64, Ordering};

/// Random DAGs (up to 40 nodes, edges only point backwards — the same
/// invariant `TaskGraph::add` enforces) executed at 1, 2 or 8 workers.
/// Each node takes a globally ordered stamp when its body starts and
/// another when it ends; for every edge `d -> i` the dependency's *end*
/// stamp must precede the dependent's *start* stamp.
#[test]
fn random_dags_complete_and_respect_every_edge() {
    forall(48, |rng| {
        let n = rng.range_usize(1, 40);
        let jobs = *rng.pick(&[1usize, 2, 8]);
        let clock = AtomicU64::new(0);
        let clock = &clock;
        let mut graph: TaskGraph<'_, (u64, u64)> = TaskGraph::new();
        let mut ids: Vec<NodeId> = Vec::with_capacity(n);
        let mut deps_of: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let dep_idx: Vec<usize> = (0..i).filter(|_| rng.chance(1, 4)).collect();
            let dep_handles: Vec<NodeId> = dep_idx.iter().map(|&d| ids[d]).collect();
            let id = graph.add(
                NodeKind::Run,
                format!("n{i}"),
                &dep_handles,
                move |_: &NodeCtx<'_, (u64, u64)>| {
                    let start = clock.fetch_add(1, Ordering::SeqCst);
                    // A little non-uniform work so workers interleave.
                    std::hint::black_box((0..(i as u64 % 7) * 500).sum::<u64>());
                    let end = clock.fetch_add(1, Ordering::SeqCst);
                    Ok((start, end))
                },
            );
            ids.push(id);
            deps_of.push(dep_idx);
        }

        let out = BatchEngine::new(jobs).run_graph(graph);
        assert_eq!(out.reports.len(), n, "jobs={jobs}: report per node");
        assert_eq!(
            out.stats.total_executed(),
            n as u64,
            "jobs={jobs}: every node executed exactly once"
        );
        for (i, deps) in deps_of.iter().enumerate() {
            let &(start_i, end_i) = out.reports[i]
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("jobs={jobs}: node {i} failed: {e}"));
            assert!(start_i < end_i, "stamps are globally ordered");
            for &d in deps {
                let &(_, end_d) = out.reports[d].outcome.as_ref().unwrap();
                assert!(
                    end_d < start_i,
                    "jobs={jobs}: edge {d} -> {i} violated (dep ended at {end_d}, \
                     dependent started at {start_i})"
                );
            }
        }
    });
}

/// The diamond every sweep is built from — Compile -> Run* -> Analyze* ->
/// Reduce — must produce a byte-identical reduced string at every worker
/// count, because the Reduce node iterates its dependencies in edge
/// declaration order regardless of completion order.
#[test]
fn reduce_output_is_byte_identical_across_worker_counts() {
    let render = |jobs: usize| {
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        let compile = graph.add(
            NodeKind::Compile,
            "compile",
            &[],
            |_: &NodeCtx<'_, String>| Ok("ok".to_string()),
        );
        let analyze_ids: Vec<NodeId> = (0..12)
            .map(|i| {
                let run = graph.add(
                    NodeKind::Run,
                    format!("run{i}"),
                    &[compile],
                    move |_: &NodeCtx<'_, String>| {
                        // Uneven workloads: completion order differs from
                        // submission order whenever jobs > 1.
                        std::hint::black_box((0..((12 - i) as u64) * 2_000).sum::<u64>());
                        Ok(format!("r{i}={}", i * i))
                    },
                );
                graph.add(
                    NodeKind::Analyze,
                    format!("analyze{i}"),
                    &[run],
                    move |ctx: &NodeCtx<'_, String>| {
                        Ok(format!("[{}]", ctx.dep(0).outcome.as_ref().unwrap()))
                    },
                )
            })
            .collect();
        let reduce = graph.add(
            NodeKind::Reduce,
            "table",
            &analyze_ids,
            |ctx: &NodeCtx<'_, String>| {
                let mut s = String::new();
                for dep in ctx.deps() {
                    s.push_str(dep.outcome.as_ref().unwrap());
                    s.push('\n');
                }
                Ok(s)
            },
        );
        let out = BatchEngine::new(jobs).run_graph(graph);
        out.reports[reduce.index()]
            .outcome
            .as_ref()
            .unwrap()
            .clone()
    };
    let serial = render(1);
    assert!(serial.contains("[r0=0]") && serial.contains("[r11=121]"));
    for jobs in [2, 8] {
        assert_eq!(serial, render(jobs), "jobs={jobs}: reduce output differs");
    }
}
