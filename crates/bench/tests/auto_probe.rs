//! End-to-end checks of the `--profile=auto` pipeline: the knapsack plan
//! covers the hand-chosen counter set at the default budget, the emitted
//! `.pcf`/`.row` bundle sections are golden across budgets (with the
//! smaller-budget plan a subset of the larger), instrumenting a design is
//! observationally free (identical simulated behaviour), and the region
//! attribution reconciles with the whole-kernel cycle count.

use bench::{
    gemm_launch, gemm_sim_config, run_profiled_with, spmv_launch, spmv_sim_config, BenchError,
    ProfiledRun,
};
use fpga_sim::memimg::LaunchArg;
use fpga_sim::SimConfig;
use hls_profiling::ProfilingConfig;
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use kernels::spmv::{self, Csr};
use nymble_hls::{AccelCache, HlsConfig, ProbeMode, ProbePlan, DEFAULT_PROBE_BUDGET_ALMS};
use nymble_ir::Kernel;

fn auto_hls(budget_alms: u32) -> HlsConfig {
    HlsConfig {
        probe: ProbeMode::Auto { budget_alms },
        ..HlsConfig::default()
    }
}

fn run_auto(
    kernel: &Kernel,
    sim: &SimConfig,
    launch: &[LaunchArg],
    budget_alms: u32,
) -> ProfiledRun {
    run_profiled_with(
        &AccelCache::new(),
        kernel,
        &auto_hls(budget_alms),
        sim,
        &ProfilingConfig::default(),
        launch,
    )
    .expect("auto-probe run failed")
}

fn small_gemm() -> GemmParams {
    GemmParams {
        dim: 16,
        threads: 2,
        vec: 4,
        block: 8,
    }
}

#[test]
fn default_budget_plan_covers_the_hand_chosen_set_on_every_case_study() {
    // Acceptance criterion: GEMM v1–v5 plus π at the default budget select
    // 100% of the hand-chosen counter classes, and the modeled cost fits
    // the budget per the cost model.
    let cache = AccelCache::new();
    let hls = auto_hls(DEFAULT_PROBE_BUDGET_ALMS);
    let p = small_gemm();
    let mut kernels: Vec<Kernel> = GemmVersion::ALL
        .iter()
        .map(|&v| gemm::build(v, &p))
        .collect();
    kernels.push(pi::build(&PiParams {
        steps: 64_000,
        threads: 4,
        bs: 8,
    }));
    for kernel in &kernels {
        let accel = cache.get_or_compile(kernel, &hls);
        let plan = accel
            .probe_plan
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no plan under ProbeMode::Auto", kernel.name));
        assert!(
            plan.covers_default_set(),
            "{}: default budget must cover the hand-chosen counter set, got {:?}",
            kernel.name,
            plan.counters
        );
        assert!(
            plan.cost_alms <= u64::from(plan.budget_alms),
            "{}: plan cost {} exceeds budget {}",
            kernel.name,
            plan.cost_alms,
            plan.budget_alms
        );
        assert!(
            !plan.regions.is_empty(),
            "{}: no regions probed",
            kernel.name
        );
    }
}

/// Read the `.pcf`/`.row` pair a bundle write produced.
fn bundle_sections(stem: &std::path::Path) -> (String, String) {
    let pcf = std::fs::read_to_string(stem.with_extension("pcf")).expect("read .pcf");
    let row = std::fs::read_to_string(stem.with_extension("row")).expect("read .row");
    (pcf, row)
}

fn assert_golden_bundle(run: &ProfiledRun, stem: &std::path::Path) {
    let plan = run.accel.probe_plan.as_ref().expect("auto plan");
    run.trace.write_bundle(stem).expect("write bundle");
    let (pcf, row) = bundle_sections(stem);
    // Every planned region appears as a typed event in the .pcf and as a
    // hierarchy line in the .row — that is what lets Paraver (and
    // `diagnose`) name a source region for a record.
    for region in &plan.regions {
        assert!(
            pcf.contains(&format!("Region: {}", region.label)),
            "{stem:?}: .pcf lacks region {:?}",
            region.label
        );
    }
    assert!(
        row.contains("LEVEL REGION SIZE"),
        "{stem:?}: .row lacks the region level"
    );
    let parsed = paraver::row::parse_regions(&row);
    assert_eq!(
        parsed,
        plan.row_regions(),
        "{stem:?}: .row hierarchy must round-trip the plan"
    );
}

fn assert_plan_subset(small: &ProbePlan, large: &ProbePlan) {
    for c in &small.counters {
        assert!(
            large.has_counter(*c),
            "counter {c:?} lost at the larger budget"
        );
    }
    for r in &small.regions {
        assert!(
            large.region(r.id).is_some(),
            "region {} ({:?}) lost at the larger budget",
            r.id,
            r.label
        );
    }
    assert!(small.cost_alms <= large.cost_alms);
}

#[test]
fn gemm_bundles_are_golden_and_monotone_across_budgets() {
    let p = small_gemm();
    let kernel = gemm::build(GemmVersion::Naive, &p);
    let sim = gemm_sim_config();
    let launch = gemm_launch(&p);
    // ~2 items at 38 ALMs/item vs the full default selection.
    let tight = run_auto(&kernel, &sim, &launch, 96);
    let full = run_auto(&kernel, &sim, &launch, DEFAULT_PROBE_BUDGET_ALMS);
    let dir = tempdir("auto_probe_gemm");
    assert_golden_bundle(&tight, &dir.join("gemm_b96"));
    assert_golden_bundle(&full, &dir.join("gemm_bdefault"));
    assert_plan_subset(
        tight.accel.probe_plan.as_ref().unwrap(),
        full.accel.probe_plan.as_ref().unwrap(),
    );
    assert!(full.accel.probe_plan.as_ref().unwrap().covers_default_set());
}

#[test]
fn spmv_bundles_are_golden_and_monotone_across_budgets() {
    let matrix = Csr::random(64, 64, 4, 5);
    let kernel = spmv::build(matrix.rows as i64, 2);
    let sim = spmv_sim_config();
    let launch = spmv_launch(&matrix);
    let tight = run_auto(&kernel, &sim, &launch, 96);
    let full = run_auto(&kernel, &sim, &launch, DEFAULT_PROBE_BUDGET_ALMS);
    let dir = tempdir("auto_probe_spmv");
    assert_golden_bundle(&tight, &dir.join("spmv_b96"));
    assert_golden_bundle(&full, &dir.join("spmv_bdefault"));
    assert_plan_subset(
        tight.accel.probe_plan.as_ref().unwrap(),
        full.accel.probe_plan.as_ref().unwrap(),
    );
}

#[test]
fn auto_probing_is_observationally_free() {
    // The probes tap the same snoop signals the state recorder already
    // watches; instrumenting a design must not change what the simulator
    // computes. Compare an auto-probed run against the fixed default on
    // every observable except the trace's extra region records.
    let p = small_gemm();
    let kernel = gemm::build(GemmVersion::Naive, &p);
    let sim = gemm_sim_config();
    let launch = gemm_launch(&p);
    let fixed = run_profiled_with(
        &AccelCache::new(),
        &kernel,
        &HlsConfig::default(),
        &sim,
        &ProfilingConfig::default(),
        &launch,
    )
    .expect("fixed run failed");
    let auto = run_auto(&kernel, &sim, &launch, DEFAULT_PROBE_BUDGET_ALMS);
    assert_eq!(fixed.result.total_cycles, auto.result.total_cycles);
    assert_eq!(fixed.result.buffers, auto.result.buffers);
    for (f, a) in fixed
        .result
        .stats
        .per_thread
        .iter()
        .zip(&auto.result.stats.per_thread)
    {
        assert_eq!(f.start_cycle, a.start_cycle);
        assert_eq!(f.end_cycle, a.end_cycle);
    }
    // The state stream — the paper's Fig. 2 view — is byte-identical; the
    // bundles legitimately differ only in the added region event records.
    let states = |run: &ProfiledRun| -> Vec<paraver::Record> {
        run.trace
            .records
            .iter()
            .filter(|r| matches!(r, paraver::Record::State { .. }))
            .cloned()
            .collect()
    };
    assert_eq!(states(&fixed), states(&auto));
}

#[test]
fn region_attribution_reconciles_with_the_whole_kernel_cycle_count() {
    // Acceptance criterion: per-region attributed cycles reconcile with
    // the whole-kernel cycle count within 10% on the cycle simulator.
    let p = small_gemm();
    let kernel = gemm::build(GemmVersion::Naive, &p);
    let sim = gemm_sim_config();
    let launch = gemm_launch(&p);
    let run = run_auto(&kernel, &sim, &launch, DEFAULT_PROBE_BUDGET_ALMS);
    let plan = run.accel.probe_plan.as_ref().expect("auto plan");
    let att = hls_profiling::attribute_regions(&run.accel.regions, plan, &run.trace);
    let root = att
        .iter()
        .find(|a| a.parent.is_none())
        .expect("root region");
    assert_eq!(root.cycles, run.trace.meta.duration.max(1));
    let coverage = hls_profiling::diagnose::attribution_coverage(&att);
    assert!(
        (coverage - 1.0).abs() <= 0.10,
        "attributed cycles cover {:.1}% of the kernel; must reconcile within 10%",
        coverage * 100.0
    );
    assert!(
        hls_profiling::hottest_region(&att).is_some_and(|h| h.depth > 0),
        "attribution must name a sub-kernel source region"
    );
}

#[test]
fn a_budget_that_selects_nothing_is_a_typed_error_not_a_panic() {
    // Below the price of a single item (~38 ALMs at 2 threads) the plan is
    // empty; the harness must refuse with the typed profiling error the
    // CLI surfaces as exit(2), not panic inside the profiling unit.
    let p = small_gemm();
    let kernel = gemm::build(GemmVersion::Naive, &p);
    let res = run_profiled_with(
        &AccelCache::new(),
        &kernel,
        &auto_hls(10),
        &gemm_sim_config(),
        &ProfilingConfig::default(),
        &gemm_launch(&p),
    );
    match res {
        Err(BenchError::Profiling(e)) => assert!(e.to_string().contains("selects nothing")),
        Err(other) => panic!("expected a profiling config error, got {other}"),
        Ok(_) => panic!("a 10-ALM budget must be refused"),
    }
}

/// Per-test scratch directory under the target dir.
fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
