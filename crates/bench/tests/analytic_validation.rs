//! Cross-validation of the analytical fast mode (`fpga_sim::analytic`)
//! against the cycle-level simulator on the repro suite: every GEMM
//! version plus π must land within 15% of the simulated total.

use bench::{
    analytic_report, gemm_launch, gemm_sim_config, pi_launch, pi_sim_config, spmv_launch,
    spmv_sim_config,
};
use fpga_sim::memimg::LaunchArg;
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use kernels::spmv::{self, Csr};
use nymble_hls::AccelCache;
use nymble_ir::Kernel;

const TOLERANCE: f64 = 0.15;

fn check(name: &str, kernel: &Kernel, sim: &fpga_sim::SimConfig, launch: &[LaunchArg]) {
    let cache = AccelCache::new();
    let report = analytic_report(&cache, kernel, sim, launch)
        .unwrap_or_else(|| panic!("{name}: analytical bounds must be statically resolvable"));
    let accel = cache.get_or_compile(kernel, &nymble_hls::HlsConfig::default());
    let run = fpga_sim::Executor::run(kernel, &accel, sim, launch, &mut fpga_sim::NullSnoop)
        .unwrap_or_else(|e| panic!("{name}: sim failed: {e}"));
    let sim_cycles = run.total_cycles as f64;
    let est = report.total_cycles as f64;
    let err = (est - sim_cycles) / sim_cycles;
    eprintln!(
        "{name:<18} sim {:>12}  analytic {:>12}  err {:>+7.1}%  bound {}",
        run.total_cycles,
        report.total_cycles,
        err * 100.0,
        report.bound
    );
    assert!(
        err.abs() <= TOLERANCE,
        "{name}: analytical estimate {est} vs simulated {sim_cycles} — {:+.1}% exceeds ±{:.0}%",
        err * 100.0,
        TOLERANCE * 100.0
    );
}

#[test]
fn gemm_suite_within_tolerance() {
    let p = GemmParams {
        dim: 48,
        threads: 4,
        ..Default::default()
    };
    let sim = gemm_sim_config();
    let launch = gemm_launch(&p);
    for v in GemmVersion::ALL {
        let k = gemm::build(v, &p);
        check(v.name(), &k, &sim, &launch);
    }
}

#[test]
fn spmv_within_tolerance() {
    // Irregular workload: the inner-loop trip counts come from the CSR row
    // pointers in memory, so this exercises the image-backed bound
    // resolution (`estimate_with_image`). Two shapes: a wider matrix with
    // moderate rows, and a tall skinny one with short rows.
    let sim = spmv_sim_config();
    for (name, rows, cols, nnz, threads) in [
        ("spmv_256x256", 256usize, 256usize, 8usize, 8u32),
        ("spmv_tall", 384, 64, 4, 4),
    ] {
        let m = Csr::random(rows, cols, nnz, 7);
        let k = spmv::build(m.rows as i64, threads);
        check(name, &k, &sim, &spmv_launch(&m));
    }
}

#[test]
fn pi_within_tolerance() {
    // steps must divide evenly over threads × block size (8 × 8).
    let p = PiParams {
        steps: 102_400,
        threads: 8,
        ..Default::default()
    };
    let sim = pi_sim_config();
    let k = pi::build(&p);
    let launch = pi_launch(&p);
    check("pi", &k, &sim, &launch);
}
