//! The `--lint` gate must be *observationally free*: the analyzer runs
//! before scheduling and never touches the compiled artifact, so a GEMM
//! sweep at `lint: Deny` must produce byte-identical trace bundles and an
//! identical result table to the same sweep at `lint: Off`.

use bench::sweep::{gemm_sweep, gemm_table, GemmSweepConfig};
use bench::{gemm_sim_config, lint_gate};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::{self, GemmParams, GemmVersion};
use nymble_hls::HlsConfig;
use nymble_lint::LintLevel;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique scratch directory (no wall-clock in the name so test
/// output stays reproducible).
fn test_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "hls-paraver-lint-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("create test dir");
    d
}

/// Map of file name → contents for every bundle file under `dir`.
fn bundle_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read bundle dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        files.insert(name, std::fs::read(&path).expect("read bundle file"));
    }
    files
}

fn sweep_cfg(lint: LintLevel, out: PathBuf) -> GemmSweepConfig {
    GemmSweepConfig {
        params: GemmParams {
            dim: 16,
            threads: 2,
            vec: 4,
            block: 8,
        },
        hls: HlsConfig {
            lint,
            ..HlsConfig::default()
        },
        sim: gemm_sim_config(),
        prof: ProfilingConfig::default(),
        pipeline: PipelineConfig::default(),
        out: Some(out),
        jobs: 2,
    }
}

#[test]
fn lint_deny_and_off_produce_identical_bundles_and_tables() {
    let mut baseline: Option<(String, BTreeMap<String, Vec<u8>>)> = None;
    for lint in [LintLevel::Off, LintLevel::Deny] {
        let out = test_dir(lint.as_str());
        let sweep = gemm_sweep(&sweep_cfg(lint, out.clone()));
        for (v, r) in &sweep.runs {
            assert!(r.outcome.is_ok(), "lint={lint}: {} failed", v.name());
        }
        let table = gemm_table(&sweep);
        let bundles = bundle_bytes(&out);
        assert_eq!(bundles.len(), GemmVersion::ALL.len() * 3);
        match &baseline {
            None => baseline = Some((table, bundles)),
            Some((base_table, base_bundles)) => {
                assert_eq!(base_table, &table, "lint level changed the table");
                assert_eq!(
                    base_bundles, &bundles,
                    "lint level changed a trace bundle byte"
                );
            }
        }
        std::fs::remove_dir_all(&out).ok();
    }
}

#[test]
fn shipped_kernels_pass_the_deny_gate() {
    // The acceptance bar of the lint feature: GEMM v1–v5 and π are clean.
    let p = GemmParams {
        dim: 16,
        threads: 2,
        vec: 4,
        block: 8,
    };
    let kernels: Vec<_> = GemmVersion::ALL
        .iter()
        .map(|&v| gemm::build(v, &p))
        .chain(std::iter::once(kernels::pi::build(
            &kernels::pi::PiParams {
                steps: 1024,
                threads: 2,
                bs: 8,
            },
        )))
        .collect();
    lint_gate(&kernels.iter().collect::<Vec<_>>(), LintLevel::Deny)
        .expect("all shipped kernels lint clean under deny");
}

#[test]
fn deny_gate_turns_a_racy_kernel_into_a_failed_row() {
    use nymble_ir::{KernelBuilder, MapDir, ScalarType};
    // Both threads write OUT[0..8): NL001 under deny.
    let mut kb = KernelBuilder::new("racy", 2);
    let out_buf = kb.buffer("OUT", ScalarType::F32, MapDir::From);
    let n = kb.c_i64(8);
    kb.for_range("i", n, |kb, i| {
        let one = kb.c_f32(1.0);
        kb.store(out_buf, i, one);
    });
    let k = kb.finish();
    let err = lint_gate(&[&k], LintLevel::Deny).expect_err("deny rejects the race");
    assert!(err.contains("NL001"), "gate names the code: {err}");
    // The same kernel passes with the gate off.
    lint_gate(&[&k], LintLevel::Off).expect("off never fails");
}
