//! Determinism guarantees of the parallel batch engine: the §V-C GEMM
//! sweep and the §V-D π sweep must produce **byte-identical** trace bundles
//! (`.prv`/`.pcf`/`.row`) and identical result tables at `--jobs 1`, `2`
//! and `8` — worker scheduling must never leak into any observable output.

use bench::sweep::{gemm_sweep, gemm_table, pi_sweep, pi_table, GemmSweepConfig, PiSweepConfig};
use bench::{gemm_sim_config, pi_sim_config};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::{GemmParams, GemmVersion};
use nymble_hls::HlsConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique scratch directory (no wall-clock in the name so test
/// output stays reproducible).
fn test_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "hls-paraver-det-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("create test dir");
    d
}

/// Map of file name → contents for every bundle file under `dir`.
fn bundle_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read bundle dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        files.insert(name, std::fs::read(&path).expect("read bundle file"));
    }
    files
}

fn assert_identical_bundles(baseline: &BTreeMap<String, Vec<u8>>, dir: &Path, jobs: usize) {
    let got = bundle_bytes(dir);
    assert_eq!(
        baseline.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "jobs={jobs} produced a different bundle file set"
    );
    for (name, bytes) in baseline {
        assert_eq!(
            bytes, &got[name],
            "jobs={jobs}: {name} differs from the serial run byte-for-byte"
        );
    }
}

const JOBS_LEVELS: [usize; 3] = [1, 2, 8];

#[test]
fn gemm_sweep_is_deterministic_across_worker_counts() {
    let threads = 2;
    let sim = gemm_sim_config();
    let mut baseline: Option<(String, BTreeMap<String, Vec<u8>>)> = None;
    for jobs in JOBS_LEVELS {
        let out = test_dir("gemm");
        let sweep = gemm_sweep(&GemmSweepConfig {
            params: GemmParams {
                dim: 16,
                threads,
                vec: 4,
                block: 8,
            },
            hls: HlsConfig::default(),
            sim: sim.clone(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: Some(out.clone()),
            jobs,
        });
        for (v, r) in &sweep.runs {
            assert!(r.outcome.is_ok(), "jobs={jobs}: {} failed", v.name());
        }
        assert_eq!(
            sweep.cache.misses as usize,
            GemmVersion::ALL.len(),
            "jobs={jobs}: every version compiled exactly once"
        );
        let table = gemm_table(&sweep);
        let bundles = bundle_bytes(&out);
        assert_eq!(
            bundles.len(),
            GemmVersion::ALL.len() * 3,
            "one .prv/.pcf/.row triple per version"
        );
        match &baseline {
            None => baseline = Some((table, bundles)),
            Some((base_table, base_bundles)) => {
                assert_eq!(base_table, &table, "jobs={jobs}: table text differs");
                assert_identical_bundles(base_bundles, &out, jobs);
            }
        }
        std::fs::remove_dir_all(&out).ok();
    }
}

#[test]
fn pi_sweep_is_deterministic_across_worker_counts() {
    let sim = pi_sim_config();
    let mut baseline: Option<(String, BTreeMap<String, Vec<u8>>)> = None;
    for jobs in JOBS_LEVELS {
        let out = test_dir("pi");
        let sweep = pi_sweep(&PiSweepConfig {
            steps: vec![20_000, 50_000, 100_000],
            threads: 2,
            bs: 8,
            hls: HlsConfig::default(),
            sim: sim.clone(),
            prof: ProfilingConfig {
                sampling_period: 5_000,
                ..Default::default()
            },
            pipeline: PipelineConfig::default(),
            out: Some(out.clone()),
            jobs,
        });
        for (steps, r) in &sweep.runs {
            assert!(r.outcome.is_ok(), "jobs={jobs}: {steps} failed");
        }
        assert_eq!(
            sweep.cache.misses, 1,
            "jobs={jobs}: the π kernel compiles once for all problem sizes"
        );
        let table = pi_table(&sweep);
        let bundles = bundle_bytes(&out);
        assert_eq!(bundles.len(), 3 * 3, "one bundle triple per step count");
        match &baseline {
            None => baseline = Some((table, bundles)),
            Some((base_table, base_bundles)) => {
                assert_eq!(base_table, &table, "jobs={jobs}: table text differs");
                assert_identical_bundles(base_bundles, &out, jobs);
            }
        }
        std::fs::remove_dir_all(&out).ok();
    }
}

#[test]
fn oversubscribed_pool_handles_tiny_spill_budget() {
    // Force the streaming sorter to spill in every run while eight workers
    // share two problem sizes: the per-run scratch dirs must keep the spill
    // files apart and the tables identical to a serial run.
    let sim = gemm_sim_config();
    let cfg = |jobs| PiSweepConfig {
        steps: vec![30_000, 60_000],
        threads: 2,
        bs: 8,
        hls: HlsConfig::default(),
        sim: sim.clone(),
        prof: ProfilingConfig {
            sampling_period: 1_000,
            ..Default::default()
        },
        pipeline: PipelineConfig {
            max_in_memory_records: 64,
            ..Default::default()
        },
        out: None,
        jobs,
    };
    let serial = pi_sweep(&cfg(1));
    let oversub = pi_sweep(&cfg(8));
    assert_eq!(pi_table(&serial), pi_table(&oversub));
}
