//! Acceptance tests of the streaming trace pipeline (the tentpole refactor):
//!
//! * **Golden**: for every GEMM version and the π kernel, the streaming
//!   path's `.prv`/`.pcf`/`.row` bundle is byte-identical to the
//!   materialized path's.
//! * **Bounded memory**: peak in-flight trace state is bounded by the
//!   configured buffer/channel/sorter capacities, not by run length.

use bench::{
    bundle_sink, gemm_launch, gemm_sim_config, pi_sim_config, run_profiled, run_profiled_streaming,
};
use fpga_sim::memimg::LaunchArg;
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_ir::{Kernel, Value};
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("streaming_pipeline_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run both paths and assert the three bundle files match byte for byte.
fn assert_bundles_identical(
    tag: &str,
    kernel: &Kernel,
    sim: &fpga_sim::SimConfig,
    prof: &ProfilingConfig,
    pipe: PipelineConfig,
    launch: &[LaunchArg],
) {
    let dir = fresh_dir(tag);
    let mat_stem = dir.join("materialized");
    let st_stem = dir.join("streamed");

    let run = run_profiled(kernel, sim, prof, launch);
    run.trace.write_bundle(&mat_stem).unwrap();

    let (_result, report) = run_profiled_streaming(
        kernel,
        sim,
        prof,
        pipe,
        bundle_sink(st_stem.clone()),
        launch,
    )
    .unwrap();
    assert_eq!(
        report.records as usize,
        run.trace.records.len(),
        "{tag}: same number of decoded records"
    );

    for ext in ["prv", "pcf", "row"] {
        let a = std::fs::read(mat_stem.with_extension(ext)).unwrap();
        let b = std::fs::read(st_stem.with_extension(ext)).unwrap();
        assert_eq!(
            a, b,
            "{tag}: .{ext} must be byte-identical between materialized and streaming paths"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gemm_all_versions_stream_byte_identical_bundles() {
    let p = GemmParams {
        dim: 24,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let sim = gemm_sim_config();
    let prof = ProfilingConfig {
        sampling_period: 500,
        buffer_lines: 16,
        ..Default::default()
    };
    let launch = gemm_launch(&p);
    for v in GemmVersion::ALL {
        let kernel = gemm::build(v, &p);
        // A tiny sorter capacity forces external-merge spills, proving the
        // byte-identical guarantee does not rely on in-memory sorting.
        let pipe = PipelineConfig {
            channel_capacity: 2,
            max_in_memory_records: 64,
            spill_dir: None,
        };
        assert_bundles_identical(v.name(), &kernel, &sim, &prof, pipe, &launch);
    }
}

#[test]
fn pi_streams_byte_identical_bundle() {
    let p = PiParams {
        steps: 64_000,
        threads: 4,
        bs: 8,
    };
    let kernel = pi::build(&p);
    let (step, spt) = pi::launch_scalars(&p);
    let launch = vec![
        LaunchArg::Scalar(Value::F32(step)),
        LaunchArg::Scalar(Value::I64(spt)),
        LaunchArg::Buffer(vec![Value::F32(0.0)]),
    ];
    let prof = ProfilingConfig {
        sampling_period: 1_000,
        buffer_lines: 8,
        ..Default::default()
    };
    let pipe = PipelineConfig {
        channel_capacity: 2,
        max_in_memory_records: 128,
        spill_dir: None,
    };
    assert_bundles_identical("pi", &kernel, &pi_sim_config(), &prof, pipe, &launch);
}

#[test]
fn long_run_memory_is_bounded_by_config_not_run_length() {
    // Two runs, one ~4× the trace volume of the other, under the same tight
    // pipeline budget: the in-flight bounds must not grow with run length.
    let sim = gemm_sim_config();
    let measure = |dim: i64| {
        let p = GemmParams {
            dim,
            threads: 4,
            vec: 4,
            block: 8,
        };
        let kernel = gemm::build(GemmVersion::NoCritical, &p);
        let prof = ProfilingConfig {
            sampling_period: 200, // fine-grained: lots of event records
            buffer_lines: 8,      // 512 B staging buffer
            ..Default::default()
        };
        let cap = 96;
        let pipe = PipelineConfig {
            channel_capacity: 2,
            max_in_memory_records: cap,
            spill_dir: None,
        };
        let (_r, report) = run_profiled_streaming(
            &kernel,
            &sim,
            &prof,
            pipe,
            Box::new(|_| Ok(Box::new(paraver::NullSink::default()) as Box<_>)),
            &gemm_launch(&p),
        )
        .unwrap();
        (report, cap, prof.buffer_lines * 64)
    };

    let (short, cap, buf_bytes) = measure(16);
    let (long, _, _) = measure(48);

    assert!(
        long.records > short.records * 3,
        "the long run must produce much more trace data ({} vs {})",
        long.records,
        short.records
    );
    for (name, r) in [("short", &short), ("long", &long)] {
        assert!(
            r.peak_resident_records <= cap,
            "{name}: sorter residency {} exceeds configured cap {cap}",
            r.peak_resident_records
        );
        assert!(
            r.peak_chunk_bytes <= buf_bytes,
            "{name}: chunk {} exceeds staging buffer {buf_bytes}",
            r.peak_chunk_bytes
        );
    }
    assert!(
        long.spilled_runs > 0,
        "the long run must have spilled ({} records through cap {cap})",
        long.records
    );
    // The bound itself is run-length independent.
    assert!(short.peak_resident_records.max(long.peak_resident_records) <= cap);
}
