//! Predicted-vs-observed validation of the `NP0xx` performance lints.
//!
//! Two promises hold the perf-lint family together:
//!
//! 1. **Static agreement** — the symbolic cost model behind every NP
//!    prediction (`nymble_lint::perf`) is an independent mirror of the
//!    simulator's roofline mode (`fpga_sim::analytic`). On each triggering
//!    fixture, its quantitative prediction must land within 25% of the
//!    analytic estimate of the same quantity.
//! 2. **Dynamic confirmation** — the cycle-level simulator must actually
//!    exhibit each predicted symptom: `hls_profiling::confront` returns
//!    `Confirmed` for every NP finding on the fixture's simulated trace.
//!
//! A third test pins the gate's observational freeness: sweeping with
//! `perf_lint: Warn` produces byte-identical trace bundles and tables to
//! `perf_lint: Off` — the analyzer never touches the compiled artifact.

use bench::sweep::{gemm_sweep, gemm_table, GemmSweepConfig};
use bench::{analytic_report, gemm_sim_config, run_profiled_in};
use fpga_sim::memimg::LaunchArg;
use fpga_sim::SimConfig;
use hls_profiling::diagnose::{confront, diagnose, perf_params_from_sim, DiagnoseConfig};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::fixtures::{self, Fixture};
use kernels::gemm::{GemmParams, GemmVersion};
use nymble_hls::{AccelCache, HlsConfig};
use nymble_ir::{ArgKind, Kernel, ScalarType, Type, Value};
use nymble_lint::{Code, LintLevel, PerfParams, PredMetric};

/// Build a launch for a fixture kernel: scalars get 1, buffers get 4096
/// zeroed elements (past every perf fixture's largest index — np001 reads
/// up to `A[4*512 + 511]`).
fn fixture_launch(k: &Kernel) -> Vec<LaunchArg> {
    k.args
        .iter()
        .map(|a| match a.kind {
            ArgKind::Scalar(st) => LaunchArg::Scalar(match st {
                ScalarType::I32 => Value::I32(1),
                ScalarType::I64 => Value::I64(1),
                ScalarType::F32 => Value::F32(1.0),
                ScalarType::F64 => Value::F64(1.0),
            }),
            ArgKind::Buffer { elem, .. } => {
                LaunchArg::Buffer(vec![Value::zero(Type::scalar(elem)); 4096])
            }
        })
        .collect()
}

fn buggy_perf_fixtures() -> Vec<Fixture> {
    let v: Vec<_> = fixtures::buggy().into_iter().filter(|f| f.perf).collect();
    assert_eq!(v.len(), 5, "one triggering fixture per NP code");
    v
}

/// `pred` within `tol` (relative) of `obs`.
fn within(pred: f64, obs: f64, tol: f64) -> bool {
    (pred - obs).abs() <= tol * obs.abs().max(1e-9)
}

/// Every NP prediction lands within 25% of `fpga_sim::analytic`'s estimate
/// of the same quantity on the fixture that triggers it.
#[test]
fn np_predictions_agree_with_the_analytic_model() {
    let cache = AccelCache::new();
    let sim = SimConfig::default();
    let params = PerfParams::default();
    for f in buggy_perf_fixtures() {
        let launch = fixture_launch(&f.kernel);
        let analytic = analytic_report(&cache, &f.kernel, &sim, &launch)
            .unwrap_or_else(|| panic!("`{}`: analytic estimate unresolvable", f.name));
        // The whole-kernel cost model agrees on total cycles…
        let model = nymble_lint::perf::model(&f.kernel, &params)
            .unwrap_or_else(|| panic!("`{}`: static model unresolvable", f.name));
        assert!(
            within(
                model.total_cycles as f64,
                analytic.total_cycles as f64,
                0.25
            ),
            "`{}`: static {} vs analytic {} total cycles",
            f.name,
            model.total_cycles,
            analytic.total_cycles
        );
        // …and each diagnostic's attached prediction agrees on its metric.
        let report = nymble_lint::perf_lint_kernel_with(&f.kernel, &params);
        assert!(!report.is_clean(), "`{}` must trigger", f.name);
        let analytic_ratio = {
            let max = *analytic.per_thread.iter().max().unwrap_or(&1);
            let min = (*analytic.per_thread.iter().min().unwrap_or(&1)).max(1);
            max as f64 / min as f64
        };
        for d in &report.diagnostics {
            let pred = d
                .prediction
                .as_ref()
                .unwrap_or_else(|| panic!("`{}`: {} carries no prediction", f.name, d.code));
            let observed = match pred.metric {
                PredMetric::TotalCycles => analytic.total_cycles as f64,
                PredMetric::DramBytes => analytic.dram_bytes as f64,
                // The np003 fixture's traffic *is* the dead transfer (plus
                // one store per thread), so the analytic total is the
                // reference for the wasted bytes too.
                PredMetric::WastedDmaBytes => analytic.dram_bytes as f64,
                PredMetric::SerialCycles => analytic.critical_cycles as f64,
                PredMetric::ImbalanceRatio => analytic_ratio,
            };
            assert!(
                within(pred.value, observed, 0.25),
                "`{}` {}: predicted {} {} vs analytic {}",
                f.name,
                d.code,
                pred.metric.as_str(),
                pred.value,
                observed
            );
        }
    }
}

/// The cycle-level simulator confirms each prediction: `confront` returns
/// `Confirmed` for every NP finding on the fixture's own simulated trace.
#[test]
fn np_predictions_are_confirmed_by_the_cycle_simulator() {
    let cache = AccelCache::new();
    let sim = SimConfig::default();
    let prof = ProfilingConfig::default();
    for f in buggy_perf_fixtures() {
        let launch = fixture_launch(&f.kernel);
        let run = run_profiled_in(&cache, &f.kernel, &sim, &prof, &launch)
            .unwrap_or_else(|e| panic!("`{}`: simulation failed: {e}", f.name));
        let report = nymble_lint::perf_lint_kernel_with(&f.kernel, &perf_params_from_sim(&sim));
        let d = diagnose(
            &run.trace,
            &run.result.stats,
            &sim,
            &DiagnoseConfig::default(),
        );
        let outcomes = confront(&report, &run.trace, &run.result.stats, &d);
        assert!(!outcomes.is_empty(), "`{}`: nothing to confront", f.name);
        for o in &outcomes {
            assert_eq!(
                o.verdict,
                hls_profiling::Verdict::Confirmed,
                "`{}`: {} not confirmed by the simulated trace",
                f.name,
                o.detail
            );
        }
        // The fixture's own code is among the confirmed outcomes.
        let code = Code::parse(&f.name[..5].to_uppercase()).expect("fixture name starts with code");
        assert!(
            outcomes.iter().any(|o| o.code == Some(code)),
            "`{}`: no outcome for {code}",
            f.name
        );
    }
}

/// The perf gate is observationally free: `perf_lint: Warn` and `Off`
/// sweeps produce byte-identical bundles and tables (same contract the
/// correctness gate pins in `lint_gate.rs`).
#[test]
fn perf_lint_warn_and_off_produce_identical_bundles_and_tables() {
    use std::collections::BTreeMap;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "hls-paraver-perflint-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).expect("create test dir");
        d
    }

    fn bundle_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
        let mut files = BTreeMap::new();
        for entry in std::fs::read_dir(dir).expect("read bundle dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            files.insert(name, std::fs::read(&path).expect("read bundle file"));
        }
        files
    }

    let mut baseline: Option<(String, BTreeMap<String, Vec<u8>>)> = None;
    for perf_lint in [LintLevel::Off, LintLevel::Warn] {
        let out = test_dir(perf_lint.as_str());
        let sweep = gemm_sweep(&GemmSweepConfig {
            params: GemmParams {
                dim: 16,
                threads: 2,
                vec: 4,
                block: 8,
            },
            hls: HlsConfig {
                perf_lint,
                ..HlsConfig::default()
            },
            sim: gemm_sim_config(),
            prof: ProfilingConfig::default(),
            pipeline: PipelineConfig::default(),
            out: Some(out.clone()),
            jobs: 2,
        });
        for (v, r) in &sweep.runs {
            assert!(
                r.outcome.is_ok(),
                "perf_lint={perf_lint}: {} failed",
                v.name()
            );
        }
        let table = gemm_table(&sweep);
        let bundles = bundle_bytes(&out);
        assert_eq!(bundles.len(), GemmVersion::ALL.len() * 3);
        match &baseline {
            None => baseline = Some((table, bundles)),
            Some((base_table, base_bundles)) => {
                assert_eq!(base_table, &table, "perf-lint level changed the table");
                assert_eq!(
                    base_bundles, &bundles,
                    "perf-lint level changed a trace bundle byte"
                );
            }
        }
        std::fs::remove_dir_all(&out).ok();
    }
}
