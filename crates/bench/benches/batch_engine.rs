//! Wall-clock scaling of the parallel batch engine: the five-version GEMM
//! sweep at `--jobs 1` vs `--jobs 4`.
//!
//! On a machine with ≥ 4 hardware threads the parallel sweep must be at
//! least 2× faster (compile-once cache + four workers); on smaller
//! machines the measured speedup is still printed, but the threshold is
//! not asserted — oversubscribed workers cannot beat wall-clock physics.
//!
//! Run with `cargo bench --bench batch_engine`.

use bench::harness::Group;
use bench::sweep::{gemm_sweep, GemmSweepConfig};
use bench::{args::default_jobs, gemm_sim_config};
use hls_profiling::{PipelineConfig, ProfilingConfig};
use kernels::gemm::GemmParams;
use nymble_hls::HlsConfig;

fn sweep_at(jobs: usize) -> usize {
    let sweep = gemm_sweep(&GemmSweepConfig {
        params: GemmParams {
            dim: 64,
            threads: 4,
            ..Default::default()
        },
        hls: HlsConfig::default(),
        sim: gemm_sim_config(),
        prof: ProfilingConfig::default(),
        pipeline: PipelineConfig::default(),
        out: None,
        jobs,
    });
    sweep.runs.iter().filter(|(_, r)| r.outcome.is_ok()).count()
}

fn main() {
    let g = Group::new("batch_engine", 3);
    let serial = g.bench("gemm_sweep/jobs=1", || {
        assert_eq!(sweep_at(1), 5);
    });
    let parallel = g.bench("gemm_sweep/jobs=4", || {
        assert_eq!(sweep_at(4), 5);
    });
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    let hw = default_jobs();
    eprintln!(
        "[bench] batch_engine/speedup                    jobs=4 is {speedup:.2}x vs jobs=1 ({hw} hardware threads)"
    );
    if hw >= 4 {
        assert!(
            speedup >= 2.0,
            "expected >= 2x at --jobs 4 on a {hw}-thread machine, measured {speedup:.2}x"
        );
    } else {
        eprintln!(
            "[bench] batch_engine/speedup                    threshold skipped: only {hw} hardware thread(s)"
        );
    }
}
