//! Bench of the tentpole streaming refactor: materialized vs streaming
//! trace path on double-buffered GEMM and π. Both variants produce the same
//! `.prv`/`.pcf`/`.row` bundle; the wall time and the `[trace-mem]` lines
//! (peak in-flight trace-pipeline bytes) are the comparison.

use bench::harness::Group;
use bench::{
    bundle_sink, gemm_launch, gemm_sim_config, pi_sim_config, run_profiled, run_profiled_streaming,
};
use fpga_sim::memimg::LaunchArg;
use hls_profiling::{PipelineConfig, ProfilingConfig, StreamReport};
use kernels::gemm::{self, GemmParams, GemmVersion};
use kernels::pi::{self, PiParams};
use nymble_ir::{Kernel, Value};
use paraver::model::Record;
use std::path::PathBuf;

fn stem(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trace_pipeline_bench_{name}"))
}

/// Approximate peak resident bytes of the materialized path: the retained
/// flush stream plus the fully decoded record set.
fn materialized_peak(records: usize, flushed_bytes: u64) -> u64 {
    flushed_bytes + (records as u64) * std::mem::size_of::<Record>() as u64
}

/// Approximate peak resident bytes of the streaming path: staging buffer +
/// bounded channel + bounded sorter.
fn streaming_peak(prof: &ProfilingConfig, pipe: &PipelineConfig, r: &StreamReport) -> u64 {
    (prof.buffer_lines * 64) as u64
        + (pipe.channel_capacity * r.peak_chunk_bytes) as u64
        + (r.peak_resident_records * std::mem::size_of::<Record>()) as u64
}

fn compare(
    g: &Group,
    name: &str,
    kernel: &Kernel,
    sim: &fpga_sim::SimConfig,
    launch: &[LaunchArg],
) {
    // Dense sampling so the trace volume is large enough that the two
    // paths' memory behaviour actually diverges; a tightly bounded pipeline
    // (small channel, small sorter) shows the streaming bound is a config
    // constant, not a function of run length.
    let prof = ProfilingConfig {
        sampling_period: 20,
        buffer_lines: 32,
        ..Default::default()
    };
    let pipe = PipelineConfig {
        channel_capacity: 4,
        max_in_memory_records: 512,
        ..Default::default()
    };

    let mut mat_stats = (0usize, 0u64);
    g.bench(&format!("{name}/materialized"), || {
        let run = run_profiled(kernel, sim, &prof, launch);
        mat_stats = (run.trace.records.len(), run.trace.flushed_bytes);
        run.trace.write_bundle(&stem(name)).unwrap();
        run.result.total_cycles
    });

    let mut st_report = None;
    g.bench(&format!("{name}/streaming"), || {
        let (result, report) = run_profiled_streaming(
            kernel,
            sim,
            &prof,
            pipe.clone(),
            bundle_sink(stem(&format!("{name}_streamed"))),
            launch,
        )
        .unwrap();
        st_report = Some(report);
        result.total_cycles
    });

    let r = st_report.unwrap();
    eprintln!(
        "[trace-mem] {name}: materialized ≈{} B ({} records), streaming ≈{} B \
         (peak chunk {} B, peak sorted {}, spilled runs {})",
        materialized_peak(mat_stats.0, mat_stats.1),
        mat_stats.0,
        streaming_peak(&prof, &pipe, &r),
        r.peak_chunk_bytes,
        r.peak_resident_records,
        r.spilled_runs,
    );
}

fn main() {
    let g = Group::new("trace_pipeline", 10);

    let gp = GemmParams {
        dim: 32,
        threads: 4,
        vec: 4,
        block: 8,
    };
    let gemm_kernel = gemm::build(GemmVersion::DoubleBuffered, &gp);
    let launch = gemm_launch(&gp);
    compare(&g, "gemm_v5", &gemm_kernel, &gemm_sim_config(), &launch);

    let pp = PiParams {
        steps: 256_000,
        threads: 8,
        bs: 8,
    };
    let pi_kernel = pi::build(&pp);
    let (step, spt) = pi::launch_scalars(&pp);
    let pi_launch = vec![
        LaunchArg::Scalar(Value::F32(step)),
        LaunchArg::Scalar(Value::I64(spt)),
        LaunchArg::Buffer(vec![Value::F32(0.0)]),
    ];
    compare(&g, "pi", &pi_kernel, &pi_sim_config(), &pi_launch);
}
