//! Criterion bench of the Paraver toolchain itself: `.prv` writing, parsing
//! and analysis throughput (trace handling is the HPC-side cost the paper's
//! infrastructure feeds; "tens of GBs of trace-data" is the norm it cites).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paraver::analysis::{event_series, StateProfile};
use paraver::model::{Record, TraceMeta};
use paraver::prv::TraceWriter;

fn synth_records(n: usize, threads: u32) -> Vec<Record> {
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let t = (i as u64) * 10;
        let thread = (i as u32) % threads;
        if i % 3 == 0 {
            records.push(Record::State {
                thread,
                begin: t,
                end: t + 10,
                state: (i % 4) as u32,
            });
        } else {
            records.push(Record::Event {
                thread,
                time: t,
                events: vec![
                    (paraver::events::FLOPS, (i % 100) as u64),
                    (paraver::events::BYTES_READ, (i % 64) as u64 * 64),
                ],
            });
        }
    }
    records
}

fn bench_toolchain(c: &mut Criterion) {
    let threads = 8;
    let records = synth_records(100_000, threads);
    let meta = TraceMeta::new("bench", 1_000_000, threads);

    let mut g = c.benchmark_group("trace_toolchain");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("prv_write_100k", |b| {
        b.iter(|| {
            let mut w = TraceWriter::new(Vec::with_capacity(4 << 20), meta.clone()).unwrap();
            w.write_all(records.iter()).unwrap();
            w.finish().unwrap().len()
        })
    });

    let text = {
        let mut w = TraceWriter::new(Vec::new(), meta.clone()).unwrap();
        w.write_all(records.iter()).unwrap();
        String::from_utf8(w.finish().unwrap()).unwrap()
    };
    g.bench_function("prv_parse_100k", |b| {
        b.iter(|| paraver::parse::parse_prv(&text).unwrap().1.len())
    });
    g.bench_function("state_profile_100k", |b| {
        b.iter(|| StateProfile::compute(&records, threads).total_time)
    });
    g.bench_function("event_series_100k", |b| {
        b.iter(|| event_series(&records, paraver::events::FLOPS, 1_000, 1_000_000).total())
    });
    g.finish();
}

criterion_group!(benches, bench_toolchain);
criterion_main!(benches);
