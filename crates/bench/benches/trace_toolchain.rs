//! Bench of the Paraver toolchain itself: `.prv` writing, parsing and
//! analysis throughput (trace handling is the HPC-side cost the paper's
//! infrastructure feeds; "tens of GBs of trace-data" is the norm it cites).

use bench::harness::Group;
use paraver::analysis::{event_series, StateProfile};
use paraver::model::{Record, TraceMeta};
use paraver::prv::TraceWriter;

fn synth_records(n: usize, threads: u32) -> Vec<Record> {
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let t = (i as u64) * 10;
        let thread = (i as u32) % threads;
        if i % 3 == 0 {
            records.push(Record::State {
                thread,
                begin: t,
                end: t + 10,
                state: (i % 4) as u32,
            });
        } else {
            records.push(Record::Event {
                thread,
                time: t,
                events: vec![
                    (paraver::events::FLOPS, (i % 100) as u64),
                    (paraver::events::BYTES_READ, (i % 64) as u64 * 64),
                ],
            });
        }
    }
    records
}

fn main() {
    let threads = 8;
    let records = synth_records(100_000, threads);
    let meta = TraceMeta::new("bench", 1_000_000, threads);

    let g = Group::new("trace_toolchain", 10);
    g.bench("prv_write_100k", || {
        let mut w = TraceWriter::new(Vec::with_capacity(4 << 20), meta.clone()).unwrap();
        w.write_all(records.iter()).unwrap();
        w.finish().unwrap().len()
    });

    let text = {
        let mut w = TraceWriter::new(Vec::new(), meta.clone()).unwrap();
        w.write_all(records.iter()).unwrap();
        String::from_utf8(w.finish().unwrap()).unwrap()
    };
    g.bench("prv_parse_100k", || {
        paraver::parse::parse_prv(&text).unwrap().1.len()
    });
    g.bench("state_profile_100k", || {
        StateProfile::compute(&records, threads).total_time
    });
    g.bench("event_series_100k", || {
        event_series(&records, paraver::events::FLOPS, 1_000, 1_000_000).total()
    });
}
