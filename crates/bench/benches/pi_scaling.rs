//! Criterion bench behind Figs. 11–13: the π kernel at increasing iteration
//! counts under the full host launch overhead. The `[gflops]` lines printed
//! once per size carry the paper's metric.

use bench::{pi_sim_config, run_pi};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hls_profiling::ProfilingConfig;
use kernels::pi::PiParams;

fn bench_pi(c: &mut Criterion) {
    let sim = pi_sim_config();
    let prof = ProfilingConfig {
        sampling_period: 100_000,
        ..Default::default()
    };
    // The paper's sizes are ramp-dominated; bench scaled-down variants and
    // print the paper-size metrics once.
    for steps in [1_000_000u64, 4_000_000, 10_000_000] {
        let p = PiParams {
            steps,
            threads: 8,
            bs: 8,
        };
        let (run, est) = run_pi(&p, &sim, &prof);
        eprintln!(
            "[gflops] pi {steps:>9}: {:.3} GFLOP/s, {} cycles, pi={est:.6}",
            run.result.gflops(&sim),
            run.result.total_cycles
        );
    }

    let mut g = c.benchmark_group("pi_scaling");
    g.sample_size(10);
    for steps in [64_000u64, 256_000, 1_024_000] {
        let p = PiParams {
            steps,
            threads: 8,
            bs: 8,
        };
        g.bench_with_input(BenchmarkId::from_parameter(steps), &p, |b, p| {
            b.iter(|| run_pi(p, &sim, &prof).0.result.total_cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pi);
criterion_main!(benches);
